package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rag"
	"repro/internal/slm"
	"repro/internal/vecdb"
)

// TestEndToEndFlow exercises the complete Fig. 2 system in one test:
// dataset → vector database → retrieval → generation → verification,
// asserting the cross-module invariants that no package-level test can
// see.
func TestEndToEndFlow(t *testing.T) {
	ctx := context.Background()
	set, err := dataset.Generate(31, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Index the handbook with an HNSW-backed store to cover the
	// approximate-index path end to end.
	embedder, err := vecdb.NewHashedEmbedder(128)
	if err != nil {
		t.Fatal(err)
	}
	index, err := vecdb.NewHNSWIndex(vecdb.Cosine, 128, 8, 48, 32)
	if err != nil {
		t.Fatal(err)
	}
	db, err := vecdb.New(embedder, index)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(set.Contexts()); err != nil {
		t.Fatal(err)
	}

	detector, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}

	pipeline, err := rag.NewPipeline(rag.PipelineConfig{
		DB: db, TopK: 2,
		Generator: rag.ExtractiveGenerator{MaxSentences: 2},
		Detector:  detector,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range set.Items[:5] {
		ans, err := pipeline.Ask(ctx, it.Question)
		if err != nil {
			t.Fatalf("ask %q: %v", it.Question, err)
		}
		if ans.Response == "" || len(ans.Verdict.Sentences) == 0 {
			t.Errorf("incomplete answer for %q", it.Question)
		}
	}
}

// TestOracleDetectorSeparatesPerfectly: with the noise-free Oracle as
// the only model, correct responses must outscore their wrong siblings
// on every single item — the framework adds no noise of its own.
func TestOracleDetectorSeparatesPerfectly(t *testing.T) {
	ctx := context.Background()
	set, err := dataset.Generate(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDetector("oracle", core.Config{
		Models: []slm.Model{slm.Oracle{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := d.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}
	for _, it := range set.Items {
		correct, _ := it.Response(dataset.LabelCorrect)
		wrong, _ := it.Response(dataset.LabelWrong)
		vc, err := d.Score(ctx, it.Question, it.Context, correct.Text)
		if err != nil {
			t.Fatal(err)
		}
		vw, err := d.Score(ctx, it.Question, it.Context, wrong.Text)
		if err != nil {
			t.Fatal(err)
		}
		if vc.Score <= vw.Score {
			t.Errorf("item %d (%s): oracle correct %.3f ≤ wrong %.3f",
				it.ID, it.Topic, vc.Score, vw.Score)
		}
	}
}

// TestPartialScoresBetweenWrongAndCorrect checks the paper's Fig. 6
// ordering at the aggregate level: mean(wrong) < mean(partial) <
// mean(correct) under the proposed detector.
func TestPartialScoresBetweenWrongAndCorrect(t *testing.T) {
	ctx := context.Background()
	set, err := dataset.Generate(41, 24)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := d.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}
	means := map[dataset.Label]float64{}
	for _, it := range set.Items {
		for _, l := range dataset.Labels() {
			r, _ := it.Response(l)
			v, err := d.Score(ctx, it.Question, it.Context, r.Text)
			if err != nil {
				t.Fatal(err)
			}
			means[l] += v.Score
		}
	}
	if !(means[dataset.LabelWrong] < means[dataset.LabelPartial] &&
		means[dataset.LabelPartial] < means[dataset.LabelCorrect]) {
		n := float64(len(set.Items))
		t.Errorf("mean ordering broken: wrong=%.3f partial=%.3f correct=%.3f",
			means[dataset.LabelWrong]/n, means[dataset.LabelPartial]/n, means[dataset.LabelCorrect]/n)
	}
}
