package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide %d/100 times", same)
	}
}

func TestHashStringStability(t *testing.T) {
	// Pinned values guard against accidental algorithm changes, which
	// would silently change every synthetic model and dataset.
	if HashString("qwen2-1.5b-instruct") != HashString("qwen2-1.5b-instruct") {
		t.Fatal("HashString not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Error("trivial collision")
	}
	if HashString("") == 0 {
		t.Error("empty string should still mix to nonzero")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewFromString("float-range")
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(7)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ≈1/12", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestIntn(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("digit %d count %d far from uniform", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams coincide %d/100", same)
	}
}

func TestPerm(t *testing.T) {
	r := New(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	counts := map[int]int{}
	for _, v := range xs {
		counts[v]++
	}
	for _, v := range orig {
		if counts[v] != 1 {
			t.Fatalf("shuffle lost element %d: %v", v, xs)
		}
	}
}
