// Package rng provides a small, deterministic pseudo-random source used
// by the synthetic SLM backends and the dataset generator. Determinism
// matters here more than statistical excellence: the same model name
// and the same input must always produce the same score so experiments
// are exactly reproducible, which is why this package exists instead of
// math/rand's global, version-dependent source.
package rng

import "math"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is the standard seeding/mixing primitive for xoshiro generators.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashString folds a string into a 64-bit seed with FNV-1a followed by
// a splitmix64 finalizer, so similar strings land far apart.
func HashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return SplitMix64(&h)
}

// Source is a xoshiro256** generator. The zero value is invalid; use
// New or NewFromString. Source is not safe for concurrent use; derive
// one per goroutine with Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	var src Source
	for i := range src.s {
		src.s[i] = SplitMix64(&seed)
	}
	return &src
}

// NewFromString seeds a Source from arbitrary text (model names,
// dataset topic keys).
func NewFromString(s string) *Source { return New(HashString(s)) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n ≤ 0, matching
// math/rand semantics.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal deviate via the Box–Muller
// transform.
func (r *Source) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Split derives an independent child source; the parent advances once.
// Use it to give each goroutine or each sub-component its own stream.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed)
}

// Shuffle permutes the first n elements with Fisher–Yates, calling swap
// to exchange elements.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
