// Package experiments regenerates every table and figure of the
// paper's evaluation (§V): the Fig. 3 best-F1 comparison, the Fig. 4
// precision/recall study, the Fig. 5 aggregation-means study, and the
// Fig. 6–7 score distributions, all over the synthetic HR dataset.
// cmd/experiments renders them as text; bench_test.go wraps them as
// benchmarks; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/slm"
)

// DefaultWorkers bounds the goroutines used for batch scoring.
const DefaultWorkers = 8

// Scores holds one approach's response-level scores grouped by
// ground-truth label, in dataset item order.
type Scores struct {
	Approach string
	ByLabel  map[dataset.Label][]float64
}

// ScoreApproach runs the full two-pass evaluation protocol for one
// detector: (1) calibrate the per-model moments on every response in
// the set — the paper's "previous responses" — and freeze them;
// (2) score every response. Scoring is deterministic for a given
// detector configuration and dataset.
func ScoreApproach(ctx context.Context, d *core.Detector, set *dataset.Set, workers int) (*Scores, error) {
	var all []core.Triple
	type key struct {
		item  int
		label dataset.Label
	}
	where := map[key]int{}
	for _, it := range set.Items {
		for _, r := range it.Responses {
			where[key{it.ID, r.Label}] = len(all)
			all = append(all, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := d.Calibrate(ctx, all); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", d.Name(), err)
	}
	scored, err := d.BatchScore(ctx, all, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", d.Name(), err)
	}
	out := &Scores{Approach: d.Name(), ByLabel: map[dataset.Label][]float64{}}
	for _, it := range set.Items {
		for _, l := range dataset.Labels() {
			idx, ok := where[key{it.ID, l}]
			if !ok {
				return nil, fmt.Errorf("experiments: item %d missing %s response", it.ID, l)
			}
			out.ByLabel[l] = append(out.ByLabel[l], scored[idx].Verdict.Score)
		}
	}
	return out, nil
}

// SamplesVs builds the binary-classification samples "correct (positive)
// vs contrast (negative)" from an approach's scores.
func (s *Scores) SamplesVs(contrast dataset.Label) []metrics.Sample {
	var out []metrics.Sample
	for _, v := range s.ByLabel[dataset.LabelCorrect] {
		out = append(out, metrics.Sample{Score: v, Positive: true})
	}
	for _, v := range s.ByLabel[contrast] {
		out = append(out, metrics.Sample{Score: v, Positive: false})
	}
	return out
}

// ApproachResult is one approach's full operating-point summary for
// one contrast class.
type ApproachResult struct {
	Approach string
	Contrast dataset.Label
	// BestF1 is the Fig. 3 operating point.
	BestF1 metrics.Confusion
	// BestPrec is the Fig. 4 operating point (max precision subject to
	// recall ≥ 0.5).
	BestPrec metrics.Confusion
	// AUC summarizes threshold-free separability.
	AUC float64
}

// Evaluate computes an approach's result for one contrast class.
func Evaluate(s *Scores, contrast dataset.Label) (ApproachResult, error) {
	samples := s.SamplesVs(contrast)
	bestF1, err := metrics.BestF1(samples)
	if err != nil {
		return ApproachResult{}, err
	}
	bestP, err := metrics.BestPrecisionAtRecall(samples, 0.5)
	if err != nil {
		return ApproachResult{}, err
	}
	auc, err := metrics.AUC(samples)
	if err != nil {
		return ApproachResult{}, err
	}
	return ApproachResult{
		Approach: s.Approach, Contrast: contrast,
		BestF1: bestF1, BestPrec: bestP, AUC: auc,
	}, nil
}

// Suite bundles the dataset with memoized per-approach scores so the
// figure functions don't recompute shared work. Not safe for
// concurrent use.
type Suite struct {
	Set     *dataset.Set
	Workers int
	cache   map[string]*Scores
}

// NewSuite prepares a Suite over the given dataset.
func NewSuite(set *dataset.Set, workers int) *Suite {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	return &Suite{Set: set, Workers: workers, cache: map[string]*Scores{}}
}

// NewDefaultSuite builds the canonical suite over the default dataset.
func NewDefaultSuite() (*Suite, error) {
	set, err := dataset.Default()
	if err != nil {
		return nil, err
	}
	return NewSuite(set, DefaultWorkers), nil
}

// scores returns the (memoized) scores for a detector built by mk.
func (s *Suite) scores(ctx context.Context, name string, mk func() (*core.Detector, error)) (*Scores, error) {
	if sc, ok := s.cache[name]; ok {
		return sc, nil
	}
	d, err := mk()
	if err != nil {
		return nil, err
	}
	sc, err := ScoreApproach(ctx, d, s.Set, s.Workers)
	if err != nil {
		return nil, err
	}
	s.cache[name] = sc
	return sc, nil
}

// approachMakers returns the §V-C lineup constructors keyed in paper
// order.
func approachMakers() []struct {
	Name string
	Make func() (*core.Detector, error)
} {
	return []struct {
		Name string
		Make func() (*core.Detector, error)
	}{
		{"Proposed", core.NewProposed},
		{"ChatGPT", core.NewChatGPT},
		{"P(yes)", core.NewPYes},
		{"Qwen2", func() (*core.Detector, error) {
			return core.NewSingleSLM("Qwen2", slm.NewQwen2())
		}},
		{"MiniCPM", func() (*core.Detector, error) {
			return core.NewSingleSLM("MiniCPM", slm.NewMiniCPM())
		}},
	}
}

// Fig3 reproduces Fig. 3: the best F1 of every approach for detecting
// correct responses from the contrast class.
func (s *Suite) Fig3(ctx context.Context, contrast dataset.Label) ([]ApproachResult, error) {
	var out []ApproachResult
	for _, a := range approachMakers() {
		sc, err := s.scores(ctx, a.Name, a.Make)
		if err != nil {
			return nil, err
		}
		r, err := Evaluate(sc, contrast)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s vs %s: %w", a.Name, contrast, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig4 reproduces Fig. 4: best precision with recall ≥ 0.5 and the
// corresponding recall, per approach. It shares Fig. 3's computation.
func (s *Suite) Fig4(ctx context.Context, contrast dataset.Label) ([]ApproachResult, error) {
	return s.Fig3(ctx, contrast)
}

// MeanResult is one aggregation strategy's best F1 (Fig. 5).
type MeanResult struct {
	Mean     core.Mean
	Contrast dataset.Label
	BestF1   metrics.Confusion
	AUC      float64
}

// Fig5 reproduces Fig. 5: the proposed two-SLM pipeline with each of
// the five sentence-aggregation means.
func (s *Suite) Fig5(ctx context.Context, contrast dataset.Label) ([]MeanResult, error) {
	var out []MeanResult
	for _, m := range core.Means() {
		mean := m
		sc, err := s.scores(ctx, "Proposed["+m.String()+"]", func() (*core.Detector, error) {
			if mean == core.Harmonic {
				return core.NewProposed() // identical pipeline; reuse label
			}
			return core.NewProposedWithMean(mean)
		})
		if err != nil {
			return nil, err
		}
		best, err := metrics.BestF1(sc.SamplesVs(contrast))
		if err != nil {
			return nil, err
		}
		auc, err := metrics.AUC(sc.SamplesVs(contrast))
		if err != nil {
			return nil, err
		}
		out = append(out, MeanResult{Mean: m, Contrast: contrast, BestF1: best, AUC: auc})
	}
	return out, nil
}

// Distribution is one approach's labelled score histograms (Fig. 6–7).
type Distribution struct {
	Approach string
	Hist     *metrics.LabeledHistograms
}

// distribution renders the labelled histogram for a score set, with
// bounds covering the observed range.
func distribution(sc *Scores, bins int) (*Distribution, error) {
	lo, hi := scoreRange(sc)
	if hi <= lo {
		hi = lo + 1
	}
	labels := make([]string, 0, 3)
	for _, l := range dataset.Labels() {
		labels = append(labels, string(l))
	}
	lh, err := metrics.NewLabeledHistograms(labels, lo, hi, bins)
	if err != nil {
		return nil, err
	}
	for _, l := range dataset.Labels() {
		for _, v := range sc.ByLabel[l] {
			if err := lh.Add(string(l), v); err != nil {
				return nil, err
			}
		}
	}
	return &Distribution{Approach: sc.Approach, Hist: lh}, nil
}

func scoreRange(sc *Scores) (lo, hi float64) {
	first := true
	for _, vs := range sc.ByLabel {
		for _, v := range vs {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// Fig6 reproduces Fig. 6: score distributions of the proposed method
// (a) and the P(yes) baseline (b).
func (s *Suite) Fig6(ctx context.Context, bins int) (proposed, pyes *Distribution, err error) {
	pSc, err := s.scores(ctx, "Proposed", core.NewProposed)
	if err != nil {
		return nil, nil, err
	}
	ySc, err := s.scores(ctx, "P(yes)", core.NewPYes)
	if err != nil {
		return nil, nil, err
	}
	proposed, err = distribution(pSc, bins)
	if err != nil {
		return nil, nil, err
	}
	pyes, err = distribution(ySc, bins)
	if err != nil {
		return nil, nil, err
	}
	return proposed, pyes, nil
}

// Fig7 reproduces Fig. 7: score distributions under geometric (a) and
// harmonic (b) aggregation of the proposed pipeline.
func (s *Suite) Fig7(ctx context.Context, bins int) (geometric, harmonic *Distribution, err error) {
	gSc, err := s.scores(ctx, "Proposed[geometric]", func() (*core.Detector, error) {
		return core.NewProposedWithMean(core.Geometric)
	})
	if err != nil {
		return nil, nil, err
	}
	hSc, err := s.scores(ctx, "Proposed", core.NewProposed)
	if err != nil {
		return nil, nil, err
	}
	geometric, err = distribution(gSc, bins)
	if err != nil {
		return nil, nil, err
	}
	harmonic, err = distribution(hSc, bins)
	if err != nil {
		return nil, nil, err
	}
	return geometric, harmonic, nil
}

// FormatFig3 renders Fig. 3 results as an aligned text table.
func FormatFig3(rows []ApproachResult) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Best F1 detecting correct vs %s\n", rows[0].Contrast)
	}
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s\n", "approach", "F1", "p", "r", "AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f %8.3f\n",
			r.Approach, r.BestF1.F1(), r.BestF1.Precision(), r.BestF1.Recall(), r.AUC)
	}
	return b.String()
}

// FormatFig4 renders the Fig. 4 precision/recall table.
func FormatFig4(rows []ApproachResult) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Best precision (recall ≥ 0.5) detecting correct vs %s\n", rows[0].Contrast)
	}
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "approach", "p", "r")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f\n", r.Approach, r.BestPrec.Precision(), r.BestPrec.Recall())
	}
	return b.String()
}

// FormatFig5 renders the Fig. 5 means table.
func FormatFig5(rows []MeanResult) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Best F1 by aggregation mean, correct vs %s\n", rows[0].Contrast)
	}
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "mean", "F1", "AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f\n", r.Mean, r.BestF1.F1(), r.AUC)
	}
	return b.String()
}

// FormatDistribution renders a Fig. 6/7 panel.
func FormatDistribution(d *Distribution, width int) string {
	return fmt.Sprintf("Score distribution — %s\n%s", d.Approach, d.Hist.Render(width))
}
