package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/slm"
)

// smallSuite keeps the integration tests fast: 32 items still cover
// every topic twice. One suite is shared across the package's tests so
// the per-approach scoring runs once; Suite memoizes by approach name
// and every figure call is read-only with respect to the dataset.
var (
	sharedSuite     *Suite
	sharedSuiteOnce sync.Once
	sharedSuiteErr  error
)

func smallSuite(t *testing.T) *Suite {
	t.Helper()
	sharedSuiteOnce.Do(func() {
		set, err := dataset.Generate(20250612, 32)
		if err != nil {
			sharedSuiteErr = err
			return
		}
		sharedSuite = NewSuite(set, 8)
	})
	if sharedSuiteErr != nil {
		t.Fatal(sharedSuiteErr)
	}
	return sharedSuite
}

func TestScoreApproachShape(t *testing.T) {
	suite := smallSuite(t)
	d, err := core.NewDetector("shape-probe", core.Config{
		Models: []slm.Model{slm.NewQwen2()},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScoreApproach(context.Background(), d, suite.Set, suite.Workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range dataset.Labels() {
		if got := len(sc.ByLabel[l]); got != len(suite.Set.Items) {
			t.Errorf("label %s has %d scores, want %d", l, got, len(suite.Set.Items))
		}
	}
	samples := sc.SamplesVs(dataset.LabelWrong)
	if len(samples) != 2*len(suite.Set.Items) {
		t.Errorf("samples = %d, want %d", len(samples), 2*len(suite.Set.Items))
	}
}

func TestScoreApproachDeterministic(t *testing.T) {
	set, err := dataset.Generate(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Scores {
		d, err := core.NewProposed()
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ScoreApproach(context.Background(), d, set, 8)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := run(), run()
	for _, l := range dataset.Labels() {
		for i := range a.ByLabel[l] {
			if a.ByLabel[l][i] != b.ByLabel[l][i] {
				t.Fatalf("nondeterministic score: label %s item %d", l, i)
			}
		}
	}
}

// TestFig3Shape checks the paper's qualitative claims on the small
// suite: wrong-detection is easy for every approach, partial-detection
// is harder, and the proposed method is best (or tied) on partial.
func TestFig3Shape(t *testing.T) {
	suite := smallSuite(t)
	ctx := context.Background()
	wrongRows, err := suite.Fig3(ctx, dataset.LabelWrong)
	if err != nil {
		t.Fatal(err)
	}
	partialRows, err := suite.Fig3(ctx, dataset.LabelPartial)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrongRows) != 5 || len(partialRows) != 5 {
		t.Fatalf("rows = %d/%d, want 5", len(wrongRows), len(partialRows))
	}
	byName := map[string]float64{}
	for _, r := range partialRows {
		byName[r.Approach] = r.BestF1.F1()
	}
	for i, r := range wrongRows {
		if r.BestF1.F1() < 0.8 {
			t.Errorf("%s wrong-F1 = %.3f, want ≥0.8 (paper: all high)", r.Approach, r.BestF1.F1())
		}
		// Partial is harder than wrong for every approach.
		if byName[r.Approach] > r.BestF1.F1()+0.05 {
			t.Errorf("%s partial F1 %.3f above wrong F1 %.3f", r.Approach, byName[r.Approach], r.BestF1.F1())
		}
		_ = i
	}
	proposed := byName["Proposed"]
	for name, f1 := range byName {
		if name == "Proposed" {
			continue
		}
		if f1 > proposed+0.03 {
			t.Errorf("%s partial F1 %.3f clearly beats Proposed %.3f", name, f1, proposed)
		}
	}
}

func TestFig4RecallConstraint(t *testing.T) {
	suite := smallSuite(t)
	rows, err := suite.Fig4(context.Background(), dataset.LabelPartial)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BestPrec.Recall() < 0.5 {
			t.Errorf("%s best-precision recall %.3f violates the r ≥ 0.5 rule", r.Approach, r.BestPrec.Recall())
		}
	}
}

func TestFig5MaxCollapsesOnPartial(t *testing.T) {
	suite := smallSuite(t)
	rows, err := suite.Fig5(context.Background(), dataset.LabelPartial)
	if err != nil {
		t.Fatal(err)
	}
	f1 := map[core.Mean]float64{}
	for _, r := range rows {
		f1[r.Mean] = r.BestF1.F1()
	}
	if f1[core.Max] >= f1[core.Harmonic] {
		t.Errorf("max %.3f should collapse below harmonic %.3f on partial (paper Fig. 5b)",
			f1[core.Max], f1[core.Harmonic])
	}
}

func TestFig6Distributions(t *testing.T) {
	suite := smallSuite(t)
	proposed, pyes, err := suite.Fig6(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Distribution{proposed, pyes} {
		total := 0
		for _, l := range dataset.Labels() {
			total += d.Hist.ByName[string(l)].Total()
		}
		if total != 3*len(suite.Set.Items) {
			t.Errorf("%s histograms hold %d scores, want %d", d.Approach, total, 3*len(suite.Set.Items))
		}
	}
	out := FormatDistribution(proposed, 30)
	if !strings.Contains(out, "correct") || !strings.Contains(out, "wrong") {
		t.Error("rendered distribution missing labels")
	}
}

func TestFig7Distributions(t *testing.T) {
	suite := smallSuite(t)
	geo, har, err := suite.Fig7(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Approach == har.Approach {
		t.Error("fig7 panels must differ")
	}
}

func TestFormatters(t *testing.T) {
	suite := smallSuite(t)
	rows, err := suite.Fig3(context.Background(), dataset.LabelWrong)
	if err != nil {
		t.Fatal(err)
	}
	fig3 := FormatFig3(rows)
	for _, name := range []string{"Proposed", "ChatGPT", "P(yes)", "Qwen2", "MiniCPM"} {
		if !strings.Contains(fig3, name) {
			t.Errorf("fig3 table missing %s:\n%s", name, fig3)
		}
	}
	fig4 := FormatFig4(rows)
	if !strings.Contains(fig4, "recall ≥ 0.5") {
		t.Error("fig4 header missing constraint")
	}
	mrows, err := suite.Fig5(context.Background(), dataset.LabelWrong)
	if err != nil {
		t.Fatal(err)
	}
	fig5 := FormatFig5(mrows)
	for _, m := range core.Means() {
		if !strings.Contains(fig5, m.String()) {
			t.Errorf("fig5 table missing %s", m)
		}
	}
}

// TestSuiteMemoization: repeated figure calls must not redo the
// expensive scoring.
func TestSuiteMemoization(t *testing.T) {
	set, err := dataset.Generate(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	suite := NewSuite(set, 8)
	ctx := context.Background()
	if _, err := suite.Fig3(ctx, dataset.LabelWrong); err != nil {
		t.Fatal(err)
	}
	if len(suite.cache) == 0 {
		t.Fatal("cache empty after Fig3")
	}
	before := len(suite.cache)
	if _, err := suite.Fig3(ctx, dataset.LabelPartial); err != nil {
		t.Fatal(err)
	}
	if len(suite.cache) != before {
		t.Errorf("second contrast re-scored approaches: %d -> %d", before, len(suite.cache))
	}
}
