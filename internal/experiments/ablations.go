package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rag"
	"repro/internal/slm"
	"repro/internal/vecdb"
)

// AblationRow is one configuration's result in an ablation study.
type AblationRow struct {
	Config   string
	Contrast dataset.Label
	BestF1   metrics.Confusion
	AUC      float64
}

// evaluateDetector scores a detector on the suite's dataset and
// summarizes one contrast.
func (s *Suite) evaluateDetector(ctx context.Context, key string, mk func() (*core.Detector, error), contrast dataset.Label) (AblationRow, error) {
	sc, err := s.scores(ctx, key, mk)
	if err != nil {
		return AblationRow{}, err
	}
	best, err := metrics.BestF1(sc.SamplesVs(contrast))
	if err != nil {
		return AblationRow{}, err
	}
	auc, err := metrics.AUC(sc.SamplesVs(contrast))
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Config: key, Contrast: contrast, BestF1: best, AUC: auc}, nil
}

// thirdModel is the extra ensemble member for the size ablation: a
// plausible third small checkpoint with its own scale and blind spots.
func thirdModel() *slm.CalibratedVerifier {
	return slm.MustCalibrated(slm.Profile{
		Name: "phi-style-1.3b", Sharpness: 2.2, Bias: 0.1,
		NoiseAmp: 1.15, WeightJitter: 0.18, DilutionHalfLife: 7.2,
		OutputScale: 0.8, OutputShift: 0.1,
		QuantityMissRate: 0.18, PolarityMissRate: 0.18, FalseAlarmRate: 0.2,
		SubtletyBlindness: 0.85,
	})
}

// AblationEnsembleSize varies the number of SLMs in the checker
// (DESIGN.md §4): one, two (the paper's configuration), three.
func (s *Suite) AblationEnsembleSize(ctx context.Context, contrast dataset.Label) ([]AblationRow, error) {
	cfgs := []struct {
		key string
		mk  func() (*core.Detector, error)
	}{
		{"ensemble=1 (Qwen2)", func() (*core.Detector, error) {
			return core.NewSingleSLM("ensemble-1", slm.NewQwen2())
		}},
		{"ensemble=2 (paper)", core.NewProposed},
		{"ensemble=3 (+third)", func() (*core.Detector, error) {
			return core.NewDetector("ensemble-3", core.Config{
				Models:    []slm.Model{slm.NewQwen2(), slm.NewMiniCPM(), thirdModel()},
				Aggregate: core.Harmonic,
			})
		}},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		row, err := s.evaluateDetector(ctx, c.key, c.mk, contrast)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationGating compares Eq. 5's uniform cross-model mean against the
// §VI future-work gating combiners.
func (s *Suite) AblationGating(ctx context.Context, contrast dataset.Label) ([]AblationRow, error) {
	cfgs := []struct {
		key string
		mk  func() (*core.Detector, error)
	}{
		{"uniform mean (Eq. 5)", core.NewProposed},
		{"confidence gate", func() (*core.Detector, error) {
			return core.NewGatedProposed(core.ConfidenceGate{Temperature: 1.5})
		}},
		{"agreement gate", func() (*core.Detector, error) {
			return core.NewGatedProposed(core.AgreementGate{Scale: 1.0})
		}},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		row, err := s.evaluateDetector(ctx, c.key, c.mk, contrast)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationNormalization compares Eq. 4's per-model z-normalization
// against feeding raw probabilities into the cross-model mean.
func (s *Suite) AblationNormalization(ctx context.Context, contrast dataset.Label) ([]AblationRow, error) {
	cfgs := []struct {
		key string
		mk  func() (*core.Detector, error)
	}{
		{"z-normalized (Eq. 4)", core.NewProposed},
		{"raw probabilities", func() (*core.Detector, error) {
			return core.NewDetector("raw-scale", core.Config{
				Models:    []slm.Model{slm.NewQwen2(), slm.NewMiniCPM()},
				Aggregate: core.Harmonic,
				Scale:     core.Identity{},
			})
		}},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		row, err := s.evaluateDetector(ctx, c.key, c.mk, contrast)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationSplitter compares sentence-level checking (§IV-A) against
// whole-response checking with the same two-model ensemble.
func (s *Suite) AblationSplitter(ctx context.Context, contrast dataset.Label) ([]AblationRow, error) {
	cfgs := []struct {
		key string
		mk  func() (*core.Detector, error)
	}{
		{"sentence splitter", core.NewProposed},
		{"whole response", func() (*core.Detector, error) {
			return core.NewDetector("no-splitter", core.Config{
				Models:    []slm.Model{slm.NewQwen2(), slm.NewMiniCPM()},
				Split:     core.WholeResponse,
				Aggregate: core.Harmonic,
			})
		}},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		row, err := s.evaluateDetector(ctx, c.key, c.mk, contrast)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTopK measures how retrieval depth affects verification: the
// detector sees the top-k retrieved passages instead of the gold
// context. Small k risks missing the evidence; large k dilutes it.
func (s *Suite) AblationTopK(ctx context.Context, contrast dataset.Label, ks []int) ([]AblationRow, error) {
	db, err := vecdb.NewDefault(256)
	if err != nil {
		return nil, err
	}
	if _, err := db.AddAll(s.Set.Contexts()); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, k := range ks {
		retriever, err := rag.NewRetriever(db, k)
		if err != nil {
			return nil, err
		}
		d, err := core.NewProposed()
		if err != nil {
			return nil, err
		}
		// Build retrieved-context triples for calibration and scoring.
		var triples []core.Triple
		type key struct {
			item  int
			label dataset.Label
		}
		where := map[key]int{}
		for _, it := range s.Set.Items {
			hits, err := retriever.Retrieve(it.Question)
			if err != nil {
				return nil, err
			}
			retrieved := rag.Context(hits)
			for _, r := range it.Responses {
				where[key{it.ID, r.Label}] = len(triples)
				triples = append(triples, core.Triple{Question: it.Question, Context: retrieved, Response: r.Text})
			}
		}
		if err := d.Calibrate(ctx, triples); err != nil {
			return nil, err
		}
		scored, err := d.BatchScore(ctx, triples, s.Workers)
		if err != nil {
			return nil, err
		}
		var samples []metrics.Sample
		for _, it := range s.Set.Items {
			for _, l := range []dataset.Label{dataset.LabelCorrect, contrast} {
				idx := where[key{it.ID, l}]
				samples = append(samples, metrics.Sample{
					Score:    scored[idx].Verdict.Score,
					Positive: l == dataset.LabelCorrect,
				})
			}
		}
		best, err := metrics.BestF1(samples)
		if err != nil {
			return nil, err
		}
		auc, err := metrics.AUC(samples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("retrieval top-%d", k), Contrast: contrast,
			BestF1: best, AUC: auc,
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows as an aligned table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-24s %8s %8s %8s %8s\n", title, "config", "F1", "p", "r", "AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %8.3f %8.3f %8.3f %8.3f\n",
			r.Config, r.BestF1.F1(), r.BestF1.Precision(), r.BestF1.Recall(), r.AUC)
	}
	return b.String()
}
