// Package metrics implements the evaluation machinery of the paper's
// §V: precision/recall/F1 over score thresholds, the best-F1 operating
// point (Fig. 3, Fig. 5), the best-precision-with-recall≥0.5 operating
// point (Fig. 4), score histograms per label (Fig. 6–7), and ROC/AUC as
// an additional summary.
//
// Naming note — metrics vs telemetry: this package evaluates the
// *detector* against labelled ground truth (offline, per experiment
// run); the separate internal/telemetry package measures the *serving
// system* in production (request counters, stage latency histograms,
// GET /metrics). The two share a name lineage but nothing else — they
// never import each other. See docs/architecture.md for the split and
// docs/observability.md for the serving-side metric reference.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample pairs a response-level score s_i with its ground-truth label:
// Positive=true means the response is labeled "correct"; false means it
// belongs to the contrast class under study ("wrong" or "partial").
type Sample struct {
	Score    float64
	Positive bool
}

// Confusion is the 2×2 contingency table at a fixed threshold with the
// decision rule "predict correct when Score > Threshold" (strictly
// greater, per the paper: "If the score in Eq. 6 exceeds a threshold,
// the response is labeled as correct").
type Confusion struct {
	TP, FP, TN, FN int
	Threshold      float64
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when both
// are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the table compactly for reports.
func (c Confusion) String() string {
	return fmt.Sprintf("thr=%.4f tp=%d fp=%d tn=%d fn=%d p=%.3f r=%.3f f1=%.3f",
		c.Threshold, c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// At evaluates the decision rule at a single threshold.
func At(samples []Sample, threshold float64) Confusion {
	c := Confusion{Threshold: threshold}
	for _, s := range samples {
		pred := s.Score > threshold
		switch {
		case pred && s.Positive:
			c.TP++
		case pred && !s.Positive:
			c.FP++
		case !pred && s.Positive:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// ErrNoSamples is returned by sweep helpers when the input is empty or
// single-class in a way that makes the requested operating point
// undefined.
var ErrNoSamples = errors.New("metrics: no samples")

// candidateThresholds returns the midpoints between adjacent distinct
// scores plus sentinels below the min and above the max, which together
// cover every achievable confusion table.
func candidateThresholds(samples []Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	scores := make([]float64, len(samples))
	for i, s := range samples {
		scores[i] = s.Score
	}
	sort.Float64s(scores)
	uniq := scores[:1]
	for _, v := range scores[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	ths := make([]float64, 0, len(uniq)+1)
	ths = append(ths, uniq[0]-1)
	for i := 0; i+1 < len(uniq); i++ {
		ths = append(ths, (uniq[i]+uniq[i+1])/2)
	}
	ths = append(ths, uniq[len(uniq)-1]) // everything predicted negative
	return ths
}

// BestF1 sweeps all achievable thresholds and returns the confusion
// table with the highest F1 (ties broken toward higher threshold, i.e.
// the more conservative classifier). This is the Fig. 3 / Fig. 5
// operating point.
func BestF1(samples []Sample) (Confusion, error) {
	if len(samples) == 0 {
		return Confusion{}, ErrNoSamples
	}
	var best Confusion
	bestF1 := -1.0
	for _, t := range candidateThresholds(samples) {
		c := At(samples, t)
		if f := c.F1(); f > bestF1 || (f == bestF1 && t > best.Threshold) {
			bestF1, best = f, c
		}
	}
	return best, nil
}

// BestPrecisionAtRecall returns the operating point with the highest
// precision among thresholds whose recall is at least minRecall — the
// Fig. 4 selection rule ("r must be at least 0.5 while selecting the
// p"). Ties prefer higher recall.
func BestPrecisionAtRecall(samples []Sample, minRecall float64) (Confusion, error) {
	if len(samples) == 0 {
		return Confusion{}, ErrNoSamples
	}
	var best Confusion
	found := false
	for _, t := range candidateThresholds(samples) {
		c := At(samples, t)
		if c.Recall() < minRecall {
			continue
		}
		if !found || c.Precision() > best.Precision() ||
			(c.Precision() == best.Precision() && c.Recall() > best.Recall()) {
			best, found = c, true
		}
	}
	if !found {
		return Confusion{}, fmt.Errorf("metrics: no threshold achieves recall ≥ %v: %w", minRecall, ErrNoSamples)
	}
	return best, nil
}

// AUC computes the area under the ROC curve by the rank-sum
// (Mann–Whitney) formulation; ties contribute half. Returns an error
// when either class is empty.
func AUC(samples []Sample) (float64, error) {
	var pos, neg []float64
	for _, s := range samples {
		if s.Positive {
			pos = append(pos, s.Score)
		} else {
			neg = append(neg, s.Score)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0, ErrNoSamples
	}
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg)), nil
}

// Histogram is a fixed-width binning of scores, used to render the
// distribution figures (Fig. 6–7).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Underflow/Overflow hold samples outside [Lo, Hi).
	Underflow, Overflow int
}

// NewHistogram creates a histogram with the given bounds and bin count.
// Hi must exceed Lo and bins must be positive.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("metrics: bins must be positive, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("metrics: invalid bounds [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		// The top edge is inclusive so a score exactly at Hi lands in
		// the last bin rather than overflow.
		if x == h.Hi {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.Overflow++
		return
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx == len(h.Counts) {
		idx--
	}
	h.Counts[idx]++
}

// Total returns the number of binned observations including under/
// overflow.
func (h *Histogram) Total() int {
	t := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram as fixed-width ASCII rows, one per bin,
// scaled so the fullest bin spans `width` glyphs. Labelled with bin
// centers. Suitable for terminal reproduction of the paper's figures.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("█", c*width/maxC)
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "   under | %d\n", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "    over | %d\n", h.Overflow)
	}
	return b.String()
}

// LabeledHistograms bins scores grouped by label so the three response
// classes (wrong/partial/correct) can be overlaid as in Fig. 6–7.
type LabeledHistograms struct {
	Labels []string
	ByName map[string]*Histogram
}

// NewLabeledHistograms builds one histogram per label over shared
// bounds.
func NewLabeledHistograms(labels []string, lo, hi float64, bins int) (*LabeledHistograms, error) {
	lh := &LabeledHistograms{Labels: append([]string(nil), labels...), ByName: map[string]*Histogram{}}
	for _, l := range labels {
		h, err := NewHistogram(lo, hi, bins)
		if err != nil {
			return nil, err
		}
		lh.ByName[l] = h
	}
	return lh, nil
}

// Add bins x under the given label; unknown labels are an error.
func (lh *LabeledHistograms) Add(label string, x float64) error {
	h, ok := lh.ByName[label]
	if !ok {
		return fmt.Errorf("metrics: unknown label %q", label)
	}
	h.Add(x)
	return nil
}

// Render prints each label's histogram in declaration order.
func (lh *LabeledHistograms) Render(width int) string {
	var b strings.Builder
	for _, l := range lh.Labels {
		fmt.Fprintf(&b, "--- %s (n=%d) ---\n%s", l, lh.ByName[l].Total(), lh.ByName[l].Render(width))
	}
	return b.String()
}
