package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func samplesFrom(pos, neg []float64) []Sample {
	var out []Sample
	for _, v := range pos {
		out = append(out, Sample{Score: v, Positive: true})
	}
	for _, v := range neg {
		out = append(out, Sample{Score: v, Positive: false})
	}
	return out
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 6, FN: 4}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %v, want 0.8", got)
	}
	if got := c.Recall(); got != 8.0/12 {
		t.Errorf("Recall = %v, want 2/3", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.7 {
		t.Errorf("Accuracy = %v, want 0.7", got)
	}
}

func TestConfusionZeroDivisions(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("zero confusion should yield zero metrics, not NaN")
	}
}

func TestAtStrictThreshold(t *testing.T) {
	// The paper's rule: predicted correct iff score > threshold
	// (strict).
	s := []Sample{{Score: 0.5, Positive: true}}
	c := At(s, 0.5)
	if c.TP != 0 || c.FN != 1 {
		t.Errorf("score == threshold must be negative: %+v", c)
	}
	c = At(s, 0.49)
	if c.TP != 1 {
		t.Errorf("score above threshold must be positive: %+v", c)
	}
}

func TestBestF1PerfectSeparation(t *testing.T) {
	s := samplesFrom([]float64{0.8, 0.9, 1.0}, []float64{0.1, 0.2, 0.3})
	c, err := BestF1(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() != 1 {
		t.Errorf("separable data best F1 = %v, want 1", c.F1())
	}
	if c.Threshold <= 0.3 || c.Threshold >= 0.8 {
		t.Errorf("threshold %v outside separating gap", c.Threshold)
	}
}

func TestBestF1Overlap(t *testing.T) {
	s := samplesFrom([]float64{0.4, 0.6, 0.9}, []float64{0.1, 0.5, 0.7})
	c, err := BestF1(s)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check: no single threshold beats the sweep.
	for _, th := range []float64{-1, 0, 0.05, 0.3, 0.45, 0.55, 0.65, 0.8, 1} {
		if alt := At(s, th); alt.F1() > c.F1()+1e-12 {
			t.Errorf("sweep missed threshold %v with F1 %v > %v", th, alt.F1(), c.F1())
		}
	}
}

func TestBestF1Empty(t *testing.T) {
	if _, err := BestF1(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestBestF1IsOptimalQuick(t *testing.T) {
	f := func(pos, neg []float64) bool {
		for i := range pos {
			pos[i] = math.Mod(math.Abs(pos[i]), 1)
		}
		for i := range neg {
			neg[i] = math.Mod(math.Abs(neg[i]), 1)
		}
		s := samplesFrom(pos, neg)
		if len(s) == 0 {
			return true
		}
		best, err := BestF1(s)
		if err != nil {
			return false
		}
		// Every sample score used directly as a threshold must not do
		// better (midpoint sweep covers all distinct tables).
		for _, x := range s {
			if At(s, x.Score).F1() > best.F1()+1e-9 ||
				At(s, x.Score-1e-6).F1() > best.F1()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBestPrecisionAtRecall(t *testing.T) {
	// Top scores contain one negative, so precision 1 is only
	// reachable below recall 0.5; the constraint forces a tradeoff.
	pos := []float64{0.95, 0.9, 0.6, 0.5, 0.4, 0.3}
	neg := []float64{0.85, 0.2, 0.1, 0.05, 0.02, 0.01}
	c, err := BestPrecisionAtRecall(samplesFrom(pos, neg), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recall() < 0.5 {
		t.Errorf("recall %v violates constraint", c.Recall())
	}
	// Any threshold admitting ≥3 positives also admits the 0.85
	// negative, so the best precision comes from admitting all six
	// positives against that one negative: p = 6/7, with ties broken
	// toward the higher recall (1.0).
	if got := c.Precision(); math.Abs(got-6.0/7) > 1e-12 {
		t.Errorf("precision = %v, want 6/7", got)
	}
	if got := c.Recall(); got != 1 {
		t.Errorf("recall = %v, want 1 (tie-break toward recall)", got)
	}
}

func TestBestPrecisionUnreachableRecall(t *testing.T) {
	s := samplesFrom(nil, []float64{0.5})
	if _, err := BestPrecisionAtRecall(s, 0.5); err == nil {
		t.Error("expected error with no positives")
	}
}

func TestAUC(t *testing.T) {
	s := samplesFrom([]float64{0.9, 0.8}, []float64{0.1, 0.2})
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("separable AUC = %v, want 1", auc)
	}
	s = samplesFrom([]float64{0.1, 0.2}, []float64{0.9, 0.8})
	if auc, _ = AUC(s); auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
	s = samplesFrom([]float64{0.5}, []float64{0.5})
	if auc, _ = AUC(s); auc != 0.5 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
	if _, err := AUC(samplesFrom([]float64{1}, nil)); !errors.Is(err, ErrNoSamples) {
		t.Errorf("single-class AUC err = %v", err)
	}
}

func TestAUCBoundsQuick(t *testing.T) {
	f := func(pos, neg []float64) bool {
		if len(pos) == 0 || len(neg) == 0 {
			return true
		}
		for i := range pos {
			if math.IsNaN(pos[i]) {
				return true
			}
		}
		for i := range neg {
			if math.IsNaN(neg[i]) {
				return true
			}
		}
		auc, err := AUC(samplesFrom(pos, neg))
		return err == nil && auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.1, 0.3, 0.6, 0.99, 1.0, 1.5, -0.2, math.NaN()} {
		h.Add(x)
	}
	// bins: [0,.25) [.25,.5) [.5,.75) [.75,1); 1.0 lands in the last
	// bin (inclusive top edge), 1.5 overflows, -0.2 underflows, NaN
	// dropped.
	want := []int{2, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Overflow != 1 || h.Underflow != 1 {
		t.Errorf("over/under = %d/%d, want 1/1", h.Overflow, h.Underflow)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8 (NaN dropped)", h.Total())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if got := h.BinCenter(0); got != 0.125 {
		t.Errorf("BinCenter(0) = %v, want 0.125", got)
	}
	if got := h.BinCenter(3); got != 0.875 {
		t.Errorf("BinCenter(3) = %v, want 0.875", got)
	}
}

func TestHistogramNeverLosesSamplesQuick(t *testing.T) {
	f := func(xs []float64) bool {
		h, err := NewHistogram(-2, 2, 8)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range xs {
			h.Add(x)
			if !math.IsNaN(x) {
				n++
			}
		}
		return h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.1)
	h.Add(0.9)
	out := h.Render(10)
	if !strings.Contains(out, "2") || !strings.Contains(out, "1") {
		t.Errorf("render missing counts:\n%s", out)
	}
}

func TestLabeledHistograms(t *testing.T) {
	lh, err := NewLabeledHistograms([]string{"wrong", "correct"}, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := lh.Add("wrong", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := lh.Add("bogus", 0.1); err == nil {
		t.Error("unknown label accepted")
	}
	out := lh.Render(10)
	if !strings.Contains(out, "wrong") || !strings.Contains(out, "correct") {
		t.Errorf("labels missing from render:\n%s", out)
	}
}
