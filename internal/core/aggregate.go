// Package core implements the paper's contribution (§IV): the
// hallucination-detection framework that splits an LLM response into
// sentences, obtains each sentence's first-token yes-probability from
// multiple small language models, z-normalizes per model (Eq. 4),
// averages across models (Eq. 5), aggregates sentence scores into a
// response score (Eq. 6–10), and thresholds it — plus the baseline
// configurations evaluated in §V-C (ChatGPT P(True), P(yes) without a
// splitter, and single-SLM variants).
package core

import (
	"errors"
	"fmt"
	"math"
)

// Mean selects the sentence-score aggregation of §V-E.
type Mean int

// Aggregation strategies. Harmonic is Eq. 6 (the proposed default);
// the rest are Eq. 7–10.
const (
	Harmonic Mean = iota
	Arithmetic
	Geometric
	Max
	Min
)

// Means lists every aggregation in the order Fig. 5 reports them.
func Means() []Mean { return []Mean{Geometric, Arithmetic, Max, Min, Harmonic} }

// String names the mean as the paper's figures label it.
func (m Mean) String() string {
	switch m {
	case Harmonic:
		return "harmonic"
	case Arithmetic:
		return "arithmetic"
	case Geometric:
		return "geometric"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("mean(%d)", int(m))
	}
}

// ErrNoScores is returned when aggregating an empty score list.
var ErrNoScores = errors.New("core: no sentence scores to aggregate")

// DefaultShift is added to every sentence score before aggregation,
// implementing the paper's note under Eq. 6 ("to avoid issues with
// non-positive values, any values less than or equal to zero are
// adjusted") while preserving magnitude ordering: cross-model z-scores
// concentrate in [-3, 3], so a shift of 3 moves nearly all of them
// above zero.
const DefaultShift = 3.0

// DefaultFloor is the positive value that scores still non-positive
// after the shift are clamped to, so the positivity-requiring means
// (harmonic, geometric) are always defined.
const DefaultFloor = 0.05

// Aggregate combines per-sentence scores s_{i,j} into the response
// score s_i. floor replaces values ≤ 0 for the positivity-requiring
// means (harmonic, geometric); pass DefaultFloor unless ablating.
func (m Mean) Aggregate(scores []float64, floor float64) (float64, error) {
	if len(scores) == 0 {
		return 0, ErrNoScores
	}
	if floor <= 0 {
		return 0, fmt.Errorf("core: floor must be positive, got %v", floor)
	}
	switch m {
	case Harmonic:
		// Eq. 6: |S| / Σ 1/s_{i,j}.
		var invSum float64
		for _, s := range scores {
			if s <= 0 {
				s = floor
			}
			invSum += 1 / s
		}
		return float64(len(scores)) / invSum, nil
	case Arithmetic:
		// Eq. 7.
		var sum float64
		for _, s := range scores {
			sum += s
		}
		return sum / float64(len(scores)), nil
	case Geometric:
		// Eq. 8: exp(mean(log s)), s > 0 enforced by the floor.
		var logSum float64
		for _, s := range scores {
			if s <= 0 {
				s = floor
			}
			logSum += math.Log(s)
		}
		return math.Exp(logSum / float64(len(scores))), nil
	case Max:
		// Eq. 10.
		best := scores[0]
		for _, s := range scores[1:] {
			if s > best {
				best = s
			}
		}
		return best, nil
	case Min:
		// Eq. 9.
		worst := scores[0]
		for _, s := range scores[1:] {
			if s < worst {
				worst = s
			}
		}
		return worst, nil
	default:
		return 0, fmt.Errorf("core: unknown mean %v", m)
	}
}
