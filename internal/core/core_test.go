package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/slm"
)

func TestMeanAggregate(t *testing.T) {
	scores := []float64{1, 2, 4}
	cases := []struct {
		mean Mean
		want float64
	}{
		{Arithmetic, 7.0 / 3},
		{Geometric, 2},
		{Max, 4},
		{Min, 1},
		{Harmonic, 3.0 / (1 + 0.5 + 0.25)},
	}
	for _, tc := range cases {
		got, err := tc.mean.Aggregate(scores, DefaultFloor)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tc.mean, got, tc.want)
		}
	}
}

func TestAggregateFloorsNonPositives(t *testing.T) {
	scores := []float64{-1, 2}
	h, err := Harmonic.Aggregate(scores, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / (1/0.05 + 0.5)
	if math.Abs(h-want) > 1e-12 {
		t.Errorf("harmonic with floor = %v, want %v", h, want)
	}
	g, err := Geometric.Aggregate(scores, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(g) || g <= 0 {
		t.Errorf("geometric with negative input = %v", g)
	}
	// Min/Arithmetic keep raw values (the detector shifts before
	// calling; the aggregator itself floors only where positivity is
	// mathematically required).
	m, _ := Min.Aggregate(scores, 0.05)
	if m != -1 {
		t.Errorf("min = %v, want -1", m)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Harmonic.Aggregate(nil, DefaultFloor); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Harmonic.Aggregate([]float64{1}, 0); err == nil {
		t.Error("zero floor accepted")
	}
	if _, err := Mean(99).Aggregate([]float64{1}, DefaultFloor); err == nil {
		t.Error("unknown mean accepted")
	}
}

// Property: every mean lies between min and max of (floored) inputs.
func TestAggregateBoundsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Mod(math.Abs(v), 10)
			if v == 0 || math.IsNaN(v) {
				v = 0.5
			}
			scores[i] = v
		}
		lo, hi := scores[0], scores[0]
		for _, v := range scores {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, m := range Means() {
			got, err := m.Aggregate(scores, DefaultFloor)
			if err != nil {
				return false
			}
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with positive inputs, min ≤ harmonic ≤ geometric ≤
// arithmetic ≤ max (the classical mean inequality chain).
func TestMeanInequalityChain(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Mod(math.Abs(v), 5) + 0.1
			if math.IsNaN(v) {
				v = 1
			}
			scores[i] = v
		}
		h, _ := Harmonic.Aggregate(scores, DefaultFloor)
		g, _ := Geometric.Aggregate(scores, DefaultFloor)
		a, _ := Arithmetic.Aggregate(scores, DefaultFloor)
		mn, _ := Min.Aggregate(scores, DefaultFloor)
		mx, _ := Max.Aggregate(scores, DefaultFloor)
		const eps = 1e-9
		return mn <= h+eps && h <= g+eps && g <= a+eps && a <= mx+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizerStandardize(t *testing.T) {
	n := NewNormalizer()
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8} {
		n.Observe("m", p)
	}
	// mean 0.5, population σ = sqrt(0.05).
	got := n.Standardize("m", 0.5+math.Sqrt(0.05))
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Standardize = %v, want 1", got)
	}
	// Unknown model: pass-through.
	if got := n.Standardize("unknown", 0.7); got != 0.7 {
		t.Errorf("unknown model = %v, want raw", got)
	}
}

func TestNormalizerFreeze(t *testing.T) {
	n := NewNormalizer()
	n.Observe("m", 0)
	n.Observe("m", 1)
	n.Freeze()
	if !n.Frozen() {
		t.Fatal("Frozen() = false")
	}
	before := n.Standardize("m", 0.75)
	n.Observe("m", 100) // must be ignored
	if after := n.Standardize("m", 0.75); after != before {
		t.Errorf("frozen normalizer drifted: %v -> %v", before, after)
	}
	n.Freeze() // idempotent
	if s, ok := n.Moments("m"); !ok || s.N != 2 {
		t.Errorf("Moments = %+v, %v", s, ok)
	}
}

func TestNormalizerSeparatesModels(t *testing.T) {
	n := NewNormalizer()
	// Model a lives around 0.2, model b around 0.8 — Eq. 4's whole
	// point is that 0.5 means something different to each.
	for _, p := range []float64{0.1, 0.2, 0.3} {
		n.Observe("a", p)
	}
	for _, p := range []float64{0.7, 0.8, 0.9} {
		n.Observe("b", p)
	}
	za := n.Standardize("a", 0.5)
	zb := n.Standardize("b", 0.5)
	if za <= 0 {
		t.Errorf("0.5 should be above a's mean: z=%v", za)
	}
	if zb >= 0 {
		t.Errorf("0.5 should be below b's mean: z=%v", zb)
	}
}

func TestIdentityScaler(t *testing.T) {
	var id Identity
	id.Observe("m", 123)
	if got := id.Standardize("m", 0.42); got != 0.42 {
		t.Errorf("Identity.Standardize = %v", got)
	}
	id.Freeze() // no-op, must not panic
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector("x", Config{}); err == nil {
		t.Error("no models accepted")
	}
	if _, err := NewDetector("x", Config{Models: []slm.Model{nil}}); err == nil {
		t.Error("nil model accepted")
	}
	dup := []slm.Model{slm.Constant{ModelName: "m", P: 0.5}, slm.Constant{ModelName: "m", P: 0.6}}
	if _, err := NewDetector("x", Config{Models: dup}); err == nil {
		t.Error("duplicate model names accepted")
	}
	if _, err := NewDetector("x", Config{Models: dup[:1], Floor: -1}); err == nil {
		t.Error("negative floor accepted")
	}
	if _, err := NewDetector("x", Config{Models: dup[:1], Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestWholeResponseSplitter(t *testing.T) {
	got := WholeResponse("  a. b.  ")
	if len(got) != 1 || got[0] != "a. b." {
		t.Errorf("WholeResponse = %#v", got)
	}
	if got := WholeResponse("  "); got != nil {
		t.Errorf("blank WholeResponse = %#v", got)
	}
}

var detCtx = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
	"There should be at least three shopkeepers to run a shop."

func TestDetectorScoreOrdering(t *testing.T) {
	d, err := NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := "What are the working hours?"
	correct := "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday."
	partial := "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday."
	wrong := "The working hours are 9 AM to 9 PM. You do not need to work on weekends."

	// Calibrate on all three (the "previous responses").
	err = d.Calibrate(ctx, []Triple{
		{q, detCtx, correct}, {q, detCtx, partial}, {q, detCtx, wrong},
	})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := d.Score(ctx, q, detCtx, correct)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := d.Score(ctx, q, detCtx, partial)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := d.Score(ctx, q, detCtx, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if !(vc.Score > vp.Score && vp.Score > vw.Score) {
		t.Errorf("score ordering broken: correct=%.3f partial=%.3f wrong=%.3f",
			vc.Score, vp.Score, vw.Score)
	}
	if len(vc.Sentences) != 2 {
		t.Errorf("sentence count = %d, want 2", len(vc.Sentences))
	}
	for _, ss := range vc.Sentences {
		if len(ss.Raw) != 2 {
			t.Errorf("raw scores per sentence = %d, want 2 models", len(ss.Raw))
		}
	}
	// Decision rule is strict.
	if !vc.IsCorrect(vc.Score - 0.001) {
		t.Error("IsCorrect false just below score")
	}
	if vc.IsCorrect(vc.Score) {
		t.Error("IsCorrect true at exactly the threshold (rule is strict >)")
	}
}

func TestDetectorEmptyResponse(t *testing.T) {
	d, _ := NewProposed()
	if _, err := d.Score(context.Background(), "q", detCtx, "   "); !errors.Is(err, ErrEmptyResponse) {
		t.Errorf("empty response err = %v", err)
	}
}

func TestDetectorParallelRequiresFrozen(t *testing.T) {
	d, err := NewDetector("par", Config{
		Models:  []slm.Model{slm.NewQwen2()},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Score(context.Background(), "q", detCtx, "The hours are 9 AM to 5 PM.")
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("parallel unfrozen err = %v", err)
	}
	if err := d.Calibrate(context.Background(), []Triple{{"q", detCtx, "The hours are 9 AM to 5 PM."}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(context.Background(), "q", detCtx, "The hours are 9 AM to 5 PM."); err != nil {
		t.Errorf("parallel frozen score failed: %v", err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	response := "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday. At least three shopkeepers are needed."
	triples := []Triple{{"q", detCtx, response}}

	seq, err := NewDetector("seq", Config{Models: []slm.Model{slm.NewQwen2(), slm.NewMiniCPM()}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewDetector("par", Config{Models: []slm.Model{slm.NewQwen2(), slm.NewMiniCPM()}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}
	if err := par.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}
	vs, err := seq.Score(ctx, "q", detCtx, response)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := par.Score(ctx, "q", detCtx, response)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vs.Score-vp.Score) > 1e-12 {
		t.Errorf("parallel %.9f != sequential %.9f", vp.Score, vs.Score)
	}
}

func TestBatchScorePreservesOrder(t *testing.T) {
	ctx := context.Background()
	d, err := NewDetector("batch", Config{Models: []slm.Model{slm.NewQwen2()}})
	if err != nil {
		t.Fatal(err)
	}
	triples := []Triple{
		{"q", detCtx, "The working hours are 9 AM to 5 PM."},
		{"q", detCtx, "The working hours are 9 AM to 9 PM."},
		{"q", detCtx, "The store is open from Sunday to Saturday."},
		{"q", detCtx, "You do not need to work on weekends."},
	}
	if err := d.Calibrate(ctx, triples); err != nil {
		t.Fatal(err)
	}
	seqOut, err := d.BatchScore(ctx, triples, 1)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := d.BatchScore(ctx, triples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range triples {
		if seqOut[i].Response != triples[i].Response {
			t.Fatalf("sequential order broken at %d", i)
		}
		if parOut[i].Response != triples[i].Response {
			t.Fatalf("parallel order broken at %d", i)
		}
		if seqOut[i].Verdict.Score != parOut[i].Verdict.Score {
			t.Errorf("batch score %d differs: %v vs %v", i, seqOut[i].Verdict.Score, parOut[i].Verdict.Score)
		}
	}
}

func TestBatchScoreCancellation(t *testing.T) {
	d, err := NewDetector("cancel", Config{Models: []slm.Model{slm.NewQwen2()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = d.BatchScore(ctx, []Triple{{"q", detCtx, "The hours are 9 AM."}}, 2)
	if err == nil {
		t.Error("cancelled batch succeeded")
	}
}

func TestApproachesLineup(t *testing.T) {
	ds, err := Approaches()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Proposed", "ChatGPT", "P(yes)", "Qwen2", "MiniCPM"}
	if len(ds) != len(want) {
		t.Fatalf("%d approaches, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.Name() != want[i] {
			t.Errorf("approach %d = %s, want %s", i, d.Name(), want[i])
		}
	}
	// Proposed uses two models; the baselines one.
	if len(ds[0].Models()) != 2 {
		t.Errorf("Proposed models = %d, want 2", len(ds[0].Models()))
	}
	for _, i := range []int{1, 2, 3, 4} {
		if len(ds[i].Models()) != 1 {
			t.Errorf("%s models = %d, want 1", ds[i].Name(), len(ds[i].Models()))
		}
	}
}

func TestConstantModelsDegenerate(t *testing.T) {
	// A constant model gives σ=0; the checker must degrade to
	// centering, not NaN.
	d, err := NewDetector("const", Config{
		Models: []slm.Model{slm.Constant{ModelName: "c", P: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Calibrate(ctx, []Triple{{"q", detCtx, "The hours are 9 AM to 5 PM."}}); err != nil {
		t.Fatal(err)
	}
	v, err := d.Score(ctx, "q", detCtx, "The hours are 9 AM to 5 PM. Open Sundays.")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v.Score) || math.IsInf(v.Score, 0) {
		t.Errorf("degenerate score = %v", v.Score)
	}
}

func TestMeanStrings(t *testing.T) {
	names := map[Mean]string{
		Harmonic: "harmonic", Arithmetic: "arithmetic",
		Geometric: "geometric", Max: "max", Min: "min",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %s", int(m), m.String())
		}
	}
	if len(Means()) != 5 {
		t.Error("Means() must enumerate all five aggregations")
	}
}
