package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/slm"
	"repro/internal/splitter"
)

// Splitter turns a response r_i into sub-responses r_{i,j} (§IV-A).
type Splitter func(string) []string

// SentenceSplitter is the default Splitter: the rule-based sentence
// segmenter standing in for SpaCy.
func SentenceSplitter(text string) []string { return splitter.Split(text) }

// WholeResponse is the identity Splitter used by the P(yes) and
// ChatGPT baselines: the entire response is checked in one piece.
func WholeResponse(text string) []string {
	t := strings.TrimSpace(text)
	if t == "" {
		return nil
	}
	return []string{t}
}

// Config assembles a Detector. The zero value is not usable; use
// NewDetector which validates and fills defaults.
type Config struct {
	// Models are the M verifiers of Eq. 5. At least one is required.
	Models []slm.Model
	// Split maps a response to checkable units; nil means
	// SentenceSplitter.
	Split Splitter
	// Aggregate combines sentence scores (Eq. 6–10); defaults to
	// Harmonic, the paper's proposed choice.
	Aggregate Mean
	// Scale normalizes per-model scores; nil means a fresh Normalizer
	// (Eq. 4).
	Scale Scaler
	// Combine merges the standardized per-model scores of a sentence
	// (Eq. 5); nil means the uniform mean. Gating combiners implement
	// the paper's §VI future-work extension.
	Combine Combiner
	// Shift is added to every sentence score s_{i,j} before
	// aggregation, implementing the paper's positivity adjustment
	// under Eq. 6 while preserving score magnitudes (z-scores live in
	// roughly [-3, 3], so the default shift of 3 moves nearly all mass
	// above zero). 0 means DefaultShift.
	Shift float64
	// Floor replaces sentence scores that remain non-positive after
	// the shift; 0 means DefaultFloor.
	Floor float64
	// Workers bounds concurrent model calls per Score invocation.
	// 0 or 1 means sequential. Parallel scoring requires a frozen (or
	// identity) Scaler; Score reports an error otherwise, because
	// online moment updates would make results order-dependent.
	Workers int
}

// Detector is the assembled checking pipeline of Fig. 2 (b). Safe for
// concurrent use when its Scaler is frozen or stateless.
type Detector struct {
	name    string
	models  []slm.Model
	split   Splitter
	agg     Mean
	scale   Scaler
	combine Combiner
	shift   float64
	floor   float64
	workers int
}

// NewDetector validates cfg and builds a Detector. name labels the
// approach in reports ("Proposed", "P(yes)", ...).
func NewDetector(name string, cfg Config) (*Detector, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: at least one model is required")
	}
	seen := map[string]struct{}{}
	for _, m := range cfg.Models {
		if m == nil {
			return nil, errors.New("core: nil model")
		}
		if _, dup := seen[m.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate model name %q (normalization would conflate them)", m.Name())
		}
		seen[m.Name()] = struct{}{}
	}
	d := &Detector{
		name:    name,
		models:  append([]slm.Model(nil), cfg.Models...),
		split:   cfg.Split,
		agg:     cfg.Aggregate,
		scale:   cfg.Scale,
		combine: cfg.Combine,
		shift:   cfg.Shift,
		floor:   cfg.Floor,
		workers: cfg.Workers,
	}
	if d.split == nil {
		d.split = SentenceSplitter
	}
	if d.scale == nil {
		d.scale = NewNormalizer()
	}
	if d.combine == nil {
		d.combine = UniformCombiner{}
	}
	if d.shift == 0 {
		d.shift = DefaultShift
	}
	if d.shift < 0 {
		return nil, fmt.Errorf("core: negative shift %v", d.shift)
	}
	if d.floor == 0 {
		d.floor = DefaultFloor
	}
	if d.floor < 0 {
		return nil, fmt.Errorf("core: negative floor %v", d.floor)
	}
	if d.workers < 0 {
		return nil, fmt.Errorf("core: negative workers %v", d.workers)
	}
	return d, nil
}

// Name returns the approach label.
func (d *Detector) Name() string { return d.name }

// Models returns the detector's verifier list (shared slice copy).
func (d *Detector) Models() []slm.Model { return append([]slm.Model(nil), d.models...) }

// Scaler exposes the detector's normalization state so a harness can
// calibrate and freeze it.
func (d *Detector) Scaler() Scaler { return d.scale }

// Calibrated reports whether scoring is a pure function of its inputs:
// true unless the scaler is a Normalizer still accumulating online
// moments. Result caches and parallel batch scoring require this.
func (d *Detector) Calibrated() bool {
	n, ok := d.scale.(*Normalizer)
	return !ok || n.Frozen()
}

// SentenceScore records the verification of one split sentence.
type SentenceScore struct {
	// Sentence is the split unit r_{i,j}.
	Sentence string
	// Raw holds each model's P(token1 = yes), keyed by model name
	// (Eq. 3).
	Raw map[string]float64
	// Combined is s_{i,j}: the mean of the models' standardized scores
	// (Eq. 4–5).
	Combined float64
}

// Verdict is the framework's output for one response.
type Verdict struct {
	// Score is s_i, the aggregated response score (Eq. 6).
	Score float64
	// Sentences holds the per-sentence breakdown, in response order.
	Sentences []SentenceScore
}

// IsCorrect applies the paper's decision rule: the response is labeled
// correct when its score strictly exceeds the threshold.
func (v Verdict) IsCorrect(threshold float64) bool { return v.Score > threshold }

// ErrEmptyResponse is returned when the splitter yields no checkable
// sentences.
var ErrEmptyResponse = errors.New("core: response has no checkable sentences")

// Score runs the full pipeline of Fig. 2 (b) for one
// (question, context, response) triple.
func (d *Detector) Score(ctx context.Context, question, contextText, response string) (Verdict, error) {
	sentences := d.split(response)
	if len(sentences) == 0 {
		return Verdict{}, fmt.Errorf("%w: %q", ErrEmptyResponse, response)
	}
	raw := make([][]float64, len(sentences)) // [sentence][model]
	if d.workers > 1 {
		if n, ok := d.scale.(*Normalizer); ok && !n.Frozen() {
			return Verdict{}, errors.New("core: parallel scoring requires a frozen normalizer (calibrate first)")
		}
		if err := d.scoreParallel(ctx, question, contextText, sentences, raw); err != nil {
			return Verdict{}, err
		}
	} else {
		for si, sentence := range sentences {
			raw[si] = make([]float64, len(d.models))
			for mi, m := range d.models {
				p, err := m.YesProbability(ctx, slm.VerifyRequest{
					Question: question, Context: contextText, Claim: sentence,
				})
				if err != nil {
					return Verdict{}, fmt.Errorf("core: model %s: %w", m.Name(), err)
				}
				raw[si][mi] = p
			}
		}
	}
	return d.assemble(sentences, raw)
}

// scoreParallel fans (sentence, model) calls across a bounded worker
// pool. raw must be pre-sized to len(sentences).
func (d *Detector) scoreParallel(ctx context.Context, question, contextText string, sentences []string, raw [][]float64) error {
	type job struct{ si, mi int }
	jobs := make(chan job)
	for si := range sentences {
		raw[si] = make([]float64, len(d.models))
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := d.workers
	if max := len(sentences) * len(d.models); workers > max {
		workers = max
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p, err := d.models[j.mi].YesProbability(cctx, slm.VerifyRequest{
					Question: question, Context: contextText, Claim: sentences[j.si],
				})
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("core: model %s: %w", d.models[j.mi].Name(), err)
						cancel()
					})
					continue
				}
				raw[j.si][j.mi] = p
			}
		}()
	}
	for si := range sentences {
		for mi := range d.models {
			jobs <- job{si, mi}
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// assemble applies Eq. 4–6 to the raw probability matrix. The paper's
// positivity adjustment ("any values less than or equal to zero are
// adjusted") is applied to every sentence score s_{i,j} before
// aggregation, uniformly across all means, so the Fig. 5 comparison
// varies only the aggregation function.
func (d *Detector) assemble(sentences []string, raw [][]float64) (Verdict, error) {
	verdict := Verdict{Sentences: make([]SentenceScore, len(sentences))}
	combined := make([]float64, len(sentences))
	zbuf := make([]float64, len(d.models))
	for si, sentence := range sentences {
		ss := SentenceScore{Sentence: sentence, Raw: make(map[string]float64, len(d.models))}
		for mi, m := range d.models {
			p := raw[si][mi]
			ss.Raw[m.Name()] = p
			d.scale.Observe(m.Name(), p)
			zbuf[mi] = d.scale.Standardize(m.Name(), p)
		}
		ss.Combined = d.combine.Combine(zbuf) // Eq. 5 (or a §VI gate)
		adjusted := ss.Combined + d.shift
		if adjusted <= 0 {
			adjusted = d.floor
		}
		combined[si] = adjusted
		verdict.Sentences[si] = ss
	}
	score, err := d.agg.Aggregate(combined, d.floor) // Eq. 6
	if err != nil {
		return Verdict{}, err
	}
	verdict.Score = score
	return verdict, nil
}

// Calibrate runs the detector's models over the given triples purely to
// accumulate normalization moments (the "previous responses" of Eq. 4),
// then freezes the scaler. It is the recommended preparation step
// before batch evaluation or parallel scoring.
func (d *Detector) Calibrate(ctx context.Context, triples []Triple) error {
	for _, t := range triples {
		sentences := d.split(t.Response)
		for _, sentence := range sentences {
			for _, m := range d.models {
				p, err := m.YesProbability(ctx, slm.VerifyRequest{
					Question: t.Question, Context: t.Context, Claim: sentence,
				})
				if err != nil {
					return fmt.Errorf("core: calibrate: model %s: %w", m.Name(), err)
				}
				d.scale.Observe(m.Name(), p)
			}
		}
	}
	d.scale.Freeze()
	return nil
}

// Triple is one (question, context, response) unit of work.
type Triple struct {
	Question string
	Context  string
	Response string
}
