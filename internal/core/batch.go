package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/slm"
)

// BatchResult is one triple's outcome from ScoreBatch. Items fail
// independently: an empty response or a model error on one triple does
// not abort the rest of the batch.
type BatchResult struct {
	Verdict Verdict
	Err     error
}

// ScoreBatch verifies a batch of triples in a single fan-out: every
// (triple, sentence, model) call in the batch becomes one job for a
// shared pool of `workers` goroutines, so M verifiers score the whole
// batch concurrently instead of per-request. This is the entry point a
// serving-layer micro-batcher dispatches to.
//
// It differs from BatchScore (approaches.go), the experiment harness's
// per-triple fan-out that fails the whole batch on first error, and
// from the per-request pool inside Score (scoreParallel): ScoreBatch
// parallelizes at the finest grain and isolates failures per item.
//
// Results are returned in input order, one per triple, with per-item
// errors. Parallel execution requires a frozen (or stateless) scaler;
// with an unfrozen Normalizer — or workers <= 1 — the batch degrades
// gracefully to sequential Score calls, preserving the online
// calibration semantics of the single-request path.
func (d *Detector) ScoreBatch(ctx context.Context, triples []Triple, workers int) []BatchResult {
	results := make([]BatchResult, len(triples))
	if len(triples) == 0 {
		return results
	}
	if workers <= 1 || !d.Calibrated() {
		for i, t := range triples {
			v, err := d.Score(ctx, t.Question, t.Context, t.Response)
			results[i] = BatchResult{Verdict: v, Err: err}
		}
		return results
	}

	// Split every response up front; record per-item empty-response
	// errors and collect the job list for the pool.
	type job struct{ ti, si, mi int }
	split := make([][]string, len(triples))
	raw := make([][][]float64, len(triples)) // [triple][sentence][model]
	var jobs []job
	for ti, t := range triples {
		sentences := d.split(t.Response)
		if len(sentences) == 0 {
			results[ti] = BatchResult{Err: fmt.Errorf("%w: %q", ErrEmptyResponse, t.Response)}
			continue
		}
		split[ti] = sentences
		raw[ti] = make([][]float64, len(sentences))
		for si := range sentences {
			raw[ti][si] = make([]float64, len(d.models))
			for mi := range d.models {
				jobs = append(jobs, job{ti, si, mi})
			}
		}
	}
	if len(jobs) == 0 {
		return results
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg sync.WaitGroup
		mu sync.Mutex // guards per-triple first-error bookkeeping
	)
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				t := triples[j.ti]
				p, err := d.models[j.mi].YesProbability(ctx, slm.VerifyRequest{
					Question: t.Question, Context: t.Context, Claim: split[j.ti][j.si],
				})
				if err != nil {
					mu.Lock()
					if results[j.ti].Err == nil {
						results[j.ti].Err = fmt.Errorf("core: model %s: %w", d.models[j.mi].Name(), err)
					}
					mu.Unlock()
					continue
				}
				raw[j.ti][j.si][j.mi] = p
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for ti := range triples {
		if split[ti] == nil || results[ti].Err != nil {
			continue
		}
		v, err := d.assemble(split[ti], raw[ti])
		results[ti] = BatchResult{Verdict: v, Err: err}
	}
	return results
}
