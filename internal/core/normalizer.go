package core

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// Normalizer implements Eq. 4: each model's raw yes-probabilities are
// standardized by that model's own mean and standard deviation,
// "computed based on previous responses". Different SLMs have
// different scales (means and variances), and without this step Eq. 5's
// cross-model average would be dominated by whichever model runs
// hotter.
//
// A Normalizer starts in the observing state, where Standardize both
// uses and updates the running moments (the online reading of the
// paper). Freeze switches to fixed moments so that scoring becomes a
// pure function — the mode the experiment harness uses after a
// calibration pass, and the mode required for parallel batch scoring.
// Safe for concurrent use.
type Normalizer struct {
	mu     sync.RWMutex
	models map[string]*stats.Running
	frozen map[string]stats.Snapshot
}

// NewNormalizer returns an empty, observing normalizer.
func NewNormalizer() *Normalizer {
	return &Normalizer{models: map[string]*stats.Running{}}
}

// Observe folds one raw probability into the model's running moments.
// It is a no-op after Freeze.
func (n *Normalizer) Observe(model string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.frozen != nil {
		return
	}
	r, ok := n.models[model]
	if !ok {
		r = &stats.Running{}
		n.models[model] = r
	}
	r.Observe(p)
}

// Standardize returns (p − μ_m)/σ_m with the model's current (or
// frozen) moments. Unknown models and degenerate moments (σ = 0 or
// fewer than two observations) fall back to centering only, so the
// checker degrades gracefully on cold start.
func (n *Normalizer) Standardize(model string, p float64) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.frozen != nil {
		s, ok := n.frozen[model]
		if !ok || s.N < 2 || s.StdDev == 0 {
			mean := 0.0
			if ok {
				mean = s.Mean
			}
			return p - mean
		}
		return (p - s.Mean) / s.StdDev
	}
	r, ok := n.models[model]
	if !ok {
		return p
	}
	return r.Standardize(p)
}

// Freeze fixes the current moments; subsequent Observe calls are
// ignored and Standardize becomes a pure function. Freeze is
// idempotent.
func (n *Normalizer) Freeze() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.frozen != nil {
		return
	}
	n.frozen = make(map[string]stats.Snapshot, len(n.models))
	for name, r := range n.models {
		n.frozen[name] = r.Snapshot()
	}
}

// Frozen reports whether Freeze has been called.
func (n *Normalizer) Frozen() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.frozen != nil
}

// Moments returns the model's current moments and whether the model
// has been observed at all.
func (n *Normalizer) Moments(model string) (stats.Snapshot, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.frozen != nil {
		s, ok := n.frozen[model]
		return s, ok
	}
	r, ok := n.models[model]
	if !ok {
		return stats.Snapshot{}, false
	}
	return r.Snapshot(), true
}

// String summarizes the per-model moments for logs.
func (n *Normalizer) String() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := "normalizer{"
	first := true
	describe := func(name string, s stats.Snapshot) {
		if !first {
			out += ", "
		}
		first = false
		out += fmt.Sprintf("%s: μ=%.3f σ=%.3f n=%d", name, s.Mean, s.StdDev, s.N)
	}
	if n.frozen != nil {
		for name, s := range n.frozen {
			describe(name, s)
		}
	} else {
		for name, r := range n.models {
			describe(name, r.Snapshot())
		}
	}
	return out + "}"
}

// Identity is a pass-through normalizer used by the raw-probability
// baselines (P(yes), ChatGPT P(True)): scores are already on a common
// [0, 1] scale because only one model produces them.
type Identity struct{}

// Observe implements the same observing surface as Normalizer; it
// discards the observation.
func (Identity) Observe(string, float64) {}

// Standardize returns p unchanged.
func (Identity) Standardize(_ string, p float64) float64 { return p }

// Freeze is a no-op.
func (Identity) Freeze() {}

// Scaler is the normalization strategy a Detector applies to raw
// per-model probabilities (Eq. 4 or the identity for raw baselines).
type Scaler interface {
	// Observe feeds a raw probability into the calibration state.
	Observe(model string, p float64)
	// Standardize maps a raw probability onto the common scale.
	Standardize(model string, p float64) float64
	// Freeze fixes calibration state, making Standardize pure.
	Freeze()
}

var (
	_ Scaler = (*Normalizer)(nil)
	_ Scaler = Identity{}
)
