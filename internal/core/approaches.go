package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/slm"
)

// This file wires the five approaches of §V-C. Each constructor
// returns a fresh Detector with its own normalization state.

// proposedModels returns fresh instances of the paper's two SLMs.
func proposedModels() []slm.Model {
	return []slm.Model{slm.NewQwen2(), slm.NewMiniCPM()}
}

// NewProposed builds the paper's proposed framework: Qwen2 and MiniCPM
// as the SLMs, sentence splitting, per-model z-normalization and
// harmonic aggregation.
func NewProposed() (*Detector, error) {
	return NewDetector("Proposed", Config{
		Models:    proposedModels(),
		Aggregate: Harmonic,
	})
}

// NewProposedWithMean is NewProposed with a different sentence
// aggregation — the §V-E means study.
func NewProposedWithMean(m Mean) (*Detector, error) {
	return NewDetector(fmt.Sprintf("Proposed[%s]", m), Config{
		Models:    proposedModels(),
		Aggregate: m,
	})
}

// NewSingleSLM builds the single-model variants ("Qwen2", "MiniCPM"):
// the proposed pipeline with only one SLM.
func NewSingleSLM(name string, model slm.Model) (*Detector, error) {
	return NewDetector(name, Config{
		Models:    []slm.Model{model},
		Aggregate: Harmonic,
	})
}

// NewPYes builds the P(yes) baseline: the whole response is checked in
// one call with Qwen2's raw first-token probability — no splitter, no
// normalization.
func NewPYes() (*Detector, error) {
	return NewDetector("P(yes)", Config{
		Models:    []slm.Model{slm.NewQwen2()},
		Split:     WholeResponse,
		Aggregate: Arithmetic, // single value; any mean is identical
		Scale:     Identity{},
	})
}

// NewChatGPT builds the ChatGPT baseline: whole-response P(True)
// estimated through an API-style judge (quantized probabilities).
func NewChatGPT() (*Detector, error) {
	return NewDetector("ChatGPT", Config{
		Models:    []slm.Model{slm.NewChatGPTStyle()},
		Split:     WholeResponse,
		Aggregate: Arithmetic,
		Scale:     Identity{},
	})
}

// Approaches returns the full §V-C lineup in the paper's order:
// Proposed, ChatGPT, P(yes), Qwen2, MiniCPM. Each detector is freshly
// constructed with independent normalization state.
func Approaches() ([]*Detector, error) {
	proposed, err := NewProposed()
	if err != nil {
		return nil, err
	}
	chatgpt, err := NewChatGPT()
	if err != nil {
		return nil, err
	}
	pyes, err := NewPYes()
	if err != nil {
		return nil, err
	}
	qwen, err := NewSingleSLM("Qwen2", slm.NewQwen2())
	if err != nil {
		return nil, err
	}
	minicpm, err := NewSingleSLM("MiniCPM", slm.NewMiniCPM())
	if err != nil {
		return nil, err
	}
	return []*Detector{proposed, chatgpt, pyes, qwen, minicpm}, nil
}

// ScoredTriple pairs a Triple with its Verdict.
type ScoredTriple struct {
	Triple
	Verdict Verdict
}

// BatchScore scores many triples concurrently with `workers`
// goroutines (1 = sequential), preserving input order in the result.
// The detector's scaler must be frozen (or stateless) when workers > 1.
// It fails fast on the first error — the behaviour the experiment
// harness wants; serving layers needing per-item error isolation use
// ScoreBatch (batch.go) instead.
func (d *Detector) BatchScore(ctx context.Context, triples []Triple, workers int) ([]ScoredTriple, error) {
	if workers <= 1 {
		out := make([]ScoredTriple, 0, len(triples))
		for _, t := range triples {
			v, err := d.Score(ctx, t.Question, t.Context, t.Response)
			if err != nil {
				return nil, err
			}
			out = append(out, ScoredTriple{Triple: t, Verdict: v})
		}
		return out, nil
	}
	if n, ok := d.scale.(*Normalizer); ok && !n.Frozen() {
		return nil, fmt.Errorf("core: parallel batch requires a frozen normalizer (calibrate first)")
	}
	out := make([]ScoredTriple, len(triples))
	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t := triples[i]
				v, err := d.Score(cctx, t.Question, t.Context, t.Response)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					continue
				}
				out[i] = ScoredTriple{Triple: t, Verdict: v}
			}
		}()
	}
	for i := range triples {
		select {
		case idx <- i:
		case <-cctx.Done():
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context may have been cancelled before any job was
	// dispatched; don't return a silently-zeroed result set.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
