package core

import (
	"fmt"
	"math"
)

// Combiner merges the M standardized per-model scores of one sentence
// into s_{i,j}. The paper's Eq. 5 is the uniform mean; §VI names
// gating mechanisms (mixture-of-experts routing) as future work, which
// ConfidenceGate and AgreementGate implement.
type Combiner interface {
	// Combine reduces one sentence's standardized scores, ordered as
	// the detector's model list, into a single value.
	Combine(zscores []float64) float64
	// Name labels the combiner in reports.
	Name() string
}

// UniformCombiner is Eq. 5: the plain average across models.
type UniformCombiner struct{}

// Name implements Combiner.
func (UniformCombiner) Name() string { return "uniform" }

// Combine implements Combiner.
func (UniformCombiner) Combine(z []float64) float64 {
	if len(z) == 0 {
		return 0
	}
	var sum float64
	for _, v := range z {
		sum += v
	}
	return sum / float64(len(z))
}

// ConfidenceGate weights each model by the softmax of its score
// magnitude: a model that is decisive about this particular sentence
// (|z| large) carries more weight than one sitting on the fence — the
// expert-choice routing of the paper's future-work reference, applied
// per sentence. Temperature controls the sharpness: 0 recovers the
// uniform mean, large values approach winner-take-all.
type ConfidenceGate struct {
	// Temperature scales |z| before the softmax. Must be ≥ 0.
	Temperature float64
}

// Name implements Combiner.
func (g ConfidenceGate) Name() string {
	return fmt.Sprintf("confidence-gate(τ=%.2f)", g.Temperature)
}

// Combine implements Combiner.
func (g ConfidenceGate) Combine(z []float64) float64 {
	if len(z) == 0 {
		return 0
	}
	maxAbs := 0.0
	for _, v := range z {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	var wSum, acc float64
	for _, v := range z {
		w := math.Exp(g.Temperature * (math.Abs(v) - maxAbs))
		wSum += w
		acc += w * v
	}
	return acc / wSum
}

// AgreementGate down-weights outliers: each model's weight decays with
// its distance from the ensemble median, so a single model's blunder
// (miss or false alarm) is suppressed when the others agree. Scale
// sets the distance at which weight halves; it must be positive.
type AgreementGate struct {
	// Scale is the z-distance from the median at which a model's
	// weight drops to exp(-1).
	Scale float64
}

// Name implements Combiner.
func (g AgreementGate) Name() string {
	return fmt.Sprintf("agreement-gate(s=%.2f)", g.Scale)
}

// Combine implements Combiner.
func (g AgreementGate) Combine(z []float64) float64 {
	if len(z) == 0 {
		return 0
	}
	if len(z) == 1 {
		return z[0]
	}
	med := median(z)
	scale := g.Scale
	if scale <= 0 {
		scale = 1
	}
	var wSum, acc float64
	for _, v := range z {
		w := math.Exp(-math.Abs(v-med) / scale)
		wSum += w
		acc += w * v
	}
	return acc / wSum
}

// median returns the middle value (mean of the central pair for even
// lengths) without mutating its input.
func median(z []float64) float64 {
	cp := append([]float64(nil), z...)
	// Insertion sort: the ensembles are tiny (M ≤ a handful).
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// NewGatedProposed builds the proposed two-SLM pipeline with a gating
// combiner in place of Eq. 5's uniform mean — the §VI extension.
func NewGatedProposed(gate Combiner) (*Detector, error) {
	if gate == nil {
		return nil, fmt.Errorf("core: nil gate")
	}
	return NewDetector(fmt.Sprintf("Proposed[%s]", gate.Name()), Config{
		Models:    proposedModels(),
		Aggregate: Harmonic,
		Combine:   gate,
	})
}
