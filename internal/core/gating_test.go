package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"
)

func TestUniformCombiner(t *testing.T) {
	u := UniformCombiner{}
	if got := u.Combine([]float64{1, 2, 3}); got != 2 {
		t.Errorf("uniform = %v, want 2", got)
	}
	if got := u.Combine(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if u.Name() != "uniform" {
		t.Error("name")
	}
}

func TestConfidenceGateLimits(t *testing.T) {
	z := []float64{0.1, -2.0, 0.3}
	// τ = 0 is the uniform mean.
	flat := (ConfidenceGate{Temperature: 0}).Combine(z)
	if math.Abs(flat-(UniformCombiner{}).Combine(z)) > 1e-12 {
		t.Errorf("τ=0 gate = %v, want uniform mean", flat)
	}
	// Large τ approaches the most-confident model's score.
	sharp := (ConfidenceGate{Temperature: 50}).Combine(z)
	if math.Abs(sharp-(-2.0)) > 1e-6 {
		t.Errorf("τ→∞ gate = %v, want -2 (winner take all)", sharp)
	}
}

func TestConfidenceGateWeightsDecisiveModels(t *testing.T) {
	// One decisive negative, one fence-sitter: the gate must land
	// closer to the decisive score than the plain mean does.
	z := []float64{-1.5, 0.1}
	mean := (UniformCombiner{}).Combine(z)
	gated := (ConfidenceGate{Temperature: 1.5}).Combine(z)
	if !(gated < mean) {
		t.Errorf("gate %v not below mean %v", gated, mean)
	}
}

func TestAgreementGateSuppressesOutlier(t *testing.T) {
	// Two models agree the sentence is fine; a third blunders.
	z := []float64{0.9, 1.0, -1.8}
	mean := (UniformCombiner{}).Combine(z)
	gated := (AgreementGate{Scale: 0.5}).Combine(z)
	if !(gated > mean) {
		t.Errorf("agreement gate %v did not suppress the outlier vs mean %v", gated, mean)
	}
	// Single model: identity.
	if got := (AgreementGate{Scale: 0.5}).Combine([]float64{0.7}); got != 0.7 {
		t.Errorf("single-model gate = %v", got)
	}
	// Non-positive scale falls back to 1, not NaN.
	if got := (AgreementGate{}).Combine(z); math.IsNaN(got) {
		t.Error("zero-scale gate produced NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 {
		t.Error("median mutated input")
	}
}

// Property: every combiner's output lies within [min(z), max(z)] —
// they are all weighted means with non-negative weights.
func TestCombinersBoundedQuick(t *testing.T) {
	combiners := []Combiner{
		UniformCombiner{},
		ConfidenceGate{Temperature: 2},
		AgreementGate{Scale: 1},
	}
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		z := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			v = math.Mod(v, 5)
			if math.IsNaN(v) {
				v = 0
			}
			z[i] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, c := range combiners {
			got := c.Combine(z)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewGatedProposed(t *testing.T) {
	if _, err := NewGatedProposed(nil); err == nil {
		t.Error("nil gate accepted")
	}
	d, err := NewGatedProposed(ConfidenceGate{Temperature: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := "What are the working hours?"
	correct := "The working hours are 9 AM to 5 PM."
	wrong := "The working hours are 9 AM to 9 PM."
	if err := d.Calibrate(ctx, []Triple{{q, detCtx, correct}, {q, detCtx, wrong}}); err != nil {
		t.Fatal(err)
	}
	vc, err := d.Score(ctx, q, detCtx, correct)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := d.Score(ctx, q, detCtx, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Score <= vw.Score {
		t.Errorf("gated detector: correct %.3f not above wrong %.3f", vc.Score, vw.Score)
	}
}
