package telemetry

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning 100µs (an in-memory shard probe) to 10s (a request that
// should have been shed). Sixteen buckets keeps a histogram at ~150
// bytes of counters.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets with atomic
// per-bucket counters — no locks on the observe path, so it sits
// directly on hot serving stages. A nil Histogram no-ops, which is
// how uninstrumented components run at zero cost.
type Histogram struct {
	bounds []float64       // sorted upper bounds; len(counts) = len(bounds)+1
	counts []atomic.Uint64 // counts[len(bounds)] is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	// exemplars holds, per bucket, the most recent observation from a
	// trace the tracer kept — the histogram→trace link. Stamped by
	// Tracer.Finish rather than at observe time, so every exemplar
	// trace ID resolves in the trace ring instead of dangling when the
	// sampler drops the trace. Kept out of the Prometheus text
	// exposition (the 0.0.4 format has no exemplar syntax); rendered
	// by GET /debug/traces instead.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete trace: "the p99
// bucket last saw 42ms, and here is the trace that spent it".
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	At      time.Time `json:"at"`
}

// NewHistogram builds a detached histogram with the given sorted
// upper bounds (nil → DefBuckets). Detached histograms are useful in
// tests; production code gets them from Registry.Histogram.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value. An observation lands in the first bucket
// whose upper bound is >= v (Prometheus `le` semantics).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the usual
// call at the end of a timed stage.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveCtx records v and, when ctx carries a trace, queues the
// landing bucket's exemplar against that trace. The exemplar becomes
// visible only if Tracer.Finish keeps the trace — stamped then, with
// the observation's original timestamp — so /debug/traces never links
// a bucket to a trace ID the sampler dropped from the ring.
func (h *Histogram) ObserveCtx(ctx context.Context, v float64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if tr := TraceFrom(ctx); tr != nil {
		tr.addExemplar(pendingExemplar{
			hist:   h,
			bucket: sort.SearchFloat64s(h.bounds, v),
			value:  v,
			at:     time.Now(),
		})
	}
}

// ObserveSinceCtx records the seconds elapsed since start, queuing a
// bucket exemplar against ctx's trace as ObserveCtx does.
func (h *Histogram) ObserveSinceCtx(ctx context.Context, start time.Time) {
	if h == nil {
		return
	}
	h.ObserveCtx(ctx, time.Since(start).Seconds())
}

// pendingExemplar is one observation waiting on the tracer's keep
// decision for its trace; stampExemplar writes it into the bucket.
type pendingExemplar struct {
	hist   *Histogram
	bucket int
	value  float64
	at     time.Time
}

// stampExemplar publishes a kept trace's observation as the bucket's
// exemplar. The write is a single pointer store — last writer wins.
func (p pendingExemplar) stampExemplar(traceID string) {
	p.hist.exemplars[p.bucket].Store(&Exemplar{
		Value:   p.value,
		TraceID: traceID,
		At:      p.at,
	})
}

// BucketExemplar is one bucket's exemplar as served by /debug/traces.
type BucketExemplar struct {
	LE      string    `json:"le"` // bucket upper bound, "+Inf" for the overflow bucket
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	At      time.Time `json:"at"`
}

// bucketExemplars snapshots the buckets that have exemplars.
func (h *Histogram) bucketExemplars() []BucketExemplar {
	if h == nil {
		return nil
	}
	var out []BucketExemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		out = append(out, BucketExemplar{LE: le, Value: e.Value, TraceID: e.TraceID, At: e.At})
	}
	return out
}

// SeriesExemplars groups one histogram series' exemplars under its
// canonical label string.
type SeriesExemplars struct {
	Labels  string           `json:"labels,omitempty"`
	Buckets []BucketExemplar `json:"buckets"`
}

// Exemplars collects every histogram exemplar in the registry, keyed
// by family name — the payload /debug/traces serves so a latency
// bucket can be followed to a captured trace.
func (r *Registry) Exemplars() map[string][]SeriesExemplars {
	if r == nil {
		return nil
	}
	out := make(map[string][]SeriesExemplars)
	for _, f := range r.sortedFamilies() {
		if f.kind != kindHistogram {
			continue
		}
		for _, s := range f.sortedSeries() {
			if s.hist == nil {
				continue
			}
			bs := s.hist.bucketExemplars()
			if len(bs) == 0 {
				continue
			}
			_, key := canonLabels(s.labels)
			out[f.name] = append(out[f.name], SeriesExemplars{Labels: key, Buckets: bs})
		}
	}
	return out
}

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between bucket reads, so a snapshot is approximate while writers
// are active, but always internally consistent: Count is derived from
// the bucket counts it actually read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state,
// mergeable across shards/nodes that share a bucket layout.
type HistogramSnapshot struct {
	Bounds []float64 // bucket upper bounds; Counts has one extra +Inf slot
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Merge folds other into s. Both snapshots must share the exact
// bucket layout — the invariant that makes cross-node latency
// aggregation sound.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		*s = other
		return nil
	}
	if len(other.Counts) == 0 {
		return nil
	}
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("telemetry: merge bucket count mismatch: %d vs %d", len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("telemetry: merge bucket bound mismatch at %d: %g vs %g", i, b, other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. The error bound
// is the width of that bucket. Observations in the +Inf bucket clamp
// to the highest finite bound. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
