package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const good = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	tid, pid, ok := ParseTraceparent(good)
	if !ok || tid != "0123456789abcdef0123456789abcdef" || pid != "0123456789abcdef" {
		t.Fatalf("valid header rejected: %q %q %v", tid, pid, ok)
	}
	bad := []string{
		"",
		"garbage",
		good[:54],             // truncated
		"01" + good[2:],       // unknown version
		strings.ToUpper(good), // uppercase hex is invalid per W3C
		"00-" + strings.Repeat("0", 32) + "-0123456789abcdef-01",                 // all-zero trace
		"00-0123456789abcdef0123456789abcdef-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-0123456789abcdefg123456789abcdef-0123456789abcdef-01",                // non-hex
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("accepted malformed traceparent %q", v)
		}
	}
}

// TestTraceparentStitching: the header rendered at the router parses
// on the node into the same trace ID, with the node's root span
// parented under the router's current span — the cross-process
// stitch.
func TestTraceparentStitching(t *testing.T) {
	router := NewTracer(TracerConfig{})
	ctx, root := router.StartTrace(context.Background(), "/search", "")
	ctx, rpc := StartSpan(ctx, "rpc.search")

	hop := Traceparent(ctx)
	if hop == "" {
		t.Fatal("no traceparent rendered inside a traced request")
	}
	tid, pid, ok := ParseTraceparent(hop)
	if !ok {
		t.Fatalf("rendered traceparent does not parse: %q", hop)
	}
	if tid != TraceIDFrom(ctx) {
		t.Fatalf("hop trace ID %s != context trace ID %s", tid, TraceIDFrom(ctx))
	}
	if pid != rpc.SpanID() {
		t.Fatalf("hop parent %s != current span %s", pid, rpc.SpanID())
	}

	node := NewTracer(TracerConfig{})
	nctx, nroot := node.StartTrace(context.Background(), "/shard/search", hop)
	if TraceIDFrom(nctx) != tid {
		t.Fatalf("node adopted trace %s, want %s", TraceIDFrom(nctx), tid)
	}
	nroot.End(nil)
	node.Finish(TraceFrom(nctx), 200, true, false)
	kept := node.Traces(1, "")
	if len(kept) != 1 || kept[0].ID != tid {
		t.Fatalf("node capture = %+v, want trace %s", kept, tid)
	}
	if got := kept[0].Spans[0].ParentID; got != rpc.SpanID() {
		t.Fatalf("node root parent = %s, want router rpc span %s", got, rpc.SpanID())
	}
	rpc.End(nil)
	root.End(nil)
}

// TestSpanTree: children parent under the innermost open span, and
// sibling goroutines forked from the same context share a parent.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartTrace(context.Background(), "req", "")
	fctx, fanout := StartSpan(ctx, "shard_fanout")
	_, a := StartSpan(fctx, "shard_read")
	_, b := StartSpan(fctx, "shard_read")
	a.End(nil)
	b.End(errors.New("boom"))
	fanout.End(nil)
	root.End(nil)
	tr.Finish(TraceFrom(ctx), 200, false, true)

	kept := tr.Traces(1, "")
	if len(kept) != 1 {
		t.Fatalf("kept %d traces, want 1", len(kept))
	}
	spans := kept[0].Spans
	if len(spans) != 4 {
		t.Fatalf("captured %d spans, want 4", len(spans))
	}
	if spans[0].Name != "req" || spans[0].ParentID != "" {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[1].ParentID != spans[0].SpanID {
		t.Fatal("fanout span not parented under root")
	}
	for _, reader := range []int{2, 3} {
		if spans[reader].ParentID != spans[1].SpanID {
			t.Fatalf("shard_read span %d not parented under fanout", reader)
		}
	}
	if spans[3].Error != "boom" {
		t.Fatalf("error not recorded on failed span: %+v", spans[3])
	}
}

// TestTailCapture: breaches and errors are always kept, healthy
// traces only 1-in-SampleEvery.
func TestTailCapture(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64, SampleEvery: 4})
	finish := func(name string, breached, errored bool) {
		ctx, root := tr.StartTrace(context.Background(), name, "")
		root.End(nil)
		tr.Finish(TraceFrom(ctx), 200, breached, errored)
	}
	for i := 0; i < 8; i++ {
		finish("healthy", false, false)
	}
	for i := 0; i < 3; i++ {
		finish("breach", true, false)
	}
	finish("errored", false, true)

	var healthy, breach, errored int
	for _, ct := range tr.Traces(0, "") {
		switch ct.Reason {
		case "sampled":
			healthy++
		case "slo_breach":
			breach++
		case "error":
			errored++
		}
	}
	if healthy != 2 {
		t.Errorf("kept %d healthy traces of 8 at SampleEvery=4, want 2", healthy)
	}
	if breach != 3 || errored != 1 {
		t.Errorf("kept breach=%d errored=%d, want 3 and 1 (always kept)", breach, errored)
	}

	// SampleEvery=1 keeps every healthy trace (n%1 is never 1, so the
	// keep-all case must not fall through the modulo).
	all := NewTracer(TracerConfig{SampleEvery: 1})
	for i := 0; i < 3; i++ {
		ctx, root := all.StartTrace(context.Background(), "healthy", "")
		root.End(nil)
		all.Finish(TraceFrom(ctx), 200, false, false)
	}
	if n := len(all.Traces(0, "")); n != 3 {
		t.Errorf("SampleEvery=1 kept %d of 3 healthy traces, want all", n)
	}

	// Negative SampleEvery keeps breaches only.
	strict := NewTracer(TracerConfig{SampleEvery: -1})
	ctx, root := strict.StartTrace(context.Background(), "healthy", "")
	root.End(nil)
	strict.Finish(TraceFrom(ctx), 200, false, false)
	if n := len(strict.Traces(0, "")); n != 0 {
		t.Errorf("SampleEvery=-1 kept %d healthy traces, want 0", n)
	}
}

// TestTracerRingEviction: the ring holds Capacity traces, oldest out.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 2})
	for _, name := range []string{"one", "two", "three"} {
		ctx, root := tr.StartTrace(context.Background(), name, "")
		root.End(nil)
		tr.Finish(TraceFrom(ctx), 200, true, false)
	}
	kept := tr.Traces(0, "")
	if len(kept) != 2 {
		t.Fatalf("ring holds %d, want 2", len(kept))
	}
	if kept[0].Root != "three" || kept[1].Root != "two" {
		t.Fatalf("newest-first order wrong: %s, %s", kept[0].Root, kept[1].Root)
	}
}

// TestTraceHandler: /debug/traces serves counters, captures, and the
// histogram exemplars that link a latency bucket to a trace ID.
func TestTraceHandler(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{})
	tr.Register(reg)

	ctx, root := tr.StartTrace(context.Background(), "/ask", "")
	id := TraceIDFrom(ctx)
	reg.Histogram("stage_duration_seconds", "stage latency", nil, L("stage", "embed")).
		ObserveCtx(ctx, 0.2)
	root.End(nil)
	tr.Finish(TraceFrom(ctx), 504, true, false)

	rec := httptest.NewRecorder()
	tr.Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Started  uint64 `json:"traces_started"`
		Breaches uint64 `json:"kept_slo_breach"`
		Traces   []struct {
			ID     string `json:"id"`
			Root   string `json:"root"`
			Status int    `json:"status"`
			Reason string `json:"reason"`
		} `json:"traces"`
		Exemplars map[string][]struct {
			Buckets []struct {
				LE      string `json:"le"`
				TraceID string `json:"trace_id"`
			} `json:"buckets"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Started != 1 || resp.Breaches != 1 {
		t.Fatalf("counters started=%d breaches=%d", resp.Started, resp.Breaches)
	}
	if len(resp.Traces) != 1 || resp.Traces[0].ID != id ||
		resp.Traces[0].Root != "/ask" || resp.Traces[0].Status != 504 ||
		resp.Traces[0].Reason != "slo_breach" {
		t.Fatalf("traces = %+v", resp.Traces)
	}
	series, ok := resp.Exemplars["stage_duration_seconds"]
	if !ok || len(series) == 0 {
		t.Fatalf("no exemplars for stage_duration_seconds: %v", resp.Exemplars)
	}
	found := false
	for _, b := range series[0].Buckets {
		if b.TraceID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bucket exemplar links to trace %s", id)
	}
}

// TestExemplarsOnlyForKeptTraces: a histogram observation under a
// trace the sampler drops must not publish a bucket exemplar, so
// every exemplar link served by /debug/traces resolves in the ring.
func TestExemplarsOnlyForKeptTraces(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{SampleEvery: -1}) // keep breaches only
	h := reg.Histogram("stage_duration_seconds", "stage latency", nil, L("stage", "embed"))

	// Healthy trace: sampled out, so its observation counts in the
	// bucket but leaves no exemplar behind.
	ctx, root := tr.StartTrace(context.Background(), "/ask", "")
	h.ObserveCtx(ctx, 0.2)
	root.End(nil)
	tr.Finish(TraceFrom(ctx), 200, false, false)
	if ex := reg.Exemplars(); len(ex) != 0 {
		t.Fatalf("dropped trace published exemplars: %v", ex)
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("observation count = %d, want 1 (only the exemplar is withheld)", got)
	}

	// Breaching trace: kept, so its observation is stamped.
	bctx, broot := tr.StartTrace(context.Background(), "/ask", "")
	bid := TraceIDFrom(bctx)
	h.ObserveCtx(bctx, 0.2)
	broot.End(nil)
	tr.Finish(TraceFrom(bctx), 504, true, false)
	series := reg.Exemplars()["stage_duration_seconds"]
	if len(series) == 0 {
		t.Fatal("kept trace published no exemplars")
	}
	found := false
	for _, b := range series[0].Buckets {
		if b.TraceID == bid {
			found = true
		}
	}
	if !found {
		t.Fatalf("kept trace %s not linked from any bucket exemplar", bid)
	}

	// Outside any trace, ObserveCtx records plain observations.
	h.ObserveCtx(context.Background(), 0.2)
	if got := h.Snapshot().Count; got != 3 {
		t.Fatalf("observation count = %d, want 3", got)
	}
}

// TestUntracedPathsAreNilSafe: every traced call site runs outside a
// trace with nil spans and no allocation of trace state.
func TestUntracedPathsAreNilSafe(t *testing.T) {
	ctx := context.Background()
	octx, sp := StartSpan(ctx, "anything")
	if sp != nil || octx != ctx {
		t.Fatal("StartSpan outside a trace must be a no-op")
	}
	sp.Annotate("k", "v")
	sp.Event("msg")
	sp.End(nil)
	if Traceparent(ctx) != "" {
		t.Fatal("Traceparent outside a trace must be empty")
	}
	var tr *Tracer
	cctx, root := tr.StartTrace(ctx, "x", "")
	if root != nil || cctx != ctx {
		t.Fatal("nil Tracer must not root traces")
	}
	tr.Finish(nil, 200, true, true)
	if tr.Traces(0, "") != nil {
		t.Fatal("nil Tracer must report no traces")
	}
}
