// Package telemetry is the serving-side observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// latency histograms with mergeable snapshots and p50/p95/p99
// estimation), a Prometheus text-exposition writer for GET /metrics,
// and the per-request HTTP middleware chain (request IDs, deadline
// propagation, per-route timing, panic recovery, request logging)
// shared by cmd/ragserver and cmd/shardnode.
//
// Naming note — telemetry vs metrics: this package measures the
// *serving system* (how fast, how many, how broken); the separate
// internal/metrics package is the *paper-evaluation* machinery
// (precision/recall/F1, ROC/AUC over labelled verdicts, §V of the
// paper). The two never import each other. See docs/observability.md
// for the metric reference and docs/architecture.md for the split.
//
// Every constructor is safe on a nil *Registry and every metric
// method is safe on a nil receiver: a component handed no registry
// gets nil metrics whose Observe/Inc/Add are no-ops, so hot paths
// carry no conditional wiring — they just call through.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension. Keep cardinality low:
// routes, stages, backend base URLs — never request IDs or document
// IDs.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64, safe for concurrent
// use. A nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, safe for concurrent
// use. A nil Gauge ignores writes and reads as zero.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (negative v decrements).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels    []Label // sorted by name
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.RWMutex
	series map[string]*series // keyed by canonical label string
}

// Registry is a set of named metric families. Get-or-create lookups
// (Counter, Gauge, Histogram) return the same instance for the same
// name+labels, so independent components observing the same series —
// e.g. every shard's WAL timing into stage="wal_append" — share one
// histogram. All methods are safe for concurrent use and safe on a
// nil receiver (returning nil metrics that no-op).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// canonLabels sorts labels by name and returns the canonical
// "k=v,k=v" series key.
func canonLabels(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return ls, b.String()
}

// lookup returns (creating as needed) the series for name+labels,
// checking the family kind. New series are fully initialized by init
// before publication, so their metric fields are immutable afterwards
// and readable without the family lock. A kind conflict returns nil
// rather than corrupting the exposition — the caller then holds a
// detached nil metric, which no-ops.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*series)) *series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		return nil
	}
	ls, key := canonLabels(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: ls}
	init(s)
	f.series[key] = s
	return s
}

// Counter returns the counter for name+labels, creating it on first
// use. Nil registry → nil counter (no-op).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) { s.counter = new(Counter) })
	if s == nil {
		return nil
	}
	// A series registered via CounterFunc has no settable cell; hand
	// back a detached counter so callers still get a working metric.
	if s.counter == nil {
		return new(Counter)
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for pre-existing atomic counters that
// should appear in /metrics without being rewired. The first
// registration for a series wins.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.lookup(name, help, kindCounter, labels, func(s *series) { s.counterFn = fn })
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) { s.gauge = new(Gauge) })
	if s == nil {
		return nil
	}
	if s.gauge == nil {
		return new(Gauge)
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. The first registration for a series wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, labels, func(s *series) { s.gaugeFn = fn })
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket upper bounds on first use (nil → DefBuckets).
// Later lookups reuse the first layout regardless of the buckets
// argument, keeping every series in a family mergeable.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) { s.hist = NewHistogram(buckets) })
	if s == nil {
		return nil
	}
	return s.hist
}

// HistogramSnapshots returns a snapshot of every series in the named
// histogram family, keyed by canonical label string ("stage=embed").
// Unknown or non-histogram names return an empty map.
func (r *Registry) HistogramSnapshots(name string) map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	if r == nil {
		return out
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindHistogram {
		return out
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for key, s := range f.series {
		if s.hist != nil {
			out[key] = s.hist.Snapshot()
		}
	}
	return out
}

// CounterValue returns the current value of the named counter series,
// or zero when absent — a read-side convenience for tests and /stats.
func (r *Registry) CounterValue(name string, labels ...Label) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindCounter {
		return 0
	}
	_, key := canonLabels(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s == nil {
		return 0
	}
	if s.counterFn != nil {
		return s.counterFn()
	}
	return s.counter.Value()
}

// sortedFamilies returns families sorted by name for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series sorted by label key.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.RUnlock()
	return out
}

// labelString renders {k="v",...} for exposition, with extra labels
// (le for histogram buckets) appended.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines — the exact set
		// the Prometheus text format requires escaped in label values.
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
