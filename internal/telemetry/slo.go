package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SLOObjective is one route's service-level objective: a latency
// threshold with a target fraction of requests under it, and an
// availability (non-5xx) target.
type SLOObjective struct {
	// LatencyThreshold is the "fast enough" bound; requests over it
	// are SLO-bad for the latency objective.
	LatencyThreshold time.Duration `json:"latency_threshold_ms"`
	// LatencyTarget is the fraction of requests expected under the
	// threshold, e.g. 0.99.
	LatencyTarget float64 `json:"latency_target"`
	// AvailabilityTarget is the fraction of requests expected to not
	// fail with a 5xx, e.g. 0.999.
	AvailabilityTarget float64 `json:"availability_target"`
}

func (o SLOObjective) withDefaults() SLOObjective {
	if o.LatencyThreshold <= 0 {
		o.LatencyThreshold = 500 * time.Millisecond
	}
	if o.LatencyTarget <= 0 || o.LatencyTarget >= 1 {
		o.LatencyTarget = 0.99
	}
	if o.AvailabilityTarget <= 0 || o.AvailabilityTarget >= 1 {
		o.AvailabilityTarget = 0.999
	}
	return o
}

// MarshalJSON renders the threshold in integer milliseconds, matching
// the field name.
func (o SLOObjective) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		LatencyThresholdMs int64   `json:"latency_threshold_ms"`
		LatencyTarget      float64 `json:"latency_target"`
		AvailabilityTarget float64 `json:"availability_target"`
	}{o.LatencyThreshold.Milliseconds(), o.LatencyTarget, o.AvailabilityTarget})
}

// SLOConfig sets the default objective and per-route overrides.
type SLOConfig struct {
	Default SLOObjective
	// Routes overrides the objective for specific route labels (the
	// same labels the Metrics middleware uses).
	Routes map[string]SLOObjective
	// Exempt lists routes excluded from objectives entirely — probe
	// endpoints whose 5xx answers are expected signals, not failures
	// (a booting node answers /readyz with 503 by design; counting
	// that as burned error budget would page on every restart).
	Exempt []string
}

// The burn-rate windows. Buckets are 10s wide and one hour is
// retained, so the 5m/30m/1h windows all read from one ring.
const (
	sloBucketWidth = 10 * time.Second
	sloBuckets     = 360 // 1h of 10s buckets
)

// burn-rate alert thresholds (Google SRE workbook multiwindow policy,
// adapted to the 1h of history kept in memory).
const (
	burnPage = 14.4 // 2% of a 30-day budget in 1h
	burnWarn = 6.0  // 5% of a 30-day budget in 6h
)

type sloBucket struct {
	epoch  int64 // unix seconds / bucketWidth; stale buckets are skipped
	total  uint64
	slow   uint64
	errors uint64
}

type routeSLO struct {
	obj SLOObjective

	mu      sync.Mutex
	total   uint64
	slow    uint64
	errors  uint64
	buckets [sloBuckets]sloBucket
}

// SLO tracks per-route compliance and multi-window burn rates. All
// methods are safe for concurrent use and on a nil receiver, so
// handlers without an SLO engine pay only a nil check.
type SLO struct {
	cfg    SLOConfig
	reg    *Registry
	now    func() time.Time
	exempt map[string]bool

	mu     sync.Mutex
	routes map[string]*routeSLO
}

// NewSLO builds the engine. reg, when non-nil, receives
// slo_burn_rate{route,objective,window} gauges as routes appear.
func NewSLO(cfg SLOConfig, reg *Registry) *SLO {
	cfg.Default = cfg.Default.withDefaults()
	for k, o := range cfg.Routes {
		cfg.Routes[k] = o.withDefaults()
	}
	exempt := make(map[string]bool, len(cfg.Exempt))
	for _, r := range cfg.Exempt {
		exempt[r] = true
	}
	return &SLO{cfg: cfg, reg: reg, now: time.Now, exempt: exempt, routes: make(map[string]*routeSLO)}
}

// Exempted reports whether route is excluded from objectives — probe
// endpoints whose failures are expected boot signals. The Tracing
// middleware also consults this to keep expected probe 5xx out of the
// always-capture trace ring.
func (s *SLO) Exempted(route string) bool {
	return s != nil && s.exempt[route]
}

// Objective returns the objective governing route.
func (s *SLO) Objective(route string) SLOObjective {
	if s == nil {
		return SLOObjective{}.withDefaults()
	}
	if o, ok := s.cfg.Routes[route]; ok {
		return o
	}
	return s.cfg.Default
}

// Breached reports whether one finished request is SLO-bad — over the
// route's latency threshold or a 5xx. The Trace middleware uses it for
// the tail-based keep decision. Nil-safe: no engine, nothing breaches.
func (s *SLO) Breached(route string, dur time.Duration, status int) bool {
	if s == nil || s.exempt[route] {
		return false
	}
	o := s.Objective(route)
	return dur > o.LatencyThreshold || status >= 500
}

func (s *SLO) route(route string) *routeSLO {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.routes[route]
	if rs != nil {
		return rs
	}
	rs = &routeSLO{obj: s.Objective(route)}
	s.routes[route] = rs
	if s.reg != nil {
		for _, w := range []struct {
			name string
			d    time.Duration
		}{{"5m", 5 * time.Minute}, {"30m", 30 * time.Minute}, {"1h", time.Hour}} {
			w := w
			s.reg.GaugeFunc("slo_burn_rate",
				"Error-budget burn rate by route, objective and window (1.0 = burning exactly the budget).",
				func() float64 { lb, _ := rs.burn(w.d, s.now()); return lb },
				L("route", route), L("objective", "latency"), L("window", w.name))
			s.reg.GaugeFunc("slo_burn_rate",
				"Error-budget burn rate by route, objective and window (1.0 = burning exactly the budget).",
				func() float64 { _, ab := rs.burn(w.d, s.now()); return ab },
				L("route", route), L("objective", "availability"), L("window", w.name))
		}
	}
	return rs
}

// Observe records one finished request. Exempt routes are dropped.
func (s *SLO) Observe(route string, dur time.Duration, status int) {
	if s == nil || s.exempt[route] {
		return
	}
	rs := s.route(route)
	now := s.now()
	epoch := now.Unix() / int64(sloBucketWidth/time.Second)
	slot := &rs.buckets[int(epoch)%sloBuckets]

	rs.mu.Lock()
	rs.total++
	if slot.epoch != epoch {
		*slot = sloBucket{epoch: epoch}
	}
	slot.total++
	if dur > rs.obj.LatencyThreshold {
		rs.slow++
		slot.slow++
	}
	if status >= 500 {
		rs.errors++
		slot.errors++
	}
	rs.mu.Unlock()
}

// burn returns the latency and availability burn rates over the
// trailing window: (bad fraction) / (error budget). 1.0 means the
// budget is being spent exactly as fast as it accrues; 14.4 sustained
// for an hour spends 2% of a 30-day budget.
func (rs *routeSLO) burn(window time.Duration, now time.Time) (latency, availability float64) {
	nowEpoch := now.Unix() / int64(sloBucketWidth/time.Second)
	n := int(window / sloBucketWidth)
	if n > sloBuckets {
		n = sloBuckets
	}
	var total, slow, errors uint64
	rs.mu.Lock()
	for i := 0; i < n; i++ {
		b := &rs.buckets[int(nowEpoch-int64(i))%sloBuckets]
		if b.epoch != nowEpoch-int64(i) {
			continue
		}
		total += b.total
		slow += b.slow
		errors += b.errors
	}
	rs.mu.Unlock()
	if total == 0 {
		return 0, 0
	}
	latency = (float64(slow) / float64(total)) / (1 - rs.obj.LatencyTarget)
	availability = (float64(errors) / float64(total)) / (1 - rs.obj.AvailabilityTarget)
	return latency, availability
}

// BurnRates is one objective's burn over the three windows, plus the
// alert tier the multiwindow policy assigns: "page" when both the 5m
// and 1h windows burn over 14.4, "warn" when both the 30m and 1h
// windows burn over 6, "" otherwise.
type BurnRates struct {
	Burn5m  float64 `json:"burn_5m"`
	Burn30m float64 `json:"burn_30m"`
	Burn1h  float64 `json:"burn_1h"`
	Alert   string  `json:"alert,omitempty"`
}

func (b BurnRates) withAlert() BurnRates {
	switch {
	case b.Burn5m > burnPage && b.Burn1h > burnPage:
		b.Alert = "page"
	case b.Burn30m > burnWarn && b.Burn1h > burnWarn:
		b.Alert = "warn"
	}
	return b
}

// RouteSLOStatus is one row of GET /slo.
type RouteSLOStatus struct {
	Route     string       `json:"route"`
	Objective SLOObjective `json:"objective"`
	Requests  uint64       `json:"requests"`
	Slow      uint64       `json:"slow"`
	Errors    uint64       `json:"errors"`
	// Compliance is the lifetime fraction meeting each objective.
	LatencyCompliance      float64 `json:"latency_compliance"`
	AvailabilityCompliance float64 `json:"availability_compliance"`
	// Burn rates over the in-memory windows.
	Latency      BurnRates `json:"latency_burn"`
	Availability BurnRates `json:"availability_burn"`
}

// Status reports every observed route, sorted by route label.
func (s *SLO) Status() []RouteSLOStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.routes))
	for name := range s.routes {
		names = append(names, name)
	}
	rss := make(map[string]*routeSLO, len(names))
	for _, name := range names {
		rss[name] = s.routes[name]
	}
	s.mu.Unlock()
	sort.Strings(names)

	now := s.now()
	out := make([]RouteSLOStatus, 0, len(names))
	for _, name := range names {
		rs := rss[name]
		rs.mu.Lock()
		total, slow, errs := rs.total, rs.slow, rs.errors
		rs.mu.Unlock()
		st := RouteSLOStatus{
			Route:     name,
			Objective: rs.obj,
			Requests:  total,
			Slow:      slow,
			Errors:    errs,
		}
		if total > 0 {
			st.LatencyCompliance = 1 - float64(slow)/float64(total)
			st.AvailabilityCompliance = 1 - float64(errs)/float64(total)
		}
		var lat, avail BurnRates
		lat.Burn5m, avail.Burn5m = rs.burn(5*time.Minute, now)
		lat.Burn30m, avail.Burn30m = rs.burn(30*time.Minute, now)
		lat.Burn1h, avail.Burn1h = rs.burn(time.Hour, now)
		st.Latency = lat.withAlert()
		st.Availability = avail.withAlert()
		out = append(out, st)
	}
	return out
}

// Handler serves GET /slo: the default objective and per-route status.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp := struct {
			Default SLOObjective     `json:"default_objective"`
			Routes  []RouteSLOStatus `json:"routes"`
		}{Routes: []RouteSLOStatus{}}
		if s != nil {
			resp.Default = s.cfg.Default
			if routes := s.Status(); routes != nil {
				resp.Routes = routes
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
