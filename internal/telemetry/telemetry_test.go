package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: a value equal
// to a bucket's upper bound lands in that bucket, a value just above
// it lands in the next, and values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},      // below every bound → first bucket
		{0.001, 0},  // exactly on a bound → that bucket (le semantics)
		{0.0011, 1}, // just above → next bucket
		{0.01, 1},   //
		{0.05, 2},   //
		{0.1, 2},    // last finite bound
		{0.11, 3},   // beyond the last bound → +Inf
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d observations, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
}

// TestHistogramQuantile checks the interpolation estimate stays within
// its documented error bound: the width of the bucket holding the
// target rank.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil) // DefBuckets
	// 1000 uniform observations over (0, 0.1]: the true q-th quantile
	// is q*0.1.
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(0.1 * float64(i) / n)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		truth := 0.1 * q
		got := s.Quantile(q)
		// Bucket width at the truth's location bounds the error.
		width := bucketWidthAt(DefBuckets, truth)
		if math.Abs(got-truth) > width {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", q, got, truth, width)
		}
	}
	if got := s.Quantile(0); got < 0 {
		t.Errorf("Quantile(0) = %g, want >= 0", got)
	}
	// Everything beyond the last finite bound clamps to it.
	inf := NewHistogram([]float64{0.001})
	inf.Observe(5)
	if got := inf.Snapshot().Quantile(0.99); got != 0.001 {
		t.Errorf("+Inf bucket quantile = %g, want clamp to 0.001", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0", got)
	}
}

func bucketWidthAt(bounds []float64, v float64) float64 {
	lower := 0.0
	for _, b := range bounds {
		if v <= b {
			return b - lower
		}
		lower = b
	}
	return math.Inf(1)
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader snapshots — meaningful under -race, and the final snapshot
// must account for every observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const (
		writers = 8
		perW    = 5000
	)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: snapshots must never over-count
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				if s := h.Snapshot(); s.Count > writers*perW {
					t.Errorf("snapshot Count %d exceeds total writes", s.Count)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("final Count = %d, want %d", s.Count, writers*perW)
	}
	var fromBuckets uint64
	for _, c := range s.Counts {
		fromBuckets += c
	}
	if fromBuckets != s.Count {
		t.Fatalf("bucket total %d != Count %d", fromBuckets, s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{0.01, 0.1})
	b := NewHistogram([]float64{0.01, 0.1})
	a.Observe(0.005)
	a.Observe(0.5)
	b.Observe(0.05)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if sa.Count != 3 {
		t.Errorf("merged Count = %d, want 3", sa.Count)
	}
	if want := 0.005 + 0.5 + 0.05; math.Abs(sa.Sum-want) > 1e-12 {
		t.Errorf("merged Sum = %g, want %g", sa.Sum, want)
	}
	if got := []uint64{sa.Counts[0], sa.Counts[1], sa.Counts[2]}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("merged Counts = %v, want one per bucket", sa.Counts)
	}
	// Mismatched layouts must refuse, not silently mis-aggregate.
	c := NewHistogram([]float64{1, 2}).Snapshot()
	if err := sa.Merge(c); err == nil {
		t.Error("Merge accepted a mismatched bucket layout")
	}
	// Merging into an empty snapshot adopts the other layout.
	var empty HistogramSnapshot
	if err := empty.Merge(sb); err != nil || empty.Count != 1 {
		t.Errorf("Merge into empty: err=%v count=%d", err, empty.Count)
	}
}

// TestRegistrySharedSeries verifies the get-or-create contract: same
// name+labels return the same instance, label order does not matter,
// and different label values are distinct series.
func TestRegistrySharedSeries(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("stage_duration_seconds", "h", nil, L("stage", "embed"))
	h2 := r.Histogram("stage_duration_seconds", "h", nil, L("stage", "embed"))
	if h1 != h2 {
		t.Error("same name+labels returned distinct histograms")
	}
	h3 := r.Histogram("stage_duration_seconds", "h", nil, L("stage", "merge"))
	if h1 == h3 {
		t.Error("distinct label values shared a histogram")
	}
	c1 := r.Counter("x_total", "c", L("a", "1"), L("b", "2"))
	c2 := r.Counter("x_total", "c", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Error("label order changed series identity")
	}
	// Kind conflict: the caller gets a detached no-op metric, never a
	// panic or a corrupted family.
	if g := r.Gauge("x_total", "not a counter"); g == nil {
		// nil is fine too — the point is no panic and no cross-kind reuse
		_ = g
	}
	c1.Add(7)
	if got := r.CounterValue("x_total", L("a", "1"), L("b", "2")); got != 7 {
		t.Errorf("CounterValue = %d, want 7", got)
	}
}

func TestNilRegistryAndMetricsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics must read as zero")
	}
	r.CounterFunc("d_total", "", func() uint64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	if v := r.CounterValue("d_total"); v != 0 {
		t.Errorf("nil registry CounterValue = %d", v)
	}
	if snaps := r.HistogramSnapshots("c_seconds"); len(snaps) != 0 {
		t.Error("nil registry returned snapshots")
	}
}

// TestWritePrometheus pins the text exposition format: HELP/TYPE
// headers, cumulative le buckets ending at +Inf, _sum/_count, function
// metrics evaluated at scrape time, and escaped label values.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Requests served.", L("route", "/ask"), L("code", "200")).Add(3)
	r.Gauge("inflight", "In-flight requests.").Set(2)
	r.CounterFunc("bridged_total", "Bridged counter.", func() uint64 { return 42 })
	h := r.Histogram("dur_seconds", "Latency.", []float64{0.01, 0.1}, L("stage", "embed"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.Counter("esc_total", "Escapes.", L("v", `a"b\c`)).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{code="200",route="/ask"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
		"bridged_total 42",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{stage="embed",le="0.01"} 1`,
		`dur_seconds_bucket{stage="embed",le="0.1"} 2`,
		`dur_seconds_bucket{stage="embed",le="+Inf"} 3`,
		`dur_seconds_count{stage="embed"} 3`,
		`esc_total{v="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if !strings.Contains(out, `dur_seconds_sum{stage="embed"} `) {
		t.Errorf("exposition missing _sum series\n---\n%s", out)
	}
}

// TestRegistryConcurrentLookup races get-or-create against scrapes —
// the publication path must be race-clean (run with -race).
func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stages := []string{"embed", "merge", "fanout", "verify"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st := stages[i%len(stages)]
				r.Histogram("stage_duration_seconds", "h", nil, L("stage", st)).Observe(0.001)
				r.Counter("ops_total", "c", L("stage", st)).Inc()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.HistogramSnapshots("stage_duration_seconds")
		}
	}()
	wg.Wait()
	var total uint64
	for _, s := range r.HistogramSnapshots("stage_duration_seconds") {
		total += s.Count
	}
	if total != 8*500 {
		t.Errorf("total observations = %d, want %d", total, 8*500)
	}
}
