package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceParentHeader is the W3C trace-context hop header carried on
// router→shardnode RPCs next to X-Request-ID and X-Deadline-Ms:
// "00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>". The
// node adopts the trace ID and parents its spans under the router's
// RPC span, so one user query renders as a single stitched tree.
const TraceParentHeader = "traceparent"

// Span is one timed operation within a trace. Spans link to their
// parent by ID, carry low-cardinality attributes ("backend", "shard")
// and timestamped events ("hedge launched"), and record at most one
// error. All methods are nil-safe: code running outside a traced
// request holds nil spans and pays only a nil check.
type Span struct {
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time

	mu     sync.Mutex
	end    time.Time
	err    string
	attrs  []Label
	events []SpanEvent
}

// SpanEvent is a timestamped annotation within a span.
type SpanEvent struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

// SpanID returns the span's own ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Annotate attaches a key=value attribute. Keep cardinality low — the
// same discipline as metric labels.
func (s *Span) Annotate(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Name: name, Value: value})
	s.mu.Unlock()
}

// Event appends a timestamped message ("retry round=1",
// "breaker open: skipped node2").
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{At: time.Now(), Msg: msg})
	s.mu.Unlock()
}

// End closes the span, recording err when non-nil. Safe to call more
// than once; the first call wins.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		if err != nil {
			s.err = err.Error()
		}
	}
	s.mu.Unlock()
}

// spanData is the immutable copy taken at capture time.
type spanData struct {
	SpanID   string      `json:"span_id"`
	ParentID string      `json:"parent_id,omitempty"`
	Name     string      `json:"name"`
	Start    time.Time   `json:"start"`
	Micros   int64       `json:"duration_us"`
	Error    string      `json:"error,omitempty"`
	Attrs    []Label     `json:"attrs,omitempty"`
	Events   []SpanEvent `json:"events,omitempty"`
}

func (s *Span) data() spanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	d := spanData{
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		Micros:   end.Sub(s.start).Microseconds(),
		Error:    s.err,
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Label(nil), s.attrs...)
	}
	if len(s.events) > 0 {
		d.Events = append([]SpanEvent(nil), s.events...)
	}
	return d
}

// Trace accumulates the spans of one request on one process. It lives
// in the request context; StartSpan appends to it from any goroutine.
type Trace struct {
	id string

	mu        sync.Mutex
	spans     []*Span
	dropped   int
	exemplars []pendingExemplar
}

func (t *Trace) add(s *Span) {
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// addExemplar queues a histogram observation made under this trace.
// It is stamped into the bucket only if the tracer's tail-based
// decision keeps the trace, so exemplar links always resolve in the
// ring. Observations landing after Finish already flushed (a hedge
// loser finishing late) are silently dropped.
func (t *Trace) addExemplar(p pendingExemplar) {
	t.mu.Lock()
	if len(t.exemplars) < maxExemplarsPerTrace {
		t.exemplars = append(t.exemplars, p)
	}
	t.mu.Unlock()
}

// maxSpansPerTrace bounds a single trace so a pathological fan-out
// (or a span leak) cannot grow memory without bound.
const maxSpansPerTrace = 128

// maxExemplarsPerTrace bounds the queued observations the same way; a
// request touches a handful of stage histograms, so 64 is generous.
const maxExemplarsPerTrace = 64

type traceKeyType int

const (
	traceKey traceKeyType = iota
	spanKey
)

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// TraceIDFrom returns the trace ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.id
	}
	return ""
}

// SpanFrom returns the innermost open span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a child span under ctx's current span. Outside a
// traced request it returns (ctx, nil) — the nil span no-ops, so
// instrumented call sites need no conditional wiring.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := ""
	if p := SpanFrom(ctx); p != nil {
		parent = p.spanID
	}
	sp := &Span{
		traceID:  tr.id,
		spanID:   newSpanID(),
		parentID: parent,
		name:     name,
		start:    time.Now(),
	}
	tr.add(sp)
	return context.WithValue(ctx, spanKey, sp), sp
}

// Traceparent renders the outbound traceparent header value for ctx's
// current trace position, or "" outside a traced request.
func Traceparent(ctx context.Context) string {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ""
	}
	span := ""
	if s := SpanFrom(ctx); s != nil {
		span = s.spanID
	}
	if span == "" {
		return ""
	}
	return "00-" + tr.id + "-" + span + "-01"
}

// ParseTraceparent splits a W3C traceparent value into trace ID and
// parent span ID. Malformed or all-zero values are rejected (ok=false)
// so a hostile header cannot pollute the trace store.
func ParseTraceparent(v string) (traceID, parentID string, ok bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2
	if len(v) != 55 || v[0:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	traceID, parentID = v[3:35], v[36:52]
	if !isHex(traceID) || !isHex(parentID) || allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

var idFallback atomic.Uint64

func randomHex(n int) string {
	b := make([]byte, n/2)
	if _, err := rand.Read(b); err != nil {
		// Degrade to a process-local sequence rather than failing the
		// request path over entropy trouble.
		v := idFallback.Add(1)
		s := strconv.FormatUint(v, 16)
		for len(s) < n {
			s = "0" + s
		}
		return s[:n]
	}
	return hex.EncodeToString(b)
}

func newTraceID() string { return randomHex(32) }
func newSpanID() string  { return randomHex(16) }

// TracerConfig bounds the in-memory trace store and its sampling.
type TracerConfig struct {
	// Capacity is the number of captured traces kept in the ring
	// buffer (default 256). Oldest traces are evicted first.
	Capacity int
	// SampleEvery keeps 1 in N traces that neither breached their SLO
	// nor errored (default 16; 0 uses the default, negative keeps
	// none). Breaching and erroring traces are always kept — that is
	// the tail-based part.
	SampleEvery int
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	return c
}

// CapturedTrace is one kept trace as served by GET /debug/traces.
type CapturedTrace struct {
	ID string `json:"id"`
	// Root is the root span's name (the route).
	Root    string     `json:"root"`
	Start   time.Time  `json:"start"`
	Micros  int64      `json:"duration_us"`
	Status  int        `json:"status,omitempty"`
	Reason  string     `json:"reason"` // slo_breach | error | sampled
	Spans   []spanData `json:"spans"`
	Dropped int        `json:"dropped_spans,omitempty"`
}

// Tracer is the per-process trace collector: it roots traces for
// inbound requests (adopting a propagated traceparent when present),
// and keeps a bounded ring of captured traces with tail-based
// selection — SLO breaches and errors always, a sample of the rest.
// All methods are safe for concurrent use and on a nil receiver.
type Tracer struct {
	cfg TracerConfig

	mu   sync.Mutex
	ring []*CapturedTrace
	next int

	started atomic.Uint64
	kept    atomic.Uint64
	breach  atomic.Uint64
	errs    atomic.Uint64
	sampled atomic.Uint64
	nth     atomic.Uint64
}

// NewTracer returns a tracer with cfg (zero value → defaults).
func NewTracer(cfg TracerConfig) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: make([]*CapturedTrace, 0, cfg.Capacity)}
}

// Register exposes the tracer's own accounting in reg:
// traces_started_total and traces_kept_total{reason}.
func (t *Tracer) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.CounterFunc("traces_started_total", "Traces rooted on this process.", t.started.Load)
	reg.CounterFunc("traces_kept_total", "Traces captured to the debug ring by keep reason.",
		t.breach.Load, L("reason", "slo_breach"))
	reg.CounterFunc("traces_kept_total", "Traces captured to the debug ring by keep reason.",
		t.errs.Load, L("reason", "error"))
	reg.CounterFunc("traces_kept_total", "Traces captured to the debug ring by keep reason.",
		t.sampled.Load, L("reason", "sampled"))
}

// StartTrace roots a new trace on ctx. traceparent, when valid,
// supplies the trace ID and the parent span ID — that is how node-side
// spans stitch under the router's RPC span. Returns the derived
// context and the root span (nil tracer → unchanged ctx, nil span).
func (t *Tracer) StartTrace(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.started.Add(1)
	traceID, parentID, ok := ParseTraceparent(traceparent)
	if !ok {
		traceID, parentID = newTraceID(), ""
	}
	tr := &Trace{id: traceID}
	root := &Span{
		traceID:  traceID,
		spanID:   newSpanID(),
		parentID: parentID,
		name:     name,
		start:    time.Now(),
	}
	tr.add(root)
	ctx = context.WithValue(ctx, traceKey, tr)
	ctx = context.WithValue(ctx, spanKey, root)
	return ctx, root
}

// Finish decides whether tr is kept: always when it breached its SLO
// or errored, else 1-in-SampleEvery. status is the HTTP status of the
// finished request, recorded on the capture for filtering.
func (t *Tracer) Finish(tr *Trace, status int, breached, errored bool) {
	if t == nil || tr == nil {
		return
	}
	reason := ""
	switch {
	case breached:
		reason = "slo_breach"
		t.breach.Add(1)
	case errored:
		reason = "error"
		t.errs.Add(1)
	// n%1 is never 1, so SampleEvery=1 (keep every trace) is its own
	// case rather than falling out of the modulo.
	case t.cfg.SampleEvery == 1,
		t.cfg.SampleEvery > 1 && t.nth.Add(1)%uint64(t.cfg.SampleEvery) == 1:
		reason = "sampled"
		t.sampled.Add(1)
	default:
		return
	}
	t.kept.Add(1)

	tr.mu.Lock()
	spans := make([]spanData, 0, len(tr.spans))
	for _, s := range tr.spans {
		spans = append(spans, s.data())
	}
	dropped := tr.dropped
	pending := tr.exemplars
	tr.exemplars = nil
	tr.mu.Unlock()
	// Only a kept trace publishes its bucket exemplars: /debug/traces
	// must never link a histogram bucket to a trace ID that was
	// sampled out of the ring.
	for _, p := range pending {
		p.stampExemplar(tr.id)
	}

	ct := &CapturedTrace{
		ID:      tr.id,
		Reason:  reason,
		Status:  status,
		Spans:   spans,
		Dropped: dropped,
	}
	if len(spans) > 0 {
		ct.Root = spans[0].Name
		ct.Start = spans[0].Start
		ct.Micros = spans[0].Micros
	}

	t.mu.Lock()
	if len(t.ring) < t.cfg.Capacity {
		t.ring = append(t.ring, ct)
	} else {
		t.ring[t.next] = ct
		t.next = (t.next + 1) % t.cfg.Capacity
	}
	t.mu.Unlock()
}

// Traces returns up to limit captured traces, newest first, optionally
// filtered to one trace ID (id == "" keeps all).
func (t *Tracer) Traces(limit int, id string) []*CapturedTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	all := make([]*CapturedTrace, 0, len(t.ring))
	// Ring order: t.next is the oldest slot once the ring wrapped.
	for i := 0; i < len(t.ring); i++ {
		all = append(all, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]*CapturedTrace, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		if id != "" && all[i].ID != id {
			continue
		}
		out = append(out, all[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Handler serves GET /debug/traces: the capture counters, the kept
// traces (newest first, ?limit= and ?trace= filters), and — when reg
// is non-nil — the histogram exemplars linking p99 buckets to concrete
// trace IDs.
func (t *Tracer) Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		limit := 20
		if raw := r.URL.Query().Get("limit"); raw != "" {
			if n, err := strconv.Atoi(raw); err == nil && n > 0 {
				limit = n
			}
		}
		id := r.URL.Query().Get("trace")
		resp := struct {
			Started   uint64                       `json:"traces_started"`
			Kept      uint64                       `json:"traces_kept"`
			Breaches  uint64                       `json:"kept_slo_breach"`
			Errors    uint64                       `json:"kept_error"`
			Sampled   uint64                       `json:"kept_sampled"`
			Traces    []*CapturedTrace             `json:"traces"`
			Exemplars map[string][]SeriesExemplars `json:"exemplars,omitempty"`
		}{
			Traces: t.Traces(limit, id),
		}
		if t != nil {
			resp.Started = t.started.Load()
			resp.Kept = t.kept.Load()
			resp.Breaches = t.breach.Load()
			resp.Errors = t.errs.Load()
			resp.Sampled = t.sampled.Load()
		}
		if reg != nil {
			resp.Exemplars = reg.Exemplars()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
