package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// Hop headers carried between ragserver and shardnode so one user
// query is traceable (and deadline-bounded) across the cluster.
const (
	// RequestIDHeader carries the request ID on both inbound requests
	// and outbound backend hops, and is echoed on every response.
	RequestIDHeader = "X-Request-ID"
	// DeadlineHeader carries the remaining request budget in integer
	// milliseconds on router→shardnode hops.
	DeadlineHeader = "X-Deadline-Ms"
)

type contextKey int

const requestIDKey contextKey = iota

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID keeps client-supplied IDs loggable: printable
// ASCII, capped length. Anything else is discarded so a hostile
// header can't inject log lines or unbounded bytes.
func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// Middleware is one composable layer of per-request behaviour.
type Middleware func(http.Handler) http.Handler

// Chain wraps h with mws so that mws[0] is the outermost layer —
// Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the response status while preserving the
// optional interfaces the handlers rely on: Flush for streaming
// endpoints and Unwrap for http.ResponseController (EnableFullDuplex
// in the NDJSON ingest handler).
type statusWriter struct {
	http.ResponseWriter
	status  int
	started bool
}

// wrapWriter reuses an enclosing middleware's statusWriter instead of
// stacking a second one.
func wrapWriter(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw
	}
	return &statusWriter{ResponseWriter: w}
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.started {
		w.status, w.started = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.started {
		w.status, w.started = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) statusCode() int {
	if !w.started {
		return http.StatusOK
	}
	return w.status
}

// RequestID is the outermost middleware: it adopts a valid inbound
// X-Request-ID or generates one, stores it in the request context
// (where outbound cluster hops pick it up), and echoes it on the
// response so clients can quote it in bug reports.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
			if id == "" {
				id = NewRequestID()
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
		})
	}
}

// Deadline applies an inbound X-Deadline-Ms hop header as a context
// deadline, so work started for an upstream that has already given up
// cancels instead of running to completion. An exhausted budget is
// answered 504 before the handler runs. max, when > 0, caps the
// accepted budget. Requests without the header pass through
// untouched.
func Deadline(max time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			raw := r.Header.Get(DeadlineHeader)
			if raw == "" {
				next.ServeHTTP(w, r)
				return
			}
			ms, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				http.Error(w, "bad "+DeadlineHeader, http.StatusBadRequest)
				return
			}
			if ms <= 0 {
				http.Error(w, "deadline exhausted before arrival", http.StatusGatewayTimeout)
				return
			}
			d := time.Duration(ms) * time.Millisecond
			if max > 0 && d > max {
				d = max
			}
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// Tracing roots a span tree for each request (adopting an inbound
// traceparent so node-side spans stitch under the router's RPC span),
// feeds the finished request into the SLO engine, and hands the trace
// to the tracer's tail-based keep decision: SLO breaches and 5xx are
// always captured, the rest sampled. Either tracer or slo may be nil;
// with both nil the middleware is a pass-through.
func Tracing(tracer *Tracer, slo *SLO, route func(*http.Request) string) Middleware {
	return func(next http.Handler) http.Handler {
		if tracer == nil && slo == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rt := route(r)
			ctx, root := tracer.StartTrace(r.Context(), rt, r.Header.Get(TraceParentHeader))
			root.Annotate("method", r.Method)
			if id := RequestIDFrom(ctx); id != "" {
				root.Annotate("request_id", id)
			}
			start := time.Now()
			sw := wrapWriter(w)
			next.ServeHTTP(sw, r.WithContext(ctx))
			dur := time.Since(start)
			code := sw.statusCode()
			slo.Observe(rt, dur, code)
			root.Annotate("status", strconv.Itoa(code))
			root.End(nil)
			// A 5xx on an SLO-exempt probe route is an expected boot
			// signal (/readyz answers 503 until recovery); keeping every
			// one would let a fast readiness poller fill the trace ring
			// before the first real request.
			errored := code >= 500 && !slo.Exempted(rt)
			tracer.Finish(TraceFrom(ctx), code, slo.Breached(rt, dur, code), errored)
		})
	}
}

// Metrics records http_requests_total{route,code},
// http_request_duration_seconds{route} and http_inflight_requests
// into reg. route maps a request to a bounded label value (use
// patterns like "/documents/{id}", never raw paths). Duration
// observations of traced requests become bucket exemplars when the
// tracer keeps the trace (place Metrics inside Tracing in the chain).
func Metrics(reg *Registry, route func(*http.Request) string) Middleware {
	inflight := reg.Gauge("http_inflight_requests", "Requests currently being served.")
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rt := route(r)
			start := time.Now()
			inflight.Add(1)
			sw := wrapWriter(w)
			defer func() {
				inflight.Add(-1)
				reg.Histogram("http_request_duration_seconds",
					"Wall time per request by route.", nil, L("route", rt)).ObserveSinceCtx(r.Context(), start)
				reg.Counter("http_requests_total",
					"Requests served by route and status code.",
					L("route", rt), L("code", strconv.Itoa(sw.statusCode()))).Inc()
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// RequestLog emits one structured line per completed request —
// route, status, request ID, trace ID, duration, shard count — when
// enabled. Both binaries share it behind their -log-requests flag;
// shards reports the serving shard count (0 while a server is still
// loading). trace= is "-" for untraced requests so the line shape
// stays fixed for log parsers.
func RequestLog(enabled bool, route func(*http.Request) string, shards func() int) Middleware {
	return func(next http.Handler) http.Handler {
		if !enabled {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := wrapWriter(w)
			next.ServeHTTP(sw, r)
			trace := TraceIDFrom(r.Context())
			if trace == "" {
				trace = "-"
			}
			log.Printf("request id=%s trace=%s route=%s method=%s status=%d dur=%s shards=%d",
				RequestIDFrom(r.Context()), trace, route(r), r.Method, sw.statusCode(),
				time.Since(start).Round(time.Microsecond), shards())
		})
	}
}

// Recover is the innermost middleware: a handler panic becomes a 500
// (when the response hasn't started), a stack trace in the log tagged
// with the request ID, and an http_panics_total increment — one bad
// request must not take down the process.
func Recover(reg *Registry) Middleware {
	panics := reg.Counter("http_panics_total", "Handler panics recovered to HTTP 500.")
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrapWriter(w)
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				panics.Inc()
				log.Printf("panic id=%s route=%s: %v\n%s",
					RequestIDFrom(r.Context()), r.URL.Path, p, debug.Stack())
				if !sw.started {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}
