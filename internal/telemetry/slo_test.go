package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock drives the SLO ring deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newFakeSLO(cfg SLOConfig) (*SLO, *fakeClock) {
	s := NewSLO(cfg, nil)
	c := newFakeClock()
	s.now = c.now
	return s, c
}

func TestSLOBreached(t *testing.T) {
	s, _ := newFakeSLO(SLOConfig{
		Default: SLOObjective{LatencyThreshold: 100 * time.Millisecond},
		Routes:  map[string]SLOObjective{"/slow": {LatencyThreshold: time.Second}},
	})
	if s.Breached("/ask", 50*time.Millisecond, 200) {
		t.Error("fast 200 flagged as breach")
	}
	if !s.Breached("/ask", 200*time.Millisecond, 200) {
		t.Error("slow request not flagged")
	}
	if !s.Breached("/ask", time.Millisecond, 500) {
		t.Error("5xx not flagged")
	}
	if s.Breached("/slow", 200*time.Millisecond, 200) {
		t.Error("per-route override ignored: 200ms breaches the 1s route")
	}
	var nilSLO *SLO
	if nilSLO.Breached("/ask", time.Hour, 500) {
		t.Error("nil SLO must never breach")
	}
}

// TestSLOExempt: probe routes opt out of objectives entirely — a
// booting node's /readyz 503s are expected signals, and must neither
// burn budget nor flag breaches (which would fill the trace ring).
func TestSLOExempt(t *testing.T) {
	s, _ := newFakeSLO(SLOConfig{
		Default: SLOObjective{LatencyThreshold: 100 * time.Millisecond},
		Exempt:  []string{"/readyz"},
	})
	if s.Breached("/readyz", time.Second, 503) {
		t.Error("exempt route flagged as breach")
	}
	if !s.Exempted("/readyz") || s.Exempted("/ask") {
		t.Error("Exempted() wrong for configured routes")
	}
	s.Observe("/readyz", time.Second, 503)
	if len(s.Status()) != 0 {
		t.Errorf("exempt route tracked: %+v", s.Status())
	}
	var nilSLO *SLO
	if nilSLO.Exempted("/readyz") {
		t.Error("nil SLO claims exemptions")
	}
}

// TestSLOBurnRates: 50% bad at a 99% target burns 50x the budget —
// page territory — and an idle window burns nothing.
func TestSLOBurnRates(t *testing.T) {
	s, clock := newFakeSLO(SLOConfig{
		Default: SLOObjective{
			LatencyThreshold:   100 * time.Millisecond,
			LatencyTarget:      0.99,
			AvailabilityTarget: 0.999,
		},
	})
	// Spread traffic over 2 minutes so several ring buckets fill:
	// half the requests are slow, one in ten errors.
	for i := 0; i < 120; i++ {
		dur := 10 * time.Millisecond
		if i%2 == 0 {
			dur = 300 * time.Millisecond
		}
		status := 200
		if i%10 == 0 {
			status = 502
		}
		s.Observe("/search", dur, status)
		clock.advance(time.Second)
	}

	st := s.Status()
	if len(st) != 1 || st[0].Route != "/search" {
		t.Fatalf("status = %+v", st)
	}
	r := st[0]
	if r.Requests != 120 || r.Slow != 60 || r.Errors != 12 {
		t.Fatalf("counted requests=%d slow=%d errors=%d", r.Requests, r.Slow, r.Errors)
	}
	// Latency burn: 0.5 bad fraction / 0.01 budget = 50.
	if math.Abs(r.Latency.Burn5m-50) > 0.5 || math.Abs(r.Latency.Burn1h-50) > 0.5 {
		t.Errorf("latency burn 5m=%.1f 1h=%.1f, want ~50", r.Latency.Burn5m, r.Latency.Burn1h)
	}
	if r.Latency.Alert != "page" {
		t.Errorf("latency alert = %q, want page (both windows over 14.4)", r.Latency.Alert)
	}
	// Availability burn: 0.1 bad fraction / 0.001 budget = 100.
	if math.Abs(r.Availability.Burn5m-100) > 1 {
		t.Errorf("availability burn 5m=%.1f, want ~100", r.Availability.Burn5m)
	}
	if r.LatencyCompliance != 0.5 {
		t.Errorf("latency compliance %.3f, want 0.5", r.LatencyCompliance)
	}

	// An hour of silence later, the windows are empty and the alert
	// clears, while lifetime counters persist.
	clock.advance(61 * time.Minute)
	r = s.Status()[0]
	if r.Latency.Burn5m != 0 || r.Latency.Burn1h != 0 || r.Latency.Alert != "" {
		t.Errorf("stale windows still burn: %+v", r.Latency)
	}
	if r.Requests != 120 {
		t.Errorf("lifetime counter lost: %d", r.Requests)
	}
}

// TestSLOWindowSeparation: a burst that ended 10 minutes ago has left
// the 5m window but still shows in 30m and 1h.
func TestSLOWindowSeparation(t *testing.T) {
	s, clock := newFakeSLO(SLOConfig{
		Default: SLOObjective{LatencyThreshold: 100 * time.Millisecond},
	})
	for i := 0; i < 30; i++ {
		s.Observe("/ask", 500*time.Millisecond, 200) // all slow
		clock.advance(time.Second)
	}
	clock.advance(10 * time.Minute)
	r := s.Status()[0]
	if r.Latency.Burn5m != 0 {
		t.Errorf("5m window still sees a 10-minute-old burst: %.1f", r.Latency.Burn5m)
	}
	if r.Latency.Burn30m == 0 || r.Latency.Burn1h == 0 {
		t.Errorf("30m/1h windows lost the burst: %+v", r.Latency)
	}
	if r.Latency.Alert == "page" {
		t.Errorf("multiwindow policy paged without 5m burn: %+v", r.Latency)
	}
}

// TestSLOGauges: registering with a registry exposes slo_burn_rate
// gauges per route, objective, and window.
func TestSLOGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(SLOConfig{Default: SLOObjective{LatencyThreshold: 10 * time.Millisecond}}, reg)
	c := newFakeClock()
	s.now = c.now
	s.Observe("/ask", time.Second, 200)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`slo_burn_rate{objective="latency",route="/ask",window="5m"}`,
		`slo_burn_rate{objective="availability",route="/ask",window="1h"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestSLOHandler: GET /slo round-trips to JSON with the objective in
// integer milliseconds.
func TestSLOHandler(t *testing.T) {
	s, _ := newFakeSLO(SLOConfig{
		Default: SLOObjective{LatencyThreshold: 250 * time.Millisecond},
	})
	s.Observe("/ask", time.Second, 200)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Default struct {
			LatencyThresholdMs int64 `json:"latency_threshold_ms"`
		} `json:"default_objective"`
		Routes []struct {
			Route string `json:"route"`
			Slow  uint64 `json:"slow"`
		} `json:"routes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Default.LatencyThresholdMs != 250 {
		t.Errorf("default threshold %dms, want 250", resp.Default.LatencyThresholdMs)
	}
	if len(resp.Routes) != 1 || resp.Routes[0].Route != "/ask" || resp.Routes[0].Slow != 1 {
		t.Errorf("routes = %+v", resp.Routes)
	}

	// POST is rejected; a nil engine still serves an empty document.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/slo", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
	var nilSLO *SLO
	rec = httptest.NewRecorder()
	nilSLO.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Errorf("nil engine status %d, want 200", rec.Code)
	}
}
