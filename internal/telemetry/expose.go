package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// fmtFloat renders a float the way the Prometheus text format wants:
// shortest exact representation, "+Inf" for infinity.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers, then one line per
// series, with cumulative `_bucket{le=...}` plus `_sum`/`_count` for
// histograms. Families and series are emitted in sorted order so
// scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		v := s.counter.Value()
		if s.counterFn != nil {
			v = s.counterFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), v)
		return err
	case kindGauge:
		v := s.gauge.Value()
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels), fmtFloat(v))
		return err
	default:
		snap := s.hist.Snapshot()
		var cum uint64
		for i, b := range snap.Bounds {
			cum += snap.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, L("le", fmtFloat(b))), cum); err != nil {
				return err
			}
		}
		if len(snap.Counts) > 0 {
			cum += snap.Counts[len(snap.Counts)-1]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, L("le", "+Inf")), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels), fmtFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels), cum)
		return err
	}
}

// Handler returns the GET /metrics endpoint: the registry in
// Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
