package telemetry

import "runtime"

// Version identifies the build in build_info and is meant to be
// stamped at link time:
//
//	go build -ldflags "-X repro/internal/telemetry.Version=v1.2.3"
var Version = "dev"

// RegisterBuildInfo publishes the conventional build_info gauge: value
// is always 1 and the interesting content lives in the labels —
// binary name, stamped version, Go runtime version, plus any extra
// configuration labels the binary wants discoverable from /metrics
// (index kind, quantization mode).
func RegisterBuildInfo(reg *Registry, binary string, extra ...Label) {
	labels := append([]Label{
		L("binary", binary),
		L("version", Version),
		L("goversion", runtime.Version()),
	}, extra...)
	reg.Gauge("build_info",
		"Build and configuration identity; the value is always 1.", labels...).Set(1)
}
