package telemetry

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func get(h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRequestIDEchoAndGeneration(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), RequestID())

	// A valid client-supplied ID is adopted and echoed.
	rec := get(h, "/x", map[string]string{RequestIDHeader: "client-id-42"})
	if seen != "client-id-42" {
		t.Errorf("handler saw request ID %q, want client-id-42", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-42" {
		t.Errorf("response echoed %q, want client-id-42", got)
	}

	// No header → a fresh 16-hex-char ID, also echoed.
	rec = get(h, "/x", nil)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(seen) {
		t.Errorf("generated ID %q is not 16 hex chars", seen)
	}
	if rec.Header().Get(RequestIDHeader) != seen {
		t.Error("generated ID not echoed on the response")
	}

	// A hostile header (control bytes) is discarded, not propagated.
	get(h, "/x", map[string]string{RequestIDHeader: "bad\x01id"})
	if strings.Contains(seen, "\x01") {
		t.Errorf("unsanitized ID %q reached the handler", seen)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	// A slow backend must observe context.DeadlineExceeded when the
	// inbound X-Deadline-Ms budget runs out before it finishes.
	errCh := make(chan error, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			errCh <- r.Context().Err()
			w.WriteHeader(http.StatusServiceUnavailable)
		case <-time.After(5 * time.Second):
			errCh <- nil
		}
	})
	h := Chain(slow, Deadline(0))
	get(h, "/x", map[string]string{DeadlineHeader: "25"})
	select {
	case err := <-errCh:
		if err != context.DeadlineExceeded {
			t.Errorf("handler context error = %v, want DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never observed the deadline")
	}

	// max caps an oversized budget.
	hCapped := Chain(slow, Deadline(20*time.Millisecond))
	get(hCapped, "/x", map[string]string{DeadlineHeader: "60000"})
	select {
	case err := <-errCh:
		if err != context.DeadlineExceeded {
			t.Errorf("capped budget: context error = %v, want DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cap was not applied")
	}

	// An exhausted budget is refused before the handler runs.
	ran := false
	h2 := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { ran = true }), Deadline(0))
	rec := get(h2, "/x", map[string]string{DeadlineHeader: "0"})
	if rec.Code != http.StatusGatewayTimeout || ran {
		t.Errorf("exhausted budget: status=%d ran=%v, want 504 and no handler run", rec.Code, ran)
	}
	// A malformed header is the client's error.
	rec = get(h2, "/x", map[string]string{DeadlineHeader: "soon"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed header: status=%d, want 400", rec.Code)
	}
	// No header passes through untouched.
	rec = get(h2, "/x", nil)
	if !ran || rec.Code != http.StatusOK {
		t.Errorf("no header: status=%d ran=%v, want 200 and handler run", rec.Code, ran)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	reg := NewRegistry()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(reg))
	rec := get(h, "/x", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if got := reg.CounterValue("http_panics_total"); got != 1 {
		t.Errorf("http_panics_total = %d, want 1", got)
	}
	// A panic after the response started can't rewrite the status, but
	// must still be counted and recovered.
	h2 := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late boom")
	}), Recover(reg))
	rec = get(h2, "/x", nil)
	if rec.Code != http.StatusAccepted {
		t.Errorf("late panic rewrote status to %d", rec.Code)
	}
	if got := reg.CounterValue("http_panics_total"); got != 2 {
		t.Errorf("http_panics_total = %d, want 2", got)
	}
}

func TestMetricsMiddleware(t *testing.T) {
	reg := NewRegistry()
	route := func(r *http.Request) string { return "/fixed" }
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}), Metrics(reg, route))
	get(h, "/a", nil)
	get(h, "/a", nil)
	get(h, "/missing", nil)
	if got := reg.CounterValue("http_requests_total", L("route", "/fixed"), L("code", "200")); got != 2 {
		t.Errorf("200 count = %d, want 2", got)
	}
	if got := reg.CounterValue("http_requests_total", L("route", "/fixed"), L("code", "404")); got != 1 {
		t.Errorf("404 count = %d, want 1", got)
	}
	snaps := reg.HistogramSnapshots("http_request_duration_seconds")
	if s, ok := snaps["route=/fixed"]; !ok || s.Count != 3 {
		t.Errorf("duration histogram count = %d (ok=%v), want 3", s.Count, ok)
	}
	// In-flight must return to zero once requests complete.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "http_inflight_requests 0") {
		t.Errorf("in-flight gauge did not return to 0:\n%s", b.String())
	}
}

// TestChainOrder pins the composition contract: Chain(h, a, b) runs a
// outermost — the order both binaries rely on (request ID before
// metrics before deadline before recovery).
func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), mk("outer"), mk("inner"))
	get(h, "/x", nil)
	if strings.Join(order, ",") != "outer,inner,handler" {
		t.Errorf("execution order = %v", order)
	}
}

// TestStatusWriterPreservesFlusher guards the streaming-ingest
// contract: wrapping must not hide http.Flusher or the Unwrap path
// http.ResponseController uses for EnableFullDuplex.
func TestStatusWriterPreservesFlusher(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("Flusher lost through middleware")
		}
		rc := http.NewResponseController(w)
		if err := rc.Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
		}
	}), RequestID(), Metrics(NewRegistry(), func(*http.Request) string { return "x" }), Recover(NewRegistry()))
	get(h, "/x", nil)
}
