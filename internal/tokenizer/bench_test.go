package tokenizer

import (
	"strings"
	"testing"
)

func benchTokenizer(b *testing.B) *Tokenizer {
	b.Helper()
	tok := New()
	corpus := []string{
		"the working hours are 9 AM to 5 PM",
		"the store is open from Sunday to Saturday",
		"yes the answer is supported by the context",
		"no the answer is not supported by the context",
	}
	if err := tok.Train(corpus, 200); err != nil {
		b.Fatal(err)
	}
	return tok
}

func BenchmarkEncode(b *testing.B) {
	tok := benchTokenizer(b)
	text := strings.Repeat("the answer is supported by the context ", 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(text)
	}
	b.SetBytes(int64(len(text)))
}

func BenchmarkDecode(b *testing.B) {
	tok := benchTokenizer(b)
	ids := tok.Encode(strings.Repeat("the answer is supported by the context ", 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tok.Decode(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	corpus := []string{
		"the working hours are 9 AM to 5 PM",
		"the store is open from Sunday to Saturday",
		"yes the answer is supported by the context",
		"no the answer is not supported by the context",
		"employees receive annual leave and sick leave",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := New()
		if err := tok.Train(corpus, 100); err != nil {
			b.Fatal(err)
		}
	}
}
