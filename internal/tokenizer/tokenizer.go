// Package tokenizer implements a byte-pair-encoding (BPE) tokenizer of
// the kind used by Qwen2 and MiniCPM. It supports training merge rules
// from a corpus, encoding text to token IDs, decoding back, and JSON
// persistence. The SLM inference engine consumes it to turn prompts
// into ID sequences and to locate the "yes"/"no" answer tokens whose
// first-token probability the framework reads out (paper Eq. 2).
package tokenizer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Special token IDs occupy the bottom of the ID space.
const (
	PadID = iota // padding
	UnkID        // unknown byte sequence (should not occur: byte fallback)
	BosID        // beginning of sequence
	EosID        // end of sequence
	numSpecial
)

// Special token surface forms.
const (
	PadToken = "<pad>"
	UnkToken = "<unk>"
	BosToken = "<bos>"
	EosToken = "<eos>"
)

// Tokenizer holds a trained BPE vocabulary. The first numSpecial IDs
// are special tokens, the next 256 are raw bytes (byte-level fallback
// guarantees any input round-trips), and the remainder are learned
// merges. Tokenizer is immutable after training/loading and therefore
// safe for concurrent use.
type Tokenizer struct {
	// merges maps a token-ID pair to the merged token's ID, in rank
	// order of training.
	merges map[[2]int]int
	// rank of each merge pair; lower rank merges first (BPE priority).
	ranks map[[2]int]int
	// vocab maps ID to surface string.
	vocab []string
	// lookup maps surface string to ID.
	lookup map[string]int
}

// byteID returns the token ID for raw byte b.
func byteID(b byte) int { return numSpecial + int(b) }

// New returns an untrained tokenizer that falls back to byte-level
// encoding (every byte is its own token).
func New() *Tokenizer {
	t := &Tokenizer{
		merges: map[[2]int]int{},
		ranks:  map[[2]int]int{},
		lookup: map[string]int{},
	}
	t.vocab = make([]string, numSpecial, numSpecial+256)
	t.vocab[PadID] = PadToken
	t.vocab[UnkID] = UnkToken
	t.vocab[BosID] = BosToken
	t.vocab[EosID] = EosToken
	for i := 0; i < 256; i++ {
		t.vocab = append(t.vocab, string([]byte{byte(i)}))
	}
	for id, s := range t.vocab {
		t.lookup[s] = id
	}
	return t
}

// VocabSize returns the number of distinct token IDs.
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// Token returns the surface form of id, or an error for out-of-range
// IDs.
func (t *Tokenizer) Token(id int) (string, error) {
	if id < 0 || id >= len(t.vocab) {
		return "", fmt.Errorf("tokenizer: token id %d out of range [0,%d)", id, len(t.vocab))
	}
	return t.vocab[id], nil
}

// ID returns the token ID whose surface form is exactly s, and whether
// it exists. Used by the SLM to locate the "yes" answer token.
func (t *Tokenizer) ID(s string) (int, bool) {
	id, ok := t.lookup[s]
	return id, ok
}

// Train learns up to maxMerges BPE merge rules from the corpus. It may
// be called once on a fresh tokenizer; retraining is an error.
// Training operates on whitespace-delimited words with a leading-space
// marker, the GPT-2/Qwen convention, so "yes" at word start and
// mid-word "yes" become different tokens.
func (t *Tokenizer) Train(corpus []string, maxMerges int) error {
	if len(t.merges) != 0 {
		return errors.New("tokenizer: already trained")
	}
	if maxMerges < 0 {
		return fmt.Errorf("tokenizer: negative merge budget %d", maxMerges)
	}
	// Word frequency table. Each word is a byte-ID sequence.
	freq := map[string]int{}
	for _, doc := range corpus {
		for i, w := range strings.Fields(doc) {
			if i > 0 || strings.HasPrefix(doc, " ") {
				w = " " + w
			}
			freq[w]++
		}
	}
	type word struct {
		ids []int
		n   int
	}
	words := make([]word, 0, len(freq))
	keys := make([]string, 0, len(freq))
	for w := range freq {
		keys = append(keys, w)
	}
	sort.Strings(keys) // deterministic training independent of map order
	for _, w := range keys {
		ids := make([]int, len(w))
		for i := 0; i < len(w); i++ {
			ids[i] = byteID(w[i])
		}
		words = append(words, word{ids: ids, n: freq[w]})
	}
	for merge := 0; merge < maxMerges; merge++ {
		// Count adjacent pairs.
		pairs := map[[2]int]int{}
		for _, w := range words {
			for i := 0; i+1 < len(w.ids); i++ {
				pairs[[2]int{w.ids[i], w.ids[i+1]}] += w.n
			}
		}
		if len(pairs) == 0 {
			break
		}
		// Most frequent pair; deterministic tie-break on ID order.
		var best [2]int
		bestN := -1
		for p, n := range pairs {
			if n > bestN || (n == bestN && (p[0] < best[0] || (p[0] == best[0] && p[1] < best[1]))) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // nothing worth merging
		}
		newID := len(t.vocab)
		surface := t.vocab[best[0]] + t.vocab[best[1]]
		t.vocab = append(t.vocab, surface)
		t.lookup[surface] = newID
		t.merges[best] = newID
		t.ranks[best] = merge
		// Apply merge to all words.
		for wi := range words {
			ids := words[wi].ids
			out := ids[:0]
			for i := 0; i < len(ids); i++ {
				if i+1 < len(ids) && ids[i] == best[0] && ids[i+1] == best[1] {
					out = append(out, newID)
					i++
				} else {
					out = append(out, ids[i])
				}
			}
			words[wi].ids = out
		}
	}
	return nil
}

// Encode converts text to token IDs (no BOS/EOS added; see EncodeSpecial).
func (t *Tokenizer) Encode(text string) []int {
	var out []int
	for i, w := range strings.Fields(text) {
		if i > 0 || strings.HasPrefix(text, " ") {
			w = " " + w
		}
		out = append(out, t.encodeWord(w)...)
	}
	return out
}

// EncodeSpecial encodes text wrapped in BOS/EOS markers.
func (t *Tokenizer) EncodeSpecial(text string) []int {
	ids := make([]int, 0, len(text)/3+2)
	ids = append(ids, BosID)
	ids = append(ids, t.Encode(text)...)
	return append(ids, EosID)
}

// encodeWord applies the learned merges to one word, lowest rank first.
func (t *Tokenizer) encodeWord(w string) []int {
	ids := make([]int, len(w))
	for i := 0; i < len(w); i++ {
		ids[i] = byteID(w[i])
	}
	for len(ids) >= 2 {
		// Find lowest-rank applicable merge.
		bestRank := int(^uint(0) >> 1)
		bestAt := -1
		for i := 0; i+1 < len(ids); i++ {
			if r, ok := t.ranks[[2]int{ids[i], ids[i+1]}]; ok && r < bestRank {
				bestRank, bestAt = r, i
			}
		}
		if bestAt < 0 {
			break
		}
		merged := t.merges[[2]int{ids[bestAt], ids[bestAt+1]}]
		ids = append(ids[:bestAt], append([]int{merged}, ids[bestAt+2:]...)...)
	}
	return ids
}

// Decode converts token IDs back to text. Special tokens are skipped.
// Unknown IDs yield an error.
func (t *Tokenizer) Decode(ids []int) (string, error) {
	var b strings.Builder
	for _, id := range ids {
		if id >= 0 && id < numSpecial {
			continue
		}
		s, err := t.Token(id)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return strings.TrimPrefix(b.String(), " "), nil
}

// persisted is the JSON wire form of a tokenizer.
type persisted struct {
	Vocab  []string `json:"vocab"`
	Merges [][3]int `json:"merges"` // [a, b, merged] in rank order
}

// Save writes the tokenizer as JSON.
func (t *Tokenizer) Save(w io.Writer) error {
	p := persisted{Vocab: t.vocab}
	type ranked struct {
		pair [2]int
		rank int
		id   int
	}
	rs := make([]ranked, 0, len(t.merges))
	for pair, id := range t.merges {
		rs = append(rs, ranked{pair: pair, rank: t.ranks[pair], id: id})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].rank < rs[j].rank })
	for _, r := range rs {
		p.Merges = append(p.Merges, [3]int{r.pair[0], r.pair[1], r.id})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// SaveFile writes the tokenizer to path, creating or truncating it.
func (t *Tokenizer) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tokenizer: save: %w", err)
	}
	defer f.Close()
	if err := t.Save(f); err != nil {
		return fmt.Errorf("tokenizer: save %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a tokenizer previously written by Save.
func Load(r io.Reader) (*Tokenizer, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("tokenizer: load: %w", err)
	}
	if len(p.Vocab) < numSpecial+256 {
		return nil, fmt.Errorf("tokenizer: vocab too small (%d)", len(p.Vocab))
	}
	t := &Tokenizer{
		merges: map[[2]int]int{},
		ranks:  map[[2]int]int{},
		vocab:  p.Vocab,
		lookup: map[string]int{},
	}
	for id, s := range p.Vocab {
		t.lookup[s] = id
	}
	for rank, m := range p.Merges {
		pair := [2]int{m[0], m[1]}
		if m[2] < 0 || m[2] >= len(p.Vocab) {
			return nil, fmt.Errorf("tokenizer: merge target %d out of range", m[2])
		}
		t.merges[pair] = m[2]
		t.ranks[pair] = rank
	}
	return t, nil
}

// LoadFile reads a tokenizer from path.
func LoadFile(path string) (*Tokenizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tokenizer: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
