package tokenizer

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

var trainingCorpus = []string{
	"the working hours are 9 AM to 5 PM",
	"the store is open from Sunday to Saturday",
	"yes the answer is supported by the context",
	"no the answer is not supported by the context",
	"employees receive annual leave and sick leave",
	"yes yes yes no no no the the the",
}

func trained(t *testing.T, merges int) *Tokenizer {
	t.Helper()
	tok := New()
	if err := tok.Train(trainingCorpus, merges); err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestByteFallbackRoundTrip(t *testing.T) {
	tok := New() // untrained: pure byte-level
	inputs := []string{
		"hello world",
		"The working hours are 9 AM to 5 PM.",
		"unicode: café – “quotes” 中文",
		"x",
	}
	for _, in := range inputs {
		ids := tok.Encode(in)
		out, err := tok.Decode(ids)
		if err != nil {
			t.Fatal(err)
		}
		// Whitespace canonicalization is part of the contract: words
		// survive exactly.
		if canon(out) != canon(in) {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func canon(s string) string { return strings.Join(strings.Fields(s), " ") }

func TestTrainedRoundTrip(t *testing.T) {
	tok := trained(t, 200)
	for _, in := range trainingCorpus {
		ids := tok.Encode(in)
		out, err := tok.Decode(ids)
		if err != nil {
			t.Fatal(err)
		}
		if canon(out) != canon(in) {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	tok := trained(t, 100)
	f := func(s string) bool {
		out, err := tok.Decode(tok.Encode(s))
		if err != nil {
			return false
		}
		return canon(out) == canon(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrainingCompresses(t *testing.T) {
	plain := New()
	tok := trained(t, 200)
	text := strings.Join(trainingCorpus, " ")
	before := len(plain.Encode(text))
	after := len(tok.Encode(text))
	if after >= before {
		t.Errorf("BPE did not compress: %d -> %d tokens", before, after)
	}
}

func TestTrainTwiceFails(t *testing.T) {
	tok := trained(t, 10)
	if err := tok.Train(trainingCorpus, 10); err == nil {
		t.Error("second Train call accepted")
	}
}

func TestTrainNegativeBudget(t *testing.T) {
	tok := New()
	if err := tok.Train(trainingCorpus, -1); err == nil {
		t.Error("negative merge budget accepted")
	}
}

func TestVocabGrowth(t *testing.T) {
	tok := New()
	base := tok.VocabSize()
	if base != 4+256 {
		t.Fatalf("base vocab = %d, want 260", base)
	}
	if err := tok.Train(trainingCorpus, 50); err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() <= base {
		t.Error("training added no merges")
	}
	if tok.VocabSize() > base+50 {
		t.Errorf("vocab %d exceeds merge budget", tok.VocabSize())
	}
}

func TestSpecialTokens(t *testing.T) {
	tok := New()
	ids := tok.EncodeSpecial("hi")
	if ids[0] != BosID || ids[len(ids)-1] != EosID {
		t.Errorf("EncodeSpecial missing BOS/EOS: %v", ids)
	}
	out, err := tok.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hi" {
		t.Errorf("special tokens leaked into decode: %q", out)
	}
}

func TestTokenErrors(t *testing.T) {
	tok := New()
	if _, err := tok.Token(-1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := tok.Token(tok.VocabSize()); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := tok.Decode([]int{1 << 20}); err == nil {
		t.Error("Decode accepted bogus id")
	}
}

func TestIDLookup(t *testing.T) {
	tok := trained(t, 200)
	// " yes" (leading-space convention) should have become a token in
	// this corpus.
	id, ok := tok.ID(" yes")
	if !ok {
		t.Skip("corpus too small to merge ' yes'; acceptable")
	}
	s, err := tok.Token(id)
	if err != nil || s != " yes" {
		t.Errorf("Token(ID(' yes')) = %q, %v", s, err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tok := trained(t, 120)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != tok.VocabSize() {
		t.Fatalf("vocab size %d != %d", loaded.VocabSize(), tok.VocabSize())
	}
	for _, in := range append(trainingCorpus, "unseen words entirely") {
		a, b := tok.Encode(in), loaded.Encode(in)
		if len(a) != len(b) {
			t.Fatalf("encoding diverged for %q: %v vs %v", in, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("encoding diverged for %q at %d", in, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"vocab":["a"],"merges":[]}`)); err == nil {
		t.Error("tiny vocab accepted")
	}
	if _, err := Load(strings.NewReader(`{"vocab":null,"merges":[[0,1,999999]]}`)); err == nil {
		t.Error("out-of-range merge accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, b := New(), New()
	if err := a.Train(trainingCorpus, 80); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(trainingCorpus, 80); err != nil {
		t.Fatal(err)
	}
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("training nondeterministic: vocab sizes differ")
	}
	for i := 0; i < a.VocabSize(); i++ {
		sa, _ := a.Token(i)
		sb, _ := b.Token(i)
		if sa != sb {
			t.Fatalf("training nondeterministic at id %d: %q vs %q", i, sa, sb)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	tok := trained(t, 40)
	path := t.TempDir() + "/tok.json"
	if err := tok.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != tok.VocabSize() {
		t.Error("file round trip changed vocab")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
