package textproc

import "testing"

var benchSentence = "The store operates from 9 AM to 5 PM, from Sunday to Saturday, and employees receive 14 days of paid annual leave per year."

func BenchmarkNormalize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Normalize(benchSentence)
	}
}

func BenchmarkContentWords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ContentWords(benchSentence)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"employees", "entitled", "operational", "relational", "hopefulness"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkExtractQuantities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ExtractQuantities(benchSentence)
	}
}

func BenchmarkExtractFeatures(b *testing.B) {
	claim := "The working hours are 9 AM to 5 PM, and the store is open from Monday to Friday."
	for i := 0; i < b.N; i++ {
		ExtractFeatures(claim, benchSentence)
	}
}
