package textproc

import "strings"

// antonymPairs lists stemmed word pairs whose co-occurrence across a
// claim/evidence pair signals a polarity flip ("permitted" in the
// handbook vs "prohibited" in the answer). Both orientations are
// registered at init.
var antonymPairs = [][2]string{
	{"allow", "forbid"}, {"allow", "prohibit"}, {"permit", "prohibit"},
	{"permit", "forbid"}, {"open", "close"}, {"includ", "exclud"},
	{"requir", "option"}, {"mandatori", "option"}, {"paid", "unpaid"},
	{"full-tim", "part-tim"}, {"start", "end"}, {"begin", "end"},
	{"befor", "after"}, {"earli", "late"}, {"increas", "decreas"},
	{"maximum", "minimum"}, {"max", "min"}, {"large", "small"},
	{"big", "small"}, {"quiet", "busi"}, {"healthi", "unhealthi"},
	{"weekday", "weekend"}, {"accept", "reject"}, {"approv", "deni"},
	{"grant", "deni"}, {"eligibl", "ineligibl"}, {"formal", "casual"},
	{"entitl", "disentitl"}, {"refund", "charg"},
}

var antonyms = map[string]map[string]struct{}{}

func init() {
	add := func(a, b string) {
		if antonyms[a] == nil {
			antonyms[a] = map[string]struct{}{}
		}
		antonyms[a][b] = struct{}{}
	}
	for _, p := range antonymPairs {
		add(p[0], p[1])
		add(p[1], p[0])
	}
}

// AreAntonyms reports whether two stemmed words are registered
// opposites.
func AreAntonyms(a, b string) bool {
	set, ok := antonyms[a]
	if !ok {
		return false
	}
	_, ok = set[b]
	return ok
}

// AntonymClashes counts claim tokens that have a registered antonym
// present in the evidence. Tokens must already be stemmed (as produced
// by ContentWords).
func AntonymClashes(claim, evidence []string) int {
	evSet := make(map[string]struct{}, len(evidence))
	for _, t := range evidence {
		evSet[t] = struct{}{}
	}
	clashes := 0
	for _, t := range claim {
		set, ok := antonyms[t]
		if !ok {
			continue
		}
		for opp := range set {
			if _, hit := evSet[opp]; hit {
				clashes++
				break
			}
		}
	}
	return clashes
}

// negationMarkers flip the polarity of the clause they appear in.
var negationMarkers = map[string]struct{}{
	"not": {}, "no": {}, "never": {}, "none": {}, "nothing": {},
	"neither": {}, "nor": {}, "without": {}, "cannot": {}, "can't": {},
	"don't": {}, "doesn't": {}, "didn't": {}, "won't": {}, "isn't": {},
	"aren't": {}, "wasn't": {}, "weren't": {}, "shouldn't": {},
	"mustn't": {}, "n't": {},
}

// CountNegations returns the number of negation markers in the raw
// (unstemmed, lowercased) token stream of s.
func CountNegations(s string) int {
	n := 0
	for _, w := range Words(s) {
		if _, ok := negationMarkers[w]; ok {
			n++
			continue
		}
		if strings.HasSuffix(w, "n't") {
			n++
		}
	}
	return n
}

// NegationMismatch reports whether exactly one of claim/evidence is
// negated with respect to shared content. It is a coarse cue: a claim
// saying "you do not need to work on weekends" against evidence
// "operates Sunday to Saturday" shows a polarity asymmetry that the
// verifier should treat as contradiction evidence.
func NegationMismatch(claim, evidence string) bool {
	c := CountNegations(claim) % 2
	e := CountNegations(evidence) % 2
	return c != e
}

// hedgeWords signal uncertainty; instruction-tuned verifiers are known
// to down-weight hedged claims, and the calibrated SLM backend mimics
// that.
var hedgeWords = map[string]struct{}{
	"might": {}, "maybe": {}, "perhaps": {}, "possibly": {},
	"probably": {}, "likely": {}, "approximately": {}, "around": {},
	"roughly": {}, "usually": {}, "sometimes": {}, "often": {},
}

// CountHedges returns the number of hedging markers in s.
func CountHedges(s string) int {
	n := 0
	for _, w := range Words(s) {
		if _, ok := hedgeWords[w]; ok {
			n++
		}
	}
	return n
}
