// Package textproc provides the text-processing substrate used throughout
// the hallucination-detection framework: Unicode-aware normalization,
// tokenization into words, a Porter stemmer, stopword filtering, and
// parsers for the numeric, temporal and calendar expressions that HR
// policy text is full of ("9 AM", "Monday to Friday", "500K", "3 days").
//
// The package is dependency-free and deterministic; every function is
// safe for concurrent use.
package textproc

import (
	"strings"
	"unicode"
)

// Normalize lowercases s, folds common Unicode punctuation to ASCII,
// collapses internal whitespace runs to single spaces, and trims the
// result. It is the canonical first step before any comparison between
// a response sentence and its context.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // trim leading space
	for _, r := range s {
		r = foldRune(r)
		if unicode.IsSpace(r) {
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
			continue
		}
		prevSpace = false
		b.WriteRune(unicode.ToLower(r))
	}
	return strings.TrimRight(b.String(), " ")
}

// foldRune maps typographic punctuation to its ASCII equivalent so that
// curly quotes, en/em dashes and ellipses from word processors compare
// equal to their plain-text forms.
func foldRune(r rune) rune {
	switch r {
	case '‘', '’', '‚', '′': // single quotes, prime
		return '\''
	case '“', '”', '„', '″': // double quotes
		return '"'
	case '–', '—', '−': // en dash, em dash, minus
		return '-'
	case ' ', ' ', ' ': // no-break spaces
		return ' '
	default:
		return r
	}
}

// Words splits s into lowercase word tokens. A word is a maximal run of
// letters, digits, or the characters '\” and '-' appearing between
// letters (so "don't" and "part-time" stay whole). Punctuation is
// dropped. Numbers keep attached suffixes such as "9am" intact so the
// time parser can handle them.
func Words(s string) []string {
	s = Normalize(s)
	words := make([]string, 0, len(s)/5+1)
	start := -1
	runes := []rune(s)
	isWordRune := func(i int) bool {
		r := runes[i]
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
		if (r == '\'' || r == '-') && i > 0 && i+1 < len(runes) {
			return isAlnum(runes[i-1]) && isAlnum(runes[i+1])
		}
		// ':' inside a clock time such as 9:30
		if r == ':' && i > 0 && i+1 < len(runes) {
			return unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1])
		}
		// '.' inside a decimal such as 2.5
		if r == '.' && i > 0 && i+1 < len(runes) {
			return unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1])
		}
		// '%' glued to a number ("90%") must survive for the
		// quantity parser.
		if r == '%' && i > 0 {
			return unicode.IsDigit(runes[i-1])
		}
		return false
	}
	for i := range runes {
		if isWordRune(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, string(runes[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, string(runes[start:]))
	}
	return words
}

func isAlnum(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) }

// ContentWords returns the stemmed, stopword-free word list of s. This
// is the representation used for lexical-overlap features between a
// candidate sentence and the retrieved context.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0]
	for _, w := range ws {
		if IsStopword(w) {
			continue
		}
		out = append(out, Stem(w))
	}
	return out
}

// Bigrams returns adjacent-pair strings ("a b") over the given tokens.
// Bigram overlap is a sharper evidence signal than unigrams because HR
// policy facts are often two-word collocations ("annual leave",
// "probation period").
func Bigrams(tokens []string) []string {
	if len(tokens) < 2 {
		return nil
	}
	out := make([]string, 0, len(tokens)-1)
	for i := 0; i+1 < len(tokens); i++ {
		out = append(out, tokens[i]+" "+tokens[i+1])
	}
	return out
}

// OverlapRatio computes |A ∩ B| / |A| over two token multisets, where A
// is the claim's tokens and B the evidence's. It answers "what fraction
// of the claim is supported by the evidence" and is directional on
// purpose: extra evidence must not penalize a short claim.
func OverlapRatio(claim, evidence []string) float64 {
	if len(claim) == 0 {
		return 0
	}
	have := make(map[string]int, len(evidence))
	for _, t := range evidence {
		have[t]++
	}
	matched := 0
	for _, t := range claim {
		if have[t] > 0 {
			have[t]--
			matched++
		}
	}
	return float64(matched) / float64(len(claim))
}

// Jaccard computes the Jaccard similarity |A∩B| / |A∪B| over token sets
// (duplicates ignored). Symmetric counterpart to OverlapRatio, used by
// the dataset generator's self-checks.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
