package textproc

// stopwords is a compact English stopword list tuned for policy text:
// it removes glue words but deliberately keeps negations ("not", "no",
// "never", "without"), modals ("must", "should") and quantity cues
// ("all", "only"), because those flip the truth value of a claim and
// are consumed by the contradiction detector rather than discarded.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "the", "and", "or", "but", "if", "then", "than",
		"of", "to", "in", "on", "at", "by", "for", "with", "about",
		"as", "into", "through", "during", "before", "after", "above",
		"below", "from", "up", "down", "out", "off", "over", "under",
		"again", "further", "once", "here", "there", "when", "where",
		"why", "how", "both", "each", "few", "more", "most", "other",
		"some", "such", "own", "same", "so", "too", "very", "can",
		"will", "just", "is", "am", "are", "was", "were", "be", "been",
		"being", "have", "has", "had", "having", "do", "does", "did",
		"doing", "would", "could", "i", "me", "my", "myself", "we",
		"our", "ours", "you", "your", "yours", "he", "him", "his",
		"she", "her", "hers", "it", "its", "they", "them", "their",
		"what", "which", "who", "whom", "this", "that", "these",
		"those", "s", "t", "don", "now", "also", "please", "may",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lowercased) word carries no
// factual content for verification purposes.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}
