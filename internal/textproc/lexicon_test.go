package textproc

import "testing"

func TestAreAntonyms(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"allow", "prohibit", true},
		{"prohibit", "allow", true}, // symmetric
		{"paid", "unpaid", true},
		{"open", "close", true},
		{"allow", "close", false},
		{"banana", "apple", false},
	}
	for _, tc := range cases {
		if got := AreAntonyms(tc.a, tc.b); got != tc.want {
			t.Errorf("AreAntonyms(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAntonymClashes(t *testing.T) {
	claim := ContentWords("personal use is prohibited")
	evidence := ContentWords("personal use is allowed")
	if got := AntonymClashes(claim, evidence); got != 1 {
		t.Errorf("clashes = %d, want 1", got)
	}
	if got := AntonymClashes(claim, claim); got != 0 {
		t.Errorf("self clashes = %d, want 0", got)
	}
}

func TestCountNegations(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{"you do not need to work", 1},
		{"never on weekends, no exceptions", 2},
		{"receipts aren't required", 1},
		{"all receipts are required", 0},
		{"cannot do it without approval", 2},
	}
	for _, tc := range cases {
		if got := CountNegations(tc.text); got != tc.want {
			t.Errorf("CountNegations(%q) = %d, want %d", tc.text, got, tc.want)
		}
	}
}

func TestNegationMismatch(t *testing.T) {
	if !NegationMismatch("you do not work weekends", "the store operates Sunday to Saturday") {
		t.Error("expected mismatch between negated claim and positive evidence")
	}
	if NegationMismatch("open daily", "the store operates daily") {
		t.Error("no mismatch expected for two positive statements")
	}
	// Double negation cancels.
	if NegationMismatch("not not open", "open daily") {
		t.Error("double negation should restore parity")
	}
}

func TestCountHedges(t *testing.T) {
	if got := CountHedges("it is probably around 9, maybe later"); got != 3 {
		t.Errorf("hedges = %d, want 3", got)
	}
	if got := CountHedges("it is exactly 9"); got != 0 {
		t.Errorf("hedges = %d, want 0", got)
	}
}

func TestExtractFeaturesPaperPartial(t *testing.T) {
	contextText := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be at least three shopkeepers to run a shop."
	correct := "The working hours are 9 AM to 5 PM."
	wrongDays := "The store is open from Monday to Friday."
	wrongHours := "The working hours are 9 AM to 9 PM."

	fc := ExtractFeatures(correct, contextText)
	if fc.QuantityConflicts != 0 {
		t.Errorf("correct sentence conflicts = %d, want 0", fc.QuantityConflicts)
	}
	if fc.SupportScore() < 0.5 {
		t.Errorf("correct support = %v, want ≥0.5", fc.SupportScore())
	}

	fd := ExtractFeatures(wrongDays, contextText)
	if fd.QuantityConflicts == 0 {
		t.Error("wrong-days sentence should conflict")
	}
	fh := ExtractFeatures(wrongHours, contextText)
	if fh.QuantityConflicts == 0 {
		t.Error("wrong-hours sentence should conflict")
	}
	if fh.SupportScore() >= fc.SupportScore() {
		t.Errorf("wrong support %v not below correct %v", fh.SupportScore(), fc.SupportScore())
	}
}

func TestSupportScoreBounds(t *testing.T) {
	texts := []string{
		"", "short", "The working hours are 9 AM to 5 PM.",
		"not never no nothing without", "chocolate pizza with 500K residents",
	}
	ctx := "The store operates from 9 AM to 5 PM."
	for _, txt := range texts {
		s := ExtractFeatures(txt, ctx).SupportScore()
		if s < 0 || s > 1 {
			t.Errorf("SupportScore(%q) = %v out of [0,1]", txt, s)
		}
	}
}
