package textproc

import (
	"math"
	"strconv"
	"strings"
)

// Quantity is a numeric fact extracted from text. Kind distinguishes
// clock times (minutes past midnight), weekdays (0=Sunday..6=Saturday),
// plain counts, percentages and money so that a "9" in "9 AM" never
// compares equal to "9 days".
type Quantity struct {
	Kind  QuantityKind
	Value float64
	// Unit is the normalized unit word following a count ("day",
	// "month", "shopkeep", ...); empty for times and weekdays.
	Unit string
}

// QuantityKind labels the semantic type of an extracted Quantity.
type QuantityKind int

// Quantity kinds.
const (
	KindCount QuantityKind = iota
	KindClockTime
	KindWeekday
	KindPercent
	KindMoney
)

// String returns a short label for the kind, for debugging and reports.
func (k QuantityKind) String() string {
	switch k {
	case KindCount:
		return "count"
	case KindClockTime:
		return "time"
	case KindWeekday:
		return "weekday"
	case KindPercent:
		return "percent"
	case KindMoney:
		return "money"
	default:
		return "unknown"
	}
}

var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
	"fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
	"nineteen": 19, "twenty": 20, "thirty": 30, "forty": 40,
	"fifty": 50, "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
	"hundred": 100, "thousand": 1000, "million": 1e6, "billion": 1e9,
}

var weekdays = map[string]float64{
	"sunday": 0, "monday": 1, "tuesday": 2, "wednesday": 3,
	"thursday": 4, "friday": 5, "saturday": 6,
	"sun": 0, "mon": 1, "tue": 2, "tues": 2, "wed": 3, "thu": 4,
	"thur": 4, "thurs": 4, "fri": 5, "sat": 6,
}

// WeekdayIndex returns the 0..6 index (Sunday=0) of a weekday word and
// whether the word was one.
func WeekdayIndex(w string) (int, bool) {
	v, ok := weekdays[strings.ToLower(w)]
	return int(v), ok
}

// WeekdayName returns the capitalized English name for index 0..6
// (Sunday=0). Out-of-range indexes are reduced modulo 7.
func WeekdayName(i int) string {
	names := [...]string{"Sunday", "Monday", "Tuesday", "Wednesday",
		"Thursday", "Friday", "Saturday"}
	i %= 7
	if i < 0 {
		i += 7
	}
	return names[i]
}

// parseNumericToken parses tokens like "9", "2.5", "500k", "9:30",
// "10%". It returns the value, a kind hint, and ok.
func parseNumericToken(tok string) (float64, QuantityKind, bool) {
	tok = strings.ToLower(strings.TrimSuffix(tok, "."))
	if tok == "" {
		return 0, KindCount, false
	}
	if v, ok := numberWords[tok]; ok {
		return v, KindCount, true
	}
	if i := strings.IndexByte(tok, ':'); i > 0 {
		h, err1 := strconv.Atoi(tok[:i])
		m, err2 := strconv.Atoi(tok[i+1:])
		if err1 == nil && err2 == nil && h >= 0 && h <= 24 && m >= 0 && m < 60 {
			return float64(h*60 + m), KindClockTime, true
		}
		return 0, KindCount, false
	}
	kind := KindCount
	mult := 1.0
	switch {
	case strings.HasSuffix(tok, "%"):
		kind = KindPercent
		tok = strings.TrimSuffix(tok, "%")
	case strings.HasSuffix(tok, "k"):
		mult = 1e3
		tok = strings.TrimSuffix(tok, "k")
	case strings.HasSuffix(tok, "m"):
		mult = 1e6
		tok = strings.TrimSuffix(tok, "m")
	case strings.HasPrefix(tok, "$"):
		kind = KindMoney
		tok = strings.TrimPrefix(tok, "$")
	case strings.HasPrefix(tok, "hk$"):
		kind = KindMoney
		tok = strings.TrimPrefix(tok, "hk$")
	}
	tok = strings.ReplaceAll(tok, ",", "")
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, KindCount, false
	}
	return v * mult, kind, true
}

// ExtractQuantities scans text for numeric facts: clock times ("9 AM",
// "17:30"), weekday mentions, counts with their unit noun, percentages
// and money amounts. The returned slice preserves textual order.
//
// Clock times are normalized to minutes past midnight; "9 AM" → 540,
// "5 PM" → 1020. A bare "noon" and "midnight" are understood.
func ExtractQuantities(text string) []Quantity {
	toks := Words(text)
	var out []Quantity
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if idx, ok := weekdays[t]; ok {
			out = append(out, Quantity{Kind: KindWeekday, Value: idx})
			continue
		}
		switch t {
		case "noon", "midday":
			out = append(out, Quantity{Kind: KindClockTime, Value: 12 * 60})
			continue
		case "midnight":
			out = append(out, Quantity{Kind: KindClockTime, Value: 0})
			continue
		case "weekend", "weekends":
			// Expand to the two weekend days so "do not work on
			// weekends" conflicts with "open Sunday to Saturday".
			out = append(out,
				Quantity{Kind: KindWeekday, Value: 0},
				Quantity{Kind: KindWeekday, Value: 6})
			continue
		}
		v, kind, ok := parseNumericToken(t)
		if !ok {
			// "9am" / "5pm" glued forms
			if v2, ok2 := parseGluedTime(t); ok2 {
				out = append(out, Quantity{Kind: KindClockTime, Value: v2})
			}
			continue
		}
		// Look ahead for am/pm marker or unit noun.
		if i+1 < len(toks) {
			next := toks[i+1]
			switch next {
			case "am", "a.m", "a.m.":
				out = append(out, Quantity{Kind: KindClockTime, Value: applyMeridiem(v, kind, false)})
				i++
				continue
			case "pm", "p.m", "p.m.":
				out = append(out, Quantity{Kind: KindClockTime, Value: applyMeridiem(v, kind, true)})
				i++
				continue
			case "percent", "percentage":
				out = append(out, Quantity{Kind: KindPercent, Value: v})
				i++
				continue
			case "dollars", "dollar", "hkd", "usd":
				out = append(out, Quantity{Kind: KindMoney, Value: v})
				i++
				continue
			}
			if kind == KindCount && isUnitNoun(next) {
				out = append(out, Quantity{Kind: KindCount, Value: v, Unit: Stem(next)})
				i++
				continue
			}
		}
		out = append(out, Quantity{Kind: kind, Value: v})
	}
	return out
}

// parseGluedTime parses "9am", "12pm", "9:30am".
func parseGluedTime(t string) (float64, bool) {
	lower := strings.ToLower(t)
	var pm bool
	switch {
	case strings.HasSuffix(lower, "am"):
		lower = strings.TrimSuffix(lower, "am")
	case strings.HasSuffix(lower, "pm"):
		pm = true
		lower = strings.TrimSuffix(lower, "pm")
	default:
		return 0, false
	}
	v, kind, ok := parseNumericToken(lower)
	if !ok {
		return 0, false
	}
	if kind == KindClockTime { // "9:30am" parsed as minutes already
		if pm && v < 12*60 {
			v += 12 * 60
		}
		return v, true
	}
	return clockMinutes(v, pm), true
}

// applyMeridiem resolves a number followed by an AM/PM marker. Values
// already parsed as clock times ("9:30" → 570 minutes) only need the
// 12-hour adjustment; bare hour counts ("9") go through clockMinutes.
func applyMeridiem(v float64, kind QuantityKind, pm bool) float64 {
	if kind != KindClockTime {
		return clockMinutes(v, pm)
	}
	hours := v / 60
	switch {
	case pm && hours < 12:
		return v + 12*60
	case !pm && hours >= 12 && hours < 13: // "12:30 AM" wraps to 00:30
		return v - 12*60
	}
	return v
}

// clockMinutes converts an hour value (possibly fractional) to minutes
// past midnight, applying 12-hour AM/PM rules.
func clockMinutes(hour float64, pm bool) float64 {
	h := int(hour)
	frac := hour - float64(h)
	if pm && h < 12 {
		h += 12
	}
	if !pm && h == 12 { // 12 AM == midnight
		h = 0
	}
	return float64(h*60) + frac*60
}

// unit nouns that commonly follow counts in policy text.
var unitNouns = map[string]struct{}{}

func init() {
	for _, u := range []string{
		"day", "days", "week", "weeks", "month", "months", "year",
		"years", "hour", "hours", "minute", "minutes", "employee",
		"employees", "shopkeeper", "shopkeepers", "staff", "member",
		"members", "people", "person", "time", "times", "occasion",
		"occasions", "resident", "residents", "device", "devices",
	} {
		unitNouns[u] = struct{}{}
	}
}

func isUnitNoun(w string) bool {
	_, ok := unitNouns[w]
	return ok
}

// QuantityConflicts compares the quantities asserted by a claim against
// those available in the evidence. It returns (conflicts, matches):
// a conflict is a claim quantity of a kind present in the evidence whose
// value appears in neither the evidence's quantity set; a match is a
// claim quantity corroborated exactly.
//
// Weekday semantics: multiple weekday mentions on either side are
// treated as an inclusive day *range* (min..max index), mirroring
// "Sunday to Saturday". When both sides assert a range, the ranges
// must be identical — "open Monday to Friday" contradicts "operates
// Sunday to Saturday" by implying the store is closed on weekends (the
// paper's canonical partial response). A single claimed day matches
// when it lies inside the evidence range.
func QuantityConflicts(claim, evidence []Quantity) (conflicts, matches int) {
	evByKind := map[QuantityKind][]Quantity{}
	var claimDays []Quantity
	for _, q := range evidence {
		evByKind[q.Kind] = append(evByKind[q.Kind], q)
	}
	for _, q := range claim {
		if q.Kind == KindWeekday {
			claimDays = append(claimDays, q)
			continue
		}
		evs := evByKind[q.Kind]
		if len(evs) == 0 {
			continue // evidence silent on this kind: neither match nor conflict
		}
		found := false
		for _, e := range evs {
			if quantityEqual(q, e) {
				found = true
				break
			}
		}
		if found {
			matches++
		} else {
			conflicts++
		}
	}
	if len(claimDays) > 0 {
		if evDays := evByKind[KindWeekday]; len(evDays) > 0 {
			c, m := weekdayRangeCompare(claimDays, evDays)
			conflicts += c
			matches += m
		}
	}
	return conflicts, matches
}

// weekdayRangeCompare scores claimed weekdays against evidence
// weekdays under range semantics.
func weekdayRangeCompare(claim, evidence []Quantity) (conflicts, matches int) {
	clo, chi := dayBounds(claim)
	elo, ehi := dayBounds(evidence)
	distinctClaim := countDistinctDays(claim)
	distinctEv := countDistinctDays(evidence)
	switch {
	case distinctClaim >= 2 && distinctEv >= 2:
		// Range vs range: must coincide.
		if clo == elo && chi == ehi {
			return 0, 1
		}
		return 1, 0
	case distinctClaim >= 2:
		// Claimed range vs single evidence day: conflict unless the
		// range is that single day repeated (impossible here).
		return 1, 0
	default:
		// Single claimed day inside the evidence span matches.
		if clo >= elo && chi <= ehi {
			return 0, 1
		}
		return 1, 0
	}
}

func dayBounds(qs []Quantity) (lo, hi float64) {
	lo, hi = qs[0].Value, qs[0].Value
	for _, q := range qs {
		if q.Value < lo {
			lo = q.Value
		}
		if q.Value > hi {
			hi = q.Value
		}
	}
	return lo, hi
}

func countDistinctDays(qs []Quantity) int {
	seen := map[float64]struct{}{}
	for _, q := range qs {
		seen[q.Value] = struct{}{}
	}
	return len(seen)
}

// ConflictProximity returns the closeness of the most-nearly-matching
// conflicting claim quantity: 1 when a conflicting value is adjacent
// to an evidence value of the same kind, decaying to 0 as values
// diverge. Weekday conflicts always count as far (a wrong day range is
// conspicuous; a wrong number by one is not).
func ConflictProximity(claim, evidence []Quantity) float64 {
	best := 0.0
	for _, q := range claim {
		if q.Kind == KindWeekday {
			continue
		}
		conflicted := false
		nearest := math.Inf(1)
		for _, e := range evidence {
			if e.Kind != q.Kind {
				continue
			}
			if q.Unit != "" && e.Unit != "" && q.Unit != e.Unit {
				continue
			}
			d := math.Abs(q.Value - e.Value)
			if d < 1e-9 {
				conflicted = false
				nearest = 0
				break
			}
			conflicted = true
			if d < nearest {
				nearest = d
			}
		}
		if !conflicted || math.IsInf(nearest, 1) {
			continue
		}
		if prox := proximityOf(q.Kind, nearest, math.Max(math.Abs(q.Value), 1)); prox > best {
			best = prox
		}
	}
	return best
}

// proximityOf grades how inconspicuous a numeric discrepancy of size d
// is for a quantity of the given kind and magnitude. Adjacency is
// kind-aware: "day 26" vs "day 25" or "4 months" vs "3 months" is a
// near-miss a human (or judge model) glosses over, even though the
// relative error is large for small counts.
func proximityOf(kind QuantityKind, d, scale float64) float64 {
	switch kind {
	case KindCount:
		if d <= 1.01 {
			return 0.95
		}
	case KindClockTime:
		if d <= 31 { // within half an hour
			return 0.92
		}
	case KindPercent:
		if d <= 5.01 {
			return 0.90
		}
	case KindMoney:
		if d/scale <= 0.05 {
			return 0.90
		}
	}
	prox := math.Exp(-d / scale / 0.06)
	if prox > 0.6 {
		prox = 0.6 // conspicuously different values never look subtle
	}
	return prox
}

func quantityEqual(a, b Quantity) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Unit != "" && b.Unit != "" && a.Unit != b.Unit {
		return false
	}
	diff := a.Value - b.Value
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9
}
