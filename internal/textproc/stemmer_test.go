package textproc

import (
	"testing"
	"testing/quick"
)

func TestStemKnownPairs(t *testing.T) {
	// Classic Porter fixtures plus HR-domain words the detector
	// depends on.
	cases := map[string]string{
		"caresses":    "caress",
		"ponies":      "poni",
		"ties":        "ti",
		"caress":      "caress",
		"cats":        "cat",
		"feed":        "feed",
		"agreed":      "agre",
		"plastered":   "plaster",
		"motoring":    "motor",
		"sing":        "sing",
		"conflated":   "conflat",
		"troubled":    "troubl",
		"sized":       "size",
		"hopping":     "hop",
		"falling":     "fall",
		"hissing":     "hiss",
		"failing":     "fail",
		"filing":      "file",
		"happy":       "happi",
		"sky":         "sky",
		"relational":  "relat",
		"conditional": "condit",
		"rational":    "ration",
		"digitizer":   "digit",
		"operator":    "oper",
		"feudalism":   "feudal",
		"hopefulness": "hope",
		"formaliti":   "formal",
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		"probate":     "probat",
		"rate":        "rate",
		"cease":       "ceas",
		"controll":    "control",
		"roll":        "roll",
		// Domain words: plural and singular must coincide.
		"employees":   "employe",
		"shopkeepers": "shopkeep",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemPluralsMatchSingulars(t *testing.T) {
	pairs := [][2]string{
		{"day", "days"}, {"month", "months"}, {"uniform", "uniforms"},
		{"holiday", "holidays"}, {"receipt", "receipts"},
		{"manager", "managers"}, {"device", "devices"},
	}
	for _, p := range pairs {
		if Stem(p[0]) != Stem(p[1]) {
			t.Errorf("Stem(%q)=%q != Stem(%q)=%q", p[0], Stem(p[0]), p[1], Stem(p[1]))
		}
	}
}

func TestStemShortAndNumeric(t *testing.T) {
	for _, w := range []string{"a", "of", "9", "9:30", "2.5", "14", "x1"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Porter is not idempotent in general, but stems of our domain
	// vocabulary must be stable so that repeated normalization in
	// different code paths agrees.
	// Note: Porter is famously not idempotent for every word (e.g.
	// "reimbursement" → "reimburs" → "reimbur"), so only the stems our
	// pipeline actually compares are pinned here.
	words := []string{
		"probation", "salary", "leave", "benefit", "uniform", "email",
		"media", "device", "holiday", "training", "overtime", "claim",
		"certificate", "notice", "approval",
	}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not stable for %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverPanicsAndNonEmpty(t *testing.T) {
	f := func(s string) bool {
		got := Stem(s)
		if s == "" {
			return got == ""
		}
		return len(got) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "is", "of", "a"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	// Negations and modals must NOT be stopwords: they flip claims.
	for _, w := range []string{"not", "no", "never", "must", "only", "working", "hours"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}
