package textproc

import "strings"

// Stem reduces an English word to its stem using the classic Porter
// (1980) algorithm. Stemming lets "employees" in a response match
// "employee" in the handbook context without a full lemmatizer.
//
// The implementation follows the five-step structure of the original
// paper. Words of length ≤ 2 and tokens containing digits are returned
// unchanged (times like "9:30" and counts like "14" must stay exact for
// the numeric-consistency checker).
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for _, r := range word {
		if r >= '0' && r <= '9' {
			return word
		}
	}
	w := []byte(strings.ToLower(word))
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] acts as a consonant per Porter's
// definition ('y' is a consonant when preceded by a vowel position).
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of vowel-consonant sequences in w
// (Porter's [C](VC)^m[V] decomposition).
func measure(w []byte) int {
	m, i, n := 0, 0, len(w)
	for i < n && isConsonant(w, i) {
		i++
	}
	for i < n {
		for i < n && !isConsonant(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isConsonant(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w ends with two identical
// consonants (e.g. "hopp").
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the
// final consonant is not w, x or y (the *o condition).
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isConsonant(w, n-3) || isConsonant(w, n-2) || !isConsonant(w, n-1) {
		return false
	}
	c := w[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix swaps suffix from→to when the stem before `from` has
// measure ≥ minM. Returns the (possibly new) word and whether a rule
// fired.
func replaceSuffix(w []byte, from, to string, minM int) ([]byte, bool) {
	if !hasSuffix(w, from) {
		return w, false
	}
	stem := w[:len(w)-len(from)]
	if measure(stem) < minM {
		return w, true // suffix matched but condition failed: stop trying others
	}
	out := make([]byte, 0, len(stem)+len(to))
	out = append(out, stem...)
	out = append(out, to...)
	return out, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		c := stem[len(stem)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		out := make([]byte, len(w))
		copy(out, w)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, ok := replaceSuffix(w, r.from, r.to, 1); ok {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, ok := replaceSuffix(w, r.from, r.to, 1); ok {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && len(stem) > 0 {
			c := stem[len(stem)-1]
			if c == 's' || c == 't' {
				return stem
			}
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleConsonant(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
