package textproc

// Features is the evidence-grounded signal vector computed for one
// (claim sentence, context) pair. It is the substrate the calibrated
// SLM backend maps to a yes-probability; downstream code may also use
// it directly for explanations.
type Features struct {
	// UnigramSupport is the fraction of the claim's content words found
	// in the context (directional overlap, Eq. OverlapRatio).
	UnigramSupport float64
	// BigramSupport is the same over adjacent content-word pairs.
	BigramSupport float64
	// QuantityConflicts counts numeric/temporal facts in the claim that
	// contradict the context (wrong hours, wrong days, wrong counts).
	QuantityConflicts int
	// QuantityMatches counts numeric/temporal facts corroborated
	// exactly by the context.
	QuantityMatches int
	// ConflictProximity measures how numerically close the worst
	// conflicting claim quantity is to the evidence (1 = adjacent
	// values, 0 = far apart or no conflict). Near-miss hallucinations
	// ("day 26" vs "day 25") are the ones real judge models overlook,
	// and they overlook them in a correlated way — proximity is a
	// property of the input, not of the model.
	ConflictProximity float64
	// AntonymClashes counts claim words whose registered antonym
	// appears in the context.
	AntonymClashes int
	// NegationMismatch is true when claim and context disagree in
	// polarity.
	NegationMismatch bool
	// Hedges counts uncertainty markers in the claim.
	Hedges int
	// ClaimLength is the number of content words in the claim; very
	// short claims give verifiers little to latch onto, increasing
	// score variance.
	ClaimLength int
}

// ExtractFeatures computes the full feature vector for a claim sentence
// against a context passage.
func ExtractFeatures(claim, context string) Features {
	cw := ContentWords(claim)
	ew := ContentWords(context)
	cq := ExtractQuantities(claim)
	eq := ExtractQuantities(context)
	conf, match := QuantityConflicts(cq, eq)
	return Features{
		UnigramSupport:    OverlapRatio(cw, ew),
		BigramSupport:     OverlapRatio(Bigrams(cw), Bigrams(ew)),
		QuantityConflicts: conf,
		QuantityMatches:   match,
		ConflictProximity: ConflictProximity(cq, eq),
		AntonymClashes:    AntonymClashes(cw, ew),
		NegationMismatch:  NegationMismatch(claim, context),
		Hedges:            CountHedges(claim),
		ClaimLength:       len(cw),
	}
}

// SupportScore collapses the feature vector into a single grounded
// entailment estimate in [0, 1]. This is the "ideal judge" against
// which each synthetic SLM is a noisy, biased observer; the framework
// under test never sees this value directly.
func (f Features) SupportScore() float64 {
	s := 0.55*f.UnigramSupport + 0.45*f.BigramSupport
	// Each contradicted quantity is strong evidence of hallucination;
	// each corroborated one strengthens support.
	s -= 0.35 * float64(f.QuantityConflicts)
	s += 0.10 * float64(f.QuantityMatches)
	s -= 0.30 * float64(f.AntonymClashes)
	if f.NegationMismatch {
		s -= 0.25
	}
	s -= 0.03 * float64(f.Hedges)
	if f.ClaimLength <= 2 {
		s -= 0.05 // too little content to verify
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
