package textproc

import (
	"math"
	"testing"
)

func quantities(t *testing.T, text string) []Quantity {
	t.Helper()
	return ExtractQuantities(text)
}

func findKind(qs []Quantity, k QuantityKind) []Quantity {
	var out []Quantity
	for _, q := range qs {
		if q.Kind == k {
			out = append(out, q)
		}
	}
	return out
}

func TestExtractClockTimes(t *testing.T) {
	cases := []struct {
		text string
		want []float64 // minutes past midnight
	}{
		{"The store operates from 9 AM to 5 PM.", []float64{540, 1020}},
		{"open 9am to 5pm", []float64{540, 1020}},
		{"at 9:30 AM sharp", []float64{570}},
		{"by 12 PM", []float64{720}},
		{"12 AM curfew", []float64{0}},
		{"by noon", []float64{720}},
		{"until midnight", []float64{0}},
		{"meeting at 17:30", []float64{1050}},
	}
	for _, tc := range cases {
		got := findKind(quantities(t, tc.text), KindClockTime)
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %d times %v, want %v", tc.text, len(got), got, tc.want)
			continue
		}
		for i, q := range got {
			if q.Value != tc.want[i] {
				t.Errorf("%q: time[%d] = %v, want %v", tc.text, i, q.Value, tc.want[i])
			}
		}
	}
}

func TestExtractWeekdays(t *testing.T) {
	got := findKind(quantities(t, "from Sunday to Saturday"), KindWeekday)
	if len(got) != 2 || got[0].Value != 0 || got[1].Value != 6 {
		t.Errorf("weekdays = %v, want [0 6]", got)
	}
	// "weekends" expands to Sunday and Saturday.
	got = findKind(quantities(t, "no work on weekends"), KindWeekday)
	if len(got) != 2 {
		t.Errorf("weekend expansion = %v, want 2 entries", got)
	}
}

func TestExtractCountsWithUnits(t *testing.T) {
	qs := quantities(t, "three shopkeepers and 14 days of leave")
	counts := findKind(qs, KindCount)
	if len(counts) != 2 {
		t.Fatalf("counts = %v, want 2", counts)
	}
	if counts[0].Value != 3 || counts[0].Unit != Stem("shopkeepers") {
		t.Errorf("count[0] = %+v, want 3 shopkeep", counts[0])
	}
	if counts[1].Value != 14 || counts[1].Unit != Stem("days") {
		t.Errorf("count[1] = %+v, want 14 day", counts[1])
	}
}

func TestExtractPercentAndMoney(t *testing.T) {
	qs := quantities(t, "reimburses 90% of fees up to 500 dollars")
	if p := findKind(qs, KindPercent); len(p) != 1 || p[0].Value != 90 {
		t.Errorf("percent = %v, want [90]", p)
	}
	if m := findKind(qs, KindMoney); len(m) != 1 || m[0].Value != 500 {
		t.Errorf("money = %v, want [500]", m)
	}
}

func TestExtractMagnitudeSuffix(t *testing.T) {
	qs := quantities(t, "over 500K residents")
	counts := findKind(qs, KindCount)
	if len(counts) != 1 || counts[0].Value != 500000 {
		t.Errorf("500K = %v, want [500000]", counts)
	}
}

func TestQuantityConflictsPaperExamples(t *testing.T) {
	contextText := "The store operates from 9 AM to 5 PM, from Sunday to Saturday."
	ev := ExtractQuantities(contextText)

	t.Run("correct matches", func(t *testing.T) {
		claim := ExtractQuantities("The working hours are 9 AM to 5 PM, and the store is open from Sunday to Saturday.")
		conf, match := QuantityConflicts(claim, ev)
		if conf != 0 {
			t.Errorf("conflicts = %d, want 0", conf)
		}
		if match < 3 {
			t.Errorf("matches = %d, want ≥3 (two times + day range)", match)
		}
	})

	t.Run("partial day range conflicts", func(t *testing.T) {
		// The paper's partial response: right hours, wrong days.
		claim := ExtractQuantities("The working hours are 9 AM to 5 PM, and the store is open from Monday to Friday.")
		conf, match := QuantityConflicts(claim, ev)
		if conf != 1 {
			t.Errorf("conflicts = %d, want 1 (day range Monday–Friday vs Sunday–Saturday)", conf)
		}
		if match < 2 {
			t.Errorf("matches = %d, want ≥2 (the two times)", match)
		}
	})

	t.Run("wrong hours conflict", func(t *testing.T) {
		claim := ExtractQuantities("The working hours are 9 AM to 9 PM.")
		conf, _ := QuantityConflicts(claim, ev)
		if conf != 1 {
			t.Errorf("conflicts = %d, want 1 (9 PM vs 5 PM)", conf)
		}
	})
}

func TestQuantityConflictsEvidenceSilence(t *testing.T) {
	// Claim kinds absent from the evidence are neither conflicts nor
	// matches — the evidence is simply silent.
	claim := ExtractQuantities("costs 90% of salary")
	ev := ExtractQuantities("The store opens at 9 AM.")
	conf, match := QuantityConflicts(claim, ev)
	if conf != 0 || match != 0 {
		t.Errorf("silent evidence: conflicts=%d matches=%d, want 0/0", conf, match)
	}
}

func TestQuantityConflictsUnits(t *testing.T) {
	ev := ExtractQuantities("Employees receive 14 days of leave.")
	// Same number, different unit: not a corroboration.
	claim := ExtractQuantities("Employees receive 14 months of leave.")
	conf, _ := QuantityConflicts(claim, ev)
	if conf != 1 {
		t.Errorf("unit mismatch conflicts = %d, want 1", conf)
	}
}

func TestSingleWeekdayInsideRangeMatches(t *testing.T) {
	ev := ExtractQuantities("open Monday to Saturday")
	claim := ExtractQuantities("you can visit on Wednesday")
	conf, match := QuantityConflicts(claim, ev)
	if conf != 0 || match != 1 {
		t.Errorf("inside-range day: conflicts=%d matches=%d, want 0/1", conf, match)
	}
	claim = ExtractQuantities("you can visit on Sunday")
	conf, _ = QuantityConflicts(claim, ev)
	if conf != 1 {
		t.Errorf("outside-range day conflicts = %d, want 1", conf)
	}
}

func TestConflictProximity(t *testing.T) {
	ev := ExtractQuantities("Salaries are paid on day 25 of each month.")
	near := ExtractQuantities("Salaries are paid on day 26 of each month.")
	far := ExtractQuantities("Salaries are paid on day 5 of each month.")
	pNear := ConflictProximity(near, ev)
	pFar := ConflictProximity(far, ev)
	if pNear < 0.9 {
		t.Errorf("adjacent count proximity = %v, want ≥0.9", pNear)
	}
	if pFar >= pNear {
		t.Errorf("far proximity %v not below near %v", pFar, pNear)
	}
	if none := ConflictProximity(ev, ev); none != 0 {
		t.Errorf("no-conflict proximity = %v, want 0", none)
	}
}

func TestConflictProximityTimes(t *testing.T) {
	ev := ExtractQuantities("closes at 5 PM")
	halfHour := ExtractQuantities("closes at 5:30 PM")
	fourHours := ExtractQuantities("closes at 9 PM")
	if p := ConflictProximity(halfHour, ev); p < 0.9 {
		t.Errorf("30-minute time proximity = %v, want ≥0.9", p)
	}
	if p := ConflictProximity(fourHours, ev); p > 0.6 {
		t.Errorf("4-hour time proximity = %v, want ≤0.6", p)
	}
}

func TestWeekdayNameRoundTrip(t *testing.T) {
	for i := 0; i < 7; i++ {
		name := WeekdayName(i)
		idx, ok := WeekdayIndex(name)
		if !ok || idx != i {
			t.Errorf("WeekdayIndex(WeekdayName(%d)) = %d,%v", i, idx, ok)
		}
	}
	if WeekdayName(7) != "Sunday" || WeekdayName(-1) != "Saturday" {
		t.Error("WeekdayName modulo behaviour broken")
	}
}

func TestClockMinutesEdges(t *testing.T) {
	cases := []struct {
		hour float64
		pm   bool
		want float64
	}{
		{12, false, 0},   // 12 AM = midnight
		{12, true, 720},  // 12 PM = noon
		{1, true, 780},   // 1 PM
		{11, false, 660}, // 11 AM
		{11.5, false, 690} /* 11:30 AM via fraction */}
	for _, tc := range cases {
		if got := clockMinutes(tc.hour, tc.pm); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("clockMinutes(%v, %v) = %v, want %v", tc.hour, tc.pm, got, tc.want)
		}
	}
}
