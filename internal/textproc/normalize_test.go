package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"lowercase", "Hello World", "hello world"},
		{"collapse spaces", "a   b\t\tc", "a b c"},
		{"trim", "  padded  ", "padded"},
		{"curly quotes", "“quoted” and ‘single’", `"quoted" and 'single'`},
		{"dashes", "9–5 — daily", "9-5 - daily"},
		{"nbsp", "a b", "a b"},
		{"empty", "", ""},
		{"only spaces", "   ", ""},
		{"newlines", "line1\nline2", "line1 line2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Normalize(tc.in); got != tc.want {
				t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		name, in string
		want     []string
	}{
		{"simple", "The store opens.", []string{"the", "store", "opens"}},
		{"apostrophe", "don't stop", []string{"don't", "stop"}},
		{"hyphen", "part-time staff", []string{"part-time", "staff"}},
		{"clock", "opens at 9:30 sharp", []string{"opens", "at", "9:30", "sharp"}},
		{"decimal", "rate is 1.5 times", []string{"rate", "is", "1.5", "times"}},
		{"glued time", "9am to 5pm", []string{"9am", "to", "5pm"}},
		{"punct stripped", "yes, no; maybe!", []string{"yes", "no", "maybe"}},
		{"empty", "", nil},
		{"trailing apostrophe dropped", "cats' toys", []string{"cats", "toys"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Words(tc.in)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Words(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestWordsNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, w := range Words(s) {
			if w == "" || strings.ContainsAny(w, " \t\n") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContentWordsDropsStopwords(t *testing.T) {
	got := ContentWords("the employees are on annual leave")
	for _, w := range got {
		if w == "the" || w == "are" || w == "on" {
			t.Errorf("stopword %q survived: %v", w, got)
		}
	}
	// "employees" stems to "employe", "annual" stays, "leave" stays.
	if len(got) != 3 {
		t.Fatalf("ContentWords = %v, want 3 tokens", got)
	}
}

func TestBigrams(t *testing.T) {
	if got := Bigrams([]string{"a"}); got != nil {
		t.Errorf("single token bigrams = %v, want nil", got)
	}
	got := Bigrams([]string{"annual", "leave", "policy"})
	want := []string{"annual leave", "leave policy"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v, want %v", got, want)
	}
}

func TestOverlapRatio(t *testing.T) {
	cases := []struct {
		name            string
		claim, evidence []string
		want            float64
	}{
		{"full", []string{"a", "b"}, []string{"a", "b", "c"}, 1},
		{"half", []string{"a", "x"}, []string{"a", "b"}, 0.5},
		{"none", []string{"x"}, []string{"a"}, 0},
		{"empty claim", nil, []string{"a"}, 0},
		{"multiset", []string{"a", "a"}, []string{"a"}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := OverlapRatio(tc.claim, tc.evidence); got != tc.want {
				t.Errorf("OverlapRatio = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOverlapRatioBounds(t *testing.T) {
	f := func(claim, evidence []string) bool {
		r := OverlapRatio(claim, evidence)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(nil,nil) = %v, want 1", got)
	}
	if got := Jaccard([]string{"a"}, []string{"a"}); got != 1 {
		t.Errorf("identical sets = %v, want 1", got)
	}
	if got := Jaccard([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint sets = %v, want 0", got)
	}
	if got := Jaccard([]string{"a", "b"}, []string{"b", "c"}); got != 1.0/3 {
		t.Errorf("overlap = %v, want 1/3", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
