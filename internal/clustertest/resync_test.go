package clustertest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/vecdb"
)

// manualHealth disables every timer: probes and anti-entropy sweeps
// run only when a test calls ProbeNow/ResyncNow, so each transition
// is scripted and the tests are deterministic under -race.
var manualHealth = cluster.HealthConfig{
	Interval:         time.Hour,
	Timeout:          time.Second,
	FailThreshold:    1,
	RecoverThreshold: 1,
	ResyncInterval:   -1,
	ResyncBatch:      4,
}

// newPair builds a 1-shard router over a durable primary + replica.
func newPair(t *testing.T, cfg cluster.HealthConfig) (*cluster.Router, *Node, *Node) {
	t.Helper()
	primary := NewDurableNode(t, "primary")
	replica := NewDurableNode(t, "replica")
	r, err := cluster.NewRouter([]cluster.ShardBackends{{
		Primary:  primary.Chaos,
		Replicas: []cluster.Backend{replica.Chaos},
	}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	// The checker fires one probe round at startup from its own
	// goroutine. Wait for it to land on both backends: the scripted
	// scenarios assume no probe runs between their steps (Interval is
	// an hour), and under a loaded machine the startup round could
	// otherwise slip past a Partition call and eject a backend the
	// script expects to fail in-band.
	deadline := time.Now().Add(10 * time.Second)
	for primary.Chaos.Calls("Probe") == 0 || replica.Chaos.Calls("Probe") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("startup probe round never completed")
		}
		time.Sleep(time.Millisecond)
	}
	return r, primary, replica
}

// write routes one add through the router, failing the test on error.
func write(t *testing.T, r *cluster.Router, id int64, text string) {
	t.Helper()
	m := vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text}
	if err := r.Apply(context.Background(), 0, []vecdb.Mutation{m}); err != nil {
		t.Fatalf("write %d: %v", id, err)
	}
}

// backendHealth finds one backend's health snapshot by name.
func backendHealth(t *testing.T, r *cluster.Router, name string) cluster.BackendHealth {
	t.Helper()
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.Name == name {
				return b
			}
		}
	}
	t.Fatalf("backend %q not in health snapshot", name)
	return cluster.BackendHealth{}
}

// queryVec embeds a probe query through a node's (shared, cached)
// embedder.
func queryVec(t *testing.T, n *Node, q string) []float32 {
	t.Helper()
	v, err := n.Store.Embedder().Embed(q)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEjectionDivergenceResyncConvergence is the acceptance scenario
// end to end, fully scripted: a replica is partitioned away while
// writes flow (divergence), held out of reads when it returns even
// though probes succeed, caught up in-band from the primary's WAL
// (two delta rounds — the batch size is smaller than the gap), and
// only then re-admitted — converged to the primary's exact doc set
// and top-k.
func TestEjectionDivergenceResyncConvergence(t *testing.T) {
	r, primary, replica := newPair(t, manualHealth)
	ctx := context.Background()

	for i := int64(1); i <= 6; i++ {
		write(t, r, i, fmt.Sprintf("Policy document %d: employees receive %d days of leave.", i, 10+i))
	}
	RequireConverged(t, primary.Store, replica.Store)
	if seq := replica.Store.Seq(); seq != 6 {
		t.Fatalf("replica seq after replicated writes = %d, want 6", seq)
	}

	// Partition the replica; the first write it misses is a partial
	// write that marks it diverged and demotes it from reads.
	replica.Chaos.Partition(true)
	for i := int64(7); i <= 11; i++ {
		write(t, r, i, fmt.Sprintf("Amendment %d: overtime rule %d applies on weekends.", i, i))
	}
	if got := r.Stats(); got.WriteFailures == 0 || got.PartialWrites == 0 {
		t.Fatalf("partial write not accounted: %+v", got)
	}
	bh := backendHealth(t, r, "replica")
	if bh.State == cluster.StateHealthy.String() || !bh.NeedsResync {
		t.Fatalf("diverged replica still serving: %+v", bh)
	}
	if p, q := primary.Store.Seq(), replica.Store.Seq(); p != 11 || q != 6 {
		t.Fatalf("divergence not as scripted: primary seq %d, replica seq %d", p, q)
	}

	// Anti-entropy while the replica is unreachable is a no-op: it
	// cannot be repaired, and it must stay held.
	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("sweep with partitioned replica: %v", err)
	}
	if bh := backendHealth(t, r, "replica"); !bh.NeedsResync {
		t.Fatal("unreachable replica lost its resync hold")
	}

	// Heal. Probes succeed now — but probe success alone must NOT
	// re-admit the replica: it is still missing five documents.
	replica.Chaos.Partition(false)
	r.ProbeNow()
	bh = backendHealth(t, r, "replica")
	if bh.State == cluster.StateHealthy.String() {
		t.Fatalf("lagging replica re-admitted before resync: %+v", bh)
	}

	// One sweep repairs it: the 5-mutation gap ships in two rounds
	// (ResyncBatch 4), straight from the primary's WAL segments.
	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("resync sweep: %v", err)
	}
	st := r.ResyncStats()
	if st.Resyncs != 1 || st.MutationsShipped != 5 || st.SnapshotFallbacks != 0 {
		t.Fatalf("resync stats = %+v, want 1 resync / 5 shipped / 0 snapshots", st)
	}
	if bh = backendHealth(t, r, "replica"); bh.State != cluster.StateHealthy.String() || bh.NeedsResync {
		t.Fatalf("repaired replica not re-admitted: %+v", bh)
	}
	RequireConverged(t, primary.Store, replica.Store)
	RequireSameTopK(t, primary.Store, replica.Store, queryVec(t, primary, "overtime rule on weekends"), 4)

	// The recovered replica serves reads again: kill the primary and
	// the router must answer identically from the replica alone.
	want, err := replica.Store.SearchVector(queryVec(t, primary, "days of leave"), 3)
	if err != nil {
		t.Fatal(err)
	}
	primary.Chaos.Partition(true)
	got, err := r.SearchVector(ctx, queryVec(t, primary, "days of leave"), 3, vecdb.Filter{})
	if err != nil {
		t.Fatalf("search via recovered replica: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replica-served top-k: %d hits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("replica-served hit %d = {%d %v}, want {%d %v}", i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestSnapshotFallbackAfterWALTruncation: checkpointing the primary
// while the replica is away truncates the WAL past the replica's
// position, so the delta read reports ErrSeqTruncated and the repair
// must fall back to a full snapshot transfer — which also pins the
// adopted seq durably on the replica via an immediate checkpoint.
func TestSnapshotFallbackAfterWALTruncation(t *testing.T) {
	r, primary, replica := newPair(t, manualHealth)
	ctx := context.Background()

	for i := int64(1); i <= 4; i++ {
		write(t, r, i, fmt.Sprintf("Handbook section %d: probation lasts %d months.", i, i))
	}
	replica.Chaos.Partition(true)
	for i := int64(5); i <= 8; i++ {
		write(t, r, i, fmt.Sprintf("Handbook section %d: reviews happen in month %d.", i, i))
	}
	// Fold the whole journal into the checkpoint: the WAL now begins
	// after seq 8, and the replica needs everything since 4.
	if err := primary.Store.Save(); err != nil {
		t.Fatalf("checkpoint primary: %v", err)
	}
	if _, err := primary.Store.MutationsSince(4, 0); !errors.Is(err, vecdb.ErrSeqTruncated) {
		t.Fatalf("MutationsSince after truncation = %v, want ErrSeqTruncated", err)
	}

	replica.Chaos.Partition(false)
	r.ProbeNow()
	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("resync sweep: %v", err)
	}
	st := r.ResyncStats()
	if st.SnapshotFallbacks != 1 || st.Resyncs != 1 {
		t.Fatalf("resync stats = %+v, want snapshot fallback", st)
	}
	if bh := backendHealth(t, r, "replica"); bh.State != cluster.StateHealthy.String() {
		t.Fatalf("replica not re-admitted after snapshot: %+v", bh)
	}
	RequireConverged(t, primary.Store, replica.Store)
	if seq := replica.Store.Seq(); seq != 8 {
		t.Fatalf("replica did not adopt snapshot seq: %d, want 8", seq)
	}
	// The snapshot apply checkpointed the replica so the adopted seq
	// survives a crash.
	if ck := replica.Store.PersistStats().Checkpoints; ck == 0 {
		t.Fatal("snapshot apply did not checkpoint the replica")
	}
}

// TestEqualSeqDivergenceRepairedByChecksum: two backends at the same
// seq with different contents (the divergence a partial-failure race
// can leave behind) cannot be reconciled by a delta — the checksum
// exposes it and the replica adopts the primary's exact doc set.
func TestEqualSeqDivergenceRepairedByChecksum(t *testing.T) {
	r, primary, replica := newPair(t, manualHealth)
	ctx := context.Background()

	for i := int64(1); i <= 3; i++ {
		write(t, r, i, fmt.Sprintf("Shared rule %d: shifts last %d hours.", i, 6+i))
	}
	// Scripted split-brain write: the same ID lands with different
	// contents on each side, leaving seqs equal and contents not.
	if err := primary.Store.ApplyAll([]vecdb.Mutation{{Op: vecdb.OpAdd, ID: 50, Text: "The store closes at 5 PM."}}); err != nil {
		t.Fatal(err)
	}
	if err := replica.Store.ApplyAll([]vecdb.Mutation{{Op: vecdb.OpAdd, ID: 50, Text: "The store closes at 9 PM."}}); err != nil {
		t.Fatal(err)
	}
	if p, q := primary.Store.Seq(), replica.Store.Seq(); p != q {
		t.Fatalf("setup: seqs differ (%d vs %d)", p, q)
	}
	if primary.Store.Checksum() == replica.Store.Checksum() {
		t.Fatal("setup: checksums agree despite divergence")
	}

	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("resync sweep: %v", err)
	}
	st := r.ResyncStats()
	if st.SnapshotFallbacks == 0 {
		t.Fatalf("equal-seq divergence repaired without snapshot? %+v", st)
	}
	RequireConverged(t, primary.Store, replica.Store)
	doc, err := replica.Store.Get(50)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Text != "The store closes at 5 PM." {
		t.Fatalf("replica kept its divergent write: %q (primary must win)", doc.Text)
	}
	// The demoted replica re-serves after its next successful probe.
	r.ProbeNow()
	if bh := backendHealth(t, r, "replica"); bh.State != cluster.StateHealthy.String() {
		t.Fatalf("replica not re-admitted after repair+probe: %+v", bh)
	}
}

// TestHeldReplicaWaitsForObservableSource: a stale, held replica must
// not elect itself source of truth — and self-clear back into the
// read path — just because the healthy primary failed one Stat call.
// The sweep has to wait until it can actually observe a serving peer.
func TestHeldReplicaWaitsForObservableSource(t *testing.T) {
	r, primary, replica := newPair(t, manualHealth)
	ctx := context.Background()

	for i := int64(1); i <= 3; i++ {
		write(t, r, i, fmt.Sprintf("Baseline document %d.", i))
	}
	replica.Chaos.Partition(true)
	write(t, r, 4, "Written while the replica was away.")
	replica.Chaos.Partition(false)
	r.ProbeNow()

	// The primary serves fine but its stat/resync surface is flaky
	// this sweep: the replica is the only observable backend, yet it
	// must stay held — its peer is still serving.
	primary.Chaos.FailResync(ErrInjected)
	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("sweep with unobservable source: %v", err)
	}
	if bh := backendHealth(t, r, "replica"); bh.State == cluster.StateHealthy.String() || !bh.NeedsResync {
		t.Fatalf("stale replica re-admitted while a serving peer exists: %+v", bh)
	}

	// Once the primary is observable again, the normal repair runs.
	primary.Chaos.FailResync(nil)
	if err := r.ResyncNow(ctx); err != nil {
		t.Fatalf("resync sweep: %v", err)
	}
	if bh := backendHealth(t, r, "replica"); bh.State != cluster.StateHealthy.String() {
		t.Fatalf("replica not repaired after source returned: %+v", bh)
	}
	RequireConverged(t, primary.Store, replica.Store)
}

// TestResyncUnderChaos hammers the pair with concurrent writers while
// the replica flaps through two partitions, then lets timers (fast
// probe + background sweeps) and a convergence loop repair it — the
// race-detector workout for the whole resync surface.
func TestResyncUnderChaos(t *testing.T) {
	cfg := cluster.HealthConfig{
		Interval:         5 * time.Millisecond,
		Timeout:          time.Second,
		FailThreshold:    2,
		RecoverThreshold: 1,
		ResyncInterval:   5 * time.Millisecond,
		ResyncBatch:      16,
	}
	r, primary, replica := newPair(t, cfg)
	ctx := context.Background()

	const writers, docsPerWriter = 4, 30
	var wg sync.WaitGroup
	var idCounter int64
	var idMu sync.Mutex
	nextID := func() int64 {
		idMu.Lock()
		defer idMu.Unlock()
		idCounter++
		return idCounter
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				id := nextID()
				m := vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: fmt.Sprintf("Chaos doc %d from writer %d.", id, w)}
				// Writes may fail entirely during flaps (no healthy
				// backend wins the shard) — retry a few times, tolerate
				// the rest; convergence is asserted on what landed.
				for try := 0; try < 10; try++ {
					if err := r.Apply(ctx, 0, []vecdb.Mutation{m}); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	flap := func() {
		replica.Chaos.Partition(true)
		time.Sleep(15 * time.Millisecond)
		replica.Chaos.Partition(false)
		time.Sleep(15 * time.Millisecond)
	}
	flap()
	flap()
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if primary.Store.Seq() == replica.Store.Seq() &&
			primary.Store.Checksum() == replica.Store.Checksum() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: primary seq %d check %x, replica seq %d check %x",
				primary.Store.Seq(), primary.Store.Checksum(), replica.Store.Seq(), replica.Store.Checksum())
		}
		r.ProbeNow()
		if err := r.ResyncNow(ctx); err != nil {
			t.Logf("sweep error (will retry): %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	RequireConverged(t, primary.Store, replica.Store)
}
