package clustertest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/vecdb"
)

// migrateManual is manualHealth plus a migration config tuned for
// tests: a dual-write window long enough to observe and land writes
// in, and a catch-up band wide enough that streaming writers cannot
// starve the catch-up phase.
func migrateManual(window time.Duration) cluster.HealthConfig {
	cfg := manualHealth
	cfg.Migrate = cluster.MigrateConfig{
		CatchupLag:      32,
		DualWriteWindow: window,
		CutoverTimeout:  5 * time.Second,
	}
	return cfg
}

// routerStore adapts a Router to cluster.NodeStore so RequireSameTopK
// can compare the cluster's merged top-k against a single-process
// oracle. Only the read surface is real; the rest is unreachable in
// these tests.
type routerStore struct {
	r *cluster.Router
}

func (s routerStore) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) {
	return s.r.SearchVector(context.Background(), vec, k, vecdb.Filter{})
}
func (s routerStore) SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	return s.r.SearchVector(context.Background(), vec, k, f)
}
func (s routerStore) CollectionCounts() map[string]int {
	return s.r.CollectionCounts(context.Background())
}
func (s routerStore) Get(id int64) (vecdb.Document, error) {
	return s.r.Get(context.Background(), id)
}
func (s routerStore) Len() int { return s.r.Len(context.Background()) }
func (s routerStore) ApplyAll(ms []vecdb.Mutation) error {
	return errors.New("clustertest: routerStore is read-only")
}
func (s routerStore) NextID() int64    { panic("unused") }
func (s routerStore) Seq() uint64      { panic("unused") }
func (s routerStore) Checksum() uint64 { panic("unused") }
func (s routerStore) MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error) {
	panic("unused")
}
func (s routerStore) ApplyResync(ms []vecdb.SeqMutation) error              { panic("unused") }
func (s routerStore) SnapshotDocs() (uint64, []vecdb.Document, error)       { panic("unused") }
func (s routerStore) ApplySnapshot(seq uint64, docs []vecdb.Document) error { panic("unused") }

// requireSameRanking compares the cluster's merged top-k against the
// oracle rank by rank on scores rather than IDs. Writer texts are
// templates, so distinct documents collide on bitwise-equal scores,
// and which member of a tie group makes the k cut depends on
// insertion order — nondeterministic under concurrent writers, and
// different between a merged two-shard read and a flat store by
// construction. Tied documents are interchangeable results; the
// ranked score profile is not, and every hit the cluster returns
// must still be a document the oracle holds with the same text.
func requireSameRanking(t *testing.T, r *cluster.Router, oracle *vecdb.DB, vec []float32, k int) {
	t.Helper()
	got, err := r.SearchVector(context.Background(), vec, k, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.SearchVector(vec, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("top-k sizes diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			t.Fatalf("rank %d score diverged: {%d %v} vs {%d %v}",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
		doc, err := oracle.Get(got[i].ID)
		if err != nil {
			t.Fatalf("cluster hit %d (rank %d) not in the oracle: %v", got[i].ID, i, err)
		}
		if doc.Text != got[i].Text {
			t.Fatalf("hit %d text diverged: %q vs %q", got[i].ID, got[i].Text, doc.Text)
		}
	}
}

// newMigrationCluster builds a 2-shard router over durable chaos
// nodes plus a single-store oracle that mirrors every acknowledged
// write.
func newMigrationCluster(t *testing.T, cfg cluster.HealthConfig) (*cluster.Router, []*Node, *vecdb.DB) {
	t.Helper()
	s0 := NewDurableNode(t, "s0")
	s1 := NewDurableNode(t, "s1")
	r, err := cluster.NewRouter([]cluster.ShardBackends{
		{Primary: s0.Chaos},
		{Primary: s1.Chaos},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	oracle, err := vecdb.NewDefault(Dim)
	if err != nil {
		t.Fatal(err)
	}
	return r, []*Node{s0, s1}, oracle
}

// TestMigrationLosslessQuiet: the protocol's core promise with no
// traffic in flight — after a move, the retired source is a perfect
// oracle for the target: same seq, same checksum, same documents,
// same top-k.
func TestMigrationLosslessQuiet(t *testing.T) {
	r, nodes, oracle := newMigrationCluster(t, migrateManual(10*time.Millisecond))
	ctx := context.Background()

	for i := int64(1); i <= 20; i++ {
		text := fmt.Sprintf("Quiet policy %d: rule %d applies to department %d.", i, i*3, i%5)
		m := vecdb.Mutation{Op: vecdb.OpAdd, ID: i, Text: text}
		if err := r.Apply(ctx, r.ShardFor(i), []vecdb.Mutation{m}); err != nil {
			t.Fatal(err)
		}
		if err := oracle.ApplyAll([]vecdb.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}

	target := NewDurableNode(t, "tgt")
	st, err := r.Rebalance(ctx, 0, target.Chaos)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if st.Outcome != "ok" {
		t.Fatalf("migration = %+v", st)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch())
	}

	vec := queryVec(t, nodes[0], "which rule applies to department 3")
	RequireMigrated(t, nodes[0].Store, target.Store, vec, 5)
	RequireSameTopK(t, routerStore{r}, oracle, vec, 5)

	// The retired source 409s direct data traffic with the new ring.
	var stale *cluster.StaleEpochError
	if _, err := nodes[0].Chaos.Stat(ctx); !errors.As(err, &stale) || stale.Ring.Epoch != 2 {
		t.Fatalf("retired source = %v, want StaleEpochError epoch 2", err)
	}
}

// TestMigrationDualWriteFaultAborts: a write during the dual-write
// window whose target leg fails must still be acknowledged (the
// source persisted it) — and must abort the migration rather than
// cut over to a backend missing an acked write.
func TestMigrationDualWriteFaultAborts(t *testing.T) {
	r, nodes, _ := newMigrationCluster(t, migrateManual(5*time.Second))
	ctx := context.Background()

	for i := int64(1); i <= 10; i++ {
		m := vecdb.Mutation{Op: vecdb.OpAdd, ID: i, Text: fmt.Sprintf("Doc %d before the window.", i)}
		if err := r.Apply(ctx, r.ShardFor(i), []vecdb.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}

	target := NewDurableNode(t, "tgt")
	if _, err := r.StartRebalance(0, target.Chaos); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, r, "dual-write")

	// Break the target's write path (not its migration surface): the
	// next dual-written batch fails its target leg.
	target.Chaos.FailWrites(ErrInjected)
	var id int64
	for id = 1000; r.ShardFor(id) != 0; id++ {
	}
	if err := r.Apply(ctx, 0, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: id, Text: "acked during the window"}}); err != nil {
		t.Fatalf("dual-write-window write must ack via the source: %v", err)
	}

	st := waitOutcome(t, r)
	if st.Outcome != "aborted" {
		t.Fatalf("migration = %+v, want aborted", st)
	}
	if !strings.Contains(st.Error, "dual-write") {
		t.Fatalf("abort error does not name the dual-write leg: %+v", st)
	}
	if r.Epoch() != 1 {
		t.Fatalf("aborted migration moved the epoch to %d", r.Epoch())
	}
	// The acked write survived on the still-authoritative source.
	if _, err := r.Get(ctx, id); err != nil {
		t.Fatalf("acked write vanished after abort: %v", err)
	}
	if _, err := nodes[0].Store.Get(id); err != nil {
		t.Fatalf("acked write missing on source store: %v", err)
	}
}

// waitPhase polls until the active migration reaches phase.
func waitPhase(t *testing.T, r *cluster.Router, phase string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		migs := r.Migrations()
		if len(migs) > 0 && migs[0].Phase == phase {
			return
		}
		if len(migs) > 0 && migs[0].Outcome != "" {
			t.Fatalf("migration finished (%s) before reaching phase %q", migs[0].Outcome, phase)
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration never reached phase %q: %+v", phase, migs)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitOutcome polls until the newest migration finishes.
func waitOutcome(t *testing.T, r *cluster.Router) cluster.MigrationStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		migs := r.Migrations()
		if len(migs) > 0 && migs[0].Outcome != "" {
			return migs[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration never finished: %+v", migs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMigrationChaosLossless is the headline invariant suite: three
// writers stream adds and deletes through the router while a
// migration attempt is killed mid-seeding by an injected fault, a
// second attempt (with transfer latency injected) runs to completion,
// and the search path is compared against a single-process oracle
// mid-window. At no point may a document be lost or duplicated, an
// acknowledged write vanish, or the cluster's top-k diverge from the
// oracle's.
//
// ackMu makes router+oracle updates atomic with respect to the
// comparator: writers hold it shared around each (router apply,
// oracle apply) pair; comparison passes take it exclusively, so they
// always observe a consistent cut of both stores.
func TestMigrationChaosLossless(t *testing.T) {
	r, nodes, oracle := newMigrationCluster(t, migrateManual(300*time.Millisecond))
	ctx := context.Background()

	var ackMu sync.RWMutex
	type writerState struct {
		live    map[int64]bool // acked adds still expected present
		deleted []int64        // acked deletes
	}
	const writers = 3
	states := make([]*writerState, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	apply := func(m vecdb.Mutation) error {
		ackMu.RLock()
		defer ackMu.RUnlock()
		if err := r.Apply(ctx, r.ShardFor(m.ID), []vecdb.Mutation{m}); err != nil {
			return err
		}
		// Acked: mirror into the oracle under the same lock hold.
		if err := oracle.ApplyAll([]vecdb.Mutation{m}); err != nil {
			return fmt.Errorf("oracle apply: %w", err)
		}
		return nil
	}

	for w := 0; w < writers; w++ {
		ws := &writerState{live: make(map[int64]bool)}
		states[w] = ws
		wg.Add(1)
		go func(w int, ws *writerState) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(1000 + w*100000 + i)
				text := fmt.Sprintf("Writer %d document %d: clause %d of the handbook.", w, i, id%17)
				if err := apply(vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text}); err != nil {
					t.Errorf("writer %d add %d: %v", w, id, err)
					return
				}
				ws.live[id] = true
				// Every 7th write deletes an earlier acked doc, so the
				// migration must carry deletes as faithfully as adds.
				if i%7 == 6 {
					victim := int64(1000 + w*100000 + (i - 5))
					if err := apply(vecdb.Mutation{Op: vecdb.OpDelete, ID: victim}); err != nil {
						t.Errorf("writer %d delete %d: %v", w, victim, err)
						return
					}
					delete(ws.live, victim)
					ws.deleted = append(ws.deleted, victim)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w, ws)
	}

	// Attempt 1 under live writes: the target's transfer surface dies
	// after one call (the activation push lands, then the seed
	// snapshot is killed) — the migration must abort and leave the old
	// assignment serving.
	badTarget := NewDurableNode(t, "tgt-doomed")
	badTarget.Chaos.FailMigrationAfter(1, ErrInjected)
	st, err := r.Rebalance(ctx, 0, badTarget.Chaos)
	if err != nil {
		t.Fatalf("attempt 1 begin: %v", err)
	}
	if st.Outcome != "aborted" || !strings.Contains(st.Error, "injected") {
		t.Fatalf("attempt 1 = %+v, want aborted by the injected fault", st)
	}
	if r.Epoch() != 1 {
		t.Fatalf("aborted attempt moved the epoch to %d", r.Epoch())
	}

	// Attempt 2: a healthy target with injected transfer latency, so
	// seeding and catch-up provably overlap the write stream.
	target := NewDurableNode(t, "tgt")
	target.Chaos.DelayMigration(2 * time.Millisecond)
	if _, err := r.StartRebalance(0, target.Chaos); err != nil {
		t.Fatalf("attempt 2 begin: %v", err)
	}

	// Mid-window comparison: with the dual-write window open, freeze
	// the writers and check the cluster answers exactly like the
	// oracle.
	waitPhase(t, r, "dual-write")
	vec := queryVec(t, nodes[0], "which clause of the handbook applies")
	ackMu.Lock()
	requireSameRanking(t, r, oracle, vec, 5)
	ackMu.Unlock()

	final := waitOutcome(t, r)
	if final.Outcome != "ok" {
		t.Fatalf("attempt 2 = %+v, want ok", final)
	}

	// Let writes continue across the new assignment briefly, then
	// stop and settle.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Invariants, on the frozen state:
	// 1. No acked write vanished, no deleted doc resurrected.
	expected := 0
	for _, ws := range states {
		for id := range ws.live {
			doc, err := r.Get(ctx, id)
			if err != nil {
				t.Fatalf("acked doc %d lost (shard %d): %v", id, r.ShardFor(id), err)
			}
			if doc.ID != id {
				t.Fatalf("doc %d came back as %d", id, doc.ID)
			}
			expected++
		}
		for _, id := range ws.deleted {
			if _, err := r.Get(ctx, id); !errors.Is(err, vecdb.ErrNotFound) {
				t.Fatalf("deleted doc %d resurrected: %v", id, err)
			}
		}
	}
	// 2. No duplication: total document count equals the oracle's,
	// and the moved shard's store holds exactly its hash class.
	if got, want := r.Len(ctx), oracle.Len(); got != want {
		t.Fatalf("cluster holds %d docs, oracle %d", got, want)
	}
	shard0 := 0
	for _, ws := range states {
		for id := range ws.live {
			if r.ShardFor(id) == 0 {
				shard0++
			}
		}
	}
	if got := target.Store.Len(); got != shard0 {
		t.Fatalf("migrated shard holds %d docs, want %d", got, shard0)
	}
	// 3. The read path agrees with the oracle after retirement too.
	requireSameRanking(t, r, oracle, vec, 5)
	requireSameRanking(t, r, oracle, queryVec(t, nodes[0], "writer zero document"), 3)

	// 4. The ring advanced exactly once and both attempts are on the
	// record.
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch())
	}
	outcomes := map[string]int{}
	for _, m := range r.Migrations() {
		outcomes[m.Outcome]++
	}
	if outcomes["ok"] != 1 || outcomes["aborted"] != 1 {
		t.Fatalf("migration history = %v, want one ok and one aborted", outcomes)
	}
	// 5. The retired source bounces direct traffic toward the new
	// ring (the stale-epoch self-heal a slow client relies on).
	var stale *cluster.StaleEpochError
	if _, err := nodes[0].Chaos.Stat(ctx); !errors.As(err, &stale) || stale.Ring.Epoch != 2 {
		t.Fatalf("retired source = %v, want StaleEpochError epoch 2", err)
	}
}
