package clustertest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/vecdb"
)

// TestFilteredSearchClusterEquivalence is the issue's acceptance check
// for filtered search: a collection+metadata predicate pushed through
// a 3-backend cluster router must return byte-identical hits (IDs,
// scores, order, payloads) to (a) a single-process store holding the
// full corpus searched with the same filter, and (b) a single-process
// store holding only the matching subset searched with no filter at
// all. The predicate is applied before each shard's top-k is taken, so
// no matching document can be crowded out of a shard's candidate list
// by non-matching neighbours — that is what (b) proves.
func TestFilteredSearchClusterEquivalence(t *testing.T) {
	ctx := context.Background()
	nodes := []*Node{
		NewDurableNode(t, "n0"),
		NewDurableNode(t, "n1"),
		NewDurableNode(t, "n2"),
	}
	shards := make([]cluster.ShardBackends, len(nodes))
	for i, n := range nodes {
		shards[i] = cluster.ShardBackends{Primary: n.Chaos}
	}
	r, err := cluster.NewRouter(shards, manualHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range nodes {
		for n.Chaos.Calls("Probe") == 0 {
			if time.Now().After(deadline) {
				t.Fatal("startup probe round never completed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Two tenants × two tags, interleaved across all three shards so
	// every shard holds matching and non-matching documents.
	all, err := vecdb.NewDefault(Dim)
	if err != nil {
		t.Fatal(err)
	}
	matching, err := vecdb.NewDefault(Dim)
	if err != nil {
		t.Fatal(err)
	}
	filter := vecdb.Filter{Collection: "tenant-a", Meta: map[string]string{"tag": "red"}}
	collections := []string{"tenant-a", "tenant-b"}
	tags := []string{"red", "blue"}
	matchCount := 0
	for id := int64(1); id <= 24; id++ {
		doc := vecdb.Document{
			ID:         id,
			Collection: collections[id%2],
			Text:       fmt.Sprintf("passage %d on employee leave policy, variant %d", id, (id*id)%7),
			Meta:       map[string]string{"tag": tags[(id/2)%2]},
		}
		m := vecdb.Mutation{Op: vecdb.OpAdd, ID: doc.ID, Collection: doc.Collection, Text: doc.Text, Meta: doc.Meta}
		if err := r.Apply(ctx, int(id)%len(nodes), []vecdb.Mutation{m}); err != nil {
			t.Fatalf("apply %d: %v", id, err)
		}
		if err := all.AddDocument(doc); err != nil {
			t.Fatal(err)
		}
		if filter.Match(doc) {
			if err := matching.AddDocument(doc); err != nil {
				t.Fatal(err)
			}
			matchCount++
		}
	}
	if matchCount == 0 {
		t.Fatal("corpus produced no matching documents")
	}

	// k exceeds the matching subset, so equality below covers the
	// entire subset, not just its head.
	k := matchCount + 3
	vec := queryVec(t, nodes[0], "employee leave policy")
	clusterHits, err := r.SearchVector(ctx, vec, k, filter)
	if err != nil {
		t.Fatal(err)
	}
	filteredHits, err := all.SearchVectorFiltered(vec, k, filter)
	if err != nil {
		t.Fatal(err)
	}
	subsetHits, err := matching.SearchVector(vec, k)
	if err != nil {
		t.Fatal(err)
	}

	requireSameHits(t, "cluster vs single-process filtered", clusterHits, filteredHits)
	requireSameHits(t, "cluster vs matching-only unfiltered", clusterHits, subsetHits)
	if len(clusterHits) != matchCount {
		t.Errorf("cluster returned %d hits, want the full matching subset (%d)", len(clusterHits), matchCount)
	}
	for _, h := range clusterHits {
		if !filter.Match(h.Document) {
			t.Errorf("hit %d leaked across the filter: collection %q meta %v", h.ID, h.Collection, h.Meta)
		}
	}

	// Per-collection doc counts merge across the stat fan-out.
	counts := r.CollectionCounts(ctx)
	if counts["tenant-a"] != 12 || counts["tenant-b"] != 12 {
		t.Errorf("CollectionCounts = %v, want tenant-a:12 tenant-b:12", counts)
	}
}

// requireSameHits asserts two result lists are identical: same length,
// same IDs, scores, order and document payloads.
func requireSameHits(t *testing.T, what string, a, b []vecdb.Hit) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: hit counts differ: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Score != y.Score || x.Text != y.Text || x.Collection != y.Collection {
			t.Fatalf("%s: hit %d diverged: {%d %v %q %q} vs {%d %v %q %q}",
				what, i, x.ID, x.Score, x.Collection, x.Text, y.ID, y.Score, y.Collection, y.Text)
		}
		if len(x.Meta) != len(y.Meta) {
			t.Fatalf("%s: hit %d meta sizes differ: %v vs %v", what, i, x.Meta, y.Meta)
		}
		for mk, mv := range x.Meta {
			if y.Meta[mk] != mv {
				t.Fatalf("%s: hit %d meta %q differs: %q vs %q", what, i, mk, mv, y.Meta[mk])
			}
		}
	}
}
