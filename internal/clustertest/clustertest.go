// Package clustertest is the in-process chaos harness for the cluster
// layer: a fault-injecting Backend wrapper plus helpers for building
// real durable shard nodes inside one test process and asserting
// seq-level convergence between them.
//
// Before this package existed, the only coverage for
// ejection/divergence/recovery was a CI shell smoke that kill -9'd a
// real process — unrunnable under `go test`, undebuggable under the
// race detector, and too coarse to script partial failures. The
// harness closes that gap: a ChaosBackend wraps a real
// cluster.Backend (over a real WAL-backed store) and injects scripted
// errors, partitions and latency per operation class, so
// ejection → divergence → resync → convergence runs as a
// deterministic, race-clean Go test. Probing and anti-entropy are
// driven explicitly through Router.ProbeNow and Router.ResyncNow, so
// tests never sleep-and-hope.
package clustertest

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/vecdb"
)

// Dim is the embedding width every harness store uses.
const Dim = 32

// Injected fault errors, distinguishable in assertions.
var (
	ErrPartitioned = errors.New("clustertest: partitioned")
	ErrInjected    = errors.New("clustertest: injected fault")
)

// ChaosBackend wraps a cluster.Backend with scripted fault injection.
// Faults are grouped by operation class so a test can, say, fail
// writes while probes still succeed (a diverging-but-alive replica)
// or cut everything (a network partition):
//
//	reads     — SearchVector, Get
//	writes    — Apply
//	probes    — Probe
//	resync    — Stat, MutationsSince, ApplyResync, SnapshotDocs, ApplySnapshot
//	migration — the transfer surface a shard move rides on: snapshot
//	            read/apply, delta read/apply, and InstallRing — armed
//	            separately from resync so a test can break a migration
//	            mid-cutover while background anti-entropy stays healthy
//
// Partition(true) fails every class. All methods are safe for
// concurrent use; fault state changes take effect on the next call.
type ChaosBackend struct {
	inner cluster.Backend

	mu          sync.Mutex
	partitioned bool
	writeErr    error
	readErr     error
	probeErr    error
	resyncErr   error
	migErr      error
	migAfter    int
	migDelay    time.Duration
	latency     time.Duration
	spikeEvery  int
	spikeDur    time.Duration
	spikeN      uint64
	spikes      uint64
	calls       map[string]uint64
}

// Wrap builds a ChaosBackend over inner with no faults armed.
func Wrap(inner cluster.Backend) *ChaosBackend {
	return &ChaosBackend{inner: inner, calls: make(map[string]uint64)}
}

// Partition cuts (or restores) the backend entirely — every
// operation fails with ErrPartitioned, exactly what a dead node or a
// network split looks like to the router.
func (c *ChaosBackend) Partition(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partitioned = on
}

// FailWrites arms (or, with nil, disarms) a fault on Apply.
// ErrInjected is used when err is nil but arm is true.
func (c *ChaosBackend) FailWrites(err error) { c.setErr(&c.writeErr, err) }

// FailReads arms a fault on SearchVector and Get.
func (c *ChaosBackend) FailReads(err error) { c.setErr(&c.readErr, err) }

// FailProbes arms a fault on Probe — the backend looks dead to the
// health checker while still answering data calls.
func (c *ChaosBackend) FailProbes(err error) { c.setErr(&c.probeErr, err) }

// FailResync arms a fault on the resync surface (Stat, delta and
// snapshot transfer), for tests that pin a backend in its
// needs-resync hold.
func (c *ChaosBackend) FailResync(err error) { c.setErr(&c.resyncErr, err) }

// FailMigration arms (or, with nil, disarms) a fault on the migration
// transfer surface — SnapshotDocs, ApplySnapshot, MutationsSince,
// ApplyResync and InstallRing — dropping a shard move's seeding,
// catch-up or ring push while ordinary reads, writes and probes keep
// working.
func (c *ChaosBackend) FailMigration(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migErr, c.migAfter = err, 0
}

// FailMigrationAfter lets n migration-surface calls through and then
// arms err — the "node died mid-cutover" script: seeding starts,
// some batches land, and the transfer dies partway. err == nil
// disarms.
func (c *ChaosBackend) FailMigrationAfter(n int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migErr, c.migAfter = err, n
}

// DelayMigration stalls every migration-surface call by d (0
// disarms), stretching the seeding/catch-up window so concurrent
// writes provably overlap it. The stall respects ctx.
func (c *ChaosBackend) DelayMigration(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migDelay = d
}

// migEnter applies the migration fault class on top of the resync
// class: the armed delay first (ctx-aware), then the countdown fault.
func (c *ChaosBackend) migEnter(ctx context.Context) error {
	c.mu.Lock()
	d := c.migDelay
	var err error
	if c.migErr != nil {
		if c.migAfter > 0 {
			c.migAfter--
		} else {
			err = c.migErr
		}
	}
	c.mu.Unlock()
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return err
}

func (c *ChaosBackend) setErr(slot *error, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	*slot = err
}

// SetLatency injects a fixed delay before every operation.
func (c *ChaosBackend) SetLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency = d
}

// SetSpike arms a deterministic tail-latency spike: every every-th
// SearchVector call stalls for d before executing (1-in-every, counted
// per backend). Unlike SetLatency it models the occasional slow
// replica — GC pause, page-cache miss, noisy neighbor — that hedged
// reads exist to cut, and being counter-based rather than random it
// reproduces the same tail on every run. every <= 0 or d <= 0
// disarms. The stall respects ctx, so a hedge race that has already
// been decided cancels the spiked loser instead of waiting it out.
func (c *ChaosBackend) SetSpike(every int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spikeEvery, c.spikeDur = every, d
	c.spikeN = 0
}

// Spikes reports how many SearchVector calls were stalled by SetSpike.
func (c *ChaosBackend) Spikes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spikes
}

// spikeHit advances the spike counter and returns the stall to apply
// to this SearchVector call (0 for the fast path).
func (c *ChaosBackend) spikeHit() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spikeEvery <= 0 || c.spikeDur <= 0 {
		return 0
	}
	c.spikeN++
	if c.spikeN%uint64(c.spikeEvery) != 0 {
		return 0
	}
	c.spikes++
	return c.spikeDur
}

// Calls reports how many times the named method has been invoked
// (faulted calls included).
func (c *ChaosBackend) Calls(method string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[method]
}

// enter records the call, applies latency, and returns the armed
// fault for the operation class (classErr may be nil for
// partition-only classes).
func (c *ChaosBackend) enter(method string, classErr *error) error {
	c.mu.Lock()
	c.calls[method]++
	d := c.latency
	var err error
	switch {
	case c.partitioned:
		err = ErrPartitioned
	case classErr != nil && *classErr != nil:
		err = *classErr
	}
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

func (c *ChaosBackend) Name() string { return c.inner.Name() }

func (c *ChaosBackend) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if err := c.enter("SearchVector", &c.readErr); err != nil {
		return nil, err
	}
	if d := c.spikeHit(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	return c.inner.SearchVector(ctx, vec, k, f)
}

func (c *ChaosBackend) Apply(ctx context.Context, ms []vecdb.Mutation) error {
	if err := c.enter("Apply", &c.writeErr); err != nil {
		return err
	}
	return c.inner.Apply(ctx, ms)
}

func (c *ChaosBackend) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	if err := c.enter("Get", &c.readErr); err != nil {
		return vecdb.Document{}, err
	}
	return c.inner.Get(ctx, id)
}

func (c *ChaosBackend) Stat(ctx context.Context) (cluster.ShardStat, error) {
	if err := c.enter("Stat", &c.resyncErr); err != nil {
		return cluster.ShardStat{}, err
	}
	return c.inner.Stat(ctx)
}

func (c *ChaosBackend) Probe(ctx context.Context) error {
	if err := c.enter("Probe", &c.probeErr); err != nil {
		return err
	}
	return c.inner.Probe(ctx)
}

func (c *ChaosBackend) MutationsSince(ctx context.Context, since uint64, max int) ([]vecdb.SeqMutation, error) {
	if err := c.enter("MutationsSince", &c.resyncErr); err != nil {
		return nil, err
	}
	if err := c.migEnter(ctx); err != nil {
		return nil, err
	}
	return c.inner.MutationsSince(ctx, since, max)
}

func (c *ChaosBackend) ApplyResync(ctx context.Context, ms []vecdb.SeqMutation) error {
	if err := c.enter("ApplyResync", &c.resyncErr); err != nil {
		return err
	}
	if err := c.migEnter(ctx); err != nil {
		return err
	}
	return c.inner.ApplyResync(ctx, ms)
}

func (c *ChaosBackend) SnapshotDocs(ctx context.Context) (uint64, []vecdb.Document, error) {
	if err := c.enter("SnapshotDocs", &c.resyncErr); err != nil {
		return 0, nil, err
	}
	if err := c.migEnter(ctx); err != nil {
		return 0, nil, err
	}
	return c.inner.SnapshotDocs(ctx)
}

func (c *ChaosBackend) ApplySnapshot(ctx context.Context, seq uint64, docs []vecdb.Document) error {
	if err := c.enter("ApplySnapshot", &c.resyncErr); err != nil {
		return err
	}
	if err := c.migEnter(ctx); err != nil {
		return err
	}
	return c.inner.ApplySnapshot(ctx, seq, docs)
}

// InstallRing forwards a ring update to the inner backend when it
// participates in the epoch handshake (LocalBackend and HTTPBackend
// both do), subject to the partition and migration fault classes — a
// chaos target can refuse the activation push exactly like a dead
// node would.
func (c *ChaosBackend) InstallRing(ctx context.Context, up cluster.RingUpdate) error {
	if err := c.enter("InstallRing", nil); err != nil {
		return err
	}
	if err := c.migEnter(ctx); err != nil {
		return err
	}
	if rr, ok := c.inner.(cluster.RingReceiver); ok {
		return rr.InstallRing(ctx, up)
	}
	return nil
}

var (
	_ cluster.Backend      = (*ChaosBackend)(nil)
	_ cluster.RingReceiver = (*ChaosBackend)(nil)
)

// Node is one in-process shard node: a real single-shard durable
// store (its own WAL + checkpoint dir, background checkpointer
// disabled so tests control truncation) behind a chaos-wrapped local
// backend.
type Node struct {
	Name  string
	Dir   string
	Store *serve.ShardedDB
	Chaos *ChaosBackend
}

// NewDurableNode builds a Node named name over a fresh temp dir,
// closed automatically when the test ends.
func NewDurableNode(t testing.TB, name string) *Node {
	t.Helper()
	dir := t.TempDir()
	st, err := serve.OpenShardedDefault(dir, 1, Dim, 256, serve.PersistConfig{
		CheckpointEvery: -1, // checkpoints only when a test (or snapshot apply) asks
	})
	if err != nil {
		t.Fatalf("clustertest: open node %s: %v", name, err)
	}
	t.Cleanup(func() { st.CloseNoCheckpoint() })
	lb, err := cluster.NewLocalBackend(name, st)
	if err != nil {
		t.Fatalf("clustertest: backend %s: %v", name, err)
	}
	return &Node{Name: name, Dir: dir, Store: st, Chaos: Wrap(lb)}
}

// RequireConverged asserts two stores hold byte-identical state: same
// seq, same checksum, and the same document set (IDs, texts,
// metadata) — the anti-entropy acceptance check.
func RequireConverged(t testing.TB, a, b cluster.NodeStore) {
	t.Helper()
	if as, bs := a.Seq(), b.Seq(); as != bs {
		t.Fatalf("seq diverged: %d vs %d", as, bs)
	}
	if ac, bc := a.Checksum(), b.Checksum(); ac != bc {
		t.Fatalf("checksum diverged: %x vs %x", ac, bc)
	}
	_, adocs, err := a.SnapshotDocs()
	if err != nil {
		t.Fatal(err)
	}
	_, bdocs, err := b.SnapshotDocs()
	if err != nil {
		t.Fatal(err)
	}
	if len(adocs) != len(bdocs) {
		t.Fatalf("doc count diverged: %d vs %d", len(adocs), len(bdocs))
	}
	for i := range adocs {
		x, y := adocs[i], bdocs[i]
		if x.ID != y.ID || x.Text != y.Text || len(x.Meta) != len(y.Meta) {
			t.Fatalf("doc %d diverged: %+v vs %+v", i, x, y)
		}
		for k, v := range x.Meta {
			if y.Meta[k] != v {
				t.Fatalf("doc %d meta %q diverged: %q vs %q", x.ID, k, v, y.Meta[k])
			}
		}
	}
}

// RequireSameTopK asserts both stores answer the same top-k (IDs,
// scores, order) for an embedded query — the read-side face of
// convergence.
func RequireSameTopK(t testing.TB, a, b cluster.NodeStore, vec []float32, k int) {
	t.Helper()
	ah, err := a.SearchVector(vec, k)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := b.SearchVector(vec, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ah) != len(bh) {
		t.Fatalf("top-k sizes diverged: %d vs %d", len(ah), len(bh))
	}
	for i := range ah {
		if ah[i].ID != bh[i].ID || ah[i].Score != bh[i].Score || ah[i].Text != bh[i].Text {
			t.Fatalf("hit %d diverged: {%d %v} vs {%d %v}", i, ah[i].ID, ah[i].Score, bh[i].ID, bh[i].Score)
		}
	}
}

// RequireMigrated is the lossless-move acceptance check: after a
// shard migration retires src in favor of tgt, both must hold
// byte-identical state (seq, checksum, full document set) and answer
// the identical top-k — the retired source serves as the oracle for
// what the target was supposed to receive.
func RequireMigrated(t testing.TB, src, tgt cluster.NodeStore, vec []float32, k int) {
	t.Helper()
	RequireConverged(t, src, tgt)
	RequireSameTopK(t, src, tgt, vec, k)
}
