// Package rag implements the retrieval-augmented-generation flow of the
// paper's §III and Fig. 2 (a): documents are chunked into passages,
// indexed in the vector database, retrieved per question, assembled
// into a prompt, and handed to an answer generator. The pipeline's
// output — (question, retrieved context, response) triples — is what
// the core detection framework verifies.
package rag

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/splitter"
	"repro/internal/vecdb"
)

// Chunker splits a document into indexable passages.
type Chunker struct {
	// MaxSentences caps the sentences per chunk.
	MaxSentences int
	// Overlap carries this many trailing sentences into the next chunk
	// so facts straddling a boundary stay retrievable.
	Overlap int
}

// DefaultChunker returns the chunker used by the examples: three
// sentences per chunk with one sentence of overlap.
func DefaultChunker() Chunker { return Chunker{MaxSentences: 3, Overlap: 1} }

// Chunk splits text into passages. Empty input yields nil.
func (c Chunker) Chunk(text string) ([]string, error) {
	if c.MaxSentences <= 0 {
		return nil, fmt.Errorf("rag: MaxSentences must be positive, got %d", c.MaxSentences)
	}
	if c.Overlap < 0 || c.Overlap >= c.MaxSentences {
		return nil, fmt.Errorf("rag: need 0 ≤ Overlap(%d) < MaxSentences(%d)", c.Overlap, c.MaxSentences)
	}
	sentences := splitter.Split(text)
	if len(sentences) == 0 {
		return nil, nil
	}
	var chunks []string
	step := c.MaxSentences - c.Overlap
	for start := 0; start < len(sentences); start += step {
		end := start + c.MaxSentences
		if end > len(sentences) {
			end = len(sentences)
		}
		chunks = append(chunks, strings.Join(sentences[start:end], " "))
		if end == len(sentences) {
			break
		}
	}
	return chunks, nil
}

// Store is the document backend the pipeline retrieves from. It is
// satisfied by *vecdb.DB and by sharded or cached routers layered on
// top of it (internal/serve).
type Store interface {
	// Add embeds and stores one passage, returning its ID.
	Add(text string, meta map[string]string) (int64, error)
	// Search returns the top-k most similar passages, best first.
	Search(query string, k int) ([]vecdb.Hit, error)
	// Len reports the number of stored passages.
	Len() int
}

var _ Store = (*vecdb.DB)(nil)

// ContextSearcher is the optional context-aware search surface. A
// Store implementing it (serve.ShardedDB, serve.RemoteStore) receives
// the caller's context on retrieval, keeping request IDs and
// deadlines flowing from an HTTP handler down to cluster RPCs.
type ContextSearcher interface {
	SearchContext(ctx context.Context, query string, k int) ([]vecdb.Hit, error)
}

// CollectionSearcher is the optional scoped search surface: stores
// that can push a collection/metadata predicate into retrieval
// (serve.ShardedDB, serve.RemoteStore) implement it, so an Ask scoped
// to one tenant draws context exclusively from that tenant's
// documents — cross-tenant leakage is structurally impossible rather
// than probabilistically unlikely.
type CollectionSearcher interface {
	SearchFilteredContext(ctx context.Context, query string, k int, f vecdb.Filter) ([]vecdb.Hit, error)
}

// Retriever answers questions with the top-k most relevant passages
// from a document store.
type Retriever struct {
	db   Store
	topK int
}

// NewRetriever wraps a populated store. topK must be positive.
func NewRetriever(db Store, topK int) (*Retriever, error) {
	if db == nil {
		return nil, errors.New("rag: nil database")
	}
	if topK <= 0 {
		return nil, fmt.Errorf("rag: topK must be positive, got %d", topK)
	}
	return &Retriever{db: db, topK: topK}, nil
}

// Retrieve returns the top passages for the question, best first.
func (r *Retriever) Retrieve(question string) ([]vecdb.Hit, error) {
	hits, err := r.db.Search(question, r.topK)
	if err != nil {
		return nil, fmt.Errorf("rag: retrieve: %w", err)
	}
	return hits, nil
}

// RetrieveContext is Retrieve under the caller's context when the
// store supports it, falling back to the context-free path.
func (r *Retriever) RetrieveContext(ctx context.Context, question string) ([]vecdb.Hit, error) {
	cs, ok := r.db.(ContextSearcher)
	if !ok {
		return r.Retrieve(question)
	}
	hits, err := cs.SearchContext(ctx, question, r.topK)
	if err != nil {
		return nil, fmt.Errorf("rag: retrieve: %w", err)
	}
	return hits, nil
}

// RetrieveFiltered is RetrieveContext with a collection/metadata
// predicate pushed into the store. A zero filter falls back to the
// unscoped path; a non-zero filter on a store without the scoped
// surface is an error, never a silent widening of scope.
func (r *Retriever) RetrieveFiltered(ctx context.Context, question string, f vecdb.Filter) ([]vecdb.Hit, error) {
	if f.IsZero() {
		return r.RetrieveContext(ctx, question)
	}
	cs, ok := r.db.(CollectionSearcher)
	if !ok {
		return nil, errors.New("rag: store cannot scope retrieval to a collection")
	}
	hits, err := cs.SearchFilteredContext(ctx, question, r.topK, f)
	if err != nil {
		return nil, fmt.Errorf("rag: retrieve: %w", err)
	}
	return hits, nil
}

// Context concatenates retrieved passages into the context string the
// generation and verification prompts consume.
func Context(hits []vecdb.Hit) string {
	parts := make([]string, len(hits))
	for i, h := range hits {
		parts[i] = h.Text
	}
	return strings.Join(parts, " ")
}

// AnswerPrompt renders the generation prompt of §III: role, context,
// question.
func AnswerPrompt(question, context string) string {
	var b strings.Builder
	b.WriteString("You are a helpful HR assistant. Answer the question using only the provided context.\n")
	fmt.Fprintf(&b, "Context: %s\n", context)
	fmt.Fprintf(&b, "Question: %s\n", question)
	b.WriteString("Answer:")
	return b.String()
}

// Generator produces an answer from a question and retrieved context.
// It stands in for the LLM of Fig. 2 (a) (ChatGPT 3.5 / Llama-2-70b in
// the paper); see DESIGN.md §1 for the substitution.
type Generator interface {
	// Generate returns the response text for the prompt inputs.
	Generate(question, context string) (string, error)
}

// ExtractiveGenerator is a deterministic generator that answers by
// selecting the context sentences most relevant to the question — the
// behaviour of a well-grounded LLM. Wrapping it with a FaultInjector
// produces the hallucinated variants the detector is evaluated on.
type ExtractiveGenerator struct {
	// MaxSentences caps the answer length.
	MaxSentences int
}

// Generate implements Generator by scoring each context sentence's
// lexical overlap with the question and returning the best ones in
// their original order.
func (g ExtractiveGenerator) Generate(question, context string) (string, error) {
	max := g.MaxSentences
	if max <= 0 {
		max = 2
	}
	sentences := splitter.Split(context)
	if len(sentences) == 0 {
		return "", errors.New("rag: empty context")
	}
	type scored struct {
		idx   int
		score float64
	}
	qWords := contentSet(question)
	ranked := make([]scored, 0, len(sentences))
	for i, s := range sentences {
		ranked = append(ranked, scored{idx: i, score: overlapWith(qWords, s)})
	}
	// Selection sort of the top `max` by score (stable by index).
	// Near-duplicate sentences — common when overlapping retrieved
	// passages repeat the same handbook fact — are selected once.
	selected := map[int]bool{}
	chosen := map[string]bool{}
	for n := 0; n < max && n < len(ranked); {
		best := -1
		for i, r := range ranked {
			if selected[r.idx] {
				continue
			}
			if best == -1 || r.score > ranked[best].score {
				best = i
			}
		}
		if best == -1 || ranked[best].score == 0 && n > 0 {
			break
		}
		selected[ranked[best].idx] = true
		key := strings.Join(contentWords(sentences[ranked[best].idx]), " ")
		if chosen[key] {
			selected[ranked[best].idx] = false
			ranked = append(ranked[:best], ranked[best+1:]...)
			continue
		}
		chosen[key] = true
		n++
	}
	var out []string
	for i, s := range sentences {
		if selected[i] {
			out = append(out, s)
		}
	}
	return strings.Join(out, " "), nil
}

// contentSet builds the stemmed content-word set of s.
func contentSet(s string) map[string]struct{} {
	set := map[string]struct{}{}
	for _, w := range contentWords(s) {
		set[w] = struct{}{}
	}
	return set
}

func overlapWith(q map[string]struct{}, sentence string) float64 {
	words := contentWords(sentence)
	if len(words) == 0 {
		return 0
	}
	n := 0
	for _, w := range words {
		if _, ok := q[w]; ok {
			n++
		}
	}
	return float64(n) / float64(len(words))
}
