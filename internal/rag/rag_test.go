package rag

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/splitter"
	"repro/internal/textproc"
	"repro/internal/vecdb"
)

func TestChunker(t *testing.T) {
	c := Chunker{MaxSentences: 2, Overlap: 1}
	text := "One. Two. Three. Four."
	chunks, err := c.Chunk(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"One. Two.", "Two. Three.", "Three. Four."}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %#v, want %#v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Errorf("chunk %d = %q, want %q", i, chunks[i], want[i])
		}
	}
}

func TestChunkerNoOverlap(t *testing.T) {
	c := Chunker{MaxSentences: 2}
	chunks, err := c.Chunk("One. Two. Three.")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || chunks[1] != "Three." {
		t.Errorf("chunks = %#v", chunks)
	}
}

func TestChunkerValidation(t *testing.T) {
	if _, err := (Chunker{MaxSentences: 0}).Chunk("x."); err == nil {
		t.Error("zero MaxSentences accepted")
	}
	if _, err := (Chunker{MaxSentences: 2, Overlap: 2}).Chunk("x."); err == nil {
		t.Error("Overlap == MaxSentences accepted")
	}
	chunks, err := DefaultChunker().Chunk("")
	if err != nil || chunks != nil {
		t.Errorf("empty doc: %v %v", chunks, err)
	}
}

// TestChunkerCoversEverySentence: no sentence may be dropped.
func TestChunkerCoversEverySentence(t *testing.T) {
	set, err := dataset.Generate(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultChunker()
	for _, it := range set.Items {
		chunks, err := c.Chunk(it.Context)
		if err != nil {
			t.Fatal(err)
		}
		joined := strings.Join(chunks, " ")
		for _, s := range splitter.Split(it.Context) {
			if !strings.Contains(joined, s) {
				t.Errorf("sentence lost in chunking: %q", s)
			}
		}
	}
}

func buildDB(t *testing.T, docs []string) *vecdb.DB {
	t.Helper()
	db, err := vecdb.NewDefault(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRetrieverFindsRelevantContext(t *testing.T) {
	set, err := dataset.Generate(11, 32)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, set.Contexts())
	r, err := NewRetriever(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	// For most items the retrieved context should contain that item's
	// own context (retrieval@3 over 32 passages).
	hitCount := 0
	for _, it := range set.Items {
		hits, err := r.Retrieve(it.Question)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			if h.Text == it.Context {
				hitCount++
				break
			}
		}
	}
	if ratio := float64(hitCount) / float64(len(set.Items)); ratio < 0.6 {
		t.Errorf("retrieval@3 = %.2f, want ≥0.6", ratio)
	}
}

func TestRetrieverValidation(t *testing.T) {
	if _, err := NewRetriever(nil, 3); err == nil {
		t.Error("nil db accepted")
	}
	db := buildDB(t, []string{"doc"})
	if _, err := NewRetriever(db, 0); err == nil {
		t.Error("topK 0 accepted")
	}
}

func TestContextAndPrompt(t *testing.T) {
	hits := []vecdb.Hit{
		{Document: vecdb.Document{Text: "A."}},
		{Document: vecdb.Document{Text: "B."}},
	}
	if got := Context(hits); got != "A. B." {
		t.Errorf("Context = %q", got)
	}
	p := AnswerPrompt("Q?", "CTX")
	for _, want := range []string{"Q?", "CTX", "Answer:"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestExtractiveGenerator(t *testing.T) {
	g := ExtractiveGenerator{MaxSentences: 2}
	contextText := "The probation period lasts three months. The staff canteen is on the third floor. Working hours are 9 AM to 5 PM."
	out, err := g.Generate("How long is the probation period?", contextText)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "probation") {
		t.Errorf("answer misses the probation sentence: %q", out)
	}
	if n := splitter.Count(out); n > 2 {
		t.Errorf("answer has %d sentences, cap is 2", n)
	}
	if _, err := g.Generate("q", ""); err == nil {
		t.Error("empty context accepted")
	}
}

func TestCorruptSentenceAlwaysChanges(t *testing.T) {
	src := rng.New(42)
	inputs := []string{
		"Employees receive 14 days of leave.",
		"The store is open on Monday.",
		"Personal use of email is prohibited.",
		"Uniforms are mandatory on the floor.",
		"Just words here entirely.",
		"Too short.",
	}
	for _, in := range inputs {
		out := CorruptSentence(in, src)
		if out == in {
			t.Errorf("CorruptSentence left %q unchanged", in)
		}
	}
}

func TestCorruptSentenceNumericConflicts(t *testing.T) {
	src := rng.New(1)
	in := "Employees receive 14 days of leave."
	out := CorruptSentence(in, src)
	conf, _ := textproc.QuantityConflicts(
		textproc.ExtractQuantities(out),
		textproc.ExtractQuantities(in),
	)
	if conf == 0 {
		t.Errorf("numeric corruption undetectable: %q -> %q", in, out)
	}
}

func TestFaultInjectorModes(t *testing.T) {
	contextText := "Employees receive 14 days of leave. Uniforms are mandatory on the floor."
	base := ExtractiveGenerator{MaxSentences: 2}

	clean, err := NewFaultInjector(base, FaultNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := NewFaultInjector(base, FaultPartial, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := NewFaultInjector(base, FaultAll, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := "What are employees entitled to?"
	truth, err := base.Generate(q, contextText)
	if err != nil {
		t.Fatal(err)
	}
	cleanOut, _ := clean.Generate(q, contextText)
	if cleanOut != truth {
		t.Error("FaultNone altered the answer")
	}
	partialOut, _ := partial.Generate(q, contextText)
	allOut, _ := all.Generate(q, contextText)

	truthSents := splitter.Split(truth)
	count := func(out string) int {
		changed := 0
		for i, s := range splitter.Split(out) {
			if i < len(truthSents) && s != truthSents[i] {
				changed++
			}
		}
		return changed
	}
	if got := count(partialOut); got != 1 {
		t.Errorf("FaultPartial changed %d sentences, want 1\n%q\n%q", got, truth, partialOut)
	}
	if got := count(allOut); got != len(truthSents) {
		t.Errorf("FaultAll changed %d/%d sentences", got, len(truthSents))
	}
}

func TestFaultInjectorValidation(t *testing.T) {
	if _, err := NewFaultInjector(nil, FaultNone, 1); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := NewFaultInjector(ExtractiveGenerator{}, FaultMode(9), 1); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	set, err := dataset.Generate(17, 16)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, set.Contexts())
	detector, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate the detector on the contexts themselves so moments
	// are not empty.
	var triples []core.Triple
	for _, it := range set.Items[:8] {
		r, _ := it.Response(dataset.LabelCorrect)
		triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		r, _ = it.Response(dataset.LabelWrong)
		triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
	}
	if err := detector.Calibrate(context.Background(), triples); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(PipelineConfig{
		DB:        db,
		TopK:      2,
		Generator: ExtractiveGenerator{MaxSentences: 2},
		Detector:  detector,
		Threshold: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Ask(context.Background(), set.Items[0].Question)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Response == "" || ans.Context == "" {
		t.Fatalf("incomplete answer: %+v", ans)
	}
	if len(ans.Verdict.Sentences) == 0 {
		t.Error("verdict has no sentence detail")
	}
}

func TestPipelineGroundedBeatsHallucinated(t *testing.T) {
	// The pipeline's own verification must rank grounded answers above
	// injected hallucinations for most questions.
	set, err := dataset.Generate(23, 16)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, set.Contexts())
	detector, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := detector.Calibrate(context.Background(), triples); err != nil {
		t.Fatal(err)
	}
	mk := func(mode FaultMode) *Pipeline {
		gen, err := NewFaultInjector(ExtractiveGenerator{MaxSentences: 2}, mode, 5)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPipeline(PipelineConfig{DB: db, TopK: 2, Generator: gen, Detector: detector})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	grounded, hallucinated := mk(FaultNone), mk(FaultAll)
	wins := 0
	n := 10
	for _, it := range set.Items[:n] {
		g, err := grounded.Ask(context.Background(), it.Question)
		if err != nil {
			t.Fatal(err)
		}
		h, err := hallucinated.Ask(context.Background(), it.Question)
		if err != nil {
			t.Fatal(err)
		}
		if g.Verdict.Score > h.Verdict.Score {
			wins++
		}
	}
	if wins < n*7/10 {
		t.Errorf("grounded answers outscored hallucinated only %d/%d times", wins, n)
	}
}

func TestPipelineValidation(t *testing.T) {
	db := buildDB(t, []string{"doc"})
	det, _ := core.NewProposed()
	if _, err := NewPipeline(PipelineConfig{DB: db, Detector: det}); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := NewPipeline(PipelineConfig{DB: db, Generator: ExtractiveGenerator{}}); err == nil {
		t.Error("nil detector accepted")
	}
}

func TestPipelineIngest(t *testing.T) {
	db, err := vecdb.NewDefault(64)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := core.NewProposed()
	p, err := NewPipeline(PipelineConfig{DB: db, Generator: ExtractiveGenerator{}, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Ingest("One. Two. Three. Four. Five.", Chunker{MaxSentences: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || db.Len() != 3 {
		t.Errorf("ingested %d chunks, db has %d", n, db.Len())
	}
}
