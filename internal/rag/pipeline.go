package rag

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/vecdb"
)

// Pipeline is the end-to-end system of Fig. 2: ingest documents,
// retrieve context for a question, generate an answer, and verify it
// with the detection framework before returning it to the user.
type Pipeline struct {
	retriever *Retriever
	generator Generator
	detector  *core.Detector
	// Threshold is the paper's decision boundary on s_i: answers at or
	// below it are flagged as likely hallucinated.
	Threshold float64
}

// PipelineConfig assembles a Pipeline.
type PipelineConfig struct {
	DB        *vecdb.DB
	TopK      int
	Generator Generator
	Detector  *core.Detector
	Threshold float64
}

// NewPipeline validates and builds the pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Generator == nil {
		return nil, errors.New("rag: nil generator")
	}
	if cfg.Detector == nil {
		return nil, errors.New("rag: nil detector")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 3
	}
	r, err := NewRetriever(cfg.DB, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		retriever: r,
		generator: cfg.Generator,
		detector:  cfg.Detector,
		Threshold: cfg.Threshold,
	}, nil
}

// Ingest chunks and indexes a document.
func (p *Pipeline) Ingest(doc string, chunker Chunker) (int, error) {
	chunks, err := chunker.Chunk(doc)
	if err != nil {
		return 0, err
	}
	for _, c := range chunks {
		if _, err := p.retriever.db.Add(c, nil); err != nil {
			return 0, err
		}
	}
	return len(chunks), nil
}

// Answer is the verified output of one Ask call.
type Answer struct {
	// Question echoes the input.
	Question string
	// Context is the concatenated retrieved passages.
	Context string
	// Response is the generated answer.
	Response string
	// Verdict carries the hallucination score and per-sentence detail.
	Verdict core.Verdict
	// Trusted applies the pipeline threshold: true when the score
	// exceeds it.
	Trusted bool
}

// Ask runs retrieve → generate → verify for one question.
func (p *Pipeline) Ask(ctx context.Context, question string) (Answer, error) {
	hits, err := p.retriever.Retrieve(question)
	if err != nil {
		return Answer{}, err
	}
	if len(hits) == 0 {
		return Answer{}, fmt.Errorf("rag: no context retrieved for %q", question)
	}
	contextText := Context(hits)
	response, err := p.generator.Generate(question, contextText)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: generate: %w", err)
	}
	verdict, err := p.detector.Score(ctx, question, contextText, response)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: verify: %w", err)
	}
	return Answer{
		Question: question,
		Context:  contextText,
		Response: response,
		Verdict:  verdict,
		Trusted:  verdict.IsCorrect(p.Threshold),
	}, nil
}
