package rag

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/vecdb"
)

// Pipeline is the end-to-end system of Fig. 2: ingest documents,
// retrieve context for a question, generate an answer, and verify it
// with the detection framework before returning it to the user.
type Pipeline struct {
	retriever *Retriever
	generator Generator
	detector  *core.Detector
	// Threshold is the paper's decision boundary on s_i: answers at or
	// below it are flagged as likely hallucinated.
	Threshold float64
}

// PipelineConfig assembles a Pipeline. DB accepts any Store — a plain
// *vecdb.DB or a sharded router from internal/serve.
type PipelineConfig struct {
	DB        Store
	TopK      int
	Generator Generator
	Detector  *core.Detector
	Threshold float64
}

// NewPipeline validates and builds the pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Generator == nil {
		return nil, errors.New("rag: nil generator")
	}
	if cfg.Detector == nil {
		return nil, errors.New("rag: nil detector")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 3
	}
	r, err := NewRetriever(cfg.DB, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		retriever: r,
		generator: cfg.Generator,
		detector:  cfg.Detector,
		Threshold: cfg.Threshold,
	}, nil
}

// Ingest chunks and indexes a document.
func (p *Pipeline) Ingest(doc string, chunker Chunker) (int, error) {
	chunks, err := chunker.Chunk(doc)
	if err != nil {
		return 0, err
	}
	for _, c := range chunks {
		if _, err := p.retriever.db.Add(c, nil); err != nil {
			return 0, err
		}
	}
	return len(chunks), nil
}

// Answer is the verified output of one Ask call.
type Answer struct {
	// Question echoes the input.
	Question string
	// Context is the concatenated retrieved passages.
	Context string
	// Response is the generated answer.
	Response string
	// Verdict carries the hallucination score and per-sentence detail.
	Verdict core.Verdict
	// Trusted applies the pipeline threshold: true when the score
	// exceeds it.
	Trusted bool
}

// Draft runs retrieve → generate for one question, returning an
// unverified Answer (zero Verdict, Trusted false). Serving layers that
// batch verification across requests call Draft, verify the response
// through their own scheduler, and fill in the verdict.
func (p *Pipeline) Draft(question string) (Answer, error) {
	return p.DraftContext(context.Background(), question)
}

// DraftContext is Draft under the caller's context: retrieval runs
// with the request's ID and deadline when the store is
// context-aware (see ContextSearcher).
func (p *Pipeline) DraftContext(ctx context.Context, question string) (Answer, error) {
	return p.DraftFiltered(ctx, question, vecdb.Filter{})
}

// DraftFiltered is DraftContext with retrieval scoped by a
// collection/metadata filter (see CollectionSearcher); the zero filter
// retrieves unscoped.
func (p *Pipeline) DraftFiltered(ctx context.Context, question string, f vecdb.Filter) (Answer, error) {
	hits, err := p.retriever.RetrieveFiltered(ctx, question, f)
	if err != nil {
		return Answer{}, err
	}
	if len(hits) == 0 {
		return Answer{}, fmt.Errorf("rag: no context retrieved for %q", question)
	}
	contextText := Context(hits)
	response, err := p.generator.Generate(question, contextText)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: generate: %w", err)
	}
	return Answer{
		Question: question,
		Context:  contextText,
		Response: response,
	}, nil
}

// Finalize applies a verdict to a drafted answer using the pipeline
// threshold.
func (p *Pipeline) Finalize(draft Answer, verdict core.Verdict) Answer {
	draft.Verdict = verdict
	draft.Trusted = verdict.IsCorrect(p.Threshold)
	return draft
}

// Detector exposes the pipeline's verifier so serving layers can route
// drafted answers through a shared batch scheduler.
func (p *Pipeline) Detector() *core.Detector { return p.detector }

// Ask runs retrieve → generate → verify for one question.
func (p *Pipeline) Ask(ctx context.Context, question string) (Answer, error) {
	draft, err := p.DraftContext(ctx, question)
	if err != nil {
		return Answer{}, err
	}
	verdict, err := p.detector.Score(ctx, question, draft.Context, draft.Response)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: verify: %w", err)
	}
	return p.Finalize(draft, verdict), nil
}
