package rag

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/splitter"
	"repro/internal/textproc"
)

// FaultMode selects how a FaultInjector corrupts a grounded answer,
// mirroring the dataset's three response classes (§V-A).
type FaultMode int

// Fault modes.
const (
	// FaultNone passes the answer through unchanged ("correct").
	FaultNone FaultMode = iota
	// FaultPartial corrupts exactly one sentence ("partial").
	FaultPartial
	// FaultAll corrupts every sentence ("wrong").
	FaultAll
)

// String names the mode.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultPartial:
		return "partial"
	case FaultAll:
		return "all"
	default:
		return fmt.Sprintf("fault(%d)", int(m))
	}
}

// FaultInjector wraps a Generator and hallucinates on purpose: numbers
// drift, polarities flip. It produces the controlled failure cases the
// detection framework is exercised on, standing in for an LLM's
// natural hallucination behaviour.
type FaultInjector struct {
	inner Generator
	mode  FaultMode
	src   *rng.Source
}

// NewFaultInjector wraps inner with the given corruption mode. seed
// makes the corruption deterministic.
func NewFaultInjector(inner Generator, mode FaultMode, seed uint64) (*FaultInjector, error) {
	if inner == nil {
		return nil, errors.New("rag: nil inner generator")
	}
	switch mode {
	case FaultNone, FaultPartial, FaultAll:
	default:
		return nil, fmt.Errorf("rag: unknown fault mode %d", int(mode))
	}
	return &FaultInjector{inner: inner, mode: mode, src: rng.New(seed)}, nil
}

// Generate implements Generator: it obtains the grounded answer and
// corrupts it per the configured mode.
func (f *FaultInjector) Generate(question, context string) (string, error) {
	answer, err := f.inner.Generate(question, context)
	if err != nil {
		return "", err
	}
	if f.mode == FaultNone {
		return answer, nil
	}
	sentences := splitter.Split(answer)
	if len(sentences) == 0 {
		return answer, nil
	}
	switch f.mode {
	case FaultPartial:
		i := f.src.Intn(len(sentences))
		sentences[i] = CorruptSentence(sentences[i], f.src)
	case FaultAll:
		for i := range sentences {
			sentences[i] = CorruptSentence(sentences[i], f.src)
		}
	}
	return strings.Join(sentences, " "), nil
}

// polarity flips applied by CorruptSentence, in priority order. Only
// whole-word occurrences are replaced.
var polarityFlips = [][2]string{
	{"prohibited", "allowed"}, {"allowed", "prohibited"},
	{"mandatory", "optional"}, {"optional", "mandatory"},
	{"required", "not required"}, {"included", "excluded"},
	{"must", "need not"}, {"open", "closed"},
}

// CorruptSentence hallucinates one sentence deterministically: the
// first number found is shifted, or failing that a polarity word is
// flipped, or failing that a negation is injected. The result always
// differs from the input.
func CorruptSentence(s string, src *rng.Source) string {
	// 1. Shift a numeric token.
	fields := strings.Fields(s)
	for i, fld := range fields {
		trimmed := strings.TrimRight(fld, ".,;:!?")
		if n, err := strconv.Atoi(trimmed); err == nil {
			delta := 1 + src.Intn(9)
			repl := strconv.Itoa(n + delta)
			fields[i] = strings.Replace(fld, trimmed, repl, 1)
			return strings.Join(fields, " ")
		}
	}
	// 2. Shift a spelled-out hour ("9 AM" keeps its marker).
	for i, fld := range fields {
		lower := strings.ToLower(strings.TrimRight(fld, ".,;:!?"))
		if lower == "am" || lower == "pm" {
			continue
		}
		if _, ok := textproc.WeekdayIndex(lower); ok {
			idx, _ := textproc.WeekdayIndex(lower)
			fields[i] = textproc.WeekdayName(idx + 1 + src.Intn(3))
			return strings.Join(fields, " ")
		}
	}
	// 3. Flip a polarity word.
	lower := " " + strings.ToLower(s) + " "
	for _, flip := range polarityFlips {
		if strings.Contains(lower, " "+flip[0]+" ") {
			return replaceWordInsensitive(s, flip[0], flip[1])
		}
	}
	// 4. Last resort: inject a negation after the first verb-ish word.
	if len(fields) > 2 {
		out := append([]string{}, fields[:2]...)
		out = append(out, "not")
		out = append(out, fields[2:]...)
		return strings.Join(out, " ")
	}
	return s + " This is not the case."
}

// replaceWordInsensitive replaces the first whole-word, case-insensitive
// occurrence of old with repl.
func replaceWordInsensitive(s, old, repl string) string {
	lower := strings.ToLower(s)
	idx := 0
	for {
		j := strings.Index(lower[idx:], old)
		if j < 0 {
			return s
		}
		j += idx
		beforeOK := j == 0 || !isLetter(lower[j-1])
		afterOK := j+len(old) >= len(lower) || !isLetter(lower[j+len(old)])
		if beforeOK && afterOK {
			return s[:j] + repl + s[j+len(old):]
		}
		idx = j + len(old)
	}
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// contentWords is re-exported here to keep rag self-contained in its
// call sites; it defers to textproc.
func contentWords(s string) []string { return textproc.ContentWords(s) }
