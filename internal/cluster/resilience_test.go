package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vecdb"
)

// TestBreakerStateMachine walks the request-level circuit through
// every documented transition at the unit level.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(ResilienceConfig{BreakerThreshold: 3, BreakerCooldown: time.Minute}.withDefaults())
	now := time.Unix(1_700_000_000, 0)

	// Closed admits everything (no trial slot held); failures below
	// threshold stay closed.
	for i := 0; i < 2; i++ {
		if ok, trial, _ := b.allow(now); !ok || trial {
			t.Fatalf("closed breaker allow = (%v, trial=%v), want (true, false)", ok, trial)
		}
		if tr := b.failure(now); tr != "" {
			t.Fatalf("failure %d transitioned to %q early", i+1, tr)
		}
	}
	// Third consecutive failure opens.
	if ok, _, _ := b.allow(now); !ok {
		t.Fatal("still-closed breaker denied a request")
	}
	if tr := b.failure(now); tr != "open" {
		t.Fatalf("threshold failure transitioned to %q, want open", tr)
	}
	if b.stateValue() != 1 {
		t.Fatalf("open stateValue = %v, want 1", b.stateValue())
	}

	// Open fast-fails until the cooldown elapses.
	if ok, _, _ := b.allow(now.Add(time.Second)); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.fastFails.Load() != 1 {
		t.Fatalf("fastFails = %d, want 1", b.fastFails.Load())
	}

	// After the cooldown, exactly one half-open trial is admitted, and
	// the admission hands its holder the trial slot.
	later := now.Add(2 * time.Minute)
	ok, trial, tr := b.allow(later)
	if !ok || !trial || tr != "half-open" {
		t.Fatalf("post-cooldown allow = (%v, %v, %q), want (true, true, half-open)", ok, trial, tr)
	}
	if ok, _, _ := b.allow(later); ok {
		t.Fatal("second request admitted while the half-open trial is in flight")
	}

	// A failed trial re-opens; a later successful trial closes.
	if tr := b.failure(later); tr != "open" {
		t.Fatalf("failed trial transitioned to %q, want open", tr)
	}
	evenLater := later.Add(2 * time.Minute)
	if ok, trial, tr := b.allow(evenLater); !ok || !trial || tr != "half-open" {
		t.Fatal("breaker did not re-enter half-open after the second cooldown")
	}
	if tr := b.success(); tr != "closed" {
		t.Fatalf("successful trial transitioned to %q, want closed", tr)
	}
	if ok, _, _ := b.allow(evenLater); !ok {
		t.Fatal("closed breaker denied a request after recovery")
	}

	// A success in closed state resets the failure streak.
	b.failure(evenLater)
	b.failure(evenLater)
	b.success()
	if tr := b.failure(evenLater); tr != "" {
		t.Fatalf("streak not reset by success: transitioned to %q", tr)
	}

	// Nil breaker (resilience disabled) admits everything.
	var nb *breaker
	if ok, _, _ := nb.allow(now); !ok {
		t.Fatal("nil breaker denied a request")
	}
	nb.success()
	nb.failure(now)
	nb.release()
}

// TestBreakerRelease: a half-open trial whose outcome says nothing
// about the backend (caller cancellation, decided hedge race) hands
// its slot back, so the next request is admitted as a fresh trial
// instead of fast-failing until a restart.
func TestBreakerRelease(t *testing.T) {
	b := newBreaker(ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: time.Minute}.withDefaults())
	now := time.Unix(1_700_000_000, 0)
	b.allow(now)
	if tr := b.failure(now); tr != "open" {
		t.Fatalf("first failure transitioned to %q, want open", tr)
	}

	later := now.Add(2 * time.Minute)
	if ok, trial, _ := b.allow(later); !ok || !trial {
		t.Fatal("post-cooldown trial not admitted")
	}
	// The trial's context dies: released, never reported.
	b.release()
	ok, trial, _ := b.allow(later)
	if !ok || !trial {
		t.Fatal("breaker wedged: released trial slot not re-admitted")
	}
	if tr := b.success(); tr != "closed" {
		t.Fatalf("second trial's success transitioned to %q, want closed", tr)
	}
	// release on a closed breaker is a no-op — it must not clear a
	// slot it does not hold.
	b.release()
	if ok, _, _ := b.allow(later); !ok {
		t.Fatal("closed breaker denied a request after release no-op")
	}
}

func TestJitteredBackoffBounds(t *testing.T) {
	base := 2 * time.Millisecond
	for round := 1; round <= 4; round++ {
		max := base << uint(round-1)
		for i := 0; i < 50; i++ {
			d := jitteredBackoff(base, round)
			if d < 0 || d > max {
				t.Fatalf("round %d: backoff %v outside [0, %v]", round, d, max)
			}
		}
	}
	if d := jitteredBackoff(0, 1); d != 0 {
		t.Fatalf("zero base produced %v", d)
	}
}

// countingBackend counts SearchVector arrivals, so a test can prove a
// breaker-skipped backend was never asked.
type countingBackend struct {
	Backend
	searches atomic.Uint64
}

func (c *countingBackend) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	c.searches.Add(1)
	return c.Backend.SearchVector(ctx, vec, k, f)
}

// TestRouterBreakerFastFail: after BreakerThreshold live failures the
// primary's breaker opens and subsequent reads go straight to the
// replica without sending the primary anything — distinct from health
// ejection, which here is held off by a high FailThreshold.
func TestRouterBreakerFastFail(t *testing.T) {
	const dim = 32
	primaryDB, replicaDB := newLocalDB(t, dim), newLocalDB(t, dim)
	pb, _ := NewLocalBackend("primary", primaryDB)
	rb, _ := NewLocalBackend("replica", replicaDB)
	flaky := &flakyBackend{Backend: pb}
	counting := &countingBackend{Backend: flaky}
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100, // keep health ejection out of this test
		Resilience:    ResilienceConfig{BreakerThreshold: 2, BreakerCooldown: time.Hour},
	}
	r, err := NewRouter([]ShardBackends{{Primary: counting, Replicas: []Backend{rb}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	ctx := context.Background()
	seedRouter(t, r, corpus[:3])
	flaky.broken.Store(true)
	vec, err := vecdb.NewHashedEmbedder(dim)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vec.Embed("annual leave")
	if err != nil {
		t.Fatal(err)
	}

	// Two failing reads feed the breaker; both still succeed via the
	// replica.
	for i := 0; i < 2; i++ {
		if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err != nil {
			t.Fatalf("read %d failed despite replica: %v", i, err)
		}
	}
	asked := counting.searches.Load()
	if asked != 2 {
		t.Fatalf("primary asked %d times while closed, want 2", asked)
	}

	// Breaker is now open: the next reads must not touch the primary.
	for i := 0; i < 3; i++ {
		if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := counting.searches.Load(); got != asked {
		t.Fatalf("open breaker still sent %d reads to the primary", got-asked)
	}
	st := r.Stats()
	if st.BreakerFastFails < 3 {
		t.Errorf("BreakerFastFails = %d, want >= 3", st.BreakerFastFails)
	}
	if st.Failovers != 2 {
		t.Errorf("Failovers = %d, want 2 (only the pre-open reads tried the primary first)", st.Failovers)
	}
	found := false
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.Name == "primary" && b.Breaker == "open" {
				found = true
			}
		}
	}
	if !found {
		t.Error("primary breaker not reported open in health snapshot")
	}
}

// TestRouterReadRetry: a transient single-backend failure is absorbed
// by one jittered retry round instead of surfacing to the caller.
func TestRouterReadRetry(t *testing.T) {
	const dim = 32
	db := newLocalDB(t, dim)
	lb, _ := NewLocalBackend("only", db)
	flaky := &flakyBackend{Backend: lb}
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Resilience:    ResilienceConfig{RetryReads: 1, RetryBaseDelay: time.Millisecond},
	}
	r, err := NewRouter([]ShardBackends{{Primary: flaky}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:2])

	// Break the backend for exactly the first attempt of the next read.
	flaky.broken.Store(true)
	restored := make(chan struct{})
	go func() {
		// The retry waits up to 1ms of jitter; restore the backend as
		// soon as the first pass has had a chance to fail.
		time.Sleep(200 * time.Microsecond)
		flaky.broken.Store(false)
		close(restored)
	}()

	vec, _ := vecdb.NewHashedEmbedder(dim)
	v, err := vec.Embed("working hours")
	if err != nil {
		t.Fatal(err)
	}
	// With RetryReads=1 the read may still lose the restore race once;
	// a second call after the restore must succeed via retry or first
	// pass. Loop a few times to keep the test timing-robust.
	<-restored
	hits, err := r.SearchVector(context.Background(), v, 2, vecdb.Filter{})
	if err != nil {
		t.Fatalf("read failed after backend restore: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Force a deterministic retry: break, call, observe the counter
	// does not move when the retry also fails, then restore.
	flaky.broken.Store(true)
	before := r.Stats().ReadRetries
	if _, err := r.SearchVector(context.Background(), v, 2, vecdb.Filter{}); err == nil {
		t.Fatal("read succeeded against a broken single backend")
	}
	if got := r.Stats().ReadRetries; got != before+1 {
		t.Fatalf("ReadRetries = %d, want %d (one extra round)", got, before+1)
	}
}

// blockingBackend stalls SearchVector until the request context dies
// while block is set — the shape of an attempt whose caller gave up.
type blockingBackend struct {
	Backend
	block atomic.Bool
}

func (b *blockingBackend) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if b.block.Load() {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.Backend.SearchVector(ctx, vec, k, f)
}

// TestRouterBreakerTrialNotLeakedOnCtxFailure: a half-open trial whose
// caller context expires mid-flight says nothing about the backend,
// but it must hand its trial slot back — the regression here left
// trialBusy set forever, fast-failing the backend until restart.
func TestRouterBreakerTrialNotLeakedOnCtxFailure(t *testing.T) {
	const dim = 32
	db := newLocalDB(t, dim)
	lb, _ := NewLocalBackend("only", db)
	flaky := &flakyBackend{Backend: lb}
	blocking := &blockingBackend{Backend: flaky}
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Resilience:    ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond},
	}
	r, err := NewRouter([]ShardBackends{{Primary: blocking}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:2])
	vec, _ := vecdb.NewHashedEmbedder(dim)
	v, err := vec.Embed("annual leave")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One live failure opens the breaker (threshold 1).
	flaky.broken.Store(true)
	if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err == nil {
		t.Fatal("read succeeded against a broken backend")
	}
	flaky.broken.Store(false)

	// Past the cooldown, the half-open trial is admitted but the
	// caller's own deadline expires mid-flight: no verdict either way.
	time.Sleep(20 * time.Millisecond)
	blocking.block.Store(true)
	tctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	if _, err := r.SearchVector(tctx, v, 2, vecdb.Filter{}); err == nil {
		t.Fatal("read succeeded while the backend was stalled")
	}
	cancel()
	blocking.block.Store(false)

	// The slot must have been released: the next read is admitted as a
	// fresh trial and closes the breaker. With the leak it fast-failed
	// here forever.
	hits, err := r.SearchVector(ctx, v, 2, vecdb.Filter{})
	if err != nil {
		t.Fatalf("breaker wedged after an unresolved trial: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits after breaker recovery")
	}
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.Breaker != "closed" {
				t.Errorf("backend %s breaker %q after successful trial, want closed", b.Name, b.Breaker)
			}
		}
	}
}

// TestHedgedSearchAdmitsOnlyLaunchedTrials: hedging must not consume a
// replica's half-open trial slot for candidates the race never
// launches. The regression admitted every serving candidate up front;
// when the primary kept winning before the hedge timer, the replica's
// trial leaked and the replica was lost to reads until restart.
func TestHedgedSearchAdmitsOnlyLaunchedTrials(t *testing.T) {
	const dim = 32
	primaryDB, replicaDB := newLocalDB(t, dim), newLocalDB(t, dim)
	pb, _ := NewLocalBackend("primary", primaryDB)
	rb, _ := NewLocalBackend("replica", replicaDB)
	flakyP := &flakyBackend{Backend: pb}
	flakyR := &flakyBackend{Backend: rb}
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Resilience: ResilienceConfig{
			BreakerThreshold: 1,
			BreakerCooldown:  10 * time.Millisecond,
			HedgeAfter:       50 * time.Millisecond,
		},
	}
	r, err := NewRouter([]ShardBackends{{Primary: flakyP, Replicas: []Backend{flakyR}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:3])
	vec, _ := vecdb.NewHashedEmbedder(dim)
	v, err := vec.Embed("shopkeepers required")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Break both backends: one hedged read fails over through both and
	// opens both breakers.
	flakyP.broken.Store(true)
	flakyR.broken.Store(true)
	if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err == nil {
		t.Fatal("read succeeded with both backends broken")
	}
	flakyP.broken.Store(false)
	time.Sleep(20 * time.Millisecond) // both cooldowns elapse

	// Fast primary reads: each closes/keeps the primary healthy and
	// must not touch the replica's (still pending) half-open trial.
	for i := 0; i < 3; i++ {
		if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err != nil {
			t.Fatalf("read %d failed via healthy primary: %v", i, err)
		}
	}

	// Now the primary breaks and the replica recovers: the failover
	// must be admitted as the replica's half-open trial. With the
	// up-front admission leak, the slot was already consumed and the
	// read fast-failed.
	flakyR.broken.Store(false)
	flakyP.broken.Store(true)
	hits, err := r.SearchVector(ctx, v, 2, vecdb.Filter{})
	if err != nil {
		t.Fatalf("failover to recovered replica failed (leaked trial slot?): %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits from replica failover")
	}
}

// TestRouterGetMissResetsBreakerStreak: an authoritative not-found is
// a healthy backend answering correctly, so it must reset the
// breaker's consecutive-failure streak — sparse transient errors
// interleaved with healthy misses must not accumulate to the
// threshold and open the breaker.
func TestRouterGetMissResetsBreakerStreak(t *testing.T) {
	const dim = 32
	db := newLocalDB(t, dim)
	lb, _ := NewLocalBackend("only", db)
	flaky := &flakyBackend{Backend: lb}
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Resilience:    ResilienceConfig{BreakerThreshold: 2, BreakerCooldown: time.Hour},
	}
	r, err := NewRouter([]ShardBackends{{Primary: flaky}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ids := seedRouter(t, r, corpus[:2])
	ctx := context.Background()

	// Transient failure, healthy miss, transient failure: the miss
	// resets the streak so the breaker (threshold 2) stays closed.
	flaky.broken.Store(true)
	if _, err := r.Get(ctx, ids[0]); err == nil {
		t.Fatal("get succeeded against a broken backend")
	}
	flaky.broken.Store(false)
	if _, err := r.Get(ctx, 999); !errors.Is(err, vecdb.ErrNotFound) {
		t.Fatalf("get(999) = %v, want ErrNotFound", err)
	}
	flaky.broken.Store(true)
	if _, err := r.Get(ctx, ids[0]); err == nil {
		t.Fatal("get succeeded against a broken backend")
	}
	flaky.broken.Store(false)

	// Still closed: this read must reach the backend and succeed.
	if _, err := r.Get(ctx, ids[0]); err != nil {
		t.Fatalf("breaker opened despite a healthy miss resetting the streak: %v", err)
	}
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.Breaker != "closed" {
				t.Errorf("backend %s breaker %q, want closed", b.Name, b.Breaker)
			}
		}
	}
}

// TestHedgeDisabledBelowBudget: a context about to expire is not
// hedged — doubling load cannot save a reply due after the deadline.
func TestHedgeDisabledBelowBudget(t *testing.T) {
	const dim = 32
	primaryDB, replicaDB := newLocalDB(t, dim), newLocalDB(t, dim)
	pb, _ := NewLocalBackend("primary", primaryDB)
	rb, _ := NewLocalBackend("replica", replicaDB)
	cfg := HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Resilience: ResilienceConfig{
			HedgeAfter:     5 * time.Millisecond,
			HedgeMinBudget: time.Hour, // never enough budget
		},
	}
	r, err := NewRouter([]ShardBackends{{Primary: pb, Replicas: []Backend{rb}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:2])

	vec, _ := vecdb.NewHashedEmbedder(dim)
	v, _ := vec.Embed("working hours")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := r.SearchVector(ctx, v, 2, vecdb.Filter{}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hedges != 0 {
		t.Errorf("hedged %d reads under an insufficient budget", st.Hedges)
	}
}
