package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is one backend's position in the health state machine:
//
//	healthy --[FailThreshold consecutive failures]--> ejected
//	ejected --[one successful probe]--> half-open
//	half-open --[RecoverThreshold consecutive successes]--> healthy
//	half-open --[any failure]--> ejected
//
// Failures come from both the active prober and live-traffic errors
// reported by the router; successes for an ejected/half-open backend
// come only from probes, because the router sends live traffic only
// to healthy backends.
type State int32

const (
	StateHealthy State = iota
	StateEjected
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateEjected:
		return "ejected"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// HealthConfig tunes the active checker. Zero values take the
// documented defaults.
type HealthConfig struct {
	// Interval is the probe period (default 1s).
	Interval time.Duration
	// Timeout bounds one probe (default 2s).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// backend (default 3).
	FailThreshold int
	// RecoverThreshold is the consecutive-success count that returns a
	// half-open backend to service (default 2).
	RecoverThreshold int
	// ResyncInterval is the anti-entropy sweep period — how often the
	// router compares seq/checksum across each shard's backends and
	// repairs laggards (default: the probe Interval; negative disables
	// background sweeps, leaving ResyncNow as the only trigger).
	ResyncInterval time.Duration
	// ResyncBatch is the number of mutations applied per catch-up RPC
	// (default 256). The delta is fetched from the source's WAL in one
	// scan and chunked by this for the apply legs.
	ResyncBatch int
	// Telemetry, when non-nil, receives the router's fan-out/merge
	// stage timings and per-backend RPC metrics. It must be set before
	// NewRouter so backends are instrumented before the first probe.
	Telemetry *telemetry.Registry
	// Resilience tunes the request-level tail-latency layer (circuit
	// breakers, read retries, hedged reads). The zero value disables
	// all three; see ResilienceConfig.
	Resilience ResilienceConfig
	// Migrate tunes online shard migrations (catch-up lag threshold,
	// dual-write window, cutover barrier timeout); see MigrateConfig.
	Migrate MigrateConfig
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	if c.ResyncInterval == 0 {
		c.ResyncInterval = c.Interval
	}
	if c.ResyncBatch <= 0 {
		c.ResyncBatch = 256
	}
	c.Resilience = c.Resilience.withDefaults()
	c.Migrate = c.Migrate.withDefaults()
	return c
}

// backendHealth is the per-backend state machine plus the last
// observed ShardStat (for per-shard doc counts in /stats). Backends
// start healthy so a fresh cluster serves before its first probe
// round completes.
type backendHealth struct {
	backend Backend
	// br is the request-level circuit breaker, nil when
	// ResilienceConfig leaves breakers disabled. It is fed only by
	// live-traffic outcomes — probes stay the health state machine's
	// evidence — and only gates reads: skipping a write would fork the
	// replica, which is the resync manager's problem to avoid, not
	// cause.
	br *breaker

	mu         sync.Mutex
	state      State
	consecFail int
	consecOK   int
	totalFail  uint64
	lastErr    string
	stat       ShardStat
	statValid  bool
	// needsResync holds a recovering backend in half-open — probes may
	// succeed, but the backend missed writes and must not serve reads
	// until the resync manager has verified (or restored) seq parity
	// with its peers. Set on ejection and on partial writes; cleared
	// only by clearResync.
	needsResync bool
}

// serving reports whether the backend should receive live traffic.
func (h *backendHealth) serving() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == StateHealthy
}

// reportFailure records one failed probe or live request, ejecting
// the backend when the consecutive-failure threshold is reached.
func (h *backendHealth) reportFailure(cfg HealthConfig, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFail++
	h.totalFail++
	h.consecOK = 0
	if err != nil {
		h.lastErr = err.Error()
	}
	switch h.state {
	case StateHealthy:
		if h.consecFail >= cfg.FailThreshold {
			// An ejected backend has (presumably) missed writes: hold it
			// out of service after recovery until the resync manager
			// verifies it against its peers. If nothing was written while
			// it was away, the next anti-entropy sweep clears the hold at
			// seq parity without shipping anything.
			h.state = StateEjected
			h.needsResync = true
		}
	case StateHalfOpen:
		h.state = StateEjected
		h.needsResync = true
	}
}

// reportSuccess records one successful probe or live request, walking
// an ejected backend through half-open back to healthy. A backend
// held by needsResync saturates in half-open: probes alone cannot
// re-admit it to reads — only the resync manager's clearResync, which
// first proves the backend converged with its peers.
func (h *backendHealth) reportSuccess(cfg HealthConfig) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFail = 0
	h.lastErr = ""
	switch h.state {
	case StateEjected:
		h.state = StateHalfOpen
		h.consecOK = 1
	case StateHalfOpen:
		h.consecOK++
		if h.consecOK >= cfg.RecoverThreshold && !h.needsResync {
			h.state = StateHealthy
			h.consecOK = 0
		}
	}
}

// markResync flags the backend as diverged: it missed a write its
// shard peers acknowledged. A healthy backend is demoted to half-open
// on the spot — serving reads from a store known to be missing data
// is worse than losing a replica for the second or two catch-up
// takes, and taking further live writes would interleave local seq
// numbering with the resync stream.
func (h *backendHealth) markResync() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.needsResync = true
	if h.state == StateHealthy {
		h.state = StateHalfOpen
		h.consecOK = 0
	}
}

// clearResync releases the resync hold after the manager verified seq
// and checksum parity, promoting a backend whose probes already
// cleared the recovery threshold.
func (h *backendHealth) clearResync(cfg HealthConfig) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.needsResync = false
	if h.state == StateHalfOpen && h.consecOK >= cfg.RecoverThreshold {
		h.state = StateHealthy
		h.consecOK = 0
	}
}

// resyncNeeded reports whether the backend is held for catch-up.
func (h *backendHealth) resyncNeeded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.needsResync
}

func (h *backendHealth) setStat(st ShardStat) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stat, h.statValid = st, true
}

// snapshot returns the state for /stats.
func (h *backendHealth) snapshot() BackendHealth {
	var brState string
	if h.br != nil {
		switch h.br.stateValue() {
		case 1:
			brState = "open"
		case 2:
			brState = "half-open"
		default:
			brState = "closed"
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return BackendHealth{
		Breaker:             brState,
		Name:                h.backend.Name(),
		State:               h.state.String(),
		ConsecutiveFailures: h.consecFail,
		TotalFailures:       h.totalFail,
		Docs:                h.stat.Len,
		Seq:                 h.stat.Seq,
		NeedsResync:         h.needsResync,
		LastError:           h.lastErr,
	}
}

// checker actively probes every backend of every shard each Interval,
// feeding the per-backend state machines. A successful probe also
// refreshes the backend's ShardStat, so /stats carries per-shard doc
// counts without a fan-out per scrape. The probe list is a provider,
// not a fixed slice: a migration can swap the ring between rounds,
// and the checker must probe whoever serves now.
type checker struct {
	cfg      HealthConfig
	backends func() []*backendHealth
	stop     chan struct{}
	done     chan struct{}
}

func newChecker(cfg HealthConfig, backends func() []*backendHealth) *checker {
	c := &checker{
		cfg:      cfg,
		backends: backends,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *checker) run() {
	defer close(c.done)
	// Probe immediately on start so stats (and ejections of nodes that
	// are already down) don't wait a full interval.
	c.probeAll()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *checker) probeAll() {
	var wg sync.WaitGroup
	for _, h := range c.backends() {
		wg.Add(1)
		go func(h *backendHealth) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
			defer cancel()
			if err := h.backend.Probe(ctx); err != nil {
				h.reportFailure(c.cfg, err)
				return
			}
			h.reportSuccess(c.cfg)
			if st, err := h.backend.Stat(ctx); err == nil {
				h.setStat(st)
			}
		}(h)
	}
	wg.Wait()
}

func (c *checker) Close() {
	close(c.stop)
	<-c.done
}
