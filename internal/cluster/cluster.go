// Package cluster lifts the serving layer's hash-route/fan-out/merge
// contract over a transport, so vector-database shards can live on
// different nodes. It provides:
//
//   - the shard hash ring (ShardIndex) and top-k merge (MergeTopK)
//     shared with the in-process router in internal/serve, so a
//     multi-node cluster returns bit-identical results to a
//     single-process sharded store over the same corpus;
//   - a Backend interface abstracting one shard's store operations,
//     with LocalBackend wrapping an in-process *vecdb.DB and
//     HTTPBackend speaking the compact JSON-over-HTTP shard protocol
//     served by NewNodeHandler (and by cmd/shardnode);
//   - a Router that fans queries out to every shard in parallel,
//     merges per-shard top-k, and fails over to replica backends when
//     a primary is unhealthy;
//   - an active health Checker (periodic probe, consecutive-failure
//     ejection, half-open recovery) whose per-shard state both steers
//     the router away from dead backends and feeds the serving
//     layer's admission control, so traffic against a dead cluster is
//     shed early instead of timing out; and
//   - an anti-entropy resync manager (resync.go) that detects
//     backends lagging their shard peers by mutation sequence number
//     (or silently diverged by content checksum), streams them the
//     journaled mutations they missed — full snapshot when the WAL
//     has been truncated past the gap — and only then releases them
//     back into the read path;
//   - versioned ring epochs (epoch.go): the shard assignment carries
//     a monotonic epoch on every RPC (X-Ring-Epoch), retired or
//     ahead-of-the-caller nodes answer 409 with the newer ring, and
//     the router self-heals by adopting it; and
//   - an online migration orchestrator (migrate.go) that moves one
//     shard onto a fresh backend with zero read downtime — snapshot
//     seed, delta catch-up, a dual-write window at exact
//     seq+checksum parity, an atomic epoch-bumping ring flip, and
//     source retirement — aborting with the old assignment fully
//     intact on any pre-flip failure.
//
// See docs/cluster.md for the wire protocol, the health state
// machine, and a three-node quickstart, and docs/rebalancing.md for
// shard moves and the epoch handshake.
package cluster

import (
	"sort"

	"repro/internal/vecdb"
)

// splitmix64 is the integer finalizer used to hash document IDs onto
// shards; sequential IDs land on uncorrelated shards. It is the same
// function the in-process router has always used, so a corpus moved
// from a single sharded store onto a cluster keeps its routing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardIndex maps a document ID onto one of n shards.
func ShardIndex(id int64, n int) int {
	return int(splitmix64(uint64(id)) % uint64(n))
}

// MergeTopK merges per-shard result lists into a global top-k, best
// first, with the same deterministic (score desc, ID asc) order a
// single index returns — ties on score always resolve by ID, so the
// merge is stable regardless of which shard answered first.
func MergeTopK(lists [][]vecdb.Hit, k int) []vecdb.Hit {
	var merged []vecdb.Hit
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
