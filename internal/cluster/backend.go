package cluster

import (
	"context"
	"errors"

	"repro/internal/vecdb"
)

// ShardStat is one shard's observable state: its document count and
// the next ID its store would allocate. The router uses NextID to
// restore its global ID allocator past every document the cluster
// already holds, and Len for per-shard counts in /stats.
type ShardStat struct {
	Len    int   `json:"len"`
	NextID int64 `json:"next_id"`
}

// Backend abstracts the per-shard store operations the sharded
// serving store exposes — vector search, grouped mutations (the
// AddBulk/Delete write path), point reads, and size — plus the
// liveness probe the health checker drives. A LocalBackend serves
// them from an in-process *vecdb.DB; an HTTPBackend forwards them to
// a remote shard node. All methods must be safe for concurrent use.
type Backend interface {
	// Name identifies the backend in health state and stats (an
	// address for remote backends).
	Name() string
	// SearchVector returns the shard's top-k hits for an
	// already-embedded query, best first.
	SearchVector(ctx context.Context, vec []float32, k int) ([]vecdb.Hit, error)
	// Apply executes a batch of mutations (adds and deletes) that all
	// route to this shard. Deleting an absent ID reports
	// vecdb.ErrNotFound.
	Apply(ctx context.Context, ms []vecdb.Mutation) error
	// Get returns the stored document for id, or vecdb.ErrNotFound.
	Get(ctx context.Context, id int64) (vecdb.Document, error)
	// Stat reports the shard's document count and ID high-water mark.
	Stat(ctx context.Context) (ShardStat, error)
	// Probe checks the backend is alive and ready to serve (for a
	// remote node: recovery complete). The health checker calls it
	// periodically; an error counts toward ejection.
	Probe(ctx context.Context) error
}

// LocalBackend adapts an in-process *vecdb.DB to the Backend
// interface — the degenerate "cluster" of one process, used to keep
// the router's semantics identical across transports and to benchmark
// the HTTP hop against a no-transport baseline.
type LocalBackend struct {
	name string
	db   *vecdb.DB
}

// NewLocalBackend wraps db as a Backend.
func NewLocalBackend(name string, db *vecdb.DB) (*LocalBackend, error) {
	if db == nil {
		return nil, errors.New("cluster: nil db")
	}
	if name == "" {
		name = "local"
	}
	return &LocalBackend{name: name, db: db}, nil
}

func (b *LocalBackend) Name() string { return b.name }

func (b *LocalBackend) SearchVector(ctx context.Context, vec []float32, k int) ([]vecdb.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.db.SearchVector(vec, k)
}

func (b *LocalBackend) Apply(ctx context.Context, ms []vecdb.Mutation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.db.ApplyAll(ms)
}

func (b *LocalBackend) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	if err := ctx.Err(); err != nil {
		return vecdb.Document{}, err
	}
	return b.db.Get(id)
}

func (b *LocalBackend) Stat(ctx context.Context) (ShardStat, error) {
	if err := ctx.Err(); err != nil {
		return ShardStat{}, err
	}
	return ShardStat{Len: b.db.Len(), NextID: b.db.NextID()}, nil
}

// Probe always succeeds: an in-process shard is alive as long as the
// process is.
func (b *LocalBackend) Probe(ctx context.Context) error { return ctx.Err() }

var _ Backend = (*LocalBackend)(nil)
