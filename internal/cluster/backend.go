package cluster

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/vecdb"
)

// ShardStat is one shard's observable state: its document count, the
// next ID its store would allocate, the last applied mutation
// sequence number, and the order-independent content checksum. The
// router uses NextID to restore its global ID allocator past every
// document the cluster already holds and Len for per-shard counts in
// /stats; the resync manager compares Seq and Checksum across a
// shard's backends to detect replicas that lag or have silently
// diverged.
type ShardStat struct {
	Len      int    `json:"len"`
	NextID   int64  `json:"next_id"`
	Seq      uint64 `json:"seq"`
	Checksum uint64 `json:"checksum"`
	// Collections maps collection name to the shard's document count
	// for it — the per-shard slice of /stats' per-collection totals.
	Collections map[string]int `json:"collections,omitempty"`
}

// Backend abstracts the per-shard store operations the sharded
// serving store exposes — vector search, grouped mutations (the
// AddBulk/Delete write path), point reads, and size — plus the
// liveness probe the health checker drives and the four anti-entropy
// operations the resync manager composes (delta read, delta apply,
// snapshot read, snapshot apply). A LocalBackend serves them from an
// in-process NodeStore; an HTTPBackend forwards them to a remote
// shard node. All methods must be safe for concurrent use.
type Backend interface {
	// Name identifies the backend in health state and stats (an
	// address for remote backends).
	Name() string
	// SearchVector returns the shard's top-k hits for an
	// already-embedded query, best first. A non-zero filter is applied
	// on the shard before its top-k is taken, so the merged result
	// equals an unfiltered search over the matching subset.
	SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error)
	// Apply executes a batch of mutations (adds and deletes) that all
	// route to this shard. Deleting an absent ID reports
	// vecdb.ErrNotFound.
	Apply(ctx context.Context, ms []vecdb.Mutation) error
	// Get returns the stored document for id, or vecdb.ErrNotFound.
	Get(ctx context.Context, id int64) (vecdb.Document, error)
	// Stat reports the shard's document count, ID high-water mark, seq
	// and checksum.
	Stat(ctx context.Context) (ShardStat, error)
	// Probe checks the backend is alive and ready to serve (for a
	// remote node: recovery complete). The health checker calls it
	// periodically; an error counts toward ejection.
	Probe(ctx context.Context) error

	// MutationsSince reads the journaled mutations with seq > since,
	// oldest first, up to max records (max <= 0 means no cap). It
	// reports vecdb.ErrSeqTruncated when the backend's journal no
	// longer retains the range, telling the resync manager to fall
	// back to snapshot transfer.
	MutationsSince(ctx context.Context, since uint64, max int) ([]vecdb.SeqMutation, error)
	// ApplyResync applies a delta shipped from a more advanced peer:
	// idempotent upserts, absent-delete-tolerant, sequence numbers
	// adopted from the records.
	ApplyResync(ctx context.Context, ms []vecdb.SeqMutation) error
	// SnapshotDocs reads the backend's full document set and the seq
	// it is current as of.
	SnapshotDocs(ctx context.Context) (uint64, []vecdb.Document, error)
	// ApplySnapshot replaces the backend's contents with a peer's full
	// document set, adopting its seq.
	ApplySnapshot(ctx context.Context, seq uint64, docs []vecdb.Document) error
}

// LocalBackend adapts an in-process NodeStore — a bare *vecdb.DB or a
// serve.ShardedDB — to the Backend interface: the degenerate
// "cluster" of one process, used to keep the router's semantics
// identical across transports, to benchmark the HTTP hop against a
// no-transport baseline, and to run the in-process chaos harness in
// internal/clustertest against real stores.
type LocalBackend struct {
	name  string
	store NodeStore
	// ring mirrors NodeHandler's held ring update: a LocalBackend
	// handed Serving=false is retired and answers every data call with
	// StaleEpochError, so the in-process chaos harness exercises the
	// same stale-epoch handshake a remote node does.
	ring atomic.Pointer[RingUpdate]
}

// NewLocalBackend wraps store as a Backend.
func NewLocalBackend(name string, store NodeStore) (*LocalBackend, error) {
	if store == nil {
		return nil, errors.New("cluster: nil store")
	}
	if name == "" {
		name = "local"
	}
	return &LocalBackend{name: name, store: store}, nil
}

func (b *LocalBackend) Name() string { return b.name }

// InstallRing installs a ring update, monotonic by epoch (an equal
// epoch is accepted so a retired backend can be re-activated as a
// migration target without minting a new epoch).
func (b *LocalBackend) InstallRing(ctx context.Context, up RingUpdate) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := up.Ring.Validate(); err != nil {
		return err
	}
	for {
		cur := b.ring.Load()
		if cur != nil && up.Epoch < cur.Epoch {
			return &StaleEpochError{Ring: cur.Ring}
		}
		if b.ring.CompareAndSwap(cur, &up) {
			return nil
		}
	}
}

// gateEpoch mirrors NodeHandler's data-path epoch gate: retired (or
// provably stale-routed) calls get the typed 409 equivalent.
func (b *LocalBackend) gateEpoch(ctx context.Context) error {
	cur := b.ring.Load()
	if cur == nil {
		return nil
	}
	if !cur.Serving {
		return &StaleEpochError{Ring: cur.Ring}
	}
	if ep, ok := ringEpochFrom(ctx); ok && ep < cur.Epoch {
		return &StaleEpochError{Ring: cur.Ring}
	}
	return nil
}

func (b *LocalBackend) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := b.gateEpoch(ctx); err != nil {
		return nil, err
	}
	if f.IsZero() {
		return b.store.SearchVector(vec, k)
	}
	return b.store.SearchVectorFiltered(vec, k, f)
}

func (b *LocalBackend) Apply(ctx context.Context, ms []vecdb.Mutation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.gateEpoch(ctx); err != nil {
		return err
	}
	return b.store.ApplyAll(ms)
}

func (b *LocalBackend) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	if err := ctx.Err(); err != nil {
		return vecdb.Document{}, err
	}
	if err := b.gateEpoch(ctx); err != nil {
		return vecdb.Document{}, err
	}
	return b.store.Get(id)
}

func (b *LocalBackend) Stat(ctx context.Context) (ShardStat, error) {
	if err := ctx.Err(); err != nil {
		return ShardStat{}, err
	}
	if err := b.gateEpoch(ctx); err != nil {
		return ShardStat{}, err
	}
	return ShardStat{
		Len:         b.store.Len(),
		NextID:      b.store.NextID(),
		Seq:         b.store.Seq(),
		Checksum:    b.store.Checksum(),
		Collections: b.store.CollectionCounts(),
	}, nil
}

// Probe always succeeds: an in-process shard is alive as long as the
// process is.
func (b *LocalBackend) Probe(ctx context.Context) error { return ctx.Err() }

func (b *LocalBackend) MutationsSince(ctx context.Context, since uint64, max int) ([]vecdb.SeqMutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.store.MutationsSince(since, max)
}

func (b *LocalBackend) ApplyResync(ctx context.Context, ms []vecdb.SeqMutation) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.store.ApplyResync(ms)
}

func (b *LocalBackend) SnapshotDocs(ctx context.Context) (uint64, []vecdb.Document, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	return b.store.SnapshotDocs()
}

func (b *LocalBackend) ApplySnapshot(ctx context.Context, seq uint64, docs []vecdb.Document) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.store.ApplySnapshot(seq, docs)
}

var (
	_ Backend      = (*LocalBackend)(nil)
	_ RingReceiver = (*LocalBackend)(nil)
)
