package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// ErrUnavailable reports that no shard has any healthy backend — the
// cluster as a whole cannot serve. The serving layer's admission gate
// checks for this before doing any work, so traffic against a dead
// cluster is shed immediately instead of timing out per request.
var ErrUnavailable = errors.New("cluster: no healthy backends")

// ErrShardUnavailable reports that one shard has no healthy backend.
// Reads degrade around it; writes routed to it fail fast with this
// error rather than waiting out a transport timeout.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// ShardBackends names the backends serving one shard: a primary and
// zero or more replicas, tried in order.
type ShardBackends struct {
	Primary  Backend
	Replicas []Backend
}

// Router owns the hash ring over a set of shards, each served by one
// or more Backends. Queries fan out to every shard in parallel and
// merge per-shard top-k; reads fail over from an unhealthy primary to
// its replicas; writes go to every healthy backend of the owning
// shard. Health state comes from the embedded active checker plus
// live-traffic outcomes.
//
// Replication is convergent: a replica that was ejected (or failed a
// write its peers acknowledged) is marked for catch-up and held out
// of reads until the in-band resync manager has streamed it the
// mutations it missed from the most advanced backend's WAL — or a
// full snapshot when that WAL has been truncated past the gap. See
// resync.go and docs/cluster.md for the convergence semantics.
//
// The shard count is fixed for the router's lifetime — it is the
// modulus of the hash ring — but the backend assignment is not: an
// online migration (migrate.go) can move a shard onto a new backend,
// atomically swapping in a new ring under a bumped epoch. Every
// read/write snapshots the ring once, so it sees one consistent
// assignment; a request landing on a node that already moved on
// answers with a typed 409 carrying the new ring, which the router
// adopts on the spot (adoptRing).
type Router struct {
	cfg     HealthConfig
	nshards int
	// ring is the current epoch-versioned shard→backend assignment,
	// swapped wholesale at a migration cutover (or when a stale-epoch
	// 409 carries a newer ring). ringMu serializes the swaps.
	ring    atomic.Pointer[ringState]
	ringMu  sync.Mutex
	checker *checker
	resync  *resyncer

	// wmu is the per-shard write barrier: Apply holds the read side
	// around its backend writes; a migration's parity drain and ring
	// flip hold the write side, so no write is in flight across a
	// cutover and none can miss the dual-write window.
	wmu []sync.RWMutex

	// mig is the single in-flight migration (nil when none); see
	// migrate.go for the rest of the migration state.
	mig        atomic.Pointer[migration]
	migSeq     atomic.Int64
	migMu      sync.Mutex
	migHistory []MigrationStatus
	migOK      atomic.Uint64
	migAborted atomic.Uint64

	failovers       atomic.Uint64
	degradedQueries atomic.Uint64
	shardsSkipped   atomic.Uint64
	writeFailures   atomic.Uint64
	partialWrites   atomic.Uint64
	staleEpochs     atomic.Uint64
	epochAdoptions  atomic.Uint64

	// Per-shard routed-operation counters feeding the rebalance
	// planner's load view (fixed size nshards).
	shardReads  []atomic.Uint64
	shardWrites []atomic.Uint64

	// Resilience-layer counters (see ResilienceConfig); all stay zero
	// when the corresponding feature is disabled.
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	readRetries      atomic.Uint64
	breakerFastFails atomic.Uint64

	// Query-path stage timers, bound at construction from
	// cfg.Telemetry; nil (no-op) without a registry.
	fanoutH *telemetry.Histogram
	mergeH  *telemetry.Histogram
}

// ringState is one immutable shard→backend assignment. Mutations
// build a new ringState and swap the pointer; readers load it once
// per operation and work against that consistent snapshot.
type ringState struct {
	epoch  uint64
	shards [][]*backendHealth // primary first
}

// telemetrySink is implemented by backends that can be instrumented
// (HTTPBackend). NewRouter injects the registry before the health
// checker starts, so backends never see it change mid-flight.
type telemetrySink interface {
	setTelemetry(*telemetry.Registry)
}

// NewRouter builds a router over the given shard set and starts its
// health checker (stopped by Close). The shard count — and therefore
// the hash ring — is fixed for the router's lifetime; the backend
// assignment starts at ring epoch 1 and advances by migration.
func NewRouter(shards []ShardBackends, cfg HealthConfig) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:         cfg,
		nshards:     len(shards),
		wmu:         make([]sync.RWMutex, len(shards)),
		shardReads:  make([]atomic.Uint64, len(shards)),
		shardWrites: make([]atomic.Uint64, len(shards)),
	}
	rs := &ringState{epoch: 1, shards: make([][]*backendHealth, len(shards))}
	var all []*backendHealth
	for i, sb := range shards {
		if sb.Primary == nil {
			return nil, fmt.Errorf("cluster: shard %d has no primary backend", i)
		}
		bs := make([]*backendHealth, 0, 1+len(sb.Replicas))
		for _, b := range append([]Backend{sb.Primary}, sb.Replicas...) {
			if b == nil {
				return nil, fmt.Errorf("cluster: shard %d has a nil backend", i)
			}
			h := &backendHealth{backend: b}
			if cfg.Resilience.BreakerThreshold > 0 {
				h.br = newBreaker(cfg.Resilience)
			}
			bs = append(bs, h)
			all = append(all, h)
		}
		rs.shards[i] = bs
	}
	r.ring.Store(rs)
	if cfg.Telemetry != nil {
		const help = "Hot-path stage latency in seconds."
		r.fanoutH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "shard_fanout"))
		r.mergeH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "merge"))
		for _, h := range all {
			if ts, ok := h.backend.(telemetrySink); ok {
				ts.setTelemetry(cfg.Telemetry)
			}
		}
	}
	r.checker = newChecker(cfg, r.allHealth)
	r.resync = newResyncer(r)
	if cfg.Telemetry != nil {
		r.registerMetrics(cfg.Telemetry, all)
	}
	return r, nil
}

// allHealth flattens the current ring's backend set — the health
// checker's probe list, reloaded every round so migrated-in backends
// are probed and retired ones are not.
func (r *Router) allHealth() []*backendHealth {
	rs := r.ring.Load()
	var all []*backendHealth
	for _, bs := range rs.shards {
		all = append(all, bs...)
	}
	return all
}

// Ring renders the current assignment in wire form (backend names per
// shard, primary first).
func (r *Router) Ring() Ring {
	rs := r.ring.Load()
	shards := make([][]string, len(rs.shards))
	for si, bs := range rs.shards {
		names := make([]string, len(bs))
		for i, h := range bs {
			names[i] = h.backend.Name()
		}
		shards[si] = names
	}
	return Ring{Epoch: rs.epoch, Shards: shards}
}

// Epoch reports the current ring epoch.
func (r *Router) Epoch() uint64 { return r.ring.Load().epoch }

// noteStale inspects a backend error for the typed stale-epoch 409
// and self-heals by adopting the newer ring it carries.
func (r *Router) noteStale(sp *telemetry.Span, err error) {
	var se *StaleEpochError
	if !errors.As(err, &se) {
		return
	}
	r.staleEpochs.Add(1)
	if r.adoptRing(se.Ring) {
		sp.Event(fmt.Sprintf("adopted ring epoch %d from stale-epoch 409", se.Ring.Epoch))
	}
}

// adoptRing installs a ring learned from a stale-epoch 409: same
// shard count (the hash ring modulus never changes), strictly newer
// epoch. Backends already in the current ring are reused with their
// health state intact; names the router has never seen become fresh
// HTTP backends. Returns false when the ring is not adoptable.
func (r *Router) adoptRing(rg Ring) bool {
	if rg.Validate() != nil || len(rg.Shards) != r.nshards {
		return false
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	cur := r.ring.Load()
	if rg.Epoch <= cur.epoch {
		return false
	}
	known := make(map[string]*backendHealth)
	for _, bs := range cur.shards {
		for _, h := range bs {
			known[h.backend.Name()] = h
		}
	}
	ns := &ringState{epoch: rg.Epoch, shards: make([][]*backendHealth, r.nshards)}
	for si, names := range rg.Shards {
		bs := make([]*backendHealth, 0, len(names))
		for _, name := range names {
			if h, ok := known[name]; ok {
				bs = append(bs, h)
				continue
			}
			b, err := NewHTTPBackend(name, nil)
			if err != nil {
				return false
			}
			if r.cfg.Telemetry != nil {
				b.setTelemetry(r.cfg.Telemetry)
			}
			h := &backendHealth{backend: b}
			if r.cfg.Resilience.BreakerThreshold > 0 {
				h.br = newBreaker(r.cfg.Resilience)
			}
			bs = append(bs, h)
		}
		ns.shards[si] = bs
	}
	r.ring.Store(ns)
	r.epochAdoptions.Add(1)
	return true
}

// registerMetrics bridges the router's (and its resyncer's and
// breakers') atomic counters into the registry as scrape-time reads,
// so /metrics carries what until now only /stats showed.
func (r *Router) registerMetrics(reg *telemetry.Registry, all []*backendHealth) {
	reg.CounterFunc("router_failovers_total", "Reads served by a non-first backend.", r.failovers.Load)
	reg.CounterFunc("router_degraded_queries_total", "Searches that lost at least one shard.", r.degradedQueries.Load)
	reg.CounterFunc("read_hedges_total", "Hedged shard reads launched after HedgeAfter elapsed.", r.hedges.Load)
	reg.CounterFunc("read_hedge_wins_total", "Hedged reads where the hedge answered first.", r.hedgeWins.Load)
	reg.CounterFunc("read_retries_total", "Extra read rounds taken after a full failover pass failed.", r.readRetries.Load)
	reg.CounterFunc("breaker_fast_fails_total", "Reads skipped because a backend's breaker was open.", r.breakerFastFails.Load)

	reg.CounterFunc("cluster_resyncs_total",
		"Anti-entropy repairs completed (a diverged backend restored to parity).", func() uint64 { return r.resync.resyncs.Load() })
	reg.CounterFunc("cluster_resync_mutations_shipped_total",
		"Mutations streamed to lagging replicas by the resync manager.", func() uint64 { return r.resync.shipped.Load() })
	reg.CounterFunc("cluster_resync_snapshot_fallbacks_total",
		"Resyncs that fell back to a full snapshot because the WAL delta was truncated.", func() uint64 { return r.resync.snapshots.Load() })
	reg.CounterFunc("cluster_resync_errors_total",
		"Resync attempts that failed and will be retried.", func() uint64 { return r.resync.errors.Load() })

	reg.CounterFunc("migrations_total",
		"Shard migrations finished, by outcome.", r.migOK.Load, telemetry.L("outcome", "ok"))
	reg.CounterFunc("migrations_total",
		"Shard migrations finished, by outcome.", r.migAborted.Load, telemetry.L("outcome", "aborted"))
	reg.CounterFunc("stale_epoch_rejections_total",
		"Requests answered with a stale-ring-epoch 409 by a node that moved on.", r.staleEpochs.Load)
	reg.CounterFunc("ring_epoch_adoptions_total",
		"Newer rings adopted from stale-epoch 409 responses.", r.epochAdoptions.Load)
	reg.GaugeFunc("ring_epoch", "Current ring epoch.",
		func() float64 { return float64(r.ring.Load().epoch) })
	for si := 0; si < r.nshards; si++ {
		si := si
		reg.GaugeFunc("migration_phase",
			"Active migration phase for the shard (0 idle, 1 planned, 2 seeding, 3 catchup, 4 dual-write, 5 cutover).",
			func() float64 {
				if m := r.mig.Load(); m != nil && m.shard == si {
					return float64(m.phase.Load())
				}
				return 0
			}, telemetry.L("shard", strconv.Itoa(si)))
	}

	for _, h := range all {
		if h.br == nil {
			continue
		}
		br, name := h.br, h.backend.Name()
		reg.GaugeFunc("breaker_state",
			"Per-backend circuit state: 0 closed, 1 open, 2 half-open.",
			br.stateValue, telemetry.L("backend", name))
		for _, t := range []struct {
			to string
			v  *atomic.Uint64
		}{{"open", &br.opens}, {"half-open", &br.halfOpens}, {"closed", &br.closes}} {
			reg.CounterFunc("breaker_transitions_total",
				"Circuit breaker state transitions by backend and destination state.",
				t.v.Load, telemetry.L("backend", name), telemetry.L("to", t.to))
		}
	}
}

// Close stops the health checker and the resync manager, and asks any
// in-flight migration to abort. Backends own no connections beyond
// their http.Client pools, so there is nothing else to release.
func (r *Router) Close() {
	if m := r.mig.Load(); m != nil {
		m.requestAbort(errors.New("router closing"))
	}
	r.checker.Close()
	r.resync.Close()
}

// Shards reports the shard count (the modulus of the hash ring).
func (r *Router) Shards() int { return r.nshards }

// ShardFor maps a document ID onto its owning shard.
func (r *Router) ShardFor(id int64) int { return ShardIndex(id, r.nshards) }

// ctxFailure reports whether err is the caller's own context giving
// up, which must not count against the backend's health.
func ctxFailure(ctx context.Context, err error) bool {
	return ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// allowRead asks h's breaker (when armed) whether a read should even
// be sent. A denial is a fast-fail: counted, annotated on the current
// span, and the router moves on to the next backend with zero network
// wait. trial is true when the admission took the breaker's half-open
// trial slot — the caller must then resolve the attempt via
// liveSuccess, liveFailure, or (when the outcome says nothing about
// the backend) releaseTrial, or the breaker fast-fails the backend
// until its next state change.
func (r *Router) allowRead(ctx context.Context, h *backendHealth) (ok, trial bool) {
	ok, trial, transition := h.br.allow(time.Now())
	if transition != "" {
		telemetry.SpanFrom(ctx).Event("breaker half-open trial: " + h.backend.Name())
	}
	if !ok {
		r.breakerFastFails.Add(1)
		telemetry.SpanFrom(ctx).Event("breaker open: skipped " + h.backend.Name())
	}
	return ok, trial
}

// releaseTrial returns h's half-open trial slot when this attempt
// held it but finished without a verdict on the backend (the caller's
// own context gave up, or the attempt lost a decided hedge race).
func releaseTrial(h *backendHealth, trial bool) {
	if trial {
		h.br.release()
	}
}

// liveSuccess reports one successful live request to the health state
// machine and the breaker, annotating sp when the breaker closes.
func (r *Router) liveSuccess(sp *telemetry.Span, h *backendHealth) {
	h.reportSuccess(r.cfg)
	if t := h.br.success(); t != "" {
		sp.Event("breaker " + t + ": " + h.backend.Name())
	}
}

// liveFailure reports one failed live request, annotating sp when the
// breaker opens. A stale-epoch 409 additionally hands the router the
// newer ring to adopt.
func (r *Router) liveFailure(sp *telemetry.Span, h *backendHealth, err error) {
	h.reportFailure(r.cfg, err)
	if t := h.br.failure(time.Now()); t != "" {
		sp.Event("breaker " + t + ": " + h.backend.Name())
	}
	r.noteStale(sp, err)
}

// retryWait sleeps the full-jitter backoff before retry round n,
// returning false when the context (or its remaining deadline budget)
// does not cover the wait.
func (r *Router) retryWait(ctx context.Context, round int) bool {
	d := jitteredBackoff(r.cfg.Resilience.RetryBaseDelay, round)
	if d == 0 {
		return ctx.Err() == nil
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// searchShard queries one shard, failing over across its backends in
// order. Ejected backends are skipped without any network wait — that
// is the early shedding the health checker buys — and breaker-open
// backends fast-fail the same way. With hedging enabled the shard goes
// through the hedged path instead; with RetryReads > 0 a fully failed
// pass is retried with jittered backoff, since an idempotent read can
// safely run twice.
func (r *Router) searchShard(ctx context.Context, si int, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if r.cfg.Resilience.HedgeAfter > 0 {
		if hits, handled, err := r.hedgedSearch(ctx, si, vec, k, f); handled {
			return hits, err
		}
	}
	rounds := 1 + r.cfg.Resilience.RetryReads
	var lastErr error
	attempts := 0
	for round := 0; round < rounds; round++ {
		if round > 0 {
			if !r.retryWait(ctx, round) {
				break
			}
			r.readRetries.Add(1)
			telemetry.SpanFrom(ctx).Event(fmt.Sprintf("retry shard=%d round=%d", si, round))
		}
		// Reload the ring each round so a cutover mid-retry fails over
		// to the shard's new owner instead of hammering a retired node.
		rs := r.ring.Load()
		rctx := withRingEpoch(ctx, rs.epoch)
		for _, h := range rs.shards[si] {
			if !h.serving() {
				continue
			}
			allowed, trial := r.allowRead(ctx, h)
			if !allowed {
				continue
			}
			attempts++
			actx, sp := telemetry.StartSpan(rctx, "shard_read")
			sp.Annotate("backend", h.backend.Name())
			sp.Annotate("shard", strconv.Itoa(si))
			hits, err := h.backend.SearchVector(actx, vec, k, f)
			sp.End(err)
			if err == nil {
				if attempts > 1 {
					r.failovers.Add(1)
				}
				r.liveSuccess(sp, h)
				return hits, nil
			}
			if ctxFailure(ctx, err) {
				releaseTrial(h, trial)
				return nil, err
			}
			r.liveFailure(sp, h, err)
			lastErr = err
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: shard %d", ErrShardUnavailable, si)
}

// hedgedSearch races a shard read against its replicas: the first
// backend is asked immediately, and if it has not answered within
// HedgeAfter the next candidate is asked too — first success wins,
// losers are cancelled (a cancellation the loser must not be
// health-penalized for). An error before the timer fires fails over
// to the next candidate immediately, so hedging strictly dominates
// the sequential path. handled is false when the shard has fewer than
// one admitted backend — the sequential path then produces the error.
func (r *Router) hedgedSearch(ctx context.Context, si int, vec []float32, k int, f vecdb.Filter) (hits []vecdb.Hit, handled bool, err error) {
	res := r.cfg.Resilience
	rs := r.ring.Load()
	ctx = withRingEpoch(ctx, rs.epoch)
	var cands []*backendHealth
	for _, h := range rs.shards[si] {
		if h.serving() {
			cands = append(cands, h)
		}
	}
	if len(cands) == 0 {
		return nil, false, nil
	}
	// A request about to run out of budget gets no hedge: doubling the
	// load cannot help a reply that would arrive after the deadline.
	hedgeArmed := len(cands) > 1
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < res.HedgeMinBudget {
		hedgeArmed = false
	}

	type attemptResult struct {
		h     *backendHealth
		hedge bool
		hits  []vecdb.Hit
		err   error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan attemptResult, len(cands))
	next := 0
	var first *backendHealth
	// launch starts the next breaker-admitted candidate, reporting
	// whether an attempt is now in flight. Breaker admission happens
	// here — at the moment the attempt actually launches — so a
	// half-open trial slot is only ever taken by an attempt that will
	// resolve it, never by a candidate the race ends up not needing.
	launch := func(hedge bool) bool {
		for next < len(cands) {
			h := cands[next]
			next++
			allowed, trial := r.allowRead(ctx, h)
			if !allowed {
				continue
			}
			if first == nil {
				first = h
			}
			if hedge {
				r.hedges.Add(1)
				telemetry.SpanFrom(ctx).Event("hedge launched: " + h.backend.Name())
			}
			go func() {
				actx, sp := telemetry.StartSpan(hctx, "shard_read")
				sp.Annotate("backend", h.backend.Name())
				sp.Annotate("shard", strconv.Itoa(si))
				if hedge {
					sp.Annotate("hedge", "true")
				}
				hits, err := h.backend.SearchVector(actx, vec, k, f)
				sp.End(err)
				switch {
				case err == nil:
					r.liveSuccess(sp, h)
				case hctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
					// The losing attempt of a decided race (or a caller that
					// gave up): not the backend's fault, no health penalty —
					// but a held half-open trial slot goes back.
					releaseTrial(h, trial)
				default:
					r.liveFailure(sp, h, err)
				}
				resCh <- attemptResult{h: h, hedge: hedge, hits: hits, err: err}
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		// Every serving candidate fast-failed at its breaker; let the
		// sequential path (with its retry rounds) produce the error.
		return nil, false, nil
	}
	inFlight := 1
	var timerC <-chan time.Time
	if hedgeArmed {
		timer := time.NewTimer(res.HedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}
	var lastErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			if launch(true) {
				inFlight++
			}
		case ar := <-resCh:
			inFlight--
			if ar.err == nil {
				if ar.h != first {
					r.failovers.Add(1)
				}
				if ar.hedge {
					r.hedgeWins.Add(1)
					telemetry.SpanFrom(ctx).Event("hedge won: " + ar.h.backend.Name())
				}
				cancel() // release the losers
				return ar.hits, true, nil
			}
			if ctxFailure(ctx, ar.err) {
				return nil, true, ar.err
			}
			lastErr = ar.err
			// Failure before the timer: fail over to the next candidate
			// now rather than waiting out HedgeAfter.
			if launch(false) {
				inFlight++
			}
			if inFlight == 0 {
				return nil, true, lastErr
			}
		}
	}
}

// SearchVector fans an embedded query out to every shard in parallel
// and merges the per-shard top-k. A non-zero filter is pushed down to
// every shard, so each per-shard top-k already contains only matching
// docs and the merge is exact. Shards with no reachable backend
// are skipped — the query degrades to the surviving shards — and only
// a fully unreachable cluster errors with ErrUnavailable. The fan-out
// runs one worker per shard regardless of core count: remote shards
// are I/O-bound, so the requests must all be in flight at once.
func (r *Router) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	n := r.nshards
	lists := make([][]vecdb.Hit, n)
	errs := make([]error, n)
	fctx, fsp := telemetry.StartSpan(ctx, "shard_fanout")
	fsp.Annotate("shards", strconv.Itoa(n))
	fanoutStart := time.Now()
	parallel.ForWorkers(n, n, func(i int) {
		r.shardReads[i].Add(1)
		lists[i], errs[i] = r.searchShard(fctx, i, vec, k, f)
	})
	r.fanoutH.ObserveSinceCtx(ctx, fanoutStart)
	fsp.End(nil)
	failed := 0
	for _, err := range errs {
		if err != nil {
			if ctxFailure(ctx, err) {
				return nil, err
			}
			failed++
		}
	}
	if failed == n {
		return nil, fmt.Errorf("%w: all %d shards failed: %v", ErrUnavailable, n, errors.Join(errs...))
	}
	if failed > 0 {
		r.degradedQueries.Add(1)
		r.shardsSkipped.Add(uint64(failed))
	}
	if r.mergeH == nil {
		return MergeTopK(lists, k), nil
	}
	mergeStart := time.Now()
	hits := MergeTopK(lists, k)
	r.mergeH.ObserveSince(mergeStart)
	return hits, nil
}

// Apply executes a mutation batch that all routes to shard si,
// writing to every healthy backend of that shard (primary and
// replicas). It succeeds when at least one backend applied the batch;
// a shard with no healthy backend fails fast with
// ErrShardUnavailable. A vecdb.ErrNotFound (deleting an absent ID) is
// an authoritative answer, not a node failure, and carries no health
// penalty.
//
// The whole write runs under the shard's write-barrier read lock:
// uncontended it costs an atomic, but during a migration cutover it
// guarantees no batch is in flight while the orchestrator drains to
// parity and flips the ring — so every write lands entirely before or
// entirely after the flip, and every write acknowledged during the
// dual-write window also reached the migration target (or aborted the
// migration; see applyDual).
func (r *Router) Apply(ctx context.Context, si int, ms []vecdb.Mutation) error {
	if si < 0 || si >= r.nshards {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", si, r.nshards)
	}
	r.wmu[si].RLock()
	defer r.wmu[si].RUnlock()
	r.shardWrites[si].Add(1)
	rs := r.ring.Load()
	ctx = withRingEpoch(ctx, rs.epoch)
	var (
		ok       int
		notFound error
		lastErr  error
		failed   []*backendHealth
	)
	for _, h := range rs.shards[si] {
		if !h.serving() {
			continue
		}
		err := h.backend.Apply(ctx, ms)
		switch {
		case err == nil:
			ok++
			h.reportSuccess(r.cfg)
		case errors.Is(err, vecdb.ErrNotFound):
			notFound = err
		case ctxFailure(ctx, err):
			return err
		default:
			h.reportFailure(r.cfg, err)
			r.noteStale(telemetry.SpanFrom(ctx), err)
			r.writeFailures.Add(1)
			failed = append(failed, h)
			lastErr = err
		}
	}
	switch {
	case ok > 0:
		// The batch is durable on at least one backend; a backend that
		// failed it has diverged — count the partial write, hold the
		// diverged backend out of service, and nudge the resync manager
		// to repair it.
		if lastErr != nil {
			r.partialWrites.Add(1)
			for _, h := range failed {
				h.markResync()
			}
			r.resync.nudge()
		}
		r.applyDual(ctx, si, ms)
		return nil
	case notFound != nil:
		r.applyDual(ctx, si, ms)
		return notFound
	case lastErr != nil:
		return lastErr
	}
	return fmt.Errorf("%w: shard %d", ErrShardUnavailable, si)
}

// Get fetches one document from its owning shard, failing over across
// backends (and, like search, retrying a fully failed pass when
// RetryReads is enabled — a point read is idempotent). A
// vecdb.ErrNotFound from a live backend is authoritative and returned
// immediately.
func (r *Router) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	si := r.ShardFor(id)
	r.shardReads[si].Add(1)
	rounds := 1 + r.cfg.Resilience.RetryReads
	var lastErr error
	attempts := 0
	for round := 0; round < rounds; round++ {
		if round > 0 {
			if !r.retryWait(ctx, round) {
				break
			}
			r.readRetries.Add(1)
			telemetry.SpanFrom(ctx).Event(fmt.Sprintf("retry get shard=%d round=%d", si, round))
		}
		rs := r.ring.Load()
		rctx := withRingEpoch(ctx, rs.epoch)
		for _, h := range rs.shards[si] {
			if !h.serving() {
				continue
			}
			allowed, trial := r.allowRead(ctx, h)
			if !allowed {
				continue
			}
			attempts++
			actx, sp := telemetry.StartSpan(rctx, "shard_get")
			sp.Annotate("backend", h.backend.Name())
			doc, err := h.backend.Get(actx, id)
			sp.End(err)
			switch {
			case err == nil:
				if attempts > 1 {
					r.failovers.Add(1)
				}
				r.liveSuccess(sp, h)
				return doc, nil
			case errors.Is(err, vecdb.ErrNotFound):
				// An authoritative miss is a healthy backend answering
				// correctly: credit it to the breaker and the failure
				// streak before returning the not-found upward.
				r.liveSuccess(sp, h)
				return vecdb.Document{}, err
			case ctxFailure(ctx, err):
				releaseTrial(h, trial)
				return vecdb.Document{}, err
			}
			r.liveFailure(sp, h, err)
			lastErr = err
		}
	}
	if lastErr != nil {
		return vecdb.Document{}, lastErr
	}
	return vecdb.Document{}, fmt.Errorf("%w: shard %d", ErrShardUnavailable, si)
}

// Delete removes one document from its owning shard (all healthy
// backends), reporting vecdb.ErrNotFound for absent IDs.
func (r *Router) Delete(ctx context.Context, id int64) error {
	return r.Apply(ctx, r.ShardFor(id), []vecdb.Mutation{{Op: vecdb.OpDelete, ID: id}})
}

// statShard returns the freshest ShardStat for shard si: a live call
// to the first healthy backend, falling back to the checker's cached
// observation.
func (r *Router) statShard(ctx context.Context, si int) (ShardStat, bool) {
	rs := r.ring.Load()
	ctx = withRingEpoch(ctx, rs.epoch)
	for _, h := range rs.shards[si] {
		if !h.serving() {
			continue
		}
		if st, err := h.backend.Stat(ctx); err == nil {
			h.setStat(st)
			return st, true
		}
	}
	for _, h := range rs.shards[si] {
		h.mu.Lock()
		st, valid := h.stat, h.statValid
		h.mu.Unlock()
		if valid {
			return st, true
		}
	}
	return ShardStat{}, false
}

// Lens reports per-shard document counts (live where a backend
// answers, last-observed otherwise; zero for shards never reached).
func (r *Router) Lens(ctx context.Context) []int {
	lens := make([]int, r.nshards)
	parallel.ForWorkers(r.nshards, r.nshards, func(i int) {
		if st, ok := r.statShard(ctx, i); ok {
			lens[i] = st.Len
		}
	})
	return lens
}

// CollectionCounts merges per-collection document counts across all
// reachable shards (a shard with no answering backend contributes
// nothing, mirroring Lens' degradation).
func (r *Router) CollectionCounts(ctx context.Context) map[string]int {
	per := make([]map[string]int, r.nshards)
	parallel.ForWorkers(r.nshards, r.nshards, func(i int) {
		if st, ok := r.statShard(ctx, i); ok {
			per[i] = st.Collections
		}
	})
	out := map[string]int{}
	for _, m := range per {
		for c, n := range m {
			out[c] += n
		}
	}
	return out
}

// Len sums the per-shard document counts.
func (r *Router) Len(ctx context.Context) int {
	n := 0
	for _, l := range r.Lens(ctx) {
		n += l
	}
	return n
}

// MaxNextID reports the highest next-ID across all shards, for
// restoring a router-level ID allocator on boot. It errors if any
// shard is unreachable: allocating IDs below a dead shard's
// high-water mark would collide when that shard returns.
func (r *Router) MaxNextID(ctx context.Context) (int64, error) {
	var next int64 = 1
	for si := 0; si < r.nshards; si++ {
		st, ok := r.statShard(ctx, si)
		if !ok {
			return 0, fmt.Errorf("%w: shard %d unreachable, cannot restore ID allocator", ErrShardUnavailable, si)
		}
		if st.NextID > next {
			next = st.NextID
		}
	}
	return next, nil
}

// Available reports whether the cluster can serve anything at all:
// nil when at least one shard has a healthy backend, ErrUnavailable
// otherwise. The serving layer's admission gate calls this on every
// request, so a fully dead cluster sheds in microseconds.
func (r *Router) Available() error {
	for _, bs := range r.ring.Load().shards {
		for _, h := range bs {
			if h.serving() {
				return nil
			}
		}
	}
	return ErrUnavailable
}

// BackendHealth is one backend's health state as exposed in /stats.
type BackendHealth struct {
	Name                string `json:"name"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	// TotalFailures counts every failed probe or live request against
	// this backend since the router started — the per-node failure
	// ledger bulk and streamed ingest batches report into.
	TotalFailures uint64 `json:"total_failures"`
	Docs          int    `json:"docs"`
	// Seq is the backend's last observed mutation sequence number;
	// comparing it across a shard's backends shows who lags.
	Seq uint64 `json:"seq"`
	// NeedsResync reports that the backend is held out of reads until
	// the resync manager restores seq/checksum parity with its peers.
	NeedsResync bool   `json:"needs_resync,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// Breaker is the request-level circuit state (closed / open /
	// half-open); empty when breakers are disabled.
	Breaker string `json:"breaker,omitempty"`
}

// ShardHealth is one shard's health as exposed in /stats: Alive is
// true when any backend is serving, Docs is the last-observed
// document count.
type ShardHealth struct {
	Shard    int             `json:"shard"`
	Alive    bool            `json:"alive"`
	Docs     int             `json:"docs"`
	Backends []BackendHealth `json:"backends"`
}

// Health snapshots per-shard, per-backend health for /stats.
func (r *Router) Health() []ShardHealth {
	rs := r.ring.Load()
	out := make([]ShardHealth, len(rs.shards))
	for si, bs := range rs.shards {
		sh := ShardHealth{Shard: si}
		for _, h := range bs {
			b := h.snapshot()
			sh.Backends = append(sh.Backends, b)
			if b.State == StateHealthy.String() {
				sh.Alive = true
			}
			if b.Docs > sh.Docs {
				sh.Docs = b.Docs
			}
		}
		out[si] = sh
	}
	return out
}

// RouterStats counts fan-out outcomes since the router started.
type RouterStats struct {
	// Failovers counts reads served by a non-first backend.
	Failovers uint64 `json:"failovers"`
	// DegradedQueries counts searches that lost at least one shard.
	DegradedQueries uint64 `json:"degraded_queries"`
	// ShardsSkipped counts shard results missing from those degraded
	// searches (one query losing two shards counts two).
	ShardsSkipped uint64 `json:"shards_skipped"`
	// WriteFailures counts mutation batches that failed on an
	// individual backend (each failure is also charged to that
	// backend's TotalFailures).
	WriteFailures uint64 `json:"write_failures"`
	// PartialWrites counts batches acknowledged by at least one backend
	// of a shard while another healthy backend failed them — replicas
	// that diverged and need resync.
	PartialWrites uint64 `json:"partial_writes"`
	// Hedges counts duplicate reads launched after HedgeAfter elapsed;
	// HedgeWins counts the races the hedge won.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// ReadRetries counts extra read rounds taken after a failed pass.
	ReadRetries uint64 `json:"read_retries"`
	// BreakerFastFails counts reads skipped at an open breaker.
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	// RingEpoch is the current assignment version; it starts at 1 and
	// bumps on every migration cutover (or adopted ring).
	RingEpoch uint64 `json:"ring_epoch"`
	// StaleEpochs counts requests a node rejected with a stale-ring
	// 409; EpochAdoptions counts the newer rings adopted from them.
	StaleEpochs    uint64 `json:"stale_epochs"`
	EpochAdoptions uint64 `json:"epoch_adoptions"`
}

// Stats reports the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Failovers:        r.failovers.Load(),
		DegradedQueries:  r.degradedQueries.Load(),
		ShardsSkipped:    r.shardsSkipped.Load(),
		WriteFailures:    r.writeFailures.Load(),
		PartialWrites:    r.partialWrites.Load(),
		Hedges:           r.hedges.Load(),
		HedgeWins:        r.hedgeWins.Load(),
		ReadRetries:      r.readRetries.Load(),
		BreakerFastFails: r.breakerFastFails.Load(),
		RingEpoch:        r.ring.Load().epoch,
		StaleEpochs:      r.staleEpochs.Load(),
		EpochAdoptions:   r.epochAdoptions.Load(),
	}
}
