package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/vecdb"
)

// Anti-entropy replica resync. PR 3's router replicated writes
// best-effort: a backend that was ejected (or failed a write its
// peers acknowledged) silently diverged and stayed diverged. The
// resync manager closes that loop: every sweep it compares each
// shard's backends by sequence number and content checksum, picks the
// most advanced healthy backend as the source of truth, and repairs
// laggards by shipping the missing mutation batches out of the
// source's WAL — falling back to a full snapshot transfer when the
// source's journal has been truncated past the needed seq (or when
// two backends sit at the same seq with different contents, a
// divergence a delta cannot express). A repaired backend is released
// from its needsResync hold, which is what finally lets the health
// checker re-admit it to reads. See docs/cluster.md.

// resyncShipTimeout bounds one catch-up RPC (delta fetch, delta
// apply, snapshot fetch, snapshot apply). Snapshot legs move whole
// shards, so this is deliberately far looser than the probe timeout.
const resyncShipTimeout = 60 * time.Second

// maxResyncRounds bounds one backend's catch-up loop per sweep: a
// source taking writes faster than the target can absorb them must
// not pin the sweep forever — the next sweep continues from where
// this one stopped.
const maxResyncRounds = 64

// ResyncStats counts anti-entropy outcomes since the router started.
type ResyncStats struct {
	// Resyncs counts backends brought back to seq+checksum parity by a
	// repair (delta or snapshot).
	Resyncs uint64 `json:"resyncs"`
	// MutationsShipped counts journaled mutations delivered to lagging
	// backends.
	MutationsShipped uint64 `json:"mutations_shipped"`
	// SnapshotFallbacks counts repairs that had to transfer a full
	// snapshot because the delta was unavailable (truncated WAL) or
	// insufficient (equal-seq divergence).
	SnapshotFallbacks uint64 `json:"snapshot_fallbacks"`
	// Errors counts repair attempts that failed and will be retried by
	// a later sweep.
	Errors uint64 `json:"errors"`
}

// resyncer is the background anti-entropy loop owned by a Router.
type resyncer struct {
	r    *Router
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	// ctx parents every background sweep; Close cancels it so an
	// in-flight repair leg (up to resyncShipTimeout) aborts instead of
	// pinning a graceful shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	resyncs   atomic.Uint64
	shipped   atomic.Uint64
	snapshots atomic.Uint64
	errors    atomic.Uint64
}

func newResyncer(r *Router) *resyncer {
	ctx, cancel := context.WithCancel(context.Background())
	rs := &resyncer{
		r:      r,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	go rs.run()
	return rs
}

func (rs *resyncer) run() {
	defer close(rs.done)
	// A negative interval is fully manual mode: no ticker and no
	// nudge-driven sweeps, so tests drive every repair explicitly
	// through ResyncNow.
	if rs.r.cfg.ResyncInterval < 0 {
		return
	}
	t := time.NewTicker(rs.r.cfg.ResyncInterval)
	defer t.Stop()
	tick := t.C
	for {
		select {
		case <-rs.stop:
			return
		case <-tick:
		case <-rs.kick:
		}
		rs.r.resyncSweep(rs.ctx)
	}
}

// nudge schedules a sweep soon (the write path calls it when a
// partial write marks a backend) without ever blocking the caller.
func (rs *resyncer) nudge() {
	select {
	case rs.kick <- struct{}{}:
	default:
	}
}

func (rs *resyncer) Close() {
	rs.cancel()
	close(rs.stop)
	<-rs.done
}

// ResyncStats reports the anti-entropy counters.
func (r *Router) ResyncStats() ResyncStats {
	rs := r.resync
	return ResyncStats{
		Resyncs:           rs.resyncs.Load(),
		MutationsShipped:  rs.shipped.Load(),
		SnapshotFallbacks: rs.snapshots.Load(),
		Errors:            rs.errors.Load(),
	}
}

// ResyncNow runs one synchronous anti-entropy sweep over every shard
// — the operation behind POST /admin/resync and the deterministic
// hook the chaos tests drive. It returns the first repair error;
// other shards are still swept.
func (r *Router) ResyncNow(ctx context.Context) error {
	return r.resyncSweep(ctx)
}

// ProbeNow runs one synchronous probe round over every backend,
// refreshing health state and cached stats — deterministic test hook
// and the reason an admin-triggered resync can follow an
// admin-observed recovery without waiting out the probe interval.
func (r *Router) ProbeNow() { r.checker.probeAll() }

// backendObs is one backend's live observation during a sweep.
type backendObs struct {
	h  *backendHealth
	st ShardStat
}

func (r *Router) resyncSweep(ctx context.Context) error {
	var firstErr error
	for si := 0; si < r.nshards; si++ {
		if err := r.resyncShard(ctx, si); err != nil && firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return firstErr
}

// resyncShard compares shard si's backends and repairs laggards. The
// source of truth is the most advanced healthy backend (ties resolve
// in declaration order, so the primary wins); with no healthy backend
// the most advanced reachable one self-clears — during a total outage
// the best surviving copy must be allowed back first, or nobody can
// serve.
func (r *Router) resyncShard(ctx context.Context, si int) error {
	// One consistent ring snapshot per shard sweep: a migration cutover
	// mid-sweep swaps the assignment, and comparing backends across two
	// assignments would elect nonsense sources.
	shard := r.ring.Load().shards[si]
	if len(shard) == 1 {
		// A replica-less shard has no peer to diverge from; release any
		// hold so recovery is not deadlocked waiting for a comparison
		// that can never happen.
		h := shard[0]
		if h.resyncNeeded() {
			h.clearResync(r.cfg)
		}
		return nil
	}
	var obs []backendObs
	for _, h := range shard {
		sctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		st, err := h.backend.Stat(sctx)
		cancel()
		if err != nil {
			continue // unreachable: nothing to compare or repair yet
		}
		h.setStat(st)
		obs = append(obs, backendObs{h: h, st: st})
	}
	if len(obs) == 0 {
		return nil
	}
	src := obs[0]
	srcServing := src.h.serving()
	for _, o := range obs[1:] {
		serving := o.h.serving()
		better := o.st.Seq > src.st.Seq
		if serving != srcServing {
			// Healthy backends outrank any unhealthy one as source of
			// truth: they took every acknowledged write.
			better = serving
		}
		if better {
			src, srcServing = o, serving
		}
	}
	// The source is authoritative only if it serves reads itself, or
	// if no backend of the shard does (total outage — the best
	// surviving copy must be allowed back first, or nobody can serve).
	// The serving check is local state, deliberately not this sweep's
	// reachability: a healthy primary whose one Stat call timed out
	// must not let a stale held replica elect itself source, self-
	// clear, and serve reads missing that primary's writes.
	if !srcServing {
		for _, h := range shard {
			if h.serving() {
				return nil // wait for a sweep that can observe the serving peer
			}
		}
	}
	// The source is as good as this shard gets: release its own hold
	// (total-outage bootstrap, or an ejection that missed no writes).
	if src.h.resyncNeeded() {
		src.h.clearResync(r.cfg)
	}
	var firstErr error
	for _, o := range obs {
		if o.h == src.h {
			continue
		}
		if o.st.Seq == src.st.Seq && o.st.Checksum == src.st.Checksum {
			if o.h.resyncNeeded() {
				o.h.clearResync(r.cfg)
			}
			continue
		}
		// Diverged. Hold it out of service (demoting a healthy laggard)
		// and repair it from the source.
		o.h.markResync()
		if err := r.resyncBackend(ctx, src.h, o.h); err != nil {
			r.resync.errors.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: resync shard %d backend %s: %w", si, o.h.backend.Name(), err)
			}
			continue
		}
		r.resync.resyncs.Add(1)
	}
	return firstErr
}

// resyncBackend catches dst up to src, shipping delta batches until
// seq and checksum agree, with snapshot transfer as the fallback. On
// success dst's resync hold is cleared.
func (r *Router) resyncBackend(ctx context.Context, src, dst *backendHealth) error {
	for round := 0; round < maxResyncRounds; round++ {
		sctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		srcStat, err := src.backend.Stat(sctx)
		cancel()
		if err != nil {
			return fmt.Errorf("source stat: %w", err)
		}
		sctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		dstStat, err := dst.backend.Stat(sctx)
		cancel()
		if err != nil {
			return fmt.Errorf("target stat: %w", err)
		}
		if dstStat.Seq == srcStat.Seq && dstStat.Checksum == srcStat.Checksum {
			dst.setStat(dstStat)
			dst.clearResync(r.cfg)
			return nil
		}
		// A target ahead of its source, or level with it under
		// different contents, holds writes the delta stream cannot
		// reconcile — only adopting the source's exact doc set can.
		if dstStat.Seq >= srcStat.Seq {
			if err := r.shipSnapshot(ctx, src, dst); err != nil {
				return err
			}
			continue
		}
		// One scan per round: the whole remaining delta in one fetch
		// (the WAL a delta comes from is checkpoint-bounded, so so is
		// the response), applied in ResyncBatch-sized chunks to keep
		// individual apply RPCs small. Fetching batch-by-batch instead
		// would re-scan the WAL prefix per batch — quadratic in gap
		// size — while holding the source's WAL lock against writers.
		ms, err := r.fetchDelta(ctx, src, dstStat.Seq)
		if errors.Is(err, errDeltaUnavailable) {
			if err := r.shipSnapshot(ctx, src, dst); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		for start := 0; start < len(ms); start += r.cfg.ResyncBatch {
			end := start + r.cfg.ResyncBatch
			if end > len(ms) {
				end = len(ms)
			}
			actx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
			err = dst.backend.ApplyResync(actx, ms[start:end])
			cancel()
			if err != nil {
				return fmt.Errorf("apply delta: %w", err)
			}
			r.resync.shipped.Add(uint64(end - start))
		}
	}
	return fmt.Errorf("no convergence after %d rounds (source still advancing?)", maxResyncRounds)
}

// errDeltaUnavailable tags a delta fetch that cannot make progress
// and must become a snapshot transfer: the journal is truncated, or
// it reports records it then fails to produce.
var errDeltaUnavailable = errors.New("delta unavailable")

func (r *Router) fetchDelta(ctx context.Context, src *backendHealth, since uint64) ([]vecdb.SeqMutation, error) {
	fctx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
	defer cancel()
	ms, err := src.backend.MutationsSince(fctx, since, 0)
	if err != nil {
		if errors.Is(err, vecdb.ErrSeqTruncated) {
			return nil, errDeltaUnavailable
		}
		return nil, fmt.Errorf("fetch delta: %w", err)
	}
	if len(ms) == 0 {
		// The source's seq is ahead of since but its journal serves
		// nothing past it (e.g. the gap predates seq framing): the delta
		// path cannot converge.
		return nil, errDeltaUnavailable
	}
	return ms, nil
}

func (r *Router) shipSnapshot(ctx context.Context, src, dst *backendHealth) error {
	fctx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
	seq, docs, err := src.backend.SnapshotDocs(fctx)
	cancel()
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
	err = dst.backend.ApplySnapshot(actx, seq, docs)
	cancel()
	if err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	r.resync.snapshots.Add(1)
	return nil
}
