package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vecdb"
)

// passiveHealth is a checker config that effectively disables active
// probing, so tests drive the state machine through live traffic
// only.
var passiveHealth = HealthConfig{Interval: time.Hour, FailThreshold: 1}

// newLocalDB builds one bare shard store.
func newLocalDB(t *testing.T, dim int) *vecdb.DB {
	t.Helper()
	db, err := vecdb.NewDefault(dim)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newLocalRouter builds a router over n in-process shards, returning
// the router and the shard DBs.
func newLocalRouter(t *testing.T, n, dim int, cfg HealthConfig) (*Router, []*vecdb.DB) {
	t.Helper()
	dbs := make([]*vecdb.DB, n)
	shards := make([]ShardBackends, n)
	for i := range dbs {
		dbs[i] = newLocalDB(t, dim)
		b, err := NewLocalBackend(fmt.Sprintf("shard-%d", i), dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = ShardBackends{Primary: b}
	}
	r, err := NewRouter(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, dbs
}

// seedRouter hash-routes texts (IDs 1..len) onto the router's shards,
// returning the assigned IDs.
func seedRouter(t *testing.T, r *Router, texts []string) []int64 {
	t.Helper()
	ctx := context.Background()
	ids := make([]int64, len(texts))
	for i, text := range texts {
		id := int64(i + 1)
		ids[i] = id
		m := vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text}
		if err := r.Apply(ctx, r.ShardFor(id), []vecdb.Mutation{m}); err != nil {
			t.Fatalf("apply doc %d: %v", id, err)
		}
	}
	return ids
}

var corpus = []string{
	"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	"Employees are entitled to 14 days of paid annual leave per year.",
	"At least three shopkeepers are required to run a shop.",
	"Overtime is paid at one and a half times the hourly rate.",
	"The probation period lasts three months for all new hires.",
	"Annual performance reviews take place every December.",
	"Staff discounts apply to all in-store purchases over ten dollars.",
}

// TestRouterMatchesSingleIndex: the acceptance-criterion invariant in
// miniature — a query fanned over hash-routed shards merges to the
// same top-k (IDs, scores, order) as one flat index over the same
// corpus, because per-document cosine scores don't depend on the
// partitioning.
func TestRouterMatchesSingleIndex(t *testing.T) {
	const dim = 64
	r, _ := newLocalRouter(t, 3, dim, passiveHealth)
	seedRouter(t, r, corpus)

	flat := newLocalDB(t, dim)
	for i, text := range corpus {
		if err := flat.AddWithID(int64(i+1), text, nil); err != nil {
			t.Fatal(err)
		}
	}

	vec, err := flat.Embedder().Embed("how many shopkeepers are required")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 5} {
		want, err := flat.SearchVector(vec, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.SearchVector(context.Background(), vec, k, vecdb.Filter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d hits, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score || got[i].Text != want[i].Text {
				t.Errorf("k=%d hit %d: got (%d, %.6f), want (%d, %.6f)",
					k, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

// TestRouterKLargerThanCorpus: asking for more hits than the cluster
// holds returns everything, ordered, without error.
func TestRouterKLargerThanCorpus(t *testing.T) {
	r, _ := newLocalRouter(t, 3, 32, passiveHealth)
	seedRouter(t, r, corpus[:2])
	vec, _ := vecdb.NewHashedEmbedder(32)
	v, err := vec.Embed("working hours")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.SearchVector(context.Background(), v, 50, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].Score < hits[1].Score {
		t.Errorf("hits out of order: %.4f then %.4f", hits[0].Score, hits[1].Score)
	}
}

// TestRouterEmptyShard: with more shards than documents, some shards
// answer with nothing; the fan-out must treat that as a normal empty
// list, not a failure.
func TestRouterEmptyShard(t *testing.T) {
	r, dbs := newLocalRouter(t, 5, 32, passiveHealth)
	seedRouter(t, r, corpus[:2])
	empty := 0
	for _, db := range dbs {
		if db.Len() == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("test setup: expected at least one empty shard")
	}
	vec, _ := vecdb.NewHashedEmbedder(32)
	v, err := vec.Embed("annual leave")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.SearchVector(context.Background(), v, 3, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if st := r.Stats(); st.DegradedQueries != 0 {
		t.Errorf("empty shards counted as degradation: %+v", st)
	}
}

// TestMergeTopKTiedScores: identical documents on different shards
// produce identical scores; the merge must order ties by ascending ID
// regardless of which shard answered first.
func TestMergeTopKTiedScores(t *testing.T) {
	mk := func(ids ...int64) []vecdb.Hit {
		hs := make([]vecdb.Hit, len(ids))
		for i, id := range ids {
			hs[i] = vecdb.Hit{Document: vecdb.Document{ID: id}, Score: 0.5}
		}
		return hs
	}
	// Same tied score everywhere, shard lists in "bad" order.
	got := MergeTopK([][]vecdb.Hit{mk(7, 9), mk(2), nil, mk(4, 8)}, 4)
	want := []int64{2, 4, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("hit %d: ID %d, want %d (ties must order by ascending ID)", i, got[i].ID, id)
		}
	}
	// And a higher score still wins over every tie.
	lists := [][]vecdb.Hit{mk(7), {{Document: vecdb.Document{ID: 42}, Score: 0.9}}, mk(2)}
	if got := MergeTopK(lists, 2); got[0].ID != 42 || got[1].ID != 2 {
		t.Errorf("merge order wrong: %+v", got)
	}
}

// flakyBackend wraps a Backend and fails every data call while
// broken. Probe fails too, so active checkers see the same view.
type flakyBackend struct {
	Backend
	broken atomic.Bool
}

var errBroken = errors.New("backend broken")

func (f *flakyBackend) SearchVector(ctx context.Context, vec []float32, k int, fl vecdb.Filter) ([]vecdb.Hit, error) {
	if f.broken.Load() {
		return nil, errBroken
	}
	return f.Backend.SearchVector(ctx, vec, k, fl)
}

func (f *flakyBackend) Apply(ctx context.Context, ms []vecdb.Mutation) error {
	if f.broken.Load() {
		return errBroken
	}
	return f.Backend.Apply(ctx, ms)
}

func (f *flakyBackend) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	if f.broken.Load() {
		return vecdb.Document{}, errBroken
	}
	return f.Backend.Get(ctx, id)
}

func (f *flakyBackend) Stat(ctx context.Context) (ShardStat, error) {
	if f.broken.Load() {
		return ShardStat{}, errBroken
	}
	return f.Backend.Stat(ctx)
}

func (f *flakyBackend) Probe(ctx context.Context) error {
	if f.broken.Load() {
		return errBroken
	}
	return f.Backend.Probe(ctx)
}

// TestRouterFailoverToReplica: when the primary errors mid-query, the
// replica serves the read, the failover is counted, and — with
// FailThreshold 1 — the primary is ejected so the next read skips it
// without touching it.
func TestRouterFailoverToReplica(t *testing.T) {
	const dim = 32
	primaryDB, replicaDB := newLocalDB(t, dim), newLocalDB(t, dim)
	pb, _ := NewLocalBackend("primary", primaryDB)
	rb, _ := NewLocalBackend("replica", replicaDB)
	flaky := &flakyBackend{Backend: pb}
	r, err := NewRouter([]ShardBackends{{Primary: flaky, Replicas: []Backend{rb}}}, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	ctx := context.Background()
	// Writes while healthy land on both backends.
	seedRouter(t, r, corpus[:3])
	if primaryDB.Len() != 3 || replicaDB.Len() != 3 {
		t.Fatalf("replicated write counts: primary %d replica %d", primaryDB.Len(), replicaDB.Len())
	}

	flaky.broken.Store(true)
	emb, _ := vecdb.NewHashedEmbedder(dim)
	v, err := emb.Embed("paid leave")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.SearchVector(ctx, v, 2, vecdb.Filter{})
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	if len(hits) != 2 {
		t.Fatalf("failover search returned %d hits", len(hits))
	}
	st := r.Stats()
	if st.Failovers == 0 {
		t.Error("failover not counted")
	}
	if st.DegradedQueries != 0 {
		t.Errorf("replica-served query counted as degraded: %+v", st)
	}
	// The primary is now ejected: health reflects it, and the next read
	// is served without consulting the broken backend at all.
	health := r.Health()[0]
	if !health.Alive {
		t.Error("shard with a live replica reported dead")
	}
	var primaryState, replicaState string
	for _, b := range health.Backends {
		switch b.Name {
		case "primary":
			primaryState = b.State
		case "replica":
			replicaState = b.State
		}
	}
	if primaryState != "ejected" || replicaState != "healthy" {
		t.Errorf("states: primary=%s replica=%s", primaryState, replicaState)
	}
	// Reads and writes keep working against the replica alone.
	if _, err := r.Get(ctx, 1); err != nil {
		t.Errorf("get after ejection: %v", err)
	}
	if err := r.Apply(ctx, 0, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: 99, Text: corpus[3]}}); err != nil {
		t.Errorf("write after ejection: %v", err)
	}
	if replicaDB.Len() != 4 {
		t.Errorf("replica missed post-ejection write: %d docs", replicaDB.Len())
	}
}

// TestRouterDegradedSearch: a shard with no replica and a dead
// primary is skipped — the query degrades to surviving shards instead
// of failing or hanging.
func TestRouterDegradedSearch(t *testing.T) {
	const dim = 32
	dbs := make([]*vecdb.DB, 3)
	shards := make([]ShardBackends, 3)
	var flaky *flakyBackend
	for i := range dbs {
		dbs[i] = newLocalDB(t, dim)
		b, _ := NewLocalBackend(fmt.Sprintf("shard-%d", i), dbs[i])
		if i == 0 {
			flaky = &flakyBackend{Backend: b}
			shards[i] = ShardBackends{Primary: flaky}
		} else {
			shards[i] = ShardBackends{Primary: b}
		}
	}
	r, err := NewRouter(shards, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ids := seedRouter(t, r, corpus)

	flaky.broken.Store(true)
	emb, _ := vecdb.NewHashedEmbedder(dim)
	v, err := emb.Embed("shopkeepers")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.SearchVector(context.Background(), v, len(corpus), vecdb.Filter{})
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	// Exactly the docs on shards 1 and 2 come back.
	surviving := 0
	for _, id := range ids {
		if r.ShardFor(id) != 0 {
			surviving++
		}
	}
	if len(hits) != surviving {
		t.Errorf("degraded search returned %d hits, want %d", len(hits), surviving)
	}
	st := r.Stats()
	if st.DegradedQueries == 0 || st.ShardsSkipped == 0 {
		t.Errorf("degradation not counted: %+v", st)
	}
	// Writes routed to the dead shard fail fast once it is ejected.
	var deadID int64
	for id := int64(1000); ; id++ {
		if r.ShardFor(id) == 0 {
			deadID = id
			break
		}
	}
	err = r.Apply(context.Background(), 0, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: deadID, Text: "x"}})
	if !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("write to dead shard: %v, want ErrShardUnavailable", err)
	}
	if err := r.Available(); err != nil {
		t.Errorf("cluster with 2 live shards reported unavailable: %v", err)
	}
}

// TestRouterAllShardsDown: a fully dead cluster reports
// ErrUnavailable from both searches and the availability probe the
// admission gate uses.
func TestRouterAllShardsDown(t *testing.T) {
	const dim = 32
	db := newLocalDB(t, dim)
	b, _ := NewLocalBackend("only", db)
	flaky := &flakyBackend{Backend: b}
	r, err := NewRouter([]ShardBackends{{Primary: flaky}}, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:1])

	flaky.broken.Store(true)
	emb, _ := vecdb.NewHashedEmbedder(dim)
	v, _ := emb.Embed("anything")
	if _, err := r.SearchVector(context.Background(), v, 1, vecdb.Filter{}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("search on dead cluster: %v, want ErrUnavailable", err)
	}
	// The first failure ejected the backend (FailThreshold 1), so the
	// availability probe now reports the outage without any I/O.
	if err := r.Available(); !errors.Is(err, ErrUnavailable) {
		t.Errorf("Available() = %v, want ErrUnavailable", err)
	}
}

// TestRouterGetNotFoundAuthoritative: a miss from a healthy backend
// is the answer, not a reason to fail over or eject.
func TestRouterGetNotFoundAuthoritative(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 32, passiveHealth)
	seedRouter(t, r, corpus[:2])
	_, err := r.Get(context.Background(), 12345)
	if !errors.Is(err, vecdb.ErrNotFound) {
		t.Fatalf("get absent: %v, want ErrNotFound", err)
	}
	if err := r.Delete(context.Background(), 12345); !errors.Is(err, vecdb.ErrNotFound) {
		t.Fatalf("delete absent: %v, want ErrNotFound", err)
	}
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.State != "healthy" {
				t.Errorf("backend %s penalized for an authoritative miss: %s", b.Name, b.State)
			}
		}
	}
}

// TestRouterMaxNextID: the allocator high-water mark spans all
// shards, and a shard that was never reachable blocks restoration
// rather than risking ID collisions.
func TestRouterMaxNextID(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 32, passiveHealth)
	seedRouter(t, r, corpus)
	next, err := r.MaxNextID(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(corpus) + 1); next != want {
		t.Errorf("MaxNextID = %d, want %d", next, want)
	}

	// A router whose only backend has been dead since boot has no live
	// answer and no cached stat: restoration must fail loudly.
	db := newLocalDB(t, 32)
	b, _ := NewLocalBackend("dead", db)
	flaky := &flakyBackend{Backend: b}
	flaky.broken.Store(true)
	r2, err := NewRouter([]ShardBackends{{Primary: flaky}}, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r2.Close)
	if _, err := r2.MaxNextID(context.Background()); err == nil {
		t.Error("MaxNextID succeeded with an unreachable shard")
	}
}
