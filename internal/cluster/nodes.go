package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// NodesFile is the on-disk cluster topology consumed by
// `ragserver -cluster nodes.json`:
//
//	{
//	  "request_timeout_ms": 5000,
//	  "shards": [
//	    {"primary": "http://10.0.0.1:9001", "replicas": ["http://10.0.0.4:9001"]},
//	    {"primary": "http://10.0.0.2:9001"},
//	    {"primary": "http://10.0.0.3:9001"}
//	  ]
//	}
//
// Shard order is the hash ring: entry i serves shard i, and the
// number of entries must match the shard count the corpus was
// ingested with — documents are hash-routed by ID over len(shards).
type NodesFile struct {
	// RequestTimeoutMS bounds one shard RPC (default 5000).
	RequestTimeoutMS int `json:"request_timeout_ms"`
	// Shards lists one NodeSet per shard, in hash-ring order.
	Shards []NodeSet `json:"shards"`
}

// NodeSet names the node URLs serving one shard.
type NodeSet struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// LoadNodes parses a nodes file and builds the HTTP backends for
// NewRouter. All backends share one http.Client (one connection pool
// toward the cluster).
func LoadNodes(path string) ([]ShardBackends, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: nodes file: %w", err)
	}
	var nf NodesFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("cluster: nodes file %s: %w", path, err)
	}
	if len(nf.Shards) == 0 {
		return nil, fmt.Errorf("cluster: nodes file %s lists no shards", path)
	}
	timeout := DefaultRequestTimeout
	if nf.RequestTimeoutMS > 0 {
		timeout = time.Duration(nf.RequestTimeoutMS) * time.Millisecond
	}
	client := &http.Client{Timeout: timeout}
	out := make([]ShardBackends, len(nf.Shards))
	for i, ns := range nf.Shards {
		if ns.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
		primary, err := NewHTTPBackend(ns.Primary, client)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sb := ShardBackends{Primary: primary}
		for _, rep := range ns.Replicas {
			b, err := NewHTTPBackend(rep, client)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica: %w", i, err)
			}
			sb.Replicas = append(sb.Replicas, b)
		}
		out[i] = sb
	}
	return out, nil
}
