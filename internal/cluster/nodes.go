package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// NodesFile is the on-disk cluster topology consumed by
// `ragserver -cluster nodes.json`:
//
//	{
//	  "request_timeout_ms": 5000,
//	  "shards": [
//	    {"primary": "http://10.0.0.1:9001", "replicas": ["http://10.0.0.4:9001"]},
//	    {"primary": "http://10.0.0.2:9001"},
//	    {"primary": "http://10.0.0.3:9001"}
//	  ]
//	}
//
// Shard order is the hash ring: entry i serves shard i, and the
// number of entries must match the shard count the corpus was
// ingested with — documents are hash-routed by ID over len(shards).
type NodesFile struct {
	// RequestTimeoutMS bounds one shard RPC (default 5000).
	RequestTimeoutMS int `json:"request_timeout_ms"`
	// Shards lists one NodeSet per shard, in hash-ring order.
	Shards []NodeSet `json:"shards"`
}

// NodeSet names the node URLs serving one shard.
type NodeSet struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// LoadNodes parses a nodes file and builds the HTTP backends for
// NewRouter. All backends share one http.Client (one connection pool
// toward the cluster).
func LoadNodes(path string) ([]ShardBackends, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: nodes file: %w", err)
	}
	var nf NodesFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("cluster: nodes file %s: %w", path, err)
	}
	if len(nf.Shards) == 0 {
		return nil, fmt.Errorf("cluster: nodes file %s lists no shards", path)
	}
	timeout := DefaultRequestTimeout
	if nf.RequestTimeoutMS > 0 {
		timeout = time.Duration(nf.RequestTimeoutMS) * time.Millisecond
	}
	client := &http.Client{Timeout: timeout}
	out := make([]ShardBackends, len(nf.Shards))
	// One backend URL must serve exactly one role: the same node
	// behind two shards would interleave both shards' documents in one
	// store (and seq/checksum parity checks would compare apples to
	// oranges). Compare by the backend's normalized name so
	// "10.0.0.1:9001" and "http://10.0.0.1:9001/" collide as they
	// should.
	seen := make(map[string]string)
	addBackend := func(url, role string) (*HTTPBackend, error) {
		b, err := NewHTTPBackend(url, client)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[b.Name()]; dup {
			return nil, fmt.Errorf("backend %s assigned twice (%s and %s)", b.Name(), prev, role)
		}
		seen[b.Name()] = role
		return b, nil
	}
	for i, ns := range nf.Shards {
		if ns.Primary == "" {
			return nil, fmt.Errorf("cluster: nodes file %s: shard %d has no primary", path, i)
		}
		primary, err := addBackend(ns.Primary, fmt.Sprintf("shard %d primary", i))
		if err != nil {
			return nil, fmt.Errorf("cluster: nodes file %s: shard %d: %w", path, i, err)
		}
		sb := ShardBackends{Primary: primary}
		for j, rep := range ns.Replicas {
			b, err := addBackend(rep, fmt.Sprintf("shard %d replica %d", i, j))
			if err != nil {
				return nil, fmt.Errorf("cluster: nodes file %s: shard %d replica: %w", path, i, err)
			}
			sb.Replicas = append(sb.Replicas, b)
		}
		out[i] = sb
	}
	return out, nil
}
