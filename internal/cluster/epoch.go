package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// Versioned ring epochs. The shard→backend assignment is no longer
// fixed for a deployment's lifetime: an online migration (migrate.go)
// moves a shard onto a new backend and bumps the ring's epoch. The
// epoch is a monotonically increasing version number for the whole
// assignment, carried on every shard RPC as the X-Ring-Epoch header:
//
//   - A node that has been retired from the ring (the migration
//     orchestrator pushed it a ring it no longer appears in) answers
//     every data request with 409 Conflict plus the new ring, so a
//     client still routing by the old assignment learns the truth
//     from the very request that would have gone stale.
//   - A node that is still serving additionally rejects requests
//     whose X-Ring-Epoch is older than the ring it was handed — the
//     sender is provably routing by a superseded assignment.
//   - The router maps those 409s to StaleEpochError and self-heals by
//     adopting the ring carried in the error (adoptRing), without an
//     operator in the loop.
//
// Nodes that were never handed a ring (the common single-epoch
// deployment) accept everything: the epoch machinery costs nothing
// until the first migration.

// RingEpochHeader carries the sender's ring epoch on shard RPCs.
const RingEpochHeader = "X-Ring-Epoch"

// Ring limits: a parsed ring is rejected beyond these bounds, so a
// malformed or hostile epoch payload cannot balloon memory or smuggle
// an absurd topology into a router.
const (
	maxRingShards      = 1024
	maxShardBackends   = 16
	maxBackendNameLen  = 512
	maxRingPayloadSize = 1 << 20
)

// Ring is the wire form of a versioned shard assignment: for each
// shard, the backend names (URLs for HTTP backends) serving it,
// primary first. It travels in /shard/epoch installs and inside
// stale-epoch 409 bodies.
type Ring struct {
	Epoch  uint64     `json:"epoch"`
	Shards [][]string `json:"shards"`
}

// Validate checks structural sanity: a positive epoch, a bounded
// non-empty shard list, every shard served by at least one backend,
// and no backend name empty, oversized, or assigned twice.
func (rg Ring) Validate() error {
	if rg.Epoch == 0 {
		return errors.New("cluster: ring epoch must be positive")
	}
	if len(rg.Shards) == 0 {
		return errors.New("cluster: ring has no shards")
	}
	if len(rg.Shards) > maxRingShards {
		return fmt.Errorf("cluster: ring lists %d shards (max %d)", len(rg.Shards), maxRingShards)
	}
	seen := make(map[string]int, len(rg.Shards))
	for si, names := range rg.Shards {
		if len(names) == 0 {
			return fmt.Errorf("cluster: ring shard %d has no backends", si)
		}
		if len(names) > maxShardBackends {
			return fmt.Errorf("cluster: ring shard %d lists %d backends (max %d)", si, len(names), maxShardBackends)
		}
		for _, name := range names {
			if name == "" {
				return fmt.Errorf("cluster: ring shard %d has an empty backend name", si)
			}
			if len(name) > maxBackendNameLen {
				return fmt.Errorf("cluster: ring shard %d backend name exceeds %d bytes", si, maxBackendNameLen)
			}
			if prev, dup := seen[name]; dup {
				return fmt.Errorf("cluster: backend %q assigned to both shard %d and shard %d", name, prev, si)
			}
			seen[name] = si
		}
	}
	return nil
}

// ParseRing decodes and validates a wire-form ring.
func ParseRing(data []byte) (Ring, error) {
	if len(data) > maxRingPayloadSize {
		return Ring{}, fmt.Errorf("cluster: ring payload exceeds %d bytes", maxRingPayloadSize)
	}
	var rg Ring
	if err := json.Unmarshal(data, &rg); err != nil {
		return Ring{}, fmt.Errorf("cluster: parse ring: %w", err)
	}
	if err := rg.Validate(); err != nil {
		return Ring{}, err
	}
	return rg, nil
}

// EncodeRing renders a validated ring to its wire form.
func EncodeRing(rg Ring) ([]byte, error) {
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(rg)
}

// ParseEpochHeader parses an X-Ring-Epoch header value: a bare
// base-10 uint64, nothing else.
func ParseEpochHeader(s string) (uint64, error) {
	e, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s header %q", RingEpochHeader, s)
	}
	return e, nil
}

// RingUpdate is the /shard/epoch install payload: the new ring plus
// whether the receiving node still serves a shard under it. A node
// handed Serving=false is retired — it 409s all further data requests
// and hands back this ring so stale clients re-route.
type RingUpdate struct {
	Ring
	Serving bool `json:"serving"`
}

// RingReceiver is implemented by backends that can be handed a ring
// update (HTTPBackend forwards it to the node's /shard/epoch;
// LocalBackend and clustertest.ChaosBackend install it in-process).
// The migration orchestrator uses it to activate targets and retire
// sources; backends without it simply never learn about epochs, which
// only costs the retired node's ability to reject stale traffic.
type RingReceiver interface {
	InstallRing(ctx context.Context, up RingUpdate) error
}

// StaleEpochError is the typed 409 a node returns when the caller is
// routing by a superseded ring. It carries the node's current ring so
// the caller can adopt it and retry against the right backend.
type StaleEpochError struct {
	Ring Ring
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("cluster: stale ring epoch (current %d)", e.Ring.Epoch)
}

// ringEpochKey carries the router's current epoch on outbound request
// contexts; HTTPBackend.do turns it into the X-Ring-Epoch header.
type ringEpochKey struct{}

func withRingEpoch(ctx context.Context, epoch uint64) context.Context {
	return context.WithValue(ctx, ringEpochKey{}, epoch)
}

func ringEpochFrom(ctx context.Context) (uint64, bool) {
	e, ok := ctx.Value(ringEpochKey{}).(uint64)
	return e, ok
}
