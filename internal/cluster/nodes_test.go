package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeNodesFile drops a nodes.json with the given content into a
// temp dir and returns its path.
func writeNodesFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "nodes.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNodesValid(t *testing.T) {
	path := writeNodesFile(t, `{
		"request_timeout_ms": 2500,
		"shards": [
			{"primary": "http://10.0.0.1:9001", "replicas": ["http://10.0.0.4:9001"]},
			{"primary": "http://10.0.0.2:9001"}
		]
	}`)
	shards, err := LoadNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	if shards[0].Primary.Name() != "http://10.0.0.1:9001" {
		t.Errorf("shard 0 primary = %q", shards[0].Primary.Name())
	}
	if len(shards[0].Replicas) != 1 || shards[0].Replicas[0].Name() != "http://10.0.0.4:9001" {
		t.Errorf("shard 0 replicas = %v", shards[0].Replicas)
	}
	if len(shards[1].Replicas) != 0 {
		t.Errorf("shard 1 replicas = %v", shards[1].Replicas)
	}
}

// TestLoadNodesErrors covers every refusal path, each error naming
// the file (operators fix topology mistakes from the message alone).
func TestLoadNodesErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
		want    string
	}{
		{"invalid JSON", `{"shards": [`, "nodes file"},
		{"no shards", `{"shards": []}`, "lists no shards"},
		{"missing shards key", `{"request_timeout_ms": 100}`, "lists no shards"},
		{"missing primary", `{"shards": [{"replicas": ["http://a:1"]}]}`, "has no primary"},
		{"empty primary URL", `{"shards": [{"primary": ""}]}`, "has no primary"},
		{"empty replica URL", `{"shards": [{"primary": "http://a:1", "replicas": [""]}]}`, "empty backend URL"},
		{
			"duplicate across shards",
			`{"shards": [{"primary": "http://a:1"}, {"primary": "http://a:1"}]}`,
			"assigned twice (shard 0 primary and shard 1 primary)",
		},
		{
			// The same node spelled two ways must still collide: names
			// are normalized before the duplicate check.
			"duplicate primary and replica, different spellings",
			`{"shards": [{"primary": "http://a:1", "replicas": ["a:1/"]}]}`,
			"assigned twice (shard 0 primary and shard 0 replica 0)",
		},
		{
			"duplicate within replicas",
			`{"shards": [{"primary": "http://a:1", "replicas": ["http://b:1", "http://b:1"]}]}`,
			"assigned twice (shard 0 replica 0 and shard 0 replica 1)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeNodesFile(t, tc.content)
			_, err := LoadNodes(path)
			if err == nil {
				t.Fatalf("accepted: %s", tc.content)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}

	if _, err := LoadNodes(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
