package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// HTTPBackend speaks the shard protocol to a remote node (a
// cmd/shardnode process, or anything mounting NewNodeHandler). It is
// stateless and safe for concurrent use; the health checker, not the
// backend, decides whether it receives traffic.
type HTTPBackend struct {
	base   string
	client *http.Client
	// tele is set once by the router (before its checker starts) and
	// never mutated afterwards; nil means uninstrumented.
	tele *telemetry.Registry
}

// setTelemetry implements the router's telemetrySink injection.
func (b *HTTPBackend) setTelemetry(reg *telemetry.Registry) { b.tele = reg }

// pathOp reduces a shard-protocol path to a bounded op label:
// "/shard/documents/123" → "documents", "/readyz" → "readyz".
func pathOp(path string) string {
	path = strings.TrimPrefix(path, "/shard/")
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexAny(path, "/?"); i >= 0 {
		path = path[:i]
	}
	return path
}

// DefaultRequestTimeout bounds one shard RPC when the caller's
// context carries no sooner deadline.
const DefaultRequestTimeout = 5 * time.Second

// NewHTTPBackend builds a backend for the node at baseURL (scheme +
// host[:port], no trailing path). A nil client gets a dedicated one
// with DefaultRequestTimeout.
func NewHTTPBackend(baseURL string, client *http.Client) (*HTTPBackend, error) {
	base := strings.TrimSuffix(baseURL, "/")
	if base == "" {
		return nil, fmt.Errorf("cluster: empty backend URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if client == nil {
		client = &http.Client{Timeout: DefaultRequestTimeout}
	}
	return &HTTPBackend{base: base, client: client}, nil
}

func (b *HTTPBackend) Name() string { return b.base }

// do issues one JSON round-trip. Non-2xx responses become errors; 404
// maps to vecdb.ErrNotFound so callers keep the typed-miss contract
// across the transport. out may be nil when the body is irrelevant.
// The caller's request ID, remaining deadline and trace position ride
// along as X-Request-ID / X-Deadline-Ms / traceparent hop headers, and
// instrumented backends record per-backend, per-op duration and
// outcome — "ok", "error", or "canceled" when the caller's context
// (a decided hedge race, an expired budget) pulled the plug mid-RPC.
func (b *HTTPBackend) do(ctx context.Context, method, path string, in, out interface{}) (err error) {
	op := pathOp(path)
	ctx, sp := telemetry.StartSpan(ctx, "rpc."+op)
	sp.Annotate("backend", b.base)
	defer func() { sp.End(err) }()
	if b.tele != nil {
		start := time.Now()
		defer func() {
			outcome := "ok"
			switch {
			case err == nil:
			case ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
				outcome = "canceled"
			default:
				outcome = "error"
			}
			b.tele.Histogram("backend_request_duration_seconds",
				"Shard RPC round-trip time by backend and op.", nil,
				telemetry.L("backend", b.base), telemetry.L("op", op)).ObserveSinceCtx(ctx, start)
			b.tele.Counter("backend_requests_total",
				"Shard RPCs by backend, op and outcome.",
				telemetry.L("backend", b.base), telemetry.L("op", op),
				telemetry.L("outcome", outcome)).Inc()
		}()
	}
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encode request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := telemetry.RequestIDFrom(ctx); id != "" {
		req.Header.Set(telemetry.RequestIDHeader, id)
	}
	if ep, ok := ringEpochFrom(ctx); ok {
		// The router stamps its ring epoch on the context; a node
		// holding a newer ring rejects the request with 409 + that ring
		// so the router self-heals (see epoch.go).
		req.Header.Set(RingEpochHeader, strconv.FormatUint(ep, 10))
	}
	if tp := telemetry.Traceparent(ctx); tp != "" {
		// The node roots its own span tree under this RPC span, so the
		// cross-process trace stitches into one tree.
		req.Header.Set(telemetry.TraceParentHeader, tp)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1 // let the node answer 504 rather than reject the header
		}
		req.Header.Set(telemetry.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", method, b.base+path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var remote struct {
			Error string          `json:"error"`
			Epoch uint64          `json:"epoch"`
			Ring  json.RawMessage `json:"ring"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, maxRingPayloadSize)).Decode(&remote) == nil && remote.Error != "" {
			msg = remote.Error
		}
		if resp.StatusCode == http.StatusNotFound {
			return fmt.Errorf("%w: %s", vecdb.ErrNotFound, msg)
		}
		if resp.StatusCode == http.StatusGone {
			// The node's journal no longer retains the requested delta —
			// keep the typed snapshot-fallback signal across the
			// transport.
			return fmt.Errorf("%w: %s", vecdb.ErrSeqTruncated, msg)
		}
		if resp.StatusCode == http.StatusConflict && len(remote.Ring) > 0 {
			// The node has moved to a newer ring: surface the typed
			// stale-epoch error so the router can adopt it and re-route.
			if rg, rerr := ParseRing(remote.Ring); rerr == nil {
				return &StaleEpochError{Ring: rg}
			}
		}
		return fmt.Errorf("cluster: %s %s: %s (status %d)", method, path, msg, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", path, err)
	}
	return nil
}

func (b *HTTPBackend) SearchVector(ctx context.Context, vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	var resp struct {
		Hits []hitJSON `json:"hits"`
	}
	req := struct {
		Vec        []float32         `json:"vec"`
		K          int               `json:"k"`
		Collection string            `json:"collection,omitempty"`
		Filter     map[string]string `json:"filter,omitempty"`
	}{Vec: vec, K: k, Collection: f.Collection, Filter: f.Meta}
	if err := b.do(ctx, http.MethodPost, "/shard/search", req, &resp); err != nil {
		return nil, err
	}
	hits := make([]vecdb.Hit, 0, len(resp.Hits))
	for _, h := range resp.Hits {
		hits = append(hits, vecdb.Hit{
			Document: vecdb.Document{ID: h.ID, Collection: h.Collection, Text: h.Text, Meta: h.Meta},
			Score:    h.Score,
		})
	}
	return hits, nil
}

func (b *HTTPBackend) Apply(ctx context.Context, ms []vecdb.Mutation) error {
	wire := make([]mutationJSON, len(ms))
	for i, m := range ms {
		mj, err := toMutationJSON(m)
		if err != nil {
			return err
		}
		wire[i] = mj
	}
	req := struct {
		Mutations []mutationJSON `json:"mutations"`
	}{Mutations: wire}
	return b.do(ctx, http.MethodPost, "/shard/apply", req, nil)
}

func (b *HTTPBackend) Get(ctx context.Context, id int64) (vecdb.Document, error) {
	var doc docJSON
	if err := b.do(ctx, http.MethodGet, fmt.Sprintf("/shard/documents/%d", id), nil, &doc); err != nil {
		return vecdb.Document{}, err
	}
	return vecdb.Document{ID: doc.ID, Collection: doc.Collection, Text: doc.Text, Meta: doc.Meta}, nil
}

func (b *HTTPBackend) Stat(ctx context.Context) (ShardStat, error) {
	var st ShardStat
	if err := b.do(ctx, http.MethodGet, "/shard/stat", nil, &st); err != nil {
		return ShardStat{}, err
	}
	return st, nil
}

// Probe hits /readyz: a node that is up but still replaying its WAL
// is treated exactly like a dead one until recovery completes.
func (b *HTTPBackend) Probe(ctx context.Context) error {
	return b.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

func (b *HTTPBackend) MutationsSince(ctx context.Context, since uint64, max int) ([]vecdb.SeqMutation, error) {
	var resp struct {
		Mutations []seqMutationJSON `json:"mutations"`
	}
	path := fmt.Sprintf("/shard/mutations?since=%d&max=%d", since, max)
	if err := b.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	ms := make([]vecdb.SeqMutation, len(resp.Mutations))
	for i, mj := range resp.Mutations {
		m, err := fromMutationJSON(mj.mutationJSON)
		if err != nil {
			return nil, err
		}
		ms[i] = vecdb.SeqMutation{Seq: mj.Seq, Mutation: m}
	}
	return ms, nil
}

func (b *HTTPBackend) ApplyResync(ctx context.Context, ms []vecdb.SeqMutation) error {
	wire := make([]seqMutationJSON, len(ms))
	for i, m := range ms {
		mj, err := toMutationJSON(m.Mutation)
		if err != nil {
			return err
		}
		wire[i] = seqMutationJSON{Seq: m.Seq, mutationJSON: mj}
	}
	req := struct {
		Mutations []seqMutationJSON `json:"mutations"`
	}{Mutations: wire}
	return b.do(ctx, http.MethodPost, "/shard/resync", req, nil)
}

func (b *HTTPBackend) SnapshotDocs(ctx context.Context) (uint64, []vecdb.Document, error) {
	var resp struct {
		Seq  uint64    `json:"seq"`
		Docs []docJSON `json:"docs"`
	}
	if err := b.do(ctx, http.MethodGet, "/shard/snapshot", nil, &resp); err != nil {
		return 0, nil, err
	}
	docs := make([]vecdb.Document, len(resp.Docs))
	for i, d := range resp.Docs {
		docs[i] = vecdb.Document{ID: d.ID, Collection: d.Collection, Text: d.Text, Meta: d.Meta}
	}
	return resp.Seq, docs, nil
}

func (b *HTTPBackend) ApplySnapshot(ctx context.Context, seq uint64, docs []vecdb.Document) error {
	wire := make([]docJSON, len(docs))
	for i, d := range docs {
		wire[i] = docJSON{ID: d.ID, Collection: d.Collection, Text: d.Text, Meta: d.Meta}
	}
	req := struct {
		Seq  uint64    `json:"seq"`
		Docs []docJSON `json:"docs"`
	}{Seq: seq, Docs: wire}
	return b.do(ctx, http.MethodPost, "/shard/snapshot", req, nil)
}

// InstallRing hands the node its ring-epoch assignment (POST
// /shard/epoch) — the migration orchestrator's activate/retire push.
func (b *HTTPBackend) InstallRing(ctx context.Context, up RingUpdate) error {
	return b.do(ctx, http.MethodPost, "/shard/epoch", up, nil)
}

var (
	_ Backend      = (*HTTPBackend)(nil)
	_ RingReceiver = (*HTTPBackend)(nil)
)
