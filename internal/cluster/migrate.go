package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// Online shard migration. A migration moves one shard onto a fresh
// backend with zero read downtime and zero lost or duplicated
// documents, in phases:
//
//	planned → seeding → catchup → dual-write → cutover → done
//	                └──────────── (any failure) ────────→ aborted
//
//   - seeding: the target adopts a full snapshot of the source
//     (/shard/snapshot), taken while the source keeps serving.
//   - catchup: delta rounds ship the mutations the source accepted
//     since the snapshot (/shard/mutations → /shard/resync) until the
//     target trails by at most MigrateConfig.CatchupLag.
//   - dual-write: under a brief per-shard write barrier the remaining
//     delta is drained to exact seq+checksum parity, then every write
//     is applied to both source and target. A write is acknowledged
//     only when the source set persists it and — while dual-writing —
//     the target does too; a failed target leg aborts the migration
//     rather than acking a write the post-cutover owner doesn't have.
//   - cutover: the barrier closes again, parity is re-verified, and
//     the ring flips atomically to a new epoch with the target as the
//     shard's sole backend. Reads never stop: they serve from the old
//     assignment up to the flip and the new one after it.
//   - retire: the new ring is distributed to the nodes; the source
//     (and any replicas of the moved shard) are handed Serving=false,
//     after which they 409 stale traffic toward the new ring.
//
// Any failure before the ring flip aborts the migration and leaves
// the old assignment fully intact — the target is garbage to be
// reused or discarded, never half-authoritative. After the flip the
// migration is committed; retire-side push failures are logged, not
// fatal, because stale clients also self-heal through the 409
// handshake.

// ErrMigrationActive reports that a migration is already running; the
// router allows one at a time.
var ErrMigrationActive = errors.New("cluster: a shard migration is already in progress")

// migrationTimeout bounds a background StartRebalance run end to end.
const migrationTimeout = 15 * time.Minute

// migHistoryMax bounds the finished-migration ring buffer in /stats.
const migHistoryMax = 8

// MigrateConfig tunes online shard migrations. The zero value takes
// the documented defaults.
type MigrateConfig struct {
	// CatchupLag is the seq gap at which background catch-up stops and
	// the write-barrier drain takes over (default 64): small enough
	// that the barrier drains in one round, large enough that a busy
	// source doesn't keep catch-up spinning forever.
	CatchupLag int
	// DualWriteWindow is how long writes go to both source and target
	// before the read flip (default 150ms). The window proves the
	// dual-write path under live traffic; parity already holds when it
	// opens.
	DualWriteWindow time.Duration
	// CutoverTimeout bounds each write-barrier critical section
	// (default 10s): a stuck target aborts the migration instead of
	// stalling the shard's writes.
	CutoverTimeout time.Duration
}

func (c MigrateConfig) withDefaults() MigrateConfig {
	if c.CatchupLag <= 0 {
		c.CatchupLag = 64
	}
	if c.DualWriteWindow <= 0 {
		c.DualWriteWindow = 150 * time.Millisecond
	}
	if c.CutoverTimeout <= 0 {
		c.CutoverTimeout = 10 * time.Second
	}
	return c
}

// MigrationPhase numbers the orchestrator's states; the numeric value
// is what migration_phase{shard} exports.
type MigrationPhase int32

const (
	MigIdle MigrationPhase = iota
	MigPlanned
	MigSeeding
	MigCatchup
	MigDualWrite
	MigCutover
	MigDone
	MigAborted
)

func (p MigrationPhase) String() string {
	switch p {
	case MigIdle:
		return "idle"
	case MigPlanned:
		return "planned"
	case MigSeeding:
		return "seeding"
	case MigCatchup:
		return "catchup"
	case MigDualWrite:
		return "dual-write"
	case MigCutover:
		return "cutover"
	case MigDone:
		return "done"
	case MigAborted:
		return "aborted"
	}
	return "unknown"
}

// migration is one in-flight (or finished) shard move.
type migration struct {
	id     int64
	shard  int
	src    *backendHealth
	target Backend

	phase      atomic.Int32
	dual       atomic.Bool // write path mirrors batches to target
	shipped    atomic.Uint64
	dualWrites atomic.Uint64
	lag        atomic.Uint64

	mu       sync.Mutex
	abortErr error // first abort request (dual-write failure, fault)
	lastTgt  ShardStat
	haveTgt  bool
	prev     []*backendHealth // shard backends replaced at the flip
	started  time.Time
	finished time.Time
	epoch    uint64 // ring epoch installed at cutover
	outcome  string
	errMsg   string
	retired  bool
}

func (m *migration) setPhase(p MigrationPhase) { m.phase.Store(int32(p)) }

// requestAbort records the first abort reason; the orchestrator
// checks it between phases and inside the dual-write window. The
// write path calls it when a dual-write target leg fails, so a write
// is never acknowledged with the target silently missing it.
func (m *migration) requestAbort(err error) {
	m.mu.Lock()
	if m.abortErr == nil {
		m.abortErr = err
	}
	m.mu.Unlock()
}

func (m *migration) abortReason() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.abortErr
}

// MigrationStatus is one migration's observable state, exposed as
// cluster.migrations in /stats.
type MigrationStatus struct {
	ID     int64  `json:"id"`
	Shard  int    `json:"shard"`
	Source string `json:"source"`
	Target string `json:"target"`
	Phase  string `json:"phase"`
	// Epoch is the ring epoch installed at cutover (0 until then).
	Epoch uint64 `json:"epoch,omitempty"`
	// ShippedMutations counts delta records streamed to the target.
	ShippedMutations uint64 `json:"shipped_mutations"`
	// DualWrites counts live batches mirrored to the target during the
	// dual-write window.
	DualWrites uint64 `json:"dual_writes"`
	// ParityLag is the last observed source−target seq gap.
	ParityLag uint64 `json:"parity_lag"`
	// Outcome is "ok" or "aborted" once finished, empty while running.
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`
	// SourceRetired reports that the retired source acknowledged the
	// new ring (false also while running, or when the push failed and
	// the 409 handshake is the only self-heal path).
	SourceRetired bool  `json:"source_retired,omitempty"`
	StartedAtMS   int64 `json:"started_at_ms"`
	FinishedAtMS  int64 `json:"finished_at_ms,omitempty"`
}

func (m *migration) status() MigrationStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MigrationStatus{
		ID:               m.id,
		Shard:            m.shard,
		Source:           m.src.backend.Name(),
		Target:           m.target.Name(),
		Phase:            MigrationPhase(m.phase.Load()).String(),
		Epoch:            m.epoch,
		ShippedMutations: m.shipped.Load(),
		DualWrites:       m.dualWrites.Load(),
		ParityLag:        m.lag.Load(),
		Outcome:          m.outcome,
		Error:            m.errMsg,
		SourceRetired:    m.retired,
		StartedAtMS:      m.started.UnixMilli(),
	}
	if !m.finished.IsZero() {
		st.FinishedAtMS = m.finished.UnixMilli()
	}
	return st
}

// Rebalance synchronously moves shard si onto target, returning the
// finished migration's status. The error is non-nil only when the
// migration could not start (bad shard, busy router, dead source); a
// migration that started and aborted reports that through
// Status.Outcome == "aborted", because the abort path restoring the
// old assignment is the operation working as designed.
func (r *Router) Rebalance(ctx context.Context, si int, target Backend) (MigrationStatus, error) {
	m, err := r.beginMigration(si, target)
	if err != nil {
		return MigrationStatus{}, err
	}
	return r.runMigration(ctx, m), nil
}

// StartRebalance begins a migration and returns immediately; progress
// is observable through Migrations. The run is bounded by
// migrationTimeout.
func (r *Router) StartRebalance(si int, target Backend) (MigrationStatus, error) {
	m, err := r.beginMigration(si, target)
	if err != nil {
		return MigrationStatus{}, err
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), migrationTimeout)
		defer cancel()
		r.runMigration(ctx, m)
	}()
	return m.status(), nil
}

// Migrations snapshots the active migration (first, when one runs)
// plus recently finished ones, newest first.
func (r *Router) Migrations() []MigrationStatus {
	var out []MigrationStatus
	if m := r.mig.Load(); m != nil {
		out = append(out, m.status())
	}
	r.migMu.Lock()
	for i := len(r.migHistory) - 1; i >= 0; i-- {
		out = append(out, r.migHistory[i])
	}
	r.migMu.Unlock()
	return out
}

// beginMigration validates the move and claims the router's single
// migration slot.
func (r *Router) beginMigration(si int, target Backend) (*migration, error) {
	if target == nil {
		return nil, errors.New("cluster: nil migration target")
	}
	if si < 0 || si >= r.nshards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", si, r.nshards)
	}
	rs := r.ring.Load()
	for osi, bs := range rs.shards {
		for _, h := range bs {
			if h.backend.Name() == target.Name() {
				return nil, fmt.Errorf("cluster: target %s already serves shard %d", target.Name(), osi)
			}
		}
	}
	var src *backendHealth
	for _, h := range rs.shards[si] {
		if h.serving() {
			src = h
			break
		}
	}
	if src == nil {
		return nil, fmt.Errorf("%w: shard %d has no serving backend to migrate from", ErrShardUnavailable, si)
	}
	m := &migration{id: r.migSeq.Add(1), shard: si, src: src, target: target, started: time.Now()}
	m.setPhase(MigPlanned)
	if !r.mig.CompareAndSwap(nil, m) {
		return nil, ErrMigrationActive
	}
	if r.cfg.Telemetry != nil {
		if ts, ok := target.(telemetrySink); ok {
			ts.setTelemetry(r.cfg.Telemetry)
		}
	}
	return m, nil
}

// runMigration drives a claimed migration through its phases. See the
// package comment at the top of this file for the protocol; every
// phase transition lands on the migration span as an event, so one
// trace reads as the full story of the move.
func (r *Router) runMigration(ctx context.Context, m *migration) MigrationStatus {
	cfg := r.cfg.Migrate
	ctx, sp := telemetry.StartSpan(ctx, "migration")
	sp.Annotate("shard", strconv.Itoa(m.shard))
	sp.Annotate("source", m.src.backend.Name())
	sp.Annotate("target", m.target.Name())
	var failErr error
	defer func() { sp.End(failErr) }()

	abort := func(stage string, err error) MigrationStatus {
		m.dual.Store(false)
		failErr = fmt.Errorf("%s: %w", stage, err)
		sp.Event("phase aborted: " + stage + ": " + err.Error())
		r.finishMigration(m, "aborted", failErr)
		return m.status()
	}

	// Seeding: (re)activate the target under the current ring, then
	// ship it a full snapshot. The source keeps serving throughout.
	m.setPhase(MigSeeding)
	sp.Event(fmt.Sprintf("phase seeding: snapshot %s → %s", m.src.backend.Name(), m.target.Name()))
	if rr, ok := m.target.(RingReceiver); ok {
		ictx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		err := rr.InstallRing(ictx, RingUpdate{Ring: r.Ring(), Serving: true})
		cancel()
		if err != nil {
			return abort("activate target", err)
		}
	}
	if err := r.migSnapshot(ctx, m); err != nil {
		return abort("seed snapshot", err)
	}

	// Catch-up: delta rounds until the target trails by at most
	// CatchupLag, still without touching the write path.
	m.setPhase(MigCatchup)
	sp.Event("phase catchup: delta rounds to lag ≤ " + strconv.Itoa(cfg.CatchupLag))
	if err := r.migCatchUp(ctx, m, uint64(cfg.CatchupLag)); err != nil {
		return abort("catchup", err)
	}

	// Barrier 1: block the shard's writes, drain to exact seq+checksum
	// parity, and open the dual-write window. The barrier is bounded
	// by CutoverTimeout so a stuck target cannot stall live writes.
	sp.Event("write barrier: drain to parity")
	r.wmu[m.shard].Lock()
	bctx, bcancel := context.WithTimeout(ctx, cfg.CutoverTimeout)
	err := r.migCatchUp(bctx, m, 0)
	bcancel()
	if err == nil {
		m.dual.Store(true)
		m.setPhase(MigDualWrite)
	}
	r.wmu[m.shard].Unlock()
	if err != nil {
		return abort("parity drain", err)
	}
	sp.Event("phase dual-write: window open at parity")

	// Dual-write window: live batches hit both source and target (see
	// Router.Apply). A failed target leg requests an abort, checked
	// here before the cutover commits anything.
	windowEnd := time.Now().Add(cfg.DualWriteWindow)
	for {
		if err := m.abortReason(); err != nil {
			return abort("dual-write", err)
		}
		if err := ctx.Err(); err != nil {
			return abort("dual-write", err)
		}
		rest := time.Until(windowEnd)
		if rest <= 0 {
			break
		}
		time.Sleep(min(rest, 10*time.Millisecond))
	}

	// Barrier 2: block writes again, re-verify parity (identical
	// batches advanced both sides in lockstep, so this is normally a
	// single stat round), and flip the ring to a new epoch with the
	// target as the shard's sole backend. Unblocked writes route to
	// the target from here on.
	m.setPhase(MigCutover)
	sp.Event("phase cutover: verify parity and flip ring")
	r.wmu[m.shard].Lock()
	if err = m.abortReason(); err == nil {
		bctx, bcancel = context.WithTimeout(ctx, cfg.CutoverTimeout)
		err = r.migCatchUp(bctx, m, 0)
		bcancel()
	}
	var epoch uint64
	if err == nil {
		epoch = r.flipRing(m)
	}
	m.dual.Store(false)
	r.wmu[m.shard].Unlock()
	if err != nil {
		return abort("cutover", err)
	}
	m.mu.Lock()
	m.epoch = epoch
	m.mu.Unlock()
	sp.Event(fmt.Sprintf("ring flipped: epoch %d, shard %d → %s", epoch, m.shard, m.target.Name()))

	// Distribute the new ring: the target serves under it, the old
	// shard backends are retired (Serving=false → they 409 stale
	// traffic), everyone else just learns the epoch. All best-effort:
	// the flip is already committed, and the 409 handshake self-heals
	// clients the push misses.
	r.distributeRing(ctx, m, sp)

	sp.Event("phase done: source retired")
	r.finishMigration(m, "ok", nil)
	return m.status()
}

// migStat fetches one backend's ShardStat under the probe timeout.
func (r *Router) migStat(ctx context.Context, b Backend) (ShardStat, error) {
	sctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	return b.Stat(sctx)
}

// migCatchUp ships deltas source → target until the target trails the
// source by at most allowedLag. allowedLag 0 demands exact parity —
// equal seq and equal checksum — which the caller must make reachable
// by freezing the source's writes (the write barrier). Snapshot
// transfer is the fallback when the delta is truncated or when equal
// seqs hide diverged contents.
func (r *Router) migCatchUp(ctx context.Context, m *migration, allowedLag uint64) error {
	for round := 0; round < maxResyncRounds; round++ {
		if err := m.abortReason(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		srcStat, err := r.migStat(ctx, m.src.backend)
		if err != nil {
			return fmt.Errorf("source stat: %w", err)
		}
		tgtStat, err := r.migStat(ctx, m.target)
		if err != nil {
			return fmt.Errorf("target stat: %w", err)
		}
		var lag uint64
		if srcStat.Seq > tgtStat.Seq {
			lag = srcStat.Seq - tgtStat.Seq
		}
		m.lag.Store(lag)
		m.mu.Lock()
		m.lastTgt, m.haveTgt = tgtStat, true
		m.mu.Unlock()
		if tgtStat.Seq == srcStat.Seq && tgtStat.Checksum == srcStat.Checksum {
			return nil
		}
		if allowedLag > 0 && lag > 0 && lag <= allowedLag {
			return nil
		}
		// A target at or past the source's seq with different contents
		// holds state a delta cannot reconcile — only adopting the
		// source's exact document set can.
		if tgtStat.Seq >= srcStat.Seq {
			if err := r.migSnapshot(ctx, m); err != nil {
				return err
			}
			continue
		}
		ms, err := r.fetchDelta(ctx, m.src, tgtStat.Seq)
		if errors.Is(err, errDeltaUnavailable) {
			if err := r.migSnapshot(ctx, m); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		for start := 0; start < len(ms); start += r.cfg.ResyncBatch {
			end := min(start+r.cfg.ResyncBatch, len(ms))
			actx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
			err = m.target.ApplyResync(actx, ms[start:end])
			cancel()
			if err != nil {
				return fmt.Errorf("apply delta: %w", err)
			}
			m.shipped.Add(uint64(end - start))
		}
	}
	return fmt.Errorf("no parity after %d rounds (source still advancing?)", maxResyncRounds)
}

// migSnapshot ships a full snapshot source → target.
func (r *Router) migSnapshot(ctx context.Context, m *migration) error {
	fctx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
	seq, docs, err := m.src.backend.SnapshotDocs(fctx)
	cancel()
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, resyncShipTimeout)
	err = m.target.ApplySnapshot(actx, seq, docs)
	cancel()
	if err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	return nil
}

// flipRing installs the post-migration ring: a new epoch with the
// target as the moved shard's sole backend and every other shard
// untouched. Called with the shard's write barrier held, so no write
// is in flight across the flip.
func (r *Router) flipRing(m *migration) uint64 {
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	old := r.ring.Load()
	shards := make([][]*backendHealth, len(old.shards))
	copy(shards, old.shards)
	th := &backendHealth{backend: m.target}
	if r.cfg.Resilience.BreakerThreshold > 0 {
		th.br = newBreaker(r.cfg.Resilience)
	}
	m.mu.Lock()
	if m.haveTgt {
		th.stat, th.statValid = m.lastTgt, true
	}
	m.prev = old.shards[m.shard]
	m.mu.Unlock()
	shards[m.shard] = []*backendHealth{th}
	ns := &ringState{epoch: old.epoch + 1, shards: shards}
	r.ring.Store(ns)
	return ns.epoch
}

// distributeRing pushes the post-cutover ring to the nodes: the
// retired shard backends get Serving=false, everyone else (target
// included) Serving=true. Push failures are logged and annotated but
// never fail the migration — the flip is committed, and nodes the
// push misses are healed by the stale-epoch 409 handshake.
func (r *Router) distributeRing(ctx context.Context, m *migration, sp *telemetry.Span) {
	rg := r.Ring()
	push := func(b Backend, serving bool) error {
		rr, ok := b.(RingReceiver)
		if !ok {
			return nil
		}
		ictx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
		return rr.InstallRing(ictx, RingUpdate{Ring: rg, Serving: serving})
	}
	// Retire the moved shard's old backends first: until they hold the
	// new ring, a stale client writing through them would still land on
	// a store nobody reads anymore.
	m.mu.Lock()
	prev := m.prev
	m.mu.Unlock()
	retired := true
	for _, h := range prev {
		if err := push(h.backend, false); err != nil {
			retired = false
			log.Printf("cluster: migration %d: retire %s: %v", m.id, h.backend.Name(), err)
			sp.Event("retire push failed: " + h.backend.Name() + ": " + err.Error())
		}
	}
	m.mu.Lock()
	m.retired = retired
	m.mu.Unlock()
	for _, bs := range r.ring.Load().shards {
		for _, h := range bs {
			if err := push(h.backend, true); err != nil {
				log.Printf("cluster: migration %d: push ring to %s: %v", m.id, h.backend.Name(), err)
				sp.Event("ring push failed: " + h.backend.Name() + ": " + err.Error())
			}
		}
	}
}

// finishMigration records the terminal state, releases the migration
// slot, and appends to the bounded history.
func (r *Router) finishMigration(m *migration, outcome string, err error) {
	m.dual.Store(false)
	m.mu.Lock()
	m.finished = time.Now()
	m.outcome = outcome
	if err != nil {
		m.errMsg = err.Error()
	}
	m.mu.Unlock()
	if outcome == "ok" {
		m.setPhase(MigDone)
		r.migOK.Add(1)
	} else {
		m.setPhase(MigAborted)
		r.migAborted.Add(1)
	}
	r.migMu.Lock()
	r.migHistory = append(r.migHistory, m.status())
	if len(r.migHistory) > migHistoryMax {
		r.migHistory = r.migHistory[len(r.migHistory)-migHistoryMax:]
	}
	r.migMu.Unlock()
	r.mig.Store(nil)
}

// ShardLoad is one shard's load observation in a RebalancePlan.
type ShardLoad struct {
	Shard int `json:"shard"`
	// Docs is the live document count (last observed when the shard is
	// unreachable).
	Docs int `json:"docs"`
	// Reads and Writes count the shard's routed operations since the
	// router started — the QPS numerator a dry-run planner weighs.
	Reads    uint64   `json:"reads"`
	Writes   uint64   `json:"writes"`
	Backends []string `json:"backends"`
}

// RebalancePlan is the dry-run planner's output: per-shard load plus
// the move it would make. It never mutates anything.
type RebalancePlan struct {
	Epoch  uint64      `json:"epoch"`
	Shards []ShardLoad `json:"shards"`
	// ProposedShard is the shard the planner would move: the one with
	// the most documents, ties broken by read count.
	ProposedShard int    `json:"proposed_shard"`
	Reason        string `json:"reason"`
}

// Plan reads per-shard document counts and routed-operation counters
// and proposes which shard a rebalance should move.
func (r *Router) Plan(ctx context.Context) RebalancePlan {
	rs := r.ring.Load()
	lens := r.Lens(ctx)
	plan := RebalancePlan{Epoch: rs.epoch}
	best := 0
	for si, bs := range rs.shards {
		names := make([]string, len(bs))
		for i, h := range bs {
			names[i] = h.backend.Name()
		}
		sl := ShardLoad{
			Shard:    si,
			Docs:     lens[si],
			Reads:    r.shardReads[si].Load(),
			Writes:   r.shardWrites[si].Load(),
			Backends: names,
		}
		plan.Shards = append(plan.Shards, sl)
		b := plan.Shards[best]
		if sl.Docs > b.Docs || (sl.Docs == b.Docs && sl.Reads > b.Reads) {
			best = si
		}
	}
	plan.ProposedShard = best
	b := plan.Shards[best]
	plan.Reason = fmt.Sprintf("shard %d carries the most load: %d docs, %d reads, %d writes observed", best, b.Docs, b.Reads, b.Writes)
	return plan
}

// applyDual mirrors an acknowledged write batch to an active
// migration's target. Called by Apply under the shard's write-barrier
// read lock, after the source set persisted the batch. A target
// failure does not fail the write — the source has it — but it does
// abort the migration: continuing would cut over to a backend missing
// an acknowledged write.
func (r *Router) applyDual(ctx context.Context, si int, ms []vecdb.Mutation) {
	m := r.mig.Load()
	if m == nil || m.shard != si || !m.dual.Load() {
		return
	}
	err := m.target.Apply(ctx, ms)
	switch {
	case err == nil:
		m.dualWrites.Add(1)
	case errors.Is(err, vecdb.ErrNotFound):
		// An authoritative miss (deleting an ID the target also lacks)
		// is agreement, not divergence.
		m.dualWrites.Add(1)
	default:
		m.requestAbort(fmt.Errorf("dual-write to %s: %w", m.target.Name(), err))
	}
}
