package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// headerCapture records the hop headers of every /shard/search request
// a node receives, and stalls the wrapped handler when slow is set —
// the "occasionally slow replica" a hedge races against. The stall
// honors the request context, so a cancelled loser returns promptly.
type headerCapture struct {
	inner http.Handler
	slow  time.Duration

	mu       sync.Mutex
	searches []http.Header
}

func (h *headerCapture) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/shard/search" {
		h.mu.Lock()
		h.searches = append(h.searches, r.Header.Clone())
		h.mu.Unlock()
		if h.slow > 0 {
			t := time.NewTimer(h.slow)
			defer t.Stop()
			select {
			case <-r.Context().Done():
				return // client gave up; the 200 never happens
			case <-t.C:
			}
		}
	}
	h.inner.ServeHTTP(w, r)
}

func (h *headerCapture) searchHeaders() []http.Header {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]http.Header, len(h.searches))
	copy(out, h.searches)
	return out
}

// TestHedgedReadPropagation is the end-to-end tail-latency story over
// real HTTP: a slow primary, a hedge fired after HedgeAfter, the
// replica winning the race, and the loser cancelled without a health
// penalty. Along the way it pins the cross-process plumbing — the
// router's deadline and traceparent hop headers must reach BOTH
// attempts, both attempts must appear as spans of one trace, and the
// per-backend outcome counters must record exactly one winner and one
// cancellation.
func TestHedgedReadPropagation(t *testing.T) {
	const dim = 32
	primaryDB, replicaDB := newLocalDB(t, dim), newLocalDB(t, dim)

	primary := &headerCapture{inner: NewNodeHandler(primaryDB, nil), slow: 300 * time.Millisecond}
	replica := &headerCapture{inner: NewNodeHandler(replicaDB, nil)}
	tsPrimary := httptest.NewServer(primary)
	defer tsPrimary.Close()
	tsReplica := httptest.NewServer(replica)
	defer tsReplica.Close()

	reg := telemetry.NewRegistry()
	pb, err := NewHTTPBackend(tsPrimary.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewHTTPBackend(tsReplica.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter([]ShardBackends{{Primary: pb, Replicas: []Backend{rb}}}, HealthConfig{
		Interval:      time.Hour,
		FailThreshold: 100,
		Telemetry:     reg,
		Resilience:    ResilienceConfig{HedgeAfter: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus[:3])

	// One traced, deadlined read. The primary stalls well past
	// HedgeAfter, so the replica must win.
	tracer := telemetry.NewTracer(telemetry.TracerConfig{})
	ctx, root := tracer.StartTrace(context.Background(), "/search", "")
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()

	vec, _ := vecdb.NewHashedEmbedder(dim)
	v, err := vec.Embed("how many shopkeepers are required")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	hits, err := r.SearchVector(ctx, v, 2, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits from the hedged read")
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged read took %v — it waited out the slow primary", elapsed)
	}

	st := r.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want 1 and 1", st.Hedges, st.HedgeWins)
	}

	// Exactly one winner on the wire; the loser resolves to a single
	// "canceled" outcome (it finishes asynchronously, so poll).
	okCount := reg.Counter("backend_requests_total",
		"Shard RPCs by backend, op and outcome.",
		telemetry.L("backend", tsReplica.URL), telemetry.L("op", "search"),
		telemetry.L("outcome", "ok"))
	canceledCount := reg.Counter("backend_requests_total",
		"Shard RPCs by backend, op and outcome.",
		telemetry.L("backend", tsPrimary.URL), telemetry.L("op", "search"),
		telemetry.L("outcome", "canceled"))
	deadline := time.Now().Add(2 * time.Second)
	for canceledCount.Value() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := okCount.Value(); got != 1 {
		t.Errorf("replica ok outcomes = %d, want exactly 1 winner", got)
	}
	if got := canceledCount.Value(); got != 1 {
		t.Errorf("primary canceled outcomes = %d, want exactly 1 cancelled loser", got)
	}
	errCount := reg.Counter("backend_requests_total",
		"Shard RPCs by backend, op and outcome.",
		telemetry.L("backend", tsPrimary.URL), telemetry.L("op", "search"),
		telemetry.L("outcome", "error"))
	if got := errCount.Value(); got != 0 {
		t.Errorf("cancelled loser charged as an error %d times", got)
	}

	// The loser's cancellation must not feed the health state machine.
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.State != "healthy" || b.ConsecutiveFailures != 0 {
				t.Errorf("backend %s penalized by a decided hedge race: %+v", b.Name, b)
			}
		}
	}

	// Both attempts saw the deadline and trace hop headers.
	for name, hc := range map[string]*headerCapture{"primary": primary, "replica": replica} {
		hdrs := hc.searchHeaders()
		if len(hdrs) != 1 {
			t.Fatalf("%s served %d searches, want 1", name, len(hdrs))
		}
		if hdrs[0].Get(telemetry.DeadlineHeader) == "" {
			t.Errorf("%s search missing %s", name, telemetry.DeadlineHeader)
		}
		tp := hdrs[0].Get(telemetry.TraceParentHeader)
		tid, _, ok := telemetry.ParseTraceparent(tp)
		if !ok {
			t.Errorf("%s search carried unparseable traceparent %q", name, tp)
		} else if tid != telemetry.TraceIDFrom(ctx) {
			t.Errorf("%s search traced as %s, want %s", name, tid, telemetry.TraceIDFrom(ctx))
		}
	}

	// Both attempts are children of one captured trace: two shard_read
	// spans (one marked hedge=true) and two rpc.search spans under the
	// shard_fanout.
	root.End(nil)
	tracer.Finish(telemetry.TraceFrom(ctx), 200, true, false)
	kept := tracer.Traces(1, "")
	if len(kept) != 1 {
		t.Fatalf("captured %d traces, want 1", len(kept))
	}
	var fanoutID string
	var shardReads, rpcSearches, hedgeMarked int
	for _, sp := range kept[0].Spans {
		if sp.Name == "shard_fanout" {
			fanoutID = sp.SpanID
		}
	}
	if fanoutID == "" {
		t.Fatal("no shard_fanout span captured")
	}
	for _, sp := range kept[0].Spans {
		switch sp.Name {
		case "shard_read":
			shardReads++
			if sp.ParentID != fanoutID {
				t.Errorf("shard_read span not parented under shard_fanout: %+v", sp)
			}
			for _, a := range sp.Attrs {
				if a.Name == "hedge" && a.Value == "true" {
					hedgeMarked++
				}
			}
		case "rpc.search":
			rpcSearches++
		}
	}
	if shardReads != 2 {
		t.Errorf("captured %d shard_read spans, want 2 (primary + hedge)", shardReads)
	}
	if hedgeMarked != 1 {
		t.Errorf("%d shard_read spans marked hedge=true, want 1", hedgeMarked)
	}
	if rpcSearches != 2 {
		t.Errorf("captured %d rpc.search spans, want 2", rpcSearches)
	}
	hedgeEvent := false
	for _, ev := range kept[0].Spans[1].Events {
		if ev.Msg == "hedge launched: "+tsReplica.URL {
			hedgeEvent = true
		}
	}
	if !hedgeEvent {
		t.Error("fanout span missing the 'hedge launched' event")
	}
}
