package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/vecdb"
)

// Shard protocol (compact JSON over HTTP), served by NewNodeHandler
// and spoken by HTTPBackend:
//
//	POST /shard/search     {"vec":[...], "k":3,
//	                        "collection":"t","filter":{...}}
//	                                                   → {"hits":[{"id","score","collection","text","meta"}]}
//	POST /shard/apply      {"mutations":[...]}         → {"applied": n}
//	GET  /shard/documents/{id}                         → {"id","text","meta"} | 404
//	GET  /shard/stat                                   → {"len","next_id","seq","checksum"}
//	GET  /shard/mutations?since=S&max=N                → {"mutations":[{"seq",...}]} | 410
//	POST /shard/resync     {"mutations":[{"seq",...}]} → {"applied": n, "seq": s}
//	GET  /shard/snapshot                               → {"seq": s, "docs":[{"id","text","meta"}]}
//	POST /shard/snapshot   {"seq": s, "docs":[...]}    → {"docs": n, "seq": s}
//	GET  /shard/epoch                                  → {"epoch","serving","ring"}
//	POST /shard/epoch      {"epoch","shards","serving"}→ {"epoch","serving"} | 409
//	GET  /healthz                                      → 200 {"status":"ok"}        (liveness)
//	GET  /readyz                                       → 200 | 503                  (recovery complete)
//
// Mutations use {"op":"add"|"delete","id":n,"collection":"...",
// "text":"...","meta":{...}} — collection omitted means the default
// collection, so pre-collection peers interoperate unchanged;
// the resync endpoints carry the same shape plus the per-shard "seq"
// each mutation was applied at. Scores and vectors travel as JSON
// float64s, which round-trip exactly, so a remote shard returns
// bit-identical hits to a local one. Deletes of absent IDs are 404;
// malformed requests are 400; a delta request past the journal's
// retention is 410 Gone (mapped back to vecdb.ErrSeqTruncated by
// HTTPBackend), telling the resync manager to fall back to snapshot
// transfer.
//
// /shard/epoch is the ring-epoch control plane (see epoch.go): the
// migration orchestrator installs the versioned shard assignment on
// its nodes, monotonic by epoch. A node handed Serving=false has been
// retired from the ring: it answers every data request with 409
// Conflict plus its current ring, and a serving node likewise 409s a
// request whose X-Ring-Epoch header is older than the ring it holds —
// the typed self-heal signal HTTPBackend maps to StaleEpochError.
// Nodes never handed a ring accept everything (no epoch machinery in
// a single-epoch deployment).

// NodeStore is what a shard node must expose to serve the protocol.
// Both *vecdb.DB (one bare shard) and serve.ShardedDB (the durable
// WAL+checkpoint store cmd/shardnode runs) satisfy it. The resync
// methods mirror Backend's: MutationsSince serves the journaled delta
// (vecdb.ErrSeqTruncated when the journal cannot), ApplyResync and
// ApplySnapshot are the idempotent catch-up writes, SnapshotDocs is
// the full-transfer read.
type NodeStore interface {
	SearchVector(vec []float32, k int) ([]vecdb.Hit, error)
	SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error)
	ApplyAll(ms []vecdb.Mutation) error
	Get(id int64) (vecdb.Document, error)
	Len() int
	NextID() int64
	Seq() uint64
	Checksum() uint64
	CollectionCounts() map[string]int
	MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error)
	ApplyResync(ms []vecdb.SeqMutation) error
	SnapshotDocs() (uint64, []vecdb.Document, error)
	ApplySnapshot(seq uint64, docs []vecdb.Document) error
}

var _ NodeStore = (*vecdb.DB)(nil)

// hitJSON is the wire form of a vecdb.Hit.
type hitJSON struct {
	ID         int64             `json:"id"`
	Score      float64           `json:"score"`
	Collection string            `json:"collection,omitempty"`
	Text       string            `json:"text"`
	Meta       map[string]string `json:"meta,omitempty"`
}

// mutationJSON is the wire form of a vecdb.Mutation.
type mutationJSON struct {
	Op         string            `json:"op"`
	ID         int64             `json:"id"`
	Collection string            `json:"collection,omitempty"`
	Text       string            `json:"text,omitempty"`
	Meta       map[string]string `json:"meta,omitempty"`
}

// seqMutationJSON is the wire form of a vecdb.SeqMutation (the resync
// delta unit).
type seqMutationJSON struct {
	Seq uint64 `json:"seq"`
	mutationJSON
}

// docJSON is the wire form of a stored document in snapshot
// transfers.
type docJSON struct {
	ID         int64             `json:"id"`
	Collection string            `json:"collection,omitempty"`
	Text       string            `json:"text"`
	Meta       map[string]string `json:"meta,omitempty"`
}

func toMutationJSON(m vecdb.Mutation) (mutationJSON, error) {
	switch m.Op {
	case vecdb.OpAdd:
		return mutationJSON{Op: "add", ID: m.ID, Collection: m.Collection, Text: m.Text, Meta: m.Meta}, nil
	case vecdb.OpDelete:
		return mutationJSON{Op: "delete", ID: m.ID, Collection: m.Collection}, nil
	}
	return mutationJSON{}, fmt.Errorf("cluster: unknown mutation op %d", m.Op)
}

func fromMutationJSON(m mutationJSON) (vecdb.Mutation, error) {
	switch m.Op {
	case "add":
		return vecdb.Mutation{Op: vecdb.OpAdd, ID: m.ID, Collection: m.Collection, Text: m.Text, Meta: m.Meta}, nil
	case "delete":
		return vecdb.Mutation{Op: vecdb.OpDelete, ID: m.ID, Collection: m.Collection}, nil
	}
	return vecdb.Mutation{}, fmt.Errorf("cluster: unknown mutation op %q", m.Op)
}

// NewNodeHandler serves the shard protocol over store. ready gates
// /readyz (and the data endpoints): a node that is still replaying its
// WAL answers probes with 503 so the router keeps routing around it
// until recovery completes. A nil ready means always ready.
func NewNodeHandler(store NodeStore, ready func() bool) *NodeHandler {
	if ready == nil {
		ready = func() bool { return true }
	}
	n := &NodeHandler{store: store, ready: ready, mux: http.NewServeMux()}
	n.mux.HandleFunc("/healthz", n.handleHealthz)
	n.mux.HandleFunc("/readyz", n.handleReadyz)
	n.mux.HandleFunc("/shard/search", n.handleSearch)
	n.mux.HandleFunc("/shard/apply", n.handleApply)
	n.mux.HandleFunc("/shard/documents/", n.handleDocument)
	n.mux.HandleFunc("/shard/stat", n.handleStat)
	n.mux.HandleFunc("/shard/mutations", n.handleMutations)
	n.mux.HandleFunc("/shard/resync", n.handleResync)
	n.mux.HandleFunc("/shard/snapshot", n.handleSnapshot)
	n.mux.HandleFunc("/shard/epoch", n.handleEpoch)
	return n
}

// NodeHandler serves the shard protocol for one node (see the package
// comment above for the wire format). It holds the last ring update
// the node was handed, which is what lets a retired node bounce stale
// traffic toward the new assignment.
type NodeHandler struct {
	store NodeStore
	ready func() bool
	mux   *http.ServeMux
	ring  atomic.Pointer[RingUpdate]
}

func (n *NodeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// Ring reports the last installed ring update, ok=false when the node
// was never handed one.
func (n *NodeHandler) Ring() (RingUpdate, bool) {
	if up := n.ring.Load(); up != nil {
		return *up, true
	}
	return RingUpdate{}, false
}

func nodeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("cluster: encode response: %v", err)
	}
}

func nodeError(w http.ResponseWriter, status int, err error) {
	nodeJSON(w, status, map[string]string{"error": err.Error()})
}

func (n *NodeHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "ready": n.ready()})
}

func (n *NodeHandler) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !n.ready() {
		nodeError(w, http.StatusServiceUnavailable, errors.New("recovering"))
		return
	}
	nodeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// gate rejects data-path requests until recovery completes, so a
// router that races the probe interval still cannot read a
// half-replayed shard. It then applies the ring-epoch gate: a node
// retired from the ring, or a request provably routed by an older
// ring than the node holds, is answered 409 with the current ring so
// the sender re-routes (the stale-epoch handshake). A node never
// handed a ring skips the epoch checks entirely.
func (n *NodeHandler) gate(w http.ResponseWriter, r *http.Request) bool {
	if !n.ready() {
		nodeError(w, http.StatusServiceUnavailable, errors.New("recovering"))
		return false
	}
	hdr := r.Header.Get(RingEpochHeader)
	var reqEpoch uint64
	if hdr != "" {
		e, err := ParseEpochHeader(hdr)
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return false
		}
		reqEpoch = e
	}
	cur := n.ring.Load()
	if cur == nil {
		return true
	}
	if !cur.Serving || (hdr != "" && reqEpoch < cur.Epoch) {
		nodeJSON(w, http.StatusConflict, map[string]interface{}{
			"error": "stale ring epoch",
			"epoch": cur.Epoch,
			"ring":  cur.Ring,
		})
		return false
	}
	return true
}

// handleEpoch is the ring-epoch control plane: GET reports the held
// ring, POST installs a new one. Installs are monotonic — an older
// epoch than the held one is refused with 409 plus the held ring —
// and an equal epoch is accepted so the orchestrator can toggle
// Serving (re-activating a retired node as a migration target)
// without minting an epoch. Deliberately not behind gate: a node can
// learn the ring while still replaying its WAL, and a retired node
// must accept the ring that re-activates it.
func (n *NodeHandler) handleEpoch(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		cur := n.ring.Load()
		if cur == nil {
			nodeJSON(w, http.StatusOK, map[string]interface{}{"epoch": 0, "serving": true})
			return
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"epoch": cur.Epoch, "serving": cur.Serving, "ring": cur.Ring})
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRingPayloadSize+1))
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		if len(body) > maxRingPayloadSize {
			nodeError(w, http.StatusBadRequest, fmt.Errorf("ring payload exceeds %d bytes", maxRingPayloadSize))
			return
		}
		var up RingUpdate
		if err := json.Unmarshal(body, &up); err != nil {
			nodeError(w, http.StatusBadRequest, fmt.Errorf("parse ring update: %w", err))
			return
		}
		if err := up.Ring.Validate(); err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		for {
			cur := n.ring.Load()
			if cur != nil && up.Epoch < cur.Epoch {
				nodeJSON(w, http.StatusConflict, map[string]interface{}{
					"error": "stale ring epoch",
					"epoch": cur.Epoch,
					"ring":  cur.Ring,
				})
				return
			}
			if n.ring.CompareAndSwap(cur, &up) {
				break
			}
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"epoch": up.Epoch, "serving": up.Serving})
	default:
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET or POST required"))
	}
}

func (n *NodeHandler) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	var req struct {
		Vec        []float32         `json:"vec"`
		K          int               `json:"k"`
		Collection string            `json:"collection,omitempty"`
		Filter     map[string]string `json:"filter,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Vec) == 0 || req.K <= 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty vector or non-positive k"))
		return
	}
	f := vecdb.Filter{Collection: req.Collection, Meta: req.Filter}
	var hits []vecdb.Hit
	var err error
	if f.IsZero() {
		hits, err = n.store.SearchVector(req.Vec, req.K)
	} else {
		hits, err = n.store.SearchVectorFiltered(req.Vec, req.K, f)
	}
	if err != nil {
		nodeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{ID: h.ID, Score: h.Score, Collection: h.Collection, Text: h.Text, Meta: h.Meta})
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"hits": out})
}

func (n *NodeHandler) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	var req struct {
		Mutations []mutationJSON `json:"mutations"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Mutations) == 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty mutation batch"))
		return
	}
	ms := make([]vecdb.Mutation, len(req.Mutations))
	for i, mj := range req.Mutations {
		m, err := fromMutationJSON(mj)
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		ms[i] = m
	}
	if err := n.store.ApplyAll(ms); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		nodeError(w, status, err)
		return
	}
	nodeJSON(w, http.StatusOK, map[string]int{"applied": len(ms)})
}

func (n *NodeHandler) handleDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/shard/documents/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		nodeError(w, http.StatusBadRequest, fmt.Errorf("bad document id %q", idStr))
		return
	}
	doc, err := n.store.Get(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		nodeError(w, status, err)
		return
	}
	nodeJSON(w, http.StatusOK, docJSON{ID: doc.ID, Collection: doc.Collection, Text: doc.Text, Meta: doc.Meta})
}

func (n *NodeHandler) handleStat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	nodeJSON(w, http.StatusOK, ShardStat{
		Len:         n.store.Len(),
		NextID:      n.store.NextID(),
		Seq:         n.store.Seq(),
		Checksum:    n.store.Checksum(),
		Collections: n.store.CollectionCounts(),
	})
}

// handleMutations serves the journaled delta past ?since= (capped at
// ?max= records). A journal that no longer retains the range answers
// 410 Gone — the snapshot-fallback signal.
func (n *NodeHandler) handleMutations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	q := r.URL.Query()
	since, err := strconv.ParseUint(q.Get("since"), 10, 64)
	if err != nil {
		nodeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", q.Get("since")))
		return
	}
	max := 0
	if s := q.Get("max"); s != "" {
		if max, err = strconv.Atoi(s); err != nil || max < 0 {
			nodeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", s))
			return
		}
	}
	ms, err := n.store.MutationsSince(since, max)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrSeqTruncated) {
			status = http.StatusGone
		}
		nodeError(w, status, err)
		return
	}
	out := make([]seqMutationJSON, 0, len(ms))
	for _, m := range ms {
		mj, err := toMutationJSON(m.Mutation)
		if err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, seqMutationJSON{Seq: m.Seq, mutationJSON: mj})
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"mutations": out, "seq": n.store.Seq()})
}

// handleResync applies a shipped delta under its explicit sequence
// numbers.
func (n *NodeHandler) handleResync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w, r) {
		return
	}
	var req struct {
		Mutations []seqMutationJSON `json:"mutations"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Mutations) == 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty resync batch"))
		return
	}
	ms := make([]vecdb.SeqMutation, len(req.Mutations))
	for i, mj := range req.Mutations {
		m, err := fromMutationJSON(mj.mutationJSON)
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		ms[i] = vecdb.SeqMutation{Seq: mj.Seq, Mutation: m}
	}
	if err := n.store.ApplyResync(ms); err != nil {
		nodeError(w, http.StatusInternalServerError, err)
		return
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"applied": len(ms), "seq": n.store.Seq()})
}

// handleSnapshot serves the full document set on GET and replaces the
// node's contents with an uploaded one on POST.
func (n *NodeHandler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !n.gate(w, r) {
		return
	}
	switch r.Method {
	case http.MethodGet:
		seq, docs, err := n.store.SnapshotDocs()
		if err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]docJSON, 0, len(docs))
		for _, d := range docs {
			out = append(out, docJSON{ID: d.ID, Collection: d.Collection, Text: d.Text, Meta: d.Meta})
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"seq": seq, "docs": out})
	case http.MethodPost:
		var req struct {
			Seq  uint64    `json:"seq"`
			Docs []docJSON `json:"docs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		docs := make([]vecdb.Document, len(req.Docs))
		for i, d := range req.Docs {
			docs[i] = vecdb.Document{ID: d.ID, Collection: d.Collection, Text: d.Text, Meta: d.Meta}
		}
		if err := n.store.ApplySnapshot(req.Seq, docs); err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"docs": len(docs), "seq": n.store.Seq()})
	default:
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET or POST required"))
	}
}
