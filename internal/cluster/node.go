package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/vecdb"
)

// Shard protocol (compact JSON over HTTP), served by NewNodeHandler
// and spoken by HTTPBackend:
//
//	POST /shard/search     {"vec":[...], "k":3}        → {"hits":[{"id","score","text","meta"}]}
//	POST /shard/apply      {"mutations":[...]}         → {"applied": n}
//	GET  /shard/documents/{id}                         → {"id","text","meta"} | 404
//	GET  /shard/stat                                   → {"len","next_id","seq","checksum"}
//	GET  /shard/mutations?since=S&max=N                → {"mutations":[{"seq",...}]} | 410
//	POST /shard/resync     {"mutations":[{"seq",...}]} → {"applied": n, "seq": s}
//	GET  /shard/snapshot                               → {"seq": s, "docs":[{"id","text","meta"}]}
//	POST /shard/snapshot   {"seq": s, "docs":[...]}    → {"docs": n, "seq": s}
//	GET  /healthz                                      → 200 {"status":"ok"}        (liveness)
//	GET  /readyz                                       → 200 | 503                  (recovery complete)
//
// Mutations use {"op":"add"|"delete","id":n,"text":"...","meta":{...}};
// the resync endpoints carry the same shape plus the per-shard "seq"
// each mutation was applied at. Scores and vectors travel as JSON
// float64s, which round-trip exactly, so a remote shard returns
// bit-identical hits to a local one. Deletes of absent IDs are 404;
// malformed requests are 400; a delta request past the journal's
// retention is 410 Gone (mapped back to vecdb.ErrSeqTruncated by
// HTTPBackend), telling the resync manager to fall back to snapshot
// transfer.

// NodeStore is what a shard node must expose to serve the protocol.
// Both *vecdb.DB (one bare shard) and serve.ShardedDB (the durable
// WAL+checkpoint store cmd/shardnode runs) satisfy it. The resync
// methods mirror Backend's: MutationsSince serves the journaled delta
// (vecdb.ErrSeqTruncated when the journal cannot), ApplyResync and
// ApplySnapshot are the idempotent catch-up writes, SnapshotDocs is
// the full-transfer read.
type NodeStore interface {
	SearchVector(vec []float32, k int) ([]vecdb.Hit, error)
	ApplyAll(ms []vecdb.Mutation) error
	Get(id int64) (vecdb.Document, error)
	Len() int
	NextID() int64
	Seq() uint64
	Checksum() uint64
	MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error)
	ApplyResync(ms []vecdb.SeqMutation) error
	SnapshotDocs() (uint64, []vecdb.Document, error)
	ApplySnapshot(seq uint64, docs []vecdb.Document) error
}

var _ NodeStore = (*vecdb.DB)(nil)

// hitJSON is the wire form of a vecdb.Hit.
type hitJSON struct {
	ID    int64             `json:"id"`
	Score float64           `json:"score"`
	Text  string            `json:"text"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// mutationJSON is the wire form of a vecdb.Mutation.
type mutationJSON struct {
	Op   string            `json:"op"`
	ID   int64             `json:"id"`
	Text string            `json:"text,omitempty"`
	Meta map[string]string `json:"meta,omitempty"`
}

// seqMutationJSON is the wire form of a vecdb.SeqMutation (the resync
// delta unit).
type seqMutationJSON struct {
	Seq uint64 `json:"seq"`
	mutationJSON
}

// docJSON is the wire form of a stored document in snapshot
// transfers.
type docJSON struct {
	ID   int64             `json:"id"`
	Text string            `json:"text"`
	Meta map[string]string `json:"meta,omitempty"`
}

func toMutationJSON(m vecdb.Mutation) (mutationJSON, error) {
	switch m.Op {
	case vecdb.OpAdd:
		return mutationJSON{Op: "add", ID: m.ID, Text: m.Text, Meta: m.Meta}, nil
	case vecdb.OpDelete:
		return mutationJSON{Op: "delete", ID: m.ID}, nil
	}
	return mutationJSON{}, fmt.Errorf("cluster: unknown mutation op %d", m.Op)
}

func fromMutationJSON(m mutationJSON) (vecdb.Mutation, error) {
	switch m.Op {
	case "add":
		return vecdb.Mutation{Op: vecdb.OpAdd, ID: m.ID, Text: m.Text, Meta: m.Meta}, nil
	case "delete":
		return vecdb.Mutation{Op: vecdb.OpDelete, ID: m.ID}, nil
	}
	return vecdb.Mutation{}, fmt.Errorf("cluster: unknown mutation op %q", m.Op)
}

// NewNodeHandler serves the shard protocol over store. ready gates
// /readyz (and the data endpoints): a node that is still replaying its
// WAL answers probes with 503 so the router keeps routing around it
// until recovery completes. A nil ready means always ready.
func NewNodeHandler(store NodeStore, ready func() bool) http.Handler {
	if ready == nil {
		ready = func() bool { return true }
	}
	n := &nodeHandler{store: store, ready: ready}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", n.handleHealthz)
	mux.HandleFunc("/readyz", n.handleReadyz)
	mux.HandleFunc("/shard/search", n.handleSearch)
	mux.HandleFunc("/shard/apply", n.handleApply)
	mux.HandleFunc("/shard/documents/", n.handleDocument)
	mux.HandleFunc("/shard/stat", n.handleStat)
	mux.HandleFunc("/shard/mutations", n.handleMutations)
	mux.HandleFunc("/shard/resync", n.handleResync)
	mux.HandleFunc("/shard/snapshot", n.handleSnapshot)
	return mux
}

type nodeHandler struct {
	store NodeStore
	ready func() bool
}

func nodeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("cluster: encode response: %v", err)
	}
}

func nodeError(w http.ResponseWriter, status int, err error) {
	nodeJSON(w, status, map[string]string{"error": err.Error()})
}

func (n *nodeHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "ready": n.ready()})
}

func (n *nodeHandler) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !n.ready() {
		nodeError(w, http.StatusServiceUnavailable, errors.New("recovering"))
		return
	}
	nodeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// gate rejects data-path requests until recovery completes, so a
// router that races the probe interval still cannot read a
// half-replayed shard.
func (n *nodeHandler) gate(w http.ResponseWriter) bool {
	if !n.ready() {
		nodeError(w, http.StatusServiceUnavailable, errors.New("recovering"))
		return false
	}
	return true
}

func (n *nodeHandler) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w) {
		return
	}
	var req struct {
		Vec []float32 `json:"vec"`
		K   int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Vec) == 0 || req.K <= 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty vector or non-positive k"))
		return
	}
	hits, err := n.store.SearchVector(req.Vec, req.K)
	if err != nil {
		nodeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{ID: h.ID, Score: h.Score, Text: h.Text, Meta: h.Meta})
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"hits": out})
}

func (n *nodeHandler) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w) {
		return
	}
	var req struct {
		Mutations []mutationJSON `json:"mutations"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Mutations) == 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty mutation batch"))
		return
	}
	ms := make([]vecdb.Mutation, len(req.Mutations))
	for i, mj := range req.Mutations {
		m, err := fromMutationJSON(mj)
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		ms[i] = m
	}
	if err := n.store.ApplyAll(ms); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		nodeError(w, status, err)
		return
	}
	nodeJSON(w, http.StatusOK, map[string]int{"applied": len(ms)})
}

func (n *nodeHandler) handleDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/shard/documents/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		nodeError(w, http.StatusBadRequest, fmt.Errorf("bad document id %q", idStr))
		return
	}
	doc, err := n.store.Get(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		nodeError(w, status, err)
		return
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"id": doc.ID, "text": doc.Text, "meta": doc.Meta})
}

func (n *nodeHandler) handleStat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w) {
		return
	}
	nodeJSON(w, http.StatusOK, ShardStat{
		Len:      n.store.Len(),
		NextID:   n.store.NextID(),
		Seq:      n.store.Seq(),
		Checksum: n.store.Checksum(),
	})
}

// handleMutations serves the journaled delta past ?since= (capped at
// ?max= records). A journal that no longer retains the range answers
// 410 Gone — the snapshot-fallback signal.
func (n *nodeHandler) handleMutations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if !n.gate(w) {
		return
	}
	q := r.URL.Query()
	since, err := strconv.ParseUint(q.Get("since"), 10, 64)
	if err != nil {
		nodeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", q.Get("since")))
		return
	}
	max := 0
	if s := q.Get("max"); s != "" {
		if max, err = strconv.Atoi(s); err != nil || max < 0 {
			nodeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", s))
			return
		}
	}
	ms, err := n.store.MutationsSince(since, max)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vecdb.ErrSeqTruncated) {
			status = http.StatusGone
		}
		nodeError(w, status, err)
		return
	}
	out := make([]seqMutationJSON, 0, len(ms))
	for _, m := range ms {
		mj, err := toMutationJSON(m.Mutation)
		if err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, seqMutationJSON{Seq: m.Seq, mutationJSON: mj})
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"mutations": out, "seq": n.store.Seq()})
}

// handleResync applies a shipped delta under its explicit sequence
// numbers.
func (n *nodeHandler) handleResync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if !n.gate(w) {
		return
	}
	var req struct {
		Mutations []seqMutationJSON `json:"mutations"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Mutations) == 0 {
		nodeError(w, http.StatusBadRequest, errors.New("empty resync batch"))
		return
	}
	ms := make([]vecdb.SeqMutation, len(req.Mutations))
	for i, mj := range req.Mutations {
		m, err := fromMutationJSON(mj.mutationJSON)
		if err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		ms[i] = vecdb.SeqMutation{Seq: mj.Seq, Mutation: m}
	}
	if err := n.store.ApplyResync(ms); err != nil {
		nodeError(w, http.StatusInternalServerError, err)
		return
	}
	nodeJSON(w, http.StatusOK, map[string]interface{}{"applied": len(ms), "seq": n.store.Seq()})
}

// handleSnapshot serves the full document set on GET and replaces the
// node's contents with an uploaded one on POST.
func (n *nodeHandler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !n.gate(w) {
		return
	}
	switch r.Method {
	case http.MethodGet:
		seq, docs, err := n.store.SnapshotDocs()
		if err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]docJSON, 0, len(docs))
		for _, d := range docs {
			out = append(out, docJSON{ID: d.ID, Text: d.Text, Meta: d.Meta})
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"seq": seq, "docs": out})
	case http.MethodPost:
		var req struct {
			Seq  uint64    `json:"seq"`
			Docs []docJSON `json:"docs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			nodeError(w, http.StatusBadRequest, err)
			return
		}
		docs := make([]vecdb.Document, len(req.Docs))
		for i, d := range req.Docs {
			docs[i] = vecdb.Document{ID: d.ID, Text: d.Text, Meta: d.Meta}
		}
		if err := n.store.ApplySnapshot(req.Seq, docs); err != nil {
			nodeError(w, http.StatusInternalServerError, err)
			return
		}
		nodeJSON(w, http.StatusOK, map[string]interface{}{"docs": len(docs), "seq": n.store.Seq()})
	default:
		nodeError(w, http.StatusMethodNotAllowed, errors.New("GET or POST required"))
	}
}
