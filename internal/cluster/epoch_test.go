package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/vecdb"
)

// validRing is a minimal well-formed ring for handshake tests.
func validRing(epoch uint64) Ring {
	return Ring{Epoch: epoch, Shards: [][]string{{"node-a"}, {"node-b"}}}
}

func TestRingValidate(t *testing.T) {
	if err := validRing(1).Validate(); err != nil {
		t.Fatalf("valid ring rejected: %v", err)
	}
	wide := make([]string, maxShardBackends+1)
	for i := range wide {
		wide[i] = strings.Repeat("n", i+1)
	}
	cases := []struct {
		name string
		ring Ring
		want string
	}{
		{"zero epoch", Ring{Epoch: 0, Shards: [][]string{{"a"}}}, "epoch must be positive"},
		{"no shards", Ring{Epoch: 1}, "no shards"},
		{"too many shards", Ring{Epoch: 1, Shards: make([][]string, maxRingShards+1)}, "shards (max"},
		{"empty shard", Ring{Epoch: 1, Shards: [][]string{{}}}, "no backends"},
		{"too many backends", Ring{Epoch: 1, Shards: [][]string{wide}}, "backends (max"},
		{"empty name", Ring{Epoch: 1, Shards: [][]string{{""}}}, "empty backend name"},
		{"oversized name", Ring{Epoch: 1, Shards: [][]string{{strings.Repeat("x", maxBackendNameLen+1)}}}, "exceeds"},
		{"dup across shards", Ring{Epoch: 1, Shards: [][]string{{"a"}, {"a"}}}, "assigned to both shard 0 and shard 1"},
		{"dup within shard", Ring{Epoch: 1, Shards: [][]string{{"a", "a"}}}, "assigned to both shard 0 and shard 0"},
	}
	for _, tc := range cases {
		err := tc.ring.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRingCodecRoundTrip(t *testing.T) {
	rg := Ring{Epoch: 7, Shards: [][]string{{"http://a:1", "http://b:1"}, {"http://c:1"}}}
	data, err := EncodeRing(rg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRing(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != rg.Epoch || len(got.Shards) != len(rg.Shards) {
		t.Fatalf("round trip diverged: %+v vs %+v", got, rg)
	}
	for si := range rg.Shards {
		for i := range rg.Shards[si] {
			if got.Shards[si][i] != rg.Shards[si][i] {
				t.Fatalf("shard %d backend %d diverged: %q vs %q", si, i, got.Shards[si][i], rg.Shards[si][i])
			}
		}
	}
	if _, err := ParseRing([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ParseRing(make([]byte, maxRingPayloadSize+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := EncodeRing(Ring{}); err == nil {
		t.Fatal("encoding an invalid ring succeeded")
	}
}

func TestParseEpochHeader(t *testing.T) {
	if e, err := ParseEpochHeader("42"); err != nil || e != 42 {
		t.Fatalf("ParseEpochHeader(42) = %d, %v", e, err)
	}
	for _, bad := range []string{"", "-1", "1.5", "0x10", " 1", "18446744073709551616", "epoch"} {
		if _, err := ParseEpochHeader(bad); err == nil {
			t.Errorf("ParseEpochHeader(%q) accepted", bad)
		}
	}
}

// TestNodeEpochHandshake walks the wire-level handshake: install,
// monotonic refusal, retirement 409 carrying the new ring, and the
// router-side mapping to StaleEpochError.
func TestNodeEpochHandshake(t *testing.T) {
	db, b := newNode(t, 16, nil)
	ctx := context.Background()
	if err := db.AddWithID(1, corpus[0], nil); err != nil {
		t.Fatal(err)
	}

	// A node never handed a ring accepts everything, any header.
	if _, err := b.Stat(withRingEpoch(ctx, 1)); err != nil {
		t.Fatalf("stat before any ring: %v", err)
	}

	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(3), Serving: true}); err != nil {
		t.Fatalf("install: %v", err)
	}

	// Older installs are refused with the held ring; equal accepted.
	err := b.InstallRing(ctx, RingUpdate{Ring: validRing(2), Serving: true})
	var stale *StaleEpochError
	if !errors.As(err, &stale) || stale.Ring.Epoch != 3 {
		t.Fatalf("older install = %v, want StaleEpochError carrying epoch 3", err)
	}
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(3), Serving: true}); err != nil {
		t.Fatalf("equal-epoch install: %v", err)
	}

	// Serving + current (or absent) epoch: requests pass.
	if _, err := b.Stat(withRingEpoch(ctx, 3)); err != nil {
		t.Fatalf("stat at current epoch: %v", err)
	}
	if _, err := b.Stat(ctx); err != nil {
		t.Fatalf("stat without epoch: %v", err)
	}
	// A provably stale sender is bounced with the node's ring.
	if _, err := b.Stat(withRingEpoch(ctx, 2)); !errors.As(err, &stale) || stale.Ring.Epoch != 3 {
		t.Fatalf("stale-epoch stat = %v, want StaleEpochError", err)
	}

	// Retirement: every data call 409s regardless of header.
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(4), Serving: false}); err != nil {
		t.Fatalf("retire: %v", err)
	}
	if _, err := b.SearchVector(withRingEpoch(ctx, 4), make([]float32, 16), 1, vecdb.Filter{}); !errors.As(err, &stale) {
		t.Fatalf("search on retired node = %v, want StaleEpochError", err)
	}
	if err := b.Apply(ctx, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: 9, Text: "x"}}); !errors.As(err, &stale) {
		t.Fatalf("apply on retired node = %v, want StaleEpochError", err)
	}
	if stale.Ring.Epoch != 4 {
		t.Fatalf("retired 409 carries epoch %d, want 4", stale.Ring.Epoch)
	}

	// Re-activation at the same epoch (the migration-target path).
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(4), Serving: true}); err != nil {
		t.Fatalf("re-activate: %v", err)
	}
	if _, err := b.Stat(ctx); err != nil {
		t.Fatalf("stat after re-activation: %v", err)
	}
}

// TestLocalBackendEpochGate: the in-process backend speaks the same
// handshake, so the chaos harness covers what a remote node would do.
func TestLocalBackendEpochGate(t *testing.T) {
	db := newLocalDB(t, 16)
	b, err := NewLocalBackend("local-a", db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := b.Stat(withRingEpoch(ctx, 99)); err != nil {
		t.Fatalf("stat before any ring: %v", err)
	}
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(5), Serving: false}); err != nil {
		t.Fatal(err)
	}
	var stale *StaleEpochError
	if _, err := b.Get(ctx, 1); !errors.As(err, &stale) || stale.Ring.Epoch != 5 {
		t.Fatalf("get on retired local backend = %v, want StaleEpochError epoch 5", err)
	}
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(4), Serving: true}); !errors.As(err, &stale) {
		t.Fatalf("older install = %v, want StaleEpochError", err)
	}
	if err := b.InstallRing(ctx, RingUpdate{Ring: validRing(5), Serving: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat(withRingEpoch(ctx, 5)); err != nil {
		t.Fatalf("stat after re-activation: %v", err)
	}
}

// TestRouterAdoptRing: the self-heal half of the handshake — a 409's
// ring replaces the router's assignment when it is strictly newer and
// the same width, reusing known backends and building fresh ones for
// names it has never seen.
func TestRouterAdoptRing(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 16, passiveHealth)
	if r.Epoch() != 1 {
		t.Fatalf("fresh router epoch = %d, want 1", r.Epoch())
	}

	// Same epoch: nothing to learn.
	if r.adoptRing(Ring{Epoch: 1, Shards: [][]string{{"shard-0"}, {"shard-1"}}}) {
		t.Fatal("adopted a ring with the current epoch")
	}
	// Wrong width: a different deployment's ring, never adopted.
	if r.adoptRing(Ring{Epoch: 9, Shards: [][]string{{"shard-0"}}}) {
		t.Fatal("adopted a ring with a different shard count")
	}
	// Invalid: rejected outright.
	if r.adoptRing(Ring{Epoch: 9}) {
		t.Fatal("adopted an invalid ring")
	}

	// Newer, same width: adopted — shard 1 moves to a node the router
	// has never met, which gets a fresh HTTP backend.
	if !r.adoptRing(Ring{Epoch: 4, Shards: [][]string{{"shard-0"}, {"http://10.9.9.9:9001"}}}) {
		t.Fatal("newer ring not adopted")
	}
	if r.Epoch() != 4 {
		t.Fatalf("epoch after adoption = %d, want 4", r.Epoch())
	}
	rg := r.Ring()
	if rg.Shards[1][0] != "http://10.9.9.9:9001" {
		t.Fatalf("shard 1 backend after adoption = %q", rg.Shards[1][0])
	}
	if st := r.Stats(); st.EpochAdoptions != 1 {
		t.Fatalf("EpochAdoptions = %d, want 1", st.EpochAdoptions)
	}
}

// epochStubStore is the cheapest possible NodeStore, so the fuzz
// target exercises the handshake, not the vector index.
type epochStubStore struct{}

func (epochStubStore) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) { return nil, nil }
func (epochStubStore) SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	return nil, nil
}
func (epochStubStore) CollectionCounts() map[string]int { return nil }
func (epochStubStore) ApplyAll(ms []vecdb.Mutation) error                     { return nil }
func (epochStubStore) Get(id int64) (vecdb.Document, error) {
	return vecdb.Document{}, vecdb.ErrNotFound
}
func (epochStubStore) Len() int         { return 0 }
func (epochStubStore) NextID() int64    { return 1 }
func (epochStubStore) Seq() uint64      { return 0 }
func (epochStubStore) Checksum() uint64 { return 0 }
func (epochStubStore) MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error) {
	return nil, nil
}
func (epochStubStore) ApplyResync(ms []vecdb.SeqMutation) error              { return nil }
func (epochStubStore) SnapshotDocs() (uint64, []vecdb.Document, error)       { return 0, nil, nil }
func (epochStubStore) ApplySnapshot(seq uint64, docs []vecdb.Document) error { return nil }

// FuzzRingEpoch drives the ring codec and the node's epoch endpoints
// with arbitrary payloads and headers: nothing may panic, accepted
// rings must round-trip exactly, and every stale-epoch 409 must carry
// a ring a client could actually adopt.
func FuzzRingEpoch(f *testing.F) {
	f.Add([]byte(`{"epoch":1,"shards":[["http://a:9001"]]}`), "1")
	f.Add([]byte(`{"epoch":2,"shards":[["a"],["b","c"]],"serving":true}`), "0")
	f.Add([]byte(`{"epoch":0,"shards":[[]]}`), "not-a-number")
	f.Add([]byte(`{"epoch":18446744073709551615,"shards":[["x"]]}`), "18446744073709551615")
	f.Add([]byte("{"), "-3")
	f.Fuzz(func(t *testing.T, data []byte, header string) {
		rg, err := ParseRing(data)
		if err == nil {
			enc, err := EncodeRing(rg)
			if err != nil {
				t.Fatalf("parsed ring does not re-encode: %v", err)
			}
			back, err := ParseRing(enc)
			if err != nil {
				t.Fatalf("encoded ring does not re-parse: %v", err)
			}
			if back.Epoch != rg.Epoch || len(back.Shards) != len(rg.Shards) {
				t.Fatalf("codec round trip diverged: %+v vs %+v", back, rg)
			}
		}

		n := NewNodeHandler(epochStubStore{}, nil)

		// Arbitrary install payload: accepted, rejected, or refused as
		// stale — never a panic, never a 5xx.
		rec := httptest.NewRecorder()
		n.ServeHTTP(rec, httptest.NewRequest("POST", "/shard/epoch", bytes.NewReader(data)))
		switch rec.Code {
		case 200, 400, 409:
		default:
			t.Fatalf("POST /shard/epoch = %d", rec.Code)
		}

		// Arbitrary epoch header against a data endpoint.
		req := httptest.NewRequest("GET", "/shard/stat", nil)
		req.Header.Set(RingEpochHeader, header)
		rec = httptest.NewRecorder()
		n.ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 409:
		default:
			t.Fatalf("GET /shard/stat with header %q = %d", header, rec.Code)
		}
		if rec.Code == 409 {
			var body struct {
				Ring json.RawMessage `json:"ring"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("409 body not JSON: %v", err)
			}
			if _, err := ParseRing(body.Ring); err != nil {
				t.Fatalf("409 carries an unadoptable ring: %v", err)
			}
		}

		// GET /shard/epoch always answers 200 with the held state.
		rec = httptest.NewRecorder()
		n.ServeHTTP(rec, httptest.NewRequest("GET", "/shard/epoch", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /shard/epoch = %d", rec.Code)
		}
	})
}
