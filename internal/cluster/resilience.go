package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ResilienceConfig tunes the request-level tail-latency layer: circuit
// breakers, read retries, and hedged reads. The zero value disables
// all three — existing routers behave exactly as before — and each
// feature is enabled independently by its own field:
//
//   - BreakerThreshold > 0 arms a per-backend circuit breaker fed by
//     live-traffic outcomes (probes stay the health checker's job).
//     Unlike health ejection — which takes seconds of probe evidence —
//     the breaker trips on the spot after a burst of request failures
//     and fast-fails around the backend until a cooldown trial passes.
//   - RetryReads > 0 grants idempotent reads (search, get) that many
//     extra rounds over the shard's backends, spaced by full-jitter
//     backoff. Writes are never retried here: Apply has its own
//     partial-write + resync semantics.
//   - HedgeAfter > 0 launches a duplicate read to the next replica
//     when the first attempt has not answered within that delay; the
//     first success wins and the loser is cancelled. Hedging engages
//     only when the remaining deadline budget exceeds HedgeMinBudget,
//     so a request about to expire is not doubled for nothing.
type ResilienceConfig struct {
	// BreakerThreshold is the consecutive live-request failure count
	// that opens a backend's breaker (0 disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fast-fails before
	// admitting one half-open trial request (default 2s).
	BreakerCooldown time.Duration
	// RetryReads is the number of extra read rounds after the first
	// pass over a shard's backends fails (0 disables retries).
	RetryReads int
	// RetryBaseDelay scales the full-jitter backoff before round n:
	// a uniform draw from [0, base·2ⁿ⁻¹] (default 2ms).
	RetryBaseDelay time.Duration
	// HedgeAfter is the delay before a read is hedged to the next
	// replica (0 disables hedging).
	HedgeAfter time.Duration
	// HedgeMinBudget is the minimum remaining context deadline for
	// hedging to engage (default 2×HedgeAfter).
	HedgeMinBudget time.Duration
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.RetryReads > 0 && c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 2 * time.Millisecond
	}
	if c.HedgeAfter > 0 && c.HedgeMinBudget <= 0 {
		c.HedgeMinBudget = 2 * c.HedgeAfter
	}
	return c
}

// breakerState is the request-level circuit state:
//
//	closed --[BreakerThreshold consecutive failures]--> open
//	open --[BreakerCooldown elapsed]--> half-open (one trial admitted)
//	half-open --[trial succeeds]--> closed
//	half-open --[trial fails]--> open
//
// This complements the health checker's ejection state machine: the
// checker reacts to probe evidence over seconds and controls resync
// holds; the breaker reacts to live-request failures within
// milliseconds and only controls whether the router bothers sending
// the next request.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one backend's circuit. A nil breaker admits everything
// and records nothing, which is how a zero ResilienceConfig costs the
// hot path a single nil check.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu         sync.Mutex
	state      breakerState
	consecFail int
	openedAt   time.Time
	trialBusy  bool // half-open: one probe request at a time

	opens     atomic.Uint64 // transitions to open
	halfOpens atomic.Uint64 // transitions to half-open
	closes    atomic.Uint64 // transitions to closed
	fastFails atomic.Uint64 // requests denied while open/half-open
}

func newBreaker(cfg ResilienceConfig) *breaker {
	return &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}
}

// allow reports whether a request may proceed, transitioning an open
// breaker to half-open once the cooldown has elapsed. trial is true
// when this admission took the single half-open trial slot — the
// caller then owns the slot and must resolve it with success(),
// failure(), or release(); leaking it would fast-fail the backend
// until the next state change. transition is the state newly entered
// ("" when none) so the caller can emit the span annotation.
func (b *breaker) allow(now time.Time) (ok, trial bool, transition string) {
	if b == nil {
		return true, false, ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, ""
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.fastFails.Add(1)
			return false, false, ""
		}
		b.state = breakerHalfOpen
		b.halfOpens.Add(1)
		b.trialBusy = true
		return true, true, "half-open"
	default: // half-open
		if b.trialBusy {
			b.fastFails.Add(1)
			return false, false, ""
		}
		b.trialBusy = true
		return true, true, ""
	}
}

// release hands back a half-open trial slot whose attempt's outcome
// says nothing about the backend — the caller's context gave up, or a
// hedge race was decided elsewhere. The state stays half-open so the
// next allow admits a fresh trial instead of fast-failing forever. A
// no-op unless the breaker is still half-open: success() and
// failure() already clear the slot on their transitions.
func (b *breaker) release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.trialBusy = false
	}
	b.mu.Unlock()
}

// success records one completed request, closing a half-open breaker.
func (b *breaker) success() (transition string) {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFail = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.trialBusy = false
		b.closes.Add(1)
		return "closed"
	}
	return ""
}

// failure records one failed request, opening the breaker when the
// threshold is reached (or immediately for a failed half-open trial).
func (b *breaker) failure(now time.Time) (transition string) {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFail++
	switch b.state {
	case breakerClosed:
		if b.consecFail >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Add(1)
			return "open"
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.trialBusy = false
		b.opens.Add(1)
		return "open"
	}
	return ""
}

// stateValue renders the state as a gauge: 0 closed, 1 open, 2
// half-open.
func (b *breaker) stateValue() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 2
	}
	return 0
}

// jitteredBackoff returns the full-jitter delay before retry round n
// (n ≥ 1): uniform in [0, base·2ⁿ⁻¹].
func jitteredBackoff(base time.Duration, round int) time.Duration {
	max := int64(base) << uint(round-1)
	if max <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(max + 1))
}
