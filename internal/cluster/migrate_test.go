package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/vecdb"
)

// migrateHealth keeps every timer manual and the dual-write window
// short so migrations finish in milliseconds.
var migrateHealth = HealthConfig{
	Interval:       time.Hour,
	Timeout:        time.Second,
	FailThreshold:  1,
	ResyncInterval: -1,
	Migrate:        MigrateConfig{DualWriteWindow: 20 * time.Millisecond},
}

// newMigrationTarget builds a fresh local backend (and its store)
// that is not part of any ring yet.
func newMigrationTarget(t *testing.T, dim int) (*LocalBackend, *vecdb.DB) {
	t.Helper()
	db := newLocalDB(t, dim)
	b, err := NewLocalBackend("target-0", db)
	if err != nil {
		t.Fatal(err)
	}
	return b, db
}

// TestMigrateHappyPath moves a live shard onto a fresh backend and
// checks the full contract: status, epoch bump, identical reads
// through the new assignment, source retirement, and counters.
func TestMigrateHappyPath(t *testing.T) {
	const dim = 32
	// Build the router by hand so the test keeps references to the
	// original shard backends and can verify their retirement.
	dbs := []*vecdb.DB{newLocalDB(t, dim), newLocalDB(t, dim)}
	srcs := make([]*LocalBackend, 2)
	shards := make([]ShardBackends, 2)
	for i := range dbs {
		b, err := NewLocalBackend(fmt.Sprintf("shard-%d", i), dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = b
		shards[i] = ShardBackends{Primary: b}
	}
	r, err := NewRouter(shards, migrateHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus)
	ctx := context.Background()

	vec, err := dbs[0].Embedder().Embed("how much annual leave")
	if err != nil {
		t.Fatal(err)
	}
	before, err := r.SearchVector(ctx, vec, 3, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}

	target, tdb := newMigrationTarget(t, dim)
	st, err := r.Rebalance(ctx, 0, target)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if st.Outcome != "ok" || st.Phase != "done" {
		t.Fatalf("status = %+v, want outcome ok / phase done", st)
	}
	if st.Epoch != 2 || r.Epoch() != 2 {
		t.Fatalf("epoch = %d (router %d), want 2", st.Epoch, r.Epoch())
	}
	if !st.SourceRetired {
		t.Fatalf("source not retired: %+v", st)
	}
	if st.Shard != 0 || st.Target != "target-0" {
		t.Fatalf("status identity = %+v", st)
	}

	// The moved shard's state landed intact: same seq, same checksum,
	// same doc count as the retired source.
	if a, b := dbs[0].Seq(), tdb.Seq(); a != b {
		t.Fatalf("seq diverged after migration: source %d, target %d", a, b)
	}
	if a, b := dbs[0].Checksum(), tdb.Checksum(); a != b {
		t.Fatalf("checksum diverged after migration: %x vs %x", a, b)
	}

	// Reads through the router are byte-identical to pre-migration.
	after, err := r.SearchVector(ctx, vec, 3, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("top-k size changed across migration: %d vs %d", len(after), len(before))
	}
	for i := range before {
		if after[i].ID != before[i].ID || after[i].Score != before[i].Score {
			t.Fatalf("hit %d changed across migration: %+v vs %+v", i, after[i], before[i])
		}
	}

	// The new ring names the target as shard 0's sole backend.
	rg := r.Ring()
	if len(rg.Shards[0]) != 1 || rg.Shards[0][0] != "target-0" {
		t.Fatalf("post-migration ring shard 0 = %v", rg.Shards[0])
	}

	// The retired source holds the new ring with Serving=false and
	// 409s direct traffic toward it — the self-heal signal for any
	// client still routing by the old assignment.
	var stale *StaleEpochError
	if _, err := srcs[0].Stat(ctx); !errors.As(err, &stale) || stale.Ring.Epoch != 2 {
		t.Fatalf("retired source stat = %v, want StaleEpochError carrying epoch 2", err)
	}
	// The untouched shard keeps serving under the new epoch.
	if _, err := srcs[1].Stat(withRingEpoch(ctx, 2)); err != nil {
		t.Fatalf("surviving shard rejected the new epoch: %v", err)
	}

	// Writes routed to shard 0 land on the target, not the retired
	// source store.
	var id int64
	for id = 100; r.ShardFor(id) != 0; id++ {
	}
	if err := r.Apply(ctx, 0, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: id, Text: "post-cutover doc"}}); err != nil {
		t.Fatalf("post-migration write: %v", err)
	}
	if _, err := tdb.Get(id); err != nil {
		t.Fatalf("post-cutover write missing on target: %v", err)
	}
	if _, err := dbs[0].Get(id); !errors.Is(err, vecdb.ErrNotFound) {
		t.Fatalf("post-cutover write leaked to retired source: %v", err)
	}

	// Status surfaces: history and stats.
	migs := r.Migrations()
	if len(migs) != 1 || migs[0].Outcome != "ok" {
		t.Fatalf("migrations = %+v", migs)
	}
	if stats := r.Stats(); stats.RingEpoch != 2 {
		t.Fatalf("stats ring epoch = %d", stats.RingEpoch)
	}
}

// TestMigrateBeginErrors: every way a migration can refuse to start,
// and the single-slot guarantee.
func TestMigrateBeginErrors(t *testing.T) {
	const dim = 16
	r, _ := newLocalRouter(t, 2, dim, migrateHealth)
	ctx := context.Background()
	target, _ := newMigrationTarget(t, dim)

	if _, err := r.Rebalance(ctx, 0, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := r.Rebalance(ctx, -1, target); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("shard -1 = %v", err)
	}
	if _, err := r.Rebalance(ctx, 2, target); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("shard 2 = %v", err)
	}

	// A target already serving a shard cannot also be a migration
	// target: that would assign it to two shards at once.
	inRing, err := NewLocalBackend("shard-1", newLocalDB(t, dim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rebalance(ctx, 0, inRing); err == nil || !strings.Contains(err.Error(), "already serves shard") {
		t.Fatalf("in-ring target = %v", err)
	}

	// One migration at a time: while a claimed slot is held, a second
	// begin reports ErrMigrationActive.
	m, err := r.beginMigration(0, target)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := newMigrationTarget(t, dim)
	if _, err := r.Rebalance(ctx, 1, other); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("second migration = %v, want ErrMigrationActive", err)
	}
	r.finishMigration(m, "aborted", errors.New("test cleanup"))

	// The slot is free again.
	if _, err := r.Rebalance(ctx, 0, target); err != nil {
		t.Fatalf("migration after slot release: %v", err)
	}
}

// failingSnapshotTarget wraps a backend so ApplySnapshot always
// fails — the seed phase can never complete.
type failingSnapshotTarget struct {
	Backend
}

func (f failingSnapshotTarget) ApplySnapshot(ctx context.Context, seq uint64, docs []vecdb.Document) error {
	return errors.New("injected: snapshot refused")
}

// TestMigrateAbortLeavesRingIntact: a migration that dies before the
// flip must leave the old assignment fully serving, the epoch
// unchanged, and the outcome observable as "aborted" without an error
// from Rebalance itself.
func TestMigrateAbortLeavesRingIntact(t *testing.T) {
	const dim = 32
	r, dbs := newLocalRouter(t, 2, dim, migrateHealth)
	seedRouter(t, r, corpus)
	ctx := context.Background()

	target, _ := newMigrationTarget(t, dim)
	st, err := r.Rebalance(ctx, 0, failingSnapshotTarget{target})
	if err != nil {
		t.Fatalf("an aborted migration is not a Rebalance error: %v", err)
	}
	if st.Outcome != "aborted" || st.Phase != "aborted" {
		t.Fatalf("status = %+v, want aborted", st)
	}
	if !strings.Contains(st.Error, "snapshot refused") {
		t.Fatalf("abort error not surfaced: %+v", st)
	}
	if st.Epoch != 0 || r.Epoch() != 1 {
		t.Fatalf("aborted migration moved the epoch: status %d, router %d", st.Epoch, r.Epoch())
	}

	// The original assignment still serves reads and writes.
	vec, err := dbs[0].Embedder().Embed("shopkeepers required")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SearchVector(ctx, vec, 3, vecdb.Filter{}); err != nil {
		t.Fatalf("search after aborted migration: %v", err)
	}
	if err := r.Apply(ctx, 0, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: 50, Text: "still writable"}}); err != nil {
		t.Fatalf("write after aborted migration: %v", err)
	}
	if got := r.Stats(); got.RingEpoch != 1 {
		t.Fatalf("stats after abort = %+v", got)
	}
	migs := r.Migrations()
	if len(migs) != 1 || migs[0].Outcome != "aborted" {
		t.Fatalf("migrations after abort = %+v", migs)
	}

	// The slot is released: a clean retry succeeds end to end.
	if st, err := r.Rebalance(ctx, 0, target); err != nil || st.Outcome != "ok" {
		t.Fatalf("retry after abort = %+v, %v", st, err)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch after retry = %d, want 2", r.Epoch())
	}
}

// TestStartRebalanceAsync: the non-blocking variant reports progress
// through Migrations and completes on its own.
func TestStartRebalanceAsync(t *testing.T) {
	const dim = 32
	r, _ := newLocalRouter(t, 2, dim, migrateHealth)
	seedRouter(t, r, corpus)
	target, tdb := newMigrationTarget(t, dim)

	st, err := r.StartRebalance(0, target)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != "" {
		t.Fatalf("initial status already finished: %+v", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		migs := r.Migrations()
		if len(migs) > 0 && migs[0].Outcome != "" {
			if migs[0].Outcome != "ok" {
				t.Fatalf("async migration = %+v", migs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async migration never finished: %+v", migs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.Epoch() != 2 || tdb.Len() == 0 {
		t.Fatalf("async migration incomplete: epoch %d, target docs %d", r.Epoch(), tdb.Len())
	}
}

// TestRebalancePlan: the dry-run planner proposes the shard carrying
// the most documents and mutates nothing.
func TestRebalancePlan(t *testing.T) {
	const dim = 16
	r, _ := newLocalRouter(t, 3, dim, migrateHealth)
	ctx := context.Background()

	// Pile documents onto one shard by routing every write there.
	heavy := 1
	for i := 0; i < 6; i++ {
		id := int64(i*3 + heavy + 1) // IDs congruent to shard `heavy`
		si := r.ShardFor(id)
		if err := r.Apply(ctx, si, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: id, Text: fmt.Sprintf("doc %d", id)}}); err != nil {
			t.Fatal(err)
		}
	}
	lens := r.Lens(ctx)
	want, max := 0, -1
	for si, n := range lens {
		if n > max {
			want, max = si, n
		}
	}

	plan := r.Plan(ctx)
	if plan.Epoch != 1 || len(plan.Shards) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.ProposedShard != want {
		t.Fatalf("proposed shard %d, want %d (lens %v)", plan.ProposedShard, want, lens)
	}
	if plan.Shards[want].Writes == 0 {
		t.Fatalf("planner lost the write counters: %+v", plan.Shards[want])
	}
	if !strings.Contains(plan.Reason, fmt.Sprintf("shard %d", want)) {
		t.Fatalf("reason = %q", plan.Reason)
	}
	if r.Epoch() != 1 {
		t.Fatal("dry-run plan mutated the ring")
	}
}
