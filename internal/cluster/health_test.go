package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/vecdb"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// backendState reads backend name's state from the router's health
// snapshot.
func backendState(r *Router, name string) string {
	for _, sh := range r.Health() {
		for _, b := range sh.Backends {
			if b.Name == name {
				return b.State
			}
		}
	}
	return ""
}

// TestHealthStateMachine walks one backend through the full cycle
// driven by the active prober: healthy → (FailThreshold consecutive
// probe failures) → ejected → (first good probe) → half-open →
// (RecoverThreshold consecutive good probes) → healthy.
func TestHealthStateMachine(t *testing.T) {
	db := newLocalDB(t, 16)
	b, _ := NewLocalBackend("node", db)
	flaky := &flakyBackend{Backend: b}
	cfg := HealthConfig{
		Interval:         3 * time.Millisecond,
		Timeout:          time.Second,
		FailThreshold:    3,
		RecoverThreshold: 2,
	}
	r, err := NewRouter([]ShardBackends{{Primary: flaky}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	waitFor(t, "initial healthy", func() bool { return backendState(r, "node") == "healthy" })

	// Sustained failure ejects.
	flaky.broken.Store(true)
	waitFor(t, "ejection", func() bool { return backendState(r, "node") == "ejected" })

	// Recovery walks through half-open (RecoverThreshold 2 means at
	// least one probe round reports half-open before healthy) and back
	// to healthy.
	flaky.broken.Store(false)
	sawHalfOpen := false
	waitFor(t, "recovery to healthy", func() bool {
		switch backendState(r, "node") {
		case "half-open":
			sawHalfOpen = true
		case "healthy":
			return true
		}
		return false
	})
	if !sawHalfOpen {
		t.Log("half-open window raced past the poll; acceptable but unexpected at 3ms interval")
	}

	// A failure during half-open drops straight back to ejected.
	flaky.broken.Store(true)
	waitFor(t, "re-ejection", func() bool { return backendState(r, "node") == "ejected" })
	flaky.broken.Store(false)
	waitFor(t, "half-open or healthy", func() bool {
		s := backendState(r, "node")
		return s == "half-open" || s == "healthy"
	})
	flaky.broken.Store(true)
	waitFor(t, "ejected after half-open failure", func() bool {
		return backendState(r, "node") == "ejected"
	})
}

// TestHealthTransitions drives the per-backend state machine
// directly — no timers — asserting every edge: sub-threshold failures
// don't eject, a success resets the failure streak, ejection at the
// threshold, half-open on the first good probe, re-ejection on a
// half-open failure, and recovery after RecoverThreshold successes.
func TestHealthTransitions(t *testing.T) {
	db := newLocalDB(t, 16)
	b, _ := NewLocalBackend("n", db)
	cfg := HealthConfig{FailThreshold: 3, RecoverThreshold: 2}.withDefaults()
	h := &backendHealth{backend: b}

	st := func() State { h.mu.Lock(); defer h.mu.Unlock(); return h.state }

	h.reportFailure(cfg, errBroken)
	h.reportFailure(cfg, errBroken)
	if st() != StateHealthy {
		t.Fatalf("ejected below threshold: %v", st())
	}
	h.reportSuccess(cfg)
	h.reportFailure(cfg, errBroken)
	h.reportFailure(cfg, errBroken)
	if st() != StateHealthy {
		t.Fatalf("success did not reset the failure streak: %v", st())
	}
	h.reportFailure(cfg, errBroken)
	if st() != StateEjected {
		t.Fatalf("not ejected at threshold: %v", st())
	}
	h.reportSuccess(cfg)
	if st() != StateHalfOpen {
		t.Fatalf("first good probe did not half-open: %v", st())
	}
	h.reportFailure(cfg, errBroken)
	if st() != StateEjected {
		t.Fatalf("half-open failure did not re-eject: %v", st())
	}
	h.reportSuccess(cfg)
	h.reportSuccess(cfg)
	// Ejection marked the backend for resync: probe successes alone
	// saturate in half-open — only the resync manager's parity check
	// re-admits it to reads.
	if st() != StateHalfOpen {
		t.Fatalf("resync-held backend left half-open early: %v", st())
	}
	if !h.resyncNeeded() {
		t.Fatal("ejection did not mark the backend for resync")
	}
	if h.serving() {
		t.Fatal("resync-held backend serving")
	}
	h.clearResync(cfg)
	if st() != StateHealthy {
		t.Fatalf("clearResync after RecoverThreshold successes did not restore: %v", st())
	}
	if !h.serving() {
		t.Fatal("healthy backend not serving")
	}
}

// TestHealthPassiveEjection: live-traffic failures reported by the
// router eject a backend without waiting for the prober (whose
// interval here is an hour).
func TestHealthPassiveEjection(t *testing.T) {
	healthyDB, brokenDB := newLocalDB(t, 16), newLocalDB(t, 16)
	hb, _ := NewLocalBackend("alive", healthyDB)
	bb, _ := NewLocalBackend("node", brokenDB)
	flaky := &flakyBackend{Backend: bb}
	cfg := HealthConfig{Interval: time.Hour, FailThreshold: 2}
	r, err := NewRouter([]ShardBackends{{Primary: hb}, {Primary: flaky}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seedRouter(t, r, corpus)

	flaky.broken.Store(true)
	v, err := healthyDB.Embedder().Embed("q")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Two degraded queries reach the threshold; after that the backend
	// is ejected and skipped without I/O.
	for i := 0; i < 2; i++ {
		if _, err := r.SearchVector(ctx, v, 1, vecdb.Filter{}); err != nil {
			t.Fatalf("degraded query %d: %v", i, err)
		}
	}
	if got := backendState(r, "node"); got != "ejected" {
		t.Fatalf("state after threshold = %s", got)
	}
	if st := r.Stats(); st.DegradedQueries < 2 {
		t.Errorf("degradation not counted: %+v", st)
	}
}
