package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/vecdb"
)

// newNode mounts the shard protocol over a fresh one-shard DB and
// returns an HTTPBackend pointed at it.
func newNode(t *testing.T, dim int, ready func() bool) (*vecdb.DB, *HTTPBackend) {
	t.Helper()
	db := newLocalDB(t, dim)
	ts := httptest.NewServer(NewNodeHandler(db, ready))
	t.Cleanup(ts.Close)
	b, err := NewHTTPBackend(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, b
}

// TestHTTPRoundTrip: every Backend operation crosses the wire and
// lands exactly as the local call would — including float64 scores,
// which JSON round-trips bit-exactly.
func TestHTTPRoundTrip(t *testing.T) {
	const dim = 32
	db, b := newNode(t, dim, nil)
	ctx := context.Background()

	if err := b.Probe(ctx); err != nil {
		t.Fatalf("probe: %v", err)
	}

	ms := make([]vecdb.Mutation, len(corpus))
	for i, text := range corpus {
		ms[i] = vecdb.Mutation{Op: vecdb.OpAdd, ID: int64(i + 1), Text: text, Meta: map[string]string{"i": text[:3]}}
	}
	if err := b.Apply(ctx, ms); err != nil {
		t.Fatalf("apply: %v", err)
	}

	st, err := b.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != len(corpus) || st.NextID != int64(len(corpus)+1) {
		t.Errorf("stat = %+v", st)
	}

	vec, err := db.Embedder().Embed("overtime pay rate")
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.SearchVector(vec, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.SearchVector(ctx, vec, 3, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score || got[i].Text != want[i].Text {
			t.Errorf("hit %d diverged over the wire: got (%d, %v), want (%d, %v)",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}

	doc, err := b.Get(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Text != corpus[1] || doc.Meta["i"] != corpus[1][:3] {
		t.Errorf("get = %+v", doc)
	}

	// Deletes travel as mutations; absent IDs keep the typed miss.
	if err := b.Apply(ctx, []vecdb.Mutation{{Op: vecdb.OpDelete, ID: 2}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := b.Get(ctx, 2); !errors.Is(err, vecdb.ErrNotFound) {
		t.Errorf("get deleted = %v, want ErrNotFound", err)
	}
	if err := b.Apply(ctx, []vecdb.Mutation{{Op: vecdb.OpDelete, ID: 2}}); !errors.Is(err, vecdb.ErrNotFound) {
		t.Errorf("delete absent = %v, want ErrNotFound", err)
	}
}

// TestHTTPNotReady: a recovering node answers the probe and every
// data endpoint with 503, so a router treats it as down until its WAL
// replay completes.
func TestHTTPNotReady(t *testing.T) {
	var ready atomic.Bool
	db, b := newNode(t, 16, ready.Load)
	ctx := context.Background()

	if err := b.Probe(ctx); err == nil {
		t.Fatal("probe succeeded on a recovering node")
	}
	if err := b.Apply(ctx, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: 1, Text: "x"}}); err == nil {
		t.Fatal("apply succeeded on a recovering node")
	}
	if _, err := b.Stat(ctx); err == nil {
		t.Fatal("stat succeeded on a recovering node")
	}

	ready.Store(true)
	if err := b.Probe(ctx); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if err := b.Apply(ctx, []vecdb.Mutation{{Op: vecdb.OpAdd, ID: 1, Text: "x"}}); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("db holds %d docs", db.Len())
	}
}

// TestHTTPRouterEndToEnd: a router over three HTTP nodes returns the
// same merged top-k as a router over the same shards in-process — the
// transport changes nothing about results.
func TestHTTPRouterEndToEnd(t *testing.T) {
	const dim = 32
	var (
		localShards []ShardBackends
		httpShards  []ShardBackends
		dbs         []*vecdb.DB
	)
	for i := 0; i < 3; i++ {
		db, hb := newNode(t, dim, nil)
		lb, _ := NewLocalBackend("local", db)
		dbs = append(dbs, db)
		localShards = append(localShards, ShardBackends{Primary: lb})
		httpShards = append(httpShards, ShardBackends{Primary: hb})
	}
	lr, err := NewRouter(localShards, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lr.Close)
	hr, err := NewRouter(httpShards, passiveHealth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hr.Close)

	// Ingest through the HTTP router; both routers see the same DBs.
	seedRouter(t, hr, corpus)

	vec, err := dbs[0].Embedder().Embed("probation period for new hires")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := lr.SearchVector(ctx, vec, 4, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hr.SearchVector(ctx, vec, 4, vecdb.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Errorf("hit %d: HTTP (%d, %v) vs local (%d, %v)",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
	if next, err := hr.MaxNextID(ctx); err != nil || next != int64(len(corpus)+1) {
		t.Errorf("MaxNextID over HTTP = %d, %v", next, err)
	}
}
