package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/vecdb"
)

// BenchmarkClusterSearch quantifies the transport hop: the same
// 4-shard fan-out + merge once over in-process backends and once over
// HTTP backends (loopback httptest nodes). The delta is pure shard
// protocol cost — JSON encode of a 256-wide query vector, one HTTP
// round-trip per shard (in parallel), JSON decode of per-shard top-k.
func BenchmarkClusterSearch(b *testing.B) {
	const (
		shardsN = 4
		dim     = 256
		docs    = 1024
		topK    = 10
	)
	mkDBs := func(b *testing.B) []*vecdb.DB {
		dbs := make([]*vecdb.DB, shardsN)
		for i := range dbs {
			db, err := vecdb.NewDefault(dim)
			if err != nil {
				b.Fatal(err)
			}
			dbs[i] = db
		}
		for id := int64(1); id <= docs; id++ {
			text := fmt.Sprintf("Synthetic handbook passage number %d covering policy topic %d in detail.", id, id%37)
			if err := dbs[ShardIndex(id, shardsN)].AddWithID(id, text, nil); err != nil {
				b.Fatal(err)
			}
		}
		return dbs
	}
	queryVec := func(b *testing.B, dbs []*vecdb.DB) []float32 {
		v, err := dbs[0].Embedder().Embed("what is the policy on topic seventeen")
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	run := func(b *testing.B, r *Router, vec []float32) {
		b.ReportAllocs()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits, err := r.SearchVector(ctx, vec, topK, vecdb.Filter{})
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) != topK {
				b.Fatalf("got %d hits", len(hits))
			}
		}
	}
	// Probing is disabled (hour interval) so the benchmark measures
	// the data path, not the checker.
	hcfg := HealthConfig{Interval: time.Hour}

	b.Run("local", func(b *testing.B) {
		dbs := mkDBs(b)
		shards := make([]ShardBackends, shardsN)
		for i, db := range dbs {
			lb, err := NewLocalBackend(fmt.Sprintf("s%d", i), db)
			if err != nil {
				b.Fatal(err)
			}
			shards[i] = ShardBackends{Primary: lb}
		}
		r, err := NewRouter(shards, hcfg)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		run(b, r, queryVec(b, dbs))
	})

	b.Run("http", func(b *testing.B) {
		dbs := mkDBs(b)
		shards := make([]ShardBackends, shardsN)
		for i, db := range dbs {
			ts := httptest.NewServer(NewNodeHandler(db, nil))
			defer ts.Close()
			hb, err := NewHTTPBackend(ts.URL, nil)
			if err != nil {
				b.Fatal(err)
			}
			shards[i] = ShardBackends{Primary: hb}
		}
		r, err := NewRouter(shards, hcfg)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		run(b, r, queryVec(b, dbs))
	})
}
