package vecdb

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Op tags a journaled mutation.
type Op uint8

const (
	// OpAdd inserts (or replaces) a document under an explicit ID.
	OpAdd Op = 1
	// OpDelete removes a document.
	OpDelete Op = 2

	// opAddV2 / opDeleteV2 are the *wire* op bytes for records that
	// carry a non-default collection. They never appear in a decoded
	// Mutation (DecodeMutation maps them back to OpAdd/OpDelete with
	// Collection set); EncodeMutation only emits them when the
	// collection is non-default, so a default-collection corpus keeps
	// writing byte-identical v1 records and pre-collection WALs replay
	// unchanged.
	opAddV2    Op = 3
	opDeleteV2 Op = 4
)

// Mutation is one deterministic state change to a DB — the unit a
// write-ahead log journals and replays. Vectors are never part of a
// mutation: embedders are deterministic, so replay re-embeds, keeping
// the journal format independent of embedder internals (the same
// contract Save/Load rely on). Collection scopes the mutation: empty
// means the default collection; on OpDelete a non-empty collection
// makes the delete checked (a document in another collection reports
// ErrNotFound, exactly like an absent ID).
type Mutation struct {
	Op         Op
	ID         int64
	Collection string
	Text       string
	Meta       map[string]string
}

// Apply executes one mutation, advancing the sequence counter with
// it. Replaying a journal of previously successful mutations in order
// reproduces the DB state exactly.
func (db *DB) Apply(m Mutation) error {
	return db.ApplyAll([]Mutation{m})
}

// ApplyAll executes a batch of mutations in order. Vectors for the
// adds are computed concurrently outside the lock, then the whole
// batch is installed under a single lock acquisition — the fast path
// for WAL replay and bulk ingest. On error the batch stops at the
// failing mutation; earlier ones remain applied.
func (db *DB) ApplyAll(ms []Mutation) error {
	vecs := make([][]float32, len(ms))
	var texts []string
	var slots []int
	for i, m := range ms {
		switch m.Op {
		case OpAdd:
			if m.ID <= 0 {
				return fmt.Errorf("vecdb: document ID must be positive, got %d", m.ID)
			}
			texts = append(texts, m.Text)
			slots = append(slots, i)
		case OpDelete:
		default:
			return fmt.Errorf("vecdb: unknown mutation op %d", m.Op)
		}
	}
	embedded, err := embedAll(db.embed, texts)
	if err != nil {
		return err
	}
	for j, i := range slots {
		vecs[i] = embedded[j]
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i, m := range ms {
		switch m.Op {
		case OpAdd:
			if err := db.addLocked(m.ID, m.Collection, m.Text, m.Meta, vecs[i]); err != nil {
				return err
			}
		case OpDelete:
			if err := db.deleteLocked(m.ID, m.Collection); err != nil {
				return err
			}
		}
		// One seq per applied mutation: on a partial failure the counter
		// covers exactly the applied prefix, and the caller that rolls
		// the batch back restores it with SetSeq.
		db.seq++
	}
	return nil
}

// embedAll embeds texts on all cores, preserving order.
func embedAll(embed Embedder, texts []string) ([][]float32, error) {
	vecs := make([][]float32, len(texts))
	errs := make([]error, len(texts))
	parallel.For(len(texts), func(i int) {
		v, err := embed.Embed(texts[i])
		if err != nil {
			errs[i] = err
			return
		}
		vecs[i] = v
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("vecdb: embed: %w", err)
		}
	}
	return vecs, nil
}

// Mutation wire form (the WAL payload):
//
//	v1 (no collection — the pre-collection format, still written for
//	default-collection mutations so old and new WALs interleave):
//	  [1B op=1|2][8B LE id]                   — op 2 (delete) stops here
//	  [4B LE len][text][2B LE meta count]
//	  then per meta pair: [2B LE len][key][4B LE len][value]
//
//	v2 (non-default collection — op 3 = add, op 4 = checked delete):
//	  [1B op=3|4][8B LE id][2B LE len][collection]   — op 4 stops here
//	  [4B LE len][text][2B LE meta count][pairs...]
//
// Decoding maps v1 records onto the default collection, so a WAL
// written before collections existed replays byte-for-byte into
// "default". The frame-level CRC lives in the WAL record, not here.

// EncodeMutation serializes m for journaling. Fields that overflow
// their length prefixes are rejected here, before anything is applied
// or appended — a silently truncated prefix would produce a record
// that fails to decode on every subsequent boot.
func EncodeMutation(m Mutation) ([]byte, error) {
	coll := ""
	if NormalizeCollection(m.Collection) != DefaultCollection {
		coll = m.Collection
		if len(coll) > math.MaxUint16 {
			return nil, fmt.Errorf("vecdb: collection of doc %d exceeds %d bytes", m.ID, math.MaxUint16)
		}
	}
	n := 9
	if coll != "" {
		n += 2 + len(coll)
	}
	if m.Op == OpAdd {
		if uint64(len(m.Text)) > math.MaxUint32 {
			return nil, fmt.Errorf("vecdb: text of doc %d exceeds %d bytes", m.ID, uint32(math.MaxUint32))
		}
		if len(m.Meta) > math.MaxUint16 {
			return nil, fmt.Errorf("vecdb: doc %d has %d meta entries, max %d", m.ID, len(m.Meta), math.MaxUint16)
		}
		n += 4 + len(m.Text) + 2
		for k, v := range m.Meta {
			if len(k) > math.MaxUint16 {
				return nil, fmt.Errorf("vecdb: meta key of doc %d exceeds %d bytes", m.ID, math.MaxUint16)
			}
			if uint64(len(v)) > math.MaxUint32 {
				return nil, fmt.Errorf("vecdb: meta value of doc %d exceeds %d bytes", m.ID, uint32(math.MaxUint32))
			}
			n += 2 + len(k) + 4 + len(v)
		}
	}
	wireOp := m.Op
	if coll != "" {
		switch m.Op {
		case OpAdd:
			wireOp = opAddV2
		case OpDelete:
			wireOp = opDeleteV2
		default:
			return nil, fmt.Errorf("vecdb: unknown mutation op %d", m.Op)
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, byte(wireOp))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ID))
	if coll != "" {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(coll)))
		buf = append(buf, coll...)
	}
	if m.Op != OpAdd {
		return buf, nil
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Text)))
	buf = append(buf, m.Text...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Meta)))
	for k, v := range m.Meta {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf, nil
}

// DecodeMutation parses a journaled mutation (v1 or v2 wire form).
func DecodeMutation(b []byte) (Mutation, error) {
	var m Mutation
	if len(b) < 9 {
		return m, fmt.Errorf("vecdb: mutation record too short (%d bytes)", len(b))
	}
	wireOp := Op(b[0])
	m.ID = int64(binary.LittleEndian.Uint64(b[1:9]))
	b = b[9:]
	var err error
	switch wireOp {
	case OpAdd, OpDelete:
		m.Op = wireOp
	case opAddV2:
		m.Op = OpAdd
		if m.Collection, b, err = takeString(b, 2); err != nil {
			return m, err
		}
	case opDeleteV2:
		m.Op = OpDelete
		if m.Collection, b, err = takeString(b, 2); err != nil {
			return m, err
		}
	default:
		return m, fmt.Errorf("vecdb: unknown mutation op %d", wireOp)
	}
	if m.Op == OpDelete {
		if len(b) != 0 {
			return m, fmt.Errorf("vecdb: %d trailing bytes in delete record", len(b))
		}
		return m, nil
	}
	text, b, err := takeString(b, 4)
	if err != nil {
		return m, err
	}
	m.Text = text
	if len(b) < 2 {
		return m, fmt.Errorf("vecdb: truncated meta count")
	}
	count := int(binary.LittleEndian.Uint16(b[:2]))
	b = b[2:]
	if count > 0 {
		m.Meta = make(map[string]string, count)
	}
	for i := 0; i < count; i++ {
		var k, v string
		if k, b, err = takeString(b, 2); err != nil {
			return m, err
		}
		if v, b, err = takeString(b, 4); err != nil {
			return m, err
		}
		m.Meta[k] = v
	}
	if len(b) != 0 {
		return m, fmt.Errorf("vecdb: %d trailing bytes in add record", len(b))
	}
	return m, nil
}

// takeString reads a length-prefixed string with a prefix of `width`
// bytes (2 or 4, little-endian).
func takeString(b []byte, width int) (string, []byte, error) {
	if len(b) < width {
		return "", nil, fmt.Errorf("vecdb: truncated length prefix")
	}
	var n int
	if width == 2 {
		n = int(binary.LittleEndian.Uint16(b[:2]))
	} else {
		n = int(binary.LittleEndian.Uint32(b[:4]))
	}
	b = b[width:]
	if len(b) < n {
		return "", nil, fmt.Errorf("vecdb: truncated string (want %d, have %d)", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}
