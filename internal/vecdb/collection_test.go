package vecdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// encodeV1 hand-crafts the pre-collection wire form so the codec tests
// do not depend on EncodeMutation's own v1 path staying honest.
func encodeV1(m Mutation) []byte {
	buf := []byte{byte(m.Op)}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ID))
	if m.Op != OpAdd {
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Text)))
	buf = append(buf, m.Text...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Meta)))
	for k, v := range m.Meta {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// TestMutationCodecV1Compat: records written before collections existed
// decode into the default collection, and default-collection mutations
// still encode byte-for-byte as v1 so old and new WALs interleave.
func TestMutationCodecV1Compat(t *testing.T) {
	v1 := []Mutation{
		{Op: OpAdd, ID: 12, Text: "legacy doc", Meta: map[string]string{"k": "v"}},
		{Op: OpDelete, ID: 9},
	}
	for _, m := range v1 {
		raw := encodeV1(m)
		got, err := DecodeMutation(raw)
		if err != nil {
			t.Fatalf("decode v1 %+v: %v", m, err)
		}
		if got.Collection != "" {
			t.Errorf("v1 record decoded with collection %q, want empty (default)", got.Collection)
		}
		got.Collection = ""
		if !reflect.DeepEqual(got, m) {
			t.Errorf("v1 decode = %+v, want %+v", got, m)
		}
		// Default-collection encodes are byte-identical to v1 — spelled
		// either as "" or as the explicit default name.
		for _, spell := range []string{"", DefaultCollection} {
			m2 := m
			m2.Collection = spell
			enc, err := EncodeMutation(m2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, raw) {
				t.Errorf("default-collection (%q) encoding diverged from v1 bytes", spell)
			}
		}
	}
}

// TestMutationCodecV2Roundtrip: non-default collections survive the
// codec, use the v2 wire ops, and decode back to the public op values.
func TestMutationCodecV2Roundtrip(t *testing.T) {
	cases := []Mutation{
		{Op: OpAdd, ID: 3, Collection: "tenant-a", Text: "scoped doc", Meta: map[string]string{"tag": "x"}},
		{Op: OpAdd, ID: 1 << 33, Collection: "t", Text: ""},
		{Op: OpDelete, ID: 8, Collection: "tenant-b"},
	}
	for _, want := range cases {
		buf, err := EncodeMutation(want)
		if err != nil {
			t.Fatalf("encode(%+v): %v", want, err)
		}
		if op := Op(buf[0]); op != opAddV2 && op != opDeleteV2 {
			t.Errorf("non-default collection encoded with wire op %d, want v2", op)
		}
		got, err := DecodeMutation(buf)
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip = %+v, want %+v", got, want)
		}
	}
	// Truncated collection prefix must be rejected, as must trailing
	// bytes after a v2 delete's collection.
	enc := mustEncode(t, Mutation{Op: OpDelete, ID: 1, Collection: "tenant-a"})
	if _, err := DecodeMutation(enc[:10]); err == nil {
		t.Error("truncated v2 record decoded without error")
	}
	if _, err := DecodeMutation(append(enc, 0x00)); err == nil {
		t.Error("trailing junk after v2 delete decoded without error")
	}
}

// TestFilteredSearchEquivalence: a filtered search must return results
// byte-identical to an unfiltered search over a store holding only the
// matching docs — the core tenant-isolation invariant.
func TestFilteredSearchEquivalence(t *testing.T) {
	corpus := []struct {
		coll, text string
		meta       map[string]string
	}{
		{"tenant-a", "the store opens at nine in the morning", map[string]string{"lang": "en"}},
		{"tenant-a", "employees get fourteen days of annual leave", map[string]string{"lang": "en", "tag": "hr"}},
		{"tenant-a", "uniforms are mandatory on the shop floor", map[string]string{"lang": "de"}},
		{"tenant-b", "the store opens at nine in the morning", map[string]string{"lang": "en"}},
		{"tenant-b", "the probation period lasts three months", map[string]string{"tag": "hr"}},
		{"", "an unscoped document lands in the default collection", nil},
	}
	full := newTestDB(t)
	for _, d := range corpus {
		if _, err := full.AddIn(d.coll, d.text, d.meta); err != nil {
			t.Fatal(err)
		}
	}
	query, err := full.Embedder().Embed("when does the store open")
	if err != nil {
		t.Fatal(err)
	}

	filters := []Filter{
		{Collection: "tenant-a"},
		{Collection: "tenant-b"},
		{Collection: DefaultCollection},
		{Meta: map[string]string{"lang": "en"}},
		{Collection: "tenant-a", Meta: map[string]string{"lang": "en"}},
		{Collection: "tenant-a", Meta: map[string]string{"tag": "hr", "lang": "en"}},
		{Collection: "absent"},
	}
	for _, f := range filters {
		// Reference store: only the docs matching the filter, same IDs.
		ref := newTestDB(t)
		for i, d := range corpus {
			doc := Document{ID: int64(i + 1), Collection: d.coll, Text: d.text, Meta: d.meta}
			if !f.Match(Document{ID: doc.ID, Collection: NormalizeCollection(d.coll), Text: d.text, Meta: d.meta}) {
				continue
			}
			if err := ref.AddDocument(doc); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ref.SearchVector(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := full.SearchVectorFiltered(query, 10, f)
		if err != nil {
			t.Fatal(err)
		}
		// Stored docs carry normalized collections; the reference store
		// normalizes on write too, so results must be deeply equal.
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("filter %+v: filtered results diverged:\n got %+v\nwant %+v", f, got, want)
		}
	}

	// Zero filter must be the plain search, bit for bit.
	want, err := full.SearchVector(query, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := full.SearchVectorFiltered(query, 4, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("zero filter diverged from unfiltered search")
	}
}

// TestCollectionCountsAndCheckedDelete: per-collection counts track
// adds, replacements and deletes; a checked delete in the wrong
// collection reports ErrNotFound and changes nothing.
func TestCollectionCountsAndCheckedDelete(t *testing.T) {
	db := newTestDB(t)
	idA, err := db.AddIn("tenant-a", "doc one", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddIn("tenant-a", "doc two", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add("unscoped doc", nil); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"tenant-a": 2, DefaultCollection: 1}
	if got := db.CollectionCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}

	// Replacing an ID across collections moves the count.
	if err := db.AddDocument(Document{ID: idA, Collection: "tenant-b", Text: "moved"}); err != nil {
		t.Fatal(err)
	}
	want = map[string]int{"tenant-a": 1, "tenant-b": 1, DefaultCollection: 1}
	if got := db.CollectionCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts after move = %v, want %v", got, want)
	}

	// Checked delete in the wrong collection: ErrNotFound, no change.
	if err := db.DeleteIn("tenant-a", idA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-collection delete: err = %v, want ErrNotFound", err)
	}
	if _, err := db.Get(idA); err != nil {
		t.Fatalf("doc vanished after rejected delete: %v", err)
	}
	if err := db.DeleteIn("tenant-b", idA); err != nil {
		t.Fatalf("in-collection checked delete: %v", err)
	}
	want = map[string]int{"tenant-a": 1, DefaultCollection: 1}
	if got := db.CollectionCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts after delete = %v, want %v", got, want)
	}
}

// TestChecksumSeesCollection: two stores holding the same ID/text/meta
// in different collections must report different content checksums —
// otherwise resync convergence checks would miss a cross-tenant swap.
func TestChecksumSeesCollection(t *testing.T) {
	a := newTestDB(t)
	b := newTestDB(t)
	if err := a.AddDocument(Document{ID: 1, Collection: "tenant-a", Text: "same text"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(Document{ID: 1, Collection: "tenant-b", Text: "same text"}); err != nil {
		t.Fatal(err)
	}
	if a.Checksum() == b.Checksum() {
		t.Error("checksums equal across differing collections")
	}
}

// TestCollectionPersistence: collections survive a checkpoint
// round-trip, and pre-collection snapshots (docs with empty Collection)
// load into the default collection.
func TestCollectionPersistence(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.AddIn("tenant-a", "scoped survives persistence", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add("default survives persistence", nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "colls.snap")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := NewHashedEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewFlatIndex(Cosine, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, e, x)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.CollectionCounts(), db.CollectionCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored counts = %v, want %v", got, want)
	}
	if got, want := restored.Checksum(), db.Checksum(); got != want {
		t.Errorf("restored checksum = %x, want %x", got, want)
	}
}

// TestResyncCarriesCollection: ApplyResync and ApplySnapshot preserve
// collection scoping, and converged replicas agree on the checksum.
func TestResyncCarriesCollection(t *testing.T) {
	src := newTestDB(t)
	ms := []SeqMutation{
		{Seq: 1, Mutation: Mutation{Op: OpAdd, ID: 1, Collection: "tenant-a", Text: "alpha"}},
		{Seq: 2, Mutation: Mutation{Op: OpAdd, ID: 2, Text: "default beta"}},
		{Seq: 3, Mutation: Mutation{Op: OpAdd, ID: 3, Collection: "tenant-b", Text: "gamma"}},
	}
	if err := src.ApplyResync(ms); err != nil {
		t.Fatal(err)
	}
	tgt := newTestDB(t)
	if err := tgt.ApplyResync(ms); err != nil {
		t.Fatal(err)
	}
	if src.Checksum() != tgt.Checksum() {
		t.Fatal("replicas diverged after identical resync")
	}

	seq, docs, err := src.SnapshotDocs()
	if err != nil {
		t.Fatal(err)
	}
	fresh := newTestDB(t)
	if err := fresh.ApplySnapshot(seq, docs); err != nil {
		t.Fatal(err)
	}
	if fresh.Checksum() != src.Checksum() {
		t.Error("snapshot transfer lost collection state")
	}
	if got, want := fresh.CollectionCounts(), src.CollectionCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot counts = %v, want %v", got, want)
	}
}
