package vecdb

import (
	"fmt"
	"math"
	"unsafe"
)

// QuantKind selects the stored-vector representation an index scans.
type QuantKind int

const (
	// QuantNone stores and scans full float32 vectors (exact).
	QuantNone QuantKind = iota
	// QuantInt8 stores an int8 scalar-quantized mirror of every vector
	// (one byte per dimension plus per-vector scale/offset) and scans
	// it with integer kernels, re-ranking the top candidates against
	// the exact float32 rows.
	QuantInt8
)

// String names the kind for flags, /stats and reports.
func (k QuantKind) String() string {
	switch k {
	case QuantNone:
		return "none"
	case QuantInt8:
		return "int8"
	default:
		return fmt.Sprintf("quant(%d)", int(k))
	}
}

// ParseQuantKind parses the flag form produced by String.
func ParseQuantKind(s string) (QuantKind, error) {
	switch s {
	case "", "none":
		return QuantNone, nil
	case "int8":
		return QuantInt8, nil
	default:
		return 0, fmt.Errorf("vecdb: unknown quantization %q (want none or int8)", s)
	}
}

// QuantConfig tunes an index's quantized scan path.
type QuantConfig struct {
	// Kind selects the representation; QuantNone disables quantization.
	Kind QuantKind
	// RerankK is how many quantized-scan candidates are re-scored
	// against the exact float32 vectors before the top-k is returned.
	// It is clamped up to k at query time; <= 0 means the default of
	// 4·k.
	RerankK int
}

// rerankDepth resolves the candidate depth for a top-k query.
func (c QuantConfig) rerankDepth(k int) int {
	if c.RerankK <= 0 {
		return 4 * k
	}
	if c.RerankK < k {
		return k
	}
	return c.RerankK
}

// quantParams are one stored vector's affine dequantization
// parameters: v̂[d] = Offset + Scale·code[d].
type quantParams struct {
	scale  float32
	offset float32
}

// quantizeRow computes the int8 codes and affine parameters for vec,
// writing len(vec) codes into codes. The mapping spreads [min, max]
// over the 256 code points, so the per-element reconstruction error is
// at most (max−min)/510 (half a quantization step).
func quantizeRow(vec []float32, codes []int8) quantParams {
	mn, mx := minMax(vec)
	if !(mx > mn) {
		// Constant vector (or empty): a zero scale makes dequantization
		// exact regardless of the codes.
		for i := range codes {
			codes[i] = 0
		}
		return quantParams{scale: 0, offset: mn}
	}
	// The gap and the per-element offsets are computed in float64: for
	// extreme inputs mx-mn overflows float32 (to +Inf) even though the
	// resulting scale and offset are representable.
	gap := float64(mx) - float64(mn)
	scale := float32(gap / 255)
	inv := 255 / gap
	for i, v := range vec {
		q := int32((float64(v)-float64(mn))*inv + 0.5)
		if q > 255 {
			q = 255
		}
		if q < 0 {
			q = 0
		}
		codes[i] = int8(q - 128)
	}
	return quantParams{scale: scale, offset: float32(float64(mn) + 128*float64(scale))}
}

// dequantizeRow reconstructs the float32 approximation of a code row.
// The affine step runs in float64 and clamps to the float32 range:
// near ±MaxFloat32 the rounding of offset+scale·code can land just
// outside it even though the original element was representable.
func dequantizeRow(codes []int8, p quantParams, out []float32) {
	scale, off := float64(p.scale), float64(p.offset)
	for i, c := range codes {
		v := off + scale*float64(c)
		if v > math.MaxFloat32 {
			v = math.MaxFloat32
		} else if v < -math.MaxFloat32 {
			v = -math.MaxFloat32
		}
		out[i] = float32(v)
	}
}

// codeBlockRows is the number of vector rows per aligned code block.
// At dim 256 a block is 128 KiB of codes — large enough that block
// boundaries are irrelevant to scan cost, small enough that growth
// never copies code memory (blocks are immutable once allocated).
const codeBlockRows = 512

// codeBlockAlign aligns every block's first row on a cache-line
// boundary so the scan's sequential prefetch starts clean.
const codeBlockAlign = 64

// alignedInt8 allocates an int8 slice of the given size whose first
// element sits on a codeBlockAlign boundary.
func alignedInt8(size int) []int8 {
	buf := make([]int8, size+codeBlockAlign)
	addr := uintptr(unsafe.Pointer(&buf[0]))
	pad := int((codeBlockAlign - addr%codeBlockAlign) % codeBlockAlign)
	return buf[pad : pad+size : pad+size]
}

// blockedCodes is the struct-of-arrays quantized mirror of a vector
// row set: int8 code rows packed contiguously into 64-byte-aligned
// blocks, with per-row scale/offset in parallel flat slices. Rows are
// addressed by the same dense row index as the float storage, so
// swap-with-last deletion moves one code row and one parameter pair.
type blockedCodes struct {
	dim     int
	n       int
	blocks  [][]int8
	scales  []float32
	offsets []float32
}

func newBlockedCodes(dim int) *blockedCodes {
	return &blockedCodes{dim: dim}
}

// row returns the code row for a dense row index.
func (b *blockedCodes) row(i int) []int8 {
	blk := b.blocks[i/codeBlockRows]
	start := (i % codeBlockRows) * b.dim
	return blk[start : start+b.dim : start+b.dim]
}

// grow ensures capacity for row n.
func (b *blockedCodes) grow(n int) {
	for n >= len(b.blocks)*codeBlockRows {
		b.blocks = append(b.blocks, alignedInt8(codeBlockRows*b.dim))
	}
}

// append quantizes vec into the next row.
func (b *blockedCodes) append(vec []float32) {
	b.grow(b.n)
	p := quantizeRow(vec, b.row(b.n))
	b.scales = append(b.scales, p.scale)
	b.offsets = append(b.offsets, p.offset)
	b.n++
}

// set re-quantizes vec into an existing row.
func (b *blockedCodes) set(i int, vec []float32) {
	p := quantizeRow(vec, b.row(i))
	b.scales[i] = p.scale
	b.offsets[i] = p.offset
}

// moveRow copies row src over row dst (swap-with-last deletion).
func (b *blockedCodes) moveRow(dst, src int) {
	copy(b.row(dst), b.row(src))
	b.scales[dst] = b.scales[src]
	b.offsets[dst] = b.offsets[src]
}

// truncate drops the last row. One empty trailing block is kept as
// hysteresis; blocks beyond it are released.
func (b *blockedCodes) truncate() {
	b.n--
	b.scales = b.scales[:b.n]
	b.offsets = b.offsets[:b.n]
	for len(b.blocks) >= 2 && (len(b.blocks)-2)*codeBlockRows >= b.n {
		b.blocks[len(b.blocks)-1] = nil
		b.blocks = b.blocks[:len(b.blocks)-1]
	}
}
