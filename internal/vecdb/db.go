package vecdb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Document is one stored passage with optional caller metadata.
type Document struct {
	ID   int64
	Text string
	Meta map[string]string
}

// DB is the vectorized document database: it embeds added passages,
// indexes the vectors, and answers nearest-neighbour text queries —
// the retrieval substrate behind the paper's RAG flow (Fig. 2 (a)).
// All methods are safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	embed  Embedder
	index  Index
	docs   map[int64]Document
	nextID int64
}

// New creates a database over the given embedder and index. The index
// must accept vectors of the embedder's dimension.
func New(embed Embedder, index Index) (*DB, error) {
	if embed == nil || index == nil {
		return nil, errors.New("vecdb: nil embedder or index")
	}
	return &DB{embed: embed, index: index, docs: map[int64]Document{}, nextID: 1}, nil
}

// NewDefault builds a DB with a hashed embedder and a flat cosine
// index — the zero-configuration path used by the examples.
func NewDefault(dim int) (*DB, error) {
	e, err := NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	x, err := NewFlatIndex(Cosine, dim)
	if err != nil {
		return nil, err
	}
	return New(e, x)
}

// Len returns the number of stored documents.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.docs)
}

// Add embeds and stores text, returning the assigned document ID.
func (db *DB) Add(text string, meta map[string]string) (int64, error) {
	vec, err := db.embed.Embed(text)
	if err != nil {
		return 0, fmt.Errorf("vecdb: embed: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.nextID
	db.nextID++
	if err := db.index.Add(id, vec); err != nil {
		return 0, fmt.Errorf("vecdb: index add: %w", err)
	}
	var metaCopy map[string]string
	if meta != nil {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	db.docs[id] = Document{ID: id, Text: text, Meta: metaCopy}
	return id, nil
}

// AddWithID embeds and stores text under a caller-assigned ID,
// replacing any existing document with that ID. It exists for external
// routers (e.g. a shard router) that allocate IDs globally; mixing it
// with Add is safe because the internal counter is advanced past every
// caller-assigned ID.
func (db *DB) AddWithID(id int64, text string, meta map[string]string) error {
	if id <= 0 {
		return fmt.Errorf("vecdb: document ID must be positive, got %d", id)
	}
	vec, err := db.embed.Embed(text)
	if err != nil {
		return fmt.Errorf("vecdb: embed: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.index.Add(id, vec); err != nil {
		return fmt.Errorf("vecdb: index add: %w", err)
	}
	var metaCopy map[string]string
	if meta != nil {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	db.docs[id] = Document{ID: id, Text: text, Meta: metaCopy}
	if id >= db.nextID {
		db.nextID = id + 1
	}
	return nil
}

// AddAll stores a batch of passages, returning their IDs in order.
func (db *DB) AddAll(texts []string) ([]int64, error) {
	ids := make([]int64, 0, len(texts))
	for _, t := range texts {
		id, err := db.Add(t, nil)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// ErrNotFound reports a missing document ID.
var ErrNotFound = errors.New("vecdb: document not found")

// Get returns the stored document for id.
func (db *DB) Get(id int64) (Document, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.docs[id]
	if !ok {
		return Document{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return d, nil
}

// Delete removes a document; deleting an absent ID returns
// ErrNotFound.
func (db *DB) Delete(id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.docs[id]; !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	db.index.Remove(id)
	delete(db.docs, id)
	return nil
}

// Hit is one retrieved document with its similarity score.
type Hit struct {
	Document
	Score float64
}

// Search embeds the query and returns the top-k most similar
// documents, best first.
func (db *DB) Search(query string, k int) ([]Hit, error) {
	vec, err := db.embed.Embed(query)
	if err != nil {
		return nil, fmt.Errorf("vecdb: embed query: %w", err)
	}
	return db.SearchVector(vec, k)
}

// SearchVector answers a query that is already embedded. A shard
// router uses this to embed a query once and fan the same vector out
// to every shard.
func (db *DB) SearchVector(vec []float32, k int) ([]Hit, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	results, err := db.index.Search(vec, k)
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, 0, len(results))
	for _, r := range results {
		doc, ok := db.docs[r.ID]
		if !ok {
			continue // index/docs raced on a delete; skip the orphan
		}
		hits = append(hits, Hit{Document: doc, Score: r.Score})
	}
	return hits, nil
}

// Embedder exposes the database's embedder so callers sharing several
// DBs (shards) can embed queries once.
func (db *DB) Embedder() Embedder { return db.embed }

// snapshot is the gob wire form of a DB.
type snapshot struct {
	Version int
	Docs    []Document
	NextID  int64
}

// currentVersion is bumped when the wire form changes incompatibly.
const currentVersion = 1

// Save serializes the database's documents. Vectors are not stored:
// embedders are deterministic, so Load re-embeds, which keeps the file
// format independent of embedder internals.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Version: currentVersion, NextID: db.nextID}
	for _, d := range db.docs {
		snap.Docs = append(snap.Docs, d)
	}
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vecdb: save: %w", err)
	}
	return nil
}

// SaveFile writes the database to path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vecdb: save: %w", err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load restores documents saved by Save into a fresh DB built on the
// given embedder and index.
func Load(r io.Reader, embed Embedder, index Index) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecdb: load: %w", err)
	}
	if snap.Version != currentVersion {
		return nil, fmt.Errorf("vecdb: unsupported snapshot version %d", snap.Version)
	}
	db, err := New(embed, index)
	if err != nil {
		return nil, err
	}
	for _, d := range snap.Docs {
		vec, err := embed.Embed(d.Text)
		if err != nil {
			return nil, fmt.Errorf("vecdb: re-embed doc %d: %w", d.ID, err)
		}
		if err := index.Add(d.ID, vec); err != nil {
			return nil, err
		}
		db.docs[d.ID] = d
	}
	db.nextID = snap.NextID
	return db, nil
}

// LoadFile restores a database from path.
func LoadFile(path string, embed Embedder, index Index) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vecdb: load: %w", err)
	}
	defer f.Close()
	return Load(f, embed, index)
}
