package vecdb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/storage"
)

// DefaultCollection is the collection documents belong to when the
// caller names none — including every document written before
// collections existed, so a pre-collection WAL or checkpoint recovers
// into it unchanged.
const DefaultCollection = "default"

// NormalizeCollection maps the empty collection name onto
// DefaultCollection. Every write path normalizes before storing, so a
// stored document's Collection is never empty and checksums agree
// between pre-collection replays and fresh default-collection writes.
func NormalizeCollection(c string) string {
	if c == "" {
		return DefaultCollection
	}
	return c
}

// Document is one stored passage with optional caller metadata,
// scoped to a named collection (tenant).
type Document struct {
	ID         int64
	Collection string
	Text       string
	Meta       map[string]string
}

// DB is the vectorized document database: it embeds added passages,
// indexes the vectors, and answers nearest-neighbour text queries —
// the retrieval substrate behind the paper's RAG flow (Fig. 2 (a)).
// All methods are safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	embed  Embedder
	index  Index
	docs   map[int64]Document
	nextID int64
	// seq is the last applied mutation sequence number (see Seq); it
	// advances only through the journaled mutation paths
	// (Apply/ApplyAll/ApplyResync/ApplySnapshot), never through the
	// primitive Add/Delete calls, so rollback helpers can undo state
	// without disturbing the stream numbering.
	seq uint64
	// check is the XOR of every stored document's docHash — the
	// order-independent content checksum behind Checksum.
	check uint64
	// colls counts stored documents per (normalized) collection,
	// maintained by addLocked/deleteLocked so CollectionCounts is O(1)
	// in the document count.
	colls map[string]int
}

// New creates a database over the given embedder and index. The index
// must accept vectors of the embedder's dimension.
func New(embed Embedder, index Index) (*DB, error) {
	if embed == nil || index == nil {
		return nil, errors.New("vecdb: nil embedder or index")
	}
	return &DB{embed: embed, index: index, docs: map[int64]Document{}, colls: map[string]int{}, nextID: 1}, nil
}

// NewDefault builds a DB with a hashed embedder and a flat cosine
// index — the zero-configuration path used by the examples.
func NewDefault(dim int) (*DB, error) {
	e, err := NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	x, err := NewFlatIndex(Cosine, dim)
	if err != nil {
		return nil, err
	}
	return New(e, x)
}

// Len returns the number of stored documents.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.docs)
}

// Add embeds and stores text in the default collection, returning the
// assigned document ID.
func (db *DB) Add(text string, meta map[string]string) (int64, error) {
	return db.AddIn("", text, meta)
}

// AddIn embeds and stores text in the named collection ("" means the
// default collection), returning the assigned document ID.
func (db *DB) AddIn(collection, text string, meta map[string]string) (int64, error) {
	vec, err := db.embed.Embed(text)
	if err != nil {
		return 0, fmt.Errorf("vecdb: embed: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.nextID
	if err := db.addLocked(id, collection, text, meta, vec); err != nil {
		return 0, err
	}
	return id, nil
}

// AddWithID embeds and stores text under a caller-assigned ID in the
// default collection, replacing any existing document with that ID. It
// exists for external routers (e.g. a shard router) that allocate IDs
// globally; mixing it with Add is safe because the internal counter is
// advanced past every caller-assigned ID.
func (db *DB) AddWithID(id int64, text string, meta map[string]string) error {
	return db.AddDocument(Document{ID: id, Text: text, Meta: meta})
}

// AddDocument is AddWithID carrying the full document — including its
// collection — so restore paths (rollback after a failed batch)
// reinstall a document exactly as it was stored.
func (db *DB) AddDocument(d Document) error {
	if d.ID <= 0 {
		return fmt.Errorf("vecdb: document ID must be positive, got %d", d.ID)
	}
	vec, err := db.embed.Embed(d.Text)
	if err != nil {
		return fmt.Errorf("vecdb: embed: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.addLocked(d.ID, d.Collection, d.Text, d.Meta, vec)
}

// addLocked installs an embedded document under a caller-assigned ID
// and advances the ID counter past it. The collection is normalized
// here — the single chokepoint every write path funnels through, so
// stored documents never carry an empty collection. Callers hold
// db.mu.
func (db *DB) addLocked(id int64, collection, text string, meta map[string]string, vec []float32) error {
	if err := db.index.Add(id, vec); err != nil {
		return fmt.Errorf("vecdb: index add: %w", err)
	}
	var metaCopy map[string]string
	if meta != nil {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	if old, ok := db.docs[id]; ok {
		db.check ^= docHash(old) // replacement: retire the old content hash
		db.colls[old.Collection]--
		if db.colls[old.Collection] == 0 {
			delete(db.colls, old.Collection)
		}
	}
	doc := Document{ID: id, Collection: NormalizeCollection(collection), Text: text, Meta: metaCopy}
	db.docs[id] = doc
	db.check ^= docHash(doc)
	db.colls[doc.Collection]++
	if id >= db.nextID {
		db.nextID = id + 1
	}
	return nil
}

// AddAll stores a batch of passages, returning their IDs in order.
func (db *DB) AddAll(texts []string) ([]int64, error) {
	ids := make([]int64, 0, len(texts))
	for _, t := range texts {
		id, err := db.Add(t, nil)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// ErrNotFound reports a missing document ID.
var ErrNotFound = errors.New("vecdb: document not found")

// Get returns the stored document for id.
func (db *DB) Get(id int64) (Document, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.docs[id]
	if !ok {
		return Document{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return d, nil
}

// Delete removes a document; deleting an absent ID returns
// ErrNotFound.
func (db *DB) Delete(id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteLocked(id, "")
}

// DeleteIn removes a document only if it belongs to the named
// collection — the checked delete a tenant-scoped API needs, so a
// caller cannot remove another tenant's document by guessing its ID.
// A mismatched collection reports ErrNotFound, indistinguishable from
// an absent ID.
func (db *DB) DeleteIn(collection string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteLocked(id, collection)
}

// deleteLocked removes a document; a non-empty collection makes the
// delete checked (the stored document must belong to it). Callers
// hold db.mu.
func (db *DB) deleteLocked(id int64, collection string) error {
	old, ok := db.docs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if collection != "" && old.Collection != NormalizeCollection(collection) {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	db.index.Remove(id)
	delete(db.docs, id)
	db.check ^= docHash(old)
	db.colls[old.Collection]--
	if db.colls[old.Collection] == 0 {
		delete(db.colls, old.Collection)
	}
	return nil
}

// CollectionCounts reports the stored document count per collection.
func (db *DB) CollectionCounts() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]int, len(db.colls))
	for c, n := range db.colls {
		out[c] = n
	}
	return out
}

// NextID reports the next ID the internal counter would assign. A
// recovering shard router uses it to restore its global allocator past
// every replayed document.
func (db *DB) NextID() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nextID
}

// Hit is one retrieved document with its similarity score.
type Hit struct {
	Document
	Score float64
}

// Search embeds the query and returns the top-k most similar
// documents, best first.
func (db *DB) Search(query string, k int) ([]Hit, error) {
	vec, err := db.embed.Embed(query)
	if err != nil {
		return nil, fmt.Errorf("vecdb: embed query: %w", err)
	}
	return db.SearchVector(vec, k)
}

// SearchVector answers a query that is already embedded. A shard
// router uses this to embed a query once and fan the same vector out
// to every shard.
func (db *DB) SearchVector(vec []float32, k int) ([]Hit, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	results, err := db.index.Search(vec, k)
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, 0, len(results))
	for _, r := range results {
		doc, ok := db.docs[r.ID]
		if !ok {
			continue // index/docs raced on a delete; skip the orphan
		}
		hits = append(hits, Hit{Document: doc, Score: r.Score})
	}
	return hits, nil
}

// Filter restricts a search to documents in one collection and/or
// matching a set of metadata key=value predicates (all must match).
// The zero Filter matches every document.
type Filter struct {
	// Collection, when non-empty, keeps only documents in that
	// collection (normalized, so "" in a stored doc never occurs and
	// "default" matches pre-collection data).
	Collection string
	// Meta keeps only documents whose metadata carries every listed
	// key with exactly the listed value.
	Meta map[string]string
}

// IsZero reports whether the filter matches everything.
func (f Filter) IsZero() bool { return f.Collection == "" && len(f.Meta) == 0 }

// Match reports whether d passes the filter.
func (f Filter) Match(d Document) bool {
	if f.Collection != "" && d.Collection != NormalizeCollection(f.Collection) {
		return false
	}
	for k, v := range f.Meta {
		if d.Meta[k] != v {
			return false
		}
	}
	return true
}

// SearchVectorFiltered is SearchVector restricted to documents passing
// the filter. The index is probed with an adaptively widened k
// (starting at 4k, doubling until k survivors or the index is
// exhausted), then survivors are trimmed to k — so on an exact index
// the result is byte-identical to searching a store that holds only
// the matching documents. On approximate indexes (IVF/HNSW) the same
// over-fetch applies within the index's candidate set.
func (db *DB) SearchVectorFiltered(vec []float32, k int, f Filter) ([]Hit, error) {
	if f.IsZero() {
		return db.SearchVector(vec, k)
	}
	if k <= 0 {
		return nil, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	fetch := k * 4
	for {
		results, err := db.index.Search(vec, fetch)
		if err != nil {
			return nil, err
		}
		hits := make([]Hit, 0, k)
		for _, r := range results {
			doc, ok := db.docs[r.ID]
			if !ok || !f.Match(doc) {
				continue
			}
			hits = append(hits, Hit{Document: doc, Score: r.Score})
			if len(hits) == k {
				break
			}
		}
		// Enough survivors, or the index returned everything it has —
		// widening further cannot change the answer.
		if len(hits) == k || len(results) < fetch {
			return hits, nil
		}
		fetch *= 2
	}
}

// Embedder exposes the database's embedder so callers sharing several
// DBs (shards) can embed queries once.
func (db *DB) Embedder() Embedder { return db.embed }

// SetStageObserver forwards a stage-timing observer (fn(stage,
// seconds)) to the underlying index when it reports internal stages
// (StageObservable); on other indexes it is a no-op. A nil fn
// detaches.
func (db *DB) SetStageObserver(fn func(stage string, seconds float64)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if so, ok := db.index.(StageObservable); ok {
		so.SetStageObserver(fn)
	}
}

// IndexMemory reports the index's storage footprint when the index
// accounts one (MemoryReporter); ok is false otherwise.
func (db *DB) IndexMemory() (IndexMemory, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if mr, ok := db.index.(MemoryReporter); ok {
		return mr.Memory(), true
	}
	return IndexMemory{}, false
}

// snapshot is the gob wire form of a DB. Seq carries the last applied
// mutation sequence number, so a checkpoint pins the journal position
// its contents are current as of; snapshots written before seq
// tracking decode with Seq 0 (gob treats the missing field as zero)
// and the WAL replay on top re-derives the position.
type snapshot struct {
	Version int
	Docs    []Document
	NextID  int64
	Seq     uint64
}

// currentVersion is bumped when the wire form changes incompatibly. It
// doubles as the payload version stamped into checkpoint files by the
// storage codec.
const currentVersion = 1

// SnapshotVersion is the checkpoint payload version written by
// SaveFile and accepted by LoadFile.
const SnapshotVersion uint32 = currentVersion

// Save serializes the database's documents. Vectors are not stored:
// embedders are deterministic, so Load re-embeds, which keeps the file
// format independent of embedder internals.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Version: currentVersion, NextID: db.nextID, Seq: db.seq}
	for _, d := range db.docs {
		snap.Docs = append(snap.Docs, d)
	}
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vecdb: save: %w", err)
	}
	return nil
}

// SaveFile checkpoints the database to path through the shared storage
// codec: the gob payload from Save is framed with a magic, version and
// checksum, written to a temp file and atomically renamed into place,
// so a crash mid-checkpoint never leaves a half-written file where a
// snapshot should be.
func (db *DB) SaveFile(path string) error {
	return storage.WriteSnapshot(path, SnapshotVersion, db.Save)
}

// Load restores documents saved by Save into a fresh DB built on the
// given embedder and index. Re-embedding runs on a concurrent worker
// pool, so recovery scales with cores.
func Load(r io.Reader, embed Embedder, index Index) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecdb: load: %w", err)
	}
	if snap.Version != currentVersion {
		return nil, fmt.Errorf("vecdb: unsupported snapshot version %d", snap.Version)
	}
	db, err := New(embed, index)
	if err != nil {
		return nil, err
	}
	texts := make([]string, len(snap.Docs))
	for i, d := range snap.Docs {
		texts[i] = d.Text
	}
	vecs, err := embedAll(embed, texts)
	if err != nil {
		return nil, err
	}
	for i, d := range snap.Docs {
		if err := index.Add(d.ID, vecs[i]); err != nil {
			return nil, err
		}
		// Pre-collection snapshots decode with Collection "" (gob's
		// missing-field zero); normalize so they land in the default
		// collection with the same checksum a fresh write produces.
		d.Collection = NormalizeCollection(d.Collection)
		db.docs[d.ID] = d
		db.check ^= docHash(d)
		db.colls[d.Collection]++
	}
	db.nextID = snap.NextID
	db.seq = snap.Seq
	return db, nil
}

// LoadFile restores a database from a checkpoint written by SaveFile,
// verifying the codec frame (magic, version, checksum) before
// decoding. A missing file surfaces as a not-exist error so callers
// can cold-start.
func LoadFile(path string, embed Embedder, index Index) (*DB, error) {
	var db *DB
	err := storage.ReadSnapshot(path, SnapshotVersion, func(r io.Reader) error {
		d, err := Load(r, embed, index)
		db = d
		return err
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}
