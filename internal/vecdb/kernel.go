package vecdb

// Scan kernels for the quantized hot path. The asymmetric distance
// (float32 query vs int8 stored codes) reduces every metric to one
// integer dot product per stored vector:
//
//	v̂[d] = offset + scale·code[d]            (per-vector affine dequant)
//	⟨q,v̂⟩ = qscale·scale·Σ qc[d]·code[d] + offset·Σ q[d]
//	‖q−v̂‖² = ‖q‖² − 2⟨q,v̂⟩ + ‖v‖²           (norms precomputed exactly)
//	cos(q,v̂) = ⟨q,v̂⟩ / (‖q‖·‖v‖)
//
// so dotInt8 below is the entire inner loop: int8 products accumulated
// in int32 lanes, manually unrolled 8 wide with the bounds checks
// hoisted by full-slice re-slicing. dotInt8Ref is the pure-Go scalar
// fallback; the kernel-equivalence test pins them to identical results
// on every length, including tails that are not a multiple of the
// unroll width.

// dotInt8 returns Σ a[i]·b[i] over int8 codes with int32 accumulation.
// Slices must be the same length; extra elements of b are ignored.
func dotInt8(a, b []int8) int32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var acc0, acc1, acc2, acc3 int32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		// Full-slice expressions pin the bounds so the compiler checks
		// once per iteration instead of once per element.
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		acc0 += int32(x[0])*int32(y[0]) + int32(x[4])*int32(y[4])
		acc1 += int32(x[1])*int32(y[1]) + int32(x[5])*int32(y[5])
		acc2 += int32(x[2])*int32(y[2]) + int32(x[6])*int32(y[6])
		acc3 += int32(x[3])*int32(y[3]) + int32(x[7])*int32(y[7])
	}
	var tail int32
	for ; i < len(a); i++ {
		tail += int32(a[i]) * int32(b[i])
	}
	return acc0 + acc1 + acc2 + acc3 + tail
}

// dotInt8Ref is the scalar reference implementation of dotInt8. Integer
// accumulation is exact, so the unrolled kernel must match it bit for
// bit on every input.
func dotInt8Ref(a, b []int8) int32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var acc int32
	for i := range a {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

// l2Int8 returns Σ (a[i]−b[i])² over int8 codes with int32
// accumulation — the symmetric code-space distance, usable when both
// sides share quantization parameters (e.g. comparing two stored rows).
// The asymmetric query path derives L2 from dotInt8 and exact norms
// instead, which avoids quantizing the query twice.
func l2Int8(a, b []int8) int32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var acc0, acc1, acc2, acc3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		d0 := int32(x[0]) - int32(y[0])
		d1 := int32(x[1]) - int32(y[1])
		d2 := int32(x[2]) - int32(y[2])
		d3 := int32(x[3]) - int32(y[3])
		acc0 += d0 * d0
		acc1 += d1 * d1
		acc2 += d2 * d2
		acc3 += d3 * d3
	}
	var tail int32
	for ; i < len(a); i++ {
		d := int32(a[i]) - int32(b[i])
		tail += d * d
	}
	return acc0 + acc1 + acc2 + acc3 + tail
}

// l2Int8Ref is the scalar reference implementation of l2Int8.
func l2Int8Ref(a, b []int8) int32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var acc int32
	for i := range a {
		d := int32(a[i]) - int32(b[i])
		acc += d * d
	}
	return acc
}

// minMax returns the smallest and largest element of v; (0,0) when v is
// empty.
func minMax(v []float32) (mn, mx float32) {
	if len(v) == 0 {
		return 0, 0
	}
	mn, mx = v[0], v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}
