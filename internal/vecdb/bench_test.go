package vecdb

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func randomVectors(n, dim int, seed uint64) [][]float32 {
	src := rng.New(seed)
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(src.NormFloat64())
		}
		NormalizeInPlace(v)
		out[i] = v
	}
	return out
}

func BenchmarkFlatSearch(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const dim = 128
			x, err := NewFlatIndex(Cosine, dim)
			if err != nil {
				b.Fatal(err)
			}
			vecs := randomVectors(n, dim, 1)
			for i, v := range vecs {
				if err := x.Add(int64(i), v); err != nil {
					b.Fatal(err)
				}
			}
			queries := randomVectors(64, dim, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := x.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	const dim, n = 128, 10000
	vecs := randomVectors(n, dim, 1)
	for _, nprobe := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("nprobe=%d", nprobe), func(b *testing.B) {
			x, err := NewIVFIndex(Cosine, dim, 64, nprobe)
			if err != nil {
				b.Fatal(err)
			}
			if err := x.Train(vecs[:2000], 8); err != nil {
				b.Fatal(err)
			}
			for i, v := range vecs {
				if err := x.Add(int64(i), v); err != nil {
					b.Fatal(err)
				}
			}
			queries := randomVectors(64, dim, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := x.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashedEmbed(b *testing.B) {
	e, err := NewHashedEmbedder(256)
	if err != nil {
		b.Fatal(err)
	}
	text := "Full-time employees are entitled to 14 days of paid annual leave per year."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Embed(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTFIDFEmbed(b *testing.B) {
	e, err := NewTFIDFEmbedder(256)
	if err != nil {
		b.Fatal(err)
	}
	corpus := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		corpus = append(corpus, fmt.Sprintf("document %d about leave, uniforms and training hours", i))
	}
	if err := e.Fit(corpus); err != nil {
		b.Fatal(err)
	}
	text := "Full-time employees are entitled to 14 days of paid annual leave per year."
	if _, err := e.Embed(text); err != nil {
		b.Fatal(err) // warm projection cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Embed(text); err != nil {
			b.Fatal(err)
		}
	}
}
