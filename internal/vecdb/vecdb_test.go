package vecdb

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSimilarityMetrics(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	c := []float32{2, 0}

	if s, _ := Similarity(Cosine, a, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("cos(a,a) = %v", s)
	}
	if s, _ := Similarity(Cosine, a, b); math.Abs(s) > 1e-9 {
		t.Errorf("cos(a,b) = %v", s)
	}
	if s, _ := Similarity(Cosine, a, c); math.Abs(s-1) > 1e-9 {
		t.Errorf("cosine must be scale invariant: %v", s)
	}
	if s, _ := Similarity(Dot, a, c); s != 2 {
		t.Errorf("dot = %v", s)
	}
	if s, _ := Similarity(L2, a, c); s != -1 {
		t.Errorf("L2 score = %v, want -1 (negated squared distance)", s)
	}
	if _, err := Similarity(Cosine, a, []float32{1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch err = %v", err)
	}
	// Zero vector: cosine degrades to 0, no NaN.
	if s, _ := Similarity(Cosine, []float32{0, 0}, a); s != 0 {
		t.Errorf("cos(0,a) = %v", s)
	}
}

func TestNormalizeInPlace(t *testing.T) {
	v := []float32{3, 4}
	NormalizeInPlace(v)
	if math.Abs(norm(v)-1) > 1e-6 {
		t.Errorf("norm after normalize = %v", norm(v))
	}
	z := []float32{0, 0}
	NormalizeInPlace(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector mutated")
	}
}

func TestHashedEmbedder(t *testing.T) {
	e, err := NewHashedEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 64 {
		t.Errorf("Dim = %d", e.Dim())
	}
	a, _ := e.Embed("annual leave policy for employees")
	b, _ := e.Embed("annual leave policy for employees")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	// Related text closer than unrelated text.
	c, _ := e.Embed("employees annual leave days")
	d, _ := e.Embed("margherita pizza ingredients basil")
	sc, _ := Similarity(Cosine, a, c)
	sd, _ := Similarity(Cosine, a, d)
	if sc <= sd {
		t.Errorf("related %v not above unrelated %v", sc, sd)
	}
	if _, err := NewHashedEmbedder(0); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestTFIDFEmbedder(t *testing.T) {
	corpus := []string{
		"the probation period lasts three months",
		"employees receive annual leave every year",
		"the store opens at nine and closes at five",
		"uniforms must be worn on the shop floor",
	}
	// 256 dims keep random-projection cross-talk well below the
	// shared-term signal for these short passages.
	e, err := NewTFIDFEmbedder(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Embed("anything"); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted embed err = %v, want ErrNotFitted", err)
	}
	if err := e.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	if !e.Fitted() {
		t.Error("Fitted() = false after Fit")
	}
	q, _ := e.Embed("how long is probation")
	best, bestScore := -1, -2.0
	for i, doc := range corpus {
		v, err := e.Embed(doc)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := Similarity(Cosine, q, v)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		t.Errorf("probation query retrieved corpus[%d], want corpus[0]", best)
	}
	if err := e.Fit(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	// Out-of-vocabulary queries still embed.
	if v, err := e.Embed("zygomorphic flowers"); err != nil || len(v) != 256 {
		t.Errorf("OOV embed failed: %v", err)
	}
}

func newFlat(t *testing.T, dim int) *FlatIndex {
	t.Helper()
	x, err := NewFlatIndex(Cosine, dim)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestFlatIndexBasic(t *testing.T) {
	x := newFlat(t, 2)
	vecs := map[int64][]float32{
		1: {1, 0}, 2: {0, 1}, 3: {0.9, 0.1},
	}
	for id, v := range vecs {
		if err := x.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	if x.Len() != 3 {
		t.Fatalf("Len = %d", x.Len())
	}
	res, err := x.Search([]float32{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 3 {
		t.Errorf("results = %+v, want ids 1,3", res)
	}
	// k larger than index size returns everything.
	res, _ = x.Search([]float32{1, 0}, 10)
	if len(res) != 3 {
		t.Errorf("oversized k returned %d", len(res))
	}
	// Descending score order.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Error("results not sorted")
		}
	}
}

func TestFlatIndexErrors(t *testing.T) {
	x := newFlat(t, 2)
	if err := x.Add(1, []float32{1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("add dim err = %v", err)
	}
	if _, err := x.Search([]float32{1, 0}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := x.Search([]float32{1}, 1); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("query dim err = %v", err)
	}
}

func TestFlatIndexUpdateAndRemove(t *testing.T) {
	x := newFlat(t, 2)
	x.Add(1, []float32{1, 0})
	x.Add(1, []float32{0, 1}) // replace
	if x.Len() != 1 {
		t.Fatalf("Len after replace = %d", x.Len())
	}
	res, _ := x.Search([]float32{0, 1}, 1)
	if res[0].ID != 1 || res[0].Score < 0.99 {
		t.Errorf("replacement not effective: %+v", res)
	}
	if !x.Remove(1) {
		t.Error("Remove returned false")
	}
	if x.Remove(1) {
		t.Error("second Remove returned true")
	}
	if x.Len() != 0 {
		t.Errorf("Len after remove = %d", x.Len())
	}
}

// TestIVFMatchesFlatWithFullProbe: probing every cluster makes IVF an
// exact index; it must agree with the flat scan.
func TestIVFMatchesFlatWithFullProbe(t *testing.T) {
	const dim, n = 16, 300
	src := rng.New(99)
	flat := newFlat(t, dim)
	ivf, err := NewIVFIndex(Cosine, dim, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sample [][]float32
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(src.NormFloat64())
		}
		sample = append(sample, v)
	}
	if err := ivf.Train(sample, 10); err != nil {
		t.Fatal(err)
	}
	for i, v := range sample {
		if err := flat.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
		if err := ivf.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, dim)
		for d := range q {
			q[d] = float32(src.NormFloat64())
		}
		fr, err := flat.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := ivf.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr {
			if fr[i].ID != ir[i].ID {
				t.Fatalf("trial %d rank %d: flat %d vs ivf %d", trial, i, fr[i].ID, ir[i].ID)
			}
		}
	}
}

func TestIVFPartialProbeRecall(t *testing.T) {
	const dim, n = 16, 400
	src := rng.New(7)
	flat := newFlat(t, dim)
	ivf, err := NewIVFIndex(Cosine, dim, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sample [][]float32
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(src.NormFloat64())
		}
		sample = append(sample, v)
	}
	if err := ivf.Train(sample, 15); err != nil {
		t.Fatal(err)
	}
	for i, v := range sample {
		flat.Add(int64(i), v)
		ivf.Add(int64(i), v)
	}
	hits, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := sample[src.Intn(n)] // on-manifold queries
		fr, _ := flat.Search(q, 10)
		ir, _ := ivf.Search(q, 10)
		want := map[int64]bool{}
		for _, r := range fr {
			want[r.ID] = true
		}
		for _, r := range ir {
			if want[r.ID] {
				hits++
			}
		}
		total += len(fr)
	}
	recall := float64(hits) / float64(total)
	if recall < 0.5 {
		t.Errorf("IVF nprobe=4/16 recall = %v, want ≥0.5", recall)
	}
}

func TestIVFLifecycleErrors(t *testing.T) {
	ivf, err := NewIVFIndex(Cosine, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ivf.Add(1, []float32{1, 0, 0, 0}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained add err = %v", err)
	}
	if _, err := ivf.Search([]float32{1, 0, 0, 0}, 1); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained search err = %v", err)
	}
	if _, err := NewIVFIndex(Cosine, 4, 2, 3); err == nil {
		t.Error("nprobe > nlist accepted")
	}
	// Tiny training sample shrinks nlist instead of failing.
	if err := ivf.Train([][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}, 5); err != nil {
		t.Fatal(err)
	}
	if !ivf.Trained() {
		t.Error("Trained() = false")
	}
	if err := ivf.Add(1, []float32{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ivf.Add(1, []float32{0, 1, 0, 0}); err != nil {
		t.Fatal(err) // replace
	}
	if ivf.Len() != 1 {
		t.Errorf("Len after replace = %d", ivf.Len())
	}
	if !ivf.Remove(1) || ivf.Remove(1) {
		t.Error("remove semantics broken")
	}
}

func TestTopKHeapProperty(t *testing.T) {
	// drainSorted(top-k) must equal sorting everything and taking the
	// best k.
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		h := make(resultHeap, 0, k)
		for i, s := range scores {
			if math.IsNaN(s) {
				return true
			}
			pushTopK(&h, k, Result{ID: int64(i), Score: s})
		}
		got := drainSorted(&h)
		want := make([]Result, 0, len(scores))
		for i, s := range scores {
			want = append(want, Result{ID: int64(i), Score: s})
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].Score != want[j].Score {
				return want[i].Score > want[j].Score
			}
			return want[i].ID < want[j].ID
		})
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDefault(64)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDBSearchRelevance(t *testing.T) {
	db := newTestDB(t)
	docs := []string{
		"The probation period lasts three months for new employees.",
		"Employees are entitled to fourteen days of annual leave.",
		"The store operates from nine in the morning until five.",
		"Uniforms must be worn at all times on the shop floor.",
	}
	ids, err := db.AddAll(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) || db.Len() != len(docs) {
		t.Fatalf("AddAll stored %d/%d", db.Len(), len(docs))
	}
	hits, err := db.Search("how long is the probation period", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Text != docs[0] {
		t.Errorf("top hit = %+v, want probation doc", hits)
	}
}

func TestDBGetDelete(t *testing.T) {
	db := newTestDB(t)
	id, err := db.Add("some passage", map[string]string{"topic": "misc"})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.Get(id)
	if err != nil || doc.Meta["topic"] != "misc" {
		t.Fatalf("Get = %+v, %v", doc, err)
	}
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete err = %v", err)
	}
	if err := db.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	// Deleted docs no longer surface in search.
	hits, _ := db.Search("some passage", 5)
	for _, h := range hits {
		if h.ID == id {
			t.Error("deleted doc returned by search")
		}
	}
}

func TestDBMetadataIsolation(t *testing.T) {
	db := newTestDB(t)
	meta := map[string]string{"k": "v"}
	id, _ := db.Add("text", meta)
	meta["k"] = "mutated"
	doc, _ := db.Get(id)
	if doc.Meta["k"] != "v" {
		t.Error("DB shares caller's metadata map")
	}
}

func TestDBPersistence(t *testing.T) {
	db := newTestDB(t)
	docs := []string{"alpha passage about leave", "beta passage about uniforms"}
	if _, err := db.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e, _ := NewHashedEmbedder(64)
	x, _ := NewFlatIndex(Cosine, 64)
	restored, err := Load(&buf, e, x)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != db.Len() {
		t.Fatalf("restored %d docs, want %d", restored.Len(), db.Len())
	}
	hits, err := restored.Search("annual leave", 1)
	if err != nil || len(hits) != 1 {
		t.Fatalf("restored search: %v %v", hits, err)
	}
	if hits[0].Text != docs[0] {
		t.Errorf("restored top hit = %q", hits[0].Text)
	}
	// New IDs continue past the restored sequence.
	id, _ := restored.Add("new doc", nil)
	if id <= 2 {
		t.Errorf("nextID not restored: new id %d", id)
	}
}

func TestDBConcurrentReadWrite(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.AddAll([]string{"seed doc one", "seed doc two"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Add("concurrent doc", nil); err != nil {
					errs <- err
				}
				if _, err := db.Search("doc", 3); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Len() != 2+4*20 {
		t.Errorf("Len = %d, want %d", db.Len(), 2+4*20)
	}
}
