package vecdb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
)

func newHNSW(t *testing.T) *HNSWIndex {
	t.Helper()
	h, err := NewHNSWIndex(Cosine, 16, 8, 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHNSWValidation(t *testing.T) {
	if _, err := NewHNSWIndex(Cosine, 0, 8, 32, 24); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewHNSWIndex(Cosine, 8, 1, 32, 24); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := NewHNSWIndex(Cosine, 8, 8, 4, 24); err == nil {
		t.Error("efConstruction < m accepted")
	}
	if _, err := NewHNSWIndex(Cosine, 8, 8, 32, 0); err == nil {
		t.Error("efSearch=0 accepted")
	}
}

func TestHNSWEmpty(t *testing.T) {
	h := newHNSW(t)
	res, err := h.Search(make([]float32, 16), 3)
	if err != nil || res != nil {
		t.Errorf("empty search = %v, %v", res, err)
	}
	if h.Remove(1) {
		t.Error("Remove on empty index returned true")
	}
}

func TestHNSWBasicSearch(t *testing.T) {
	h := newHNSW(t)
	vecs := randomVectors(100, 16, 3)
	for i, v := range vecs {
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Query with a stored vector: it must come back first (score ≈ 1).
	for _, probe := range []int{0, 17, 63, 99} {
		res, err := h.Search(vecs[probe], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != int64(probe) {
			t.Errorf("self-query %d returned %+v", probe, res)
		}
	}
}

func TestHNSWRecallAgainstFlat(t *testing.T) {
	const dim, n = 24, 600
	flat, err := NewFlatIndex(Cosine, dim)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHNSWIndex(Cosine, dim, 12, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randomVectors(n, dim, 11)
	for i, v := range vecs {
		if err := flat.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	queries := randomVectors(40, dim, 12)
	hits, total := 0, 0
	for _, q := range queries {
		fr, err := flat.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := h.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]bool{}
		for _, r := range fr {
			want[r.ID] = true
		}
		for _, r := range hr {
			if want[r.ID] {
				hits++
			}
		}
		total += len(fr)
	}
	recall := float64(hits) / float64(total)
	if recall < 0.85 {
		t.Errorf("HNSW recall@10 = %.3f, want ≥0.85", recall)
	}
}

func TestHNSWResultsSorted(t *testing.T) {
	h := newHNSW(t)
	for i, v := range randomVectors(200, 16, 5) {
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	q := randomVectors(1, 16, 6)[0]
	res, err := h.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results unsorted at %d: %+v", i, res)
		}
	}
}

func TestHNSWUpdateAndRemove(t *testing.T) {
	h := newHNSW(t)
	vecs := randomVectors(50, 16, 7)
	for i, v := range vecs {
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Replace node 3 with node 7's vector: querying vecs[7] must now
	// return either 3 or 7 at the top with near-identical scores.
	if err := h.Add(3, vecs[7]); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 50 {
		t.Fatalf("Len after replace = %d", h.Len())
	}
	res, err := h.Search(vecs[7], 2)
	if err != nil {
		t.Fatal(err)
	}
	top := map[int64]bool{}
	for _, r := range res {
		top[r.ID] = true
	}
	if !top[3] || !top[7] {
		t.Errorf("replaced vector not retrieved: %+v", res)
	}
	// Remove half the nodes and verify they are gone from results.
	for i := int64(0); i < 25; i++ {
		if !h.Remove(i) {
			t.Fatalf("Remove(%d) = false", i)
		}
	}
	if h.Len() != 25 {
		t.Fatalf("Len after removal = %d", h.Len())
	}
	res, err = h.Search(vecs[30], 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID < 25 {
			t.Errorf("removed node %d still retrieved", r.ID)
		}
	}
}

func TestHNSWRemoveEntryPoint(t *testing.T) {
	h := newHNSW(t)
	vecs := randomVectors(30, 16, 9)
	for i, v := range vecs {
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Remove every node in insertion order; the index must stay
	// searchable throughout (entry point re-election).
	for i := int64(0); i < 30; i++ {
		if !h.Remove(i) {
			t.Fatalf("Remove(%d) failed", i)
		}
		if h.Len() == 0 {
			break
		}
		if _, err := h.Search(vecs[0], 3); err != nil {
			t.Fatalf("search after removing %d: %v", i, err)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d after removing everything", h.Len())
	}
}

func TestHNSWErrors(t *testing.T) {
	h := newHNSW(t)
	if err := h.Add(1, make([]float32, 4)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim err = %v", err)
	}
	if err := h.Add(1, make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Search(make([]float32, 4), 3); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("query dim err = %v", err)
	}
	if _, err := h.Search(make([]float32, 16), 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k err = %v", err)
	}
}

func TestHNSWWorksAsDBIndex(t *testing.T) {
	e, err := NewHashedEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHNSWIndex(Cosine, 64, 8, 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(e, h)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"The probation period lasts three months.",
		"Employees receive fourteen days of annual leave.",
		"Uniforms must be worn on the shop floor.",
	}
	if _, err := db.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	hits, err := db.Search("how long is probation", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Text != docs[0] {
		t.Errorf("HNSW-backed DB top hit = %+v", hits)
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const dim = 128
			h, err := NewHNSWIndex(Cosine, dim, 16, 100, 50)
			if err != nil {
				b.Fatal(err)
			}
			for i, v := range randomVectors(n, dim, 1) {
				if err := h.Add(int64(i), v); err != nil {
					b.Fatal(err)
				}
			}
			queries := randomVectors(64, dim, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHNSWAdd(b *testing.B) {
	const dim = 128
	h, err := NewHNSWIndex(Cosine, dim, 16, 100, 50)
	if err != nil {
		b.Fatal(err)
	}
	vecs := randomVectors(b.N+1, dim, 1)
	src := rng.New(9)
	_ = src
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Add(int64(i), vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
}
