// Package vecdb implements the vectorized database the paper's RAG
// pipeline retrieves context from (§III-B): text embedders, exact and
// inverted-file (IVF) indexes over cosine/dot/Euclidean metrics, and a
// document store with binary persistence. Reads are safe for
// concurrent use; writes take an exclusive lock.
package vecdb

import (
	"errors"
	"fmt"
	"math"
)

// Metric selects the similarity used for ranking.
type Metric int

// Supported metrics. Higher scores rank earlier for Cosine and Dot;
// for L2 the returned "score" is the negated squared distance so that
// higher-is-better holds uniformly across metrics.
const (
	Cosine Metric = iota
	Dot
	L2
)

// String names the metric for reports and errors.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	case L2:
		return "l2"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ErrDimMismatch reports vectors of unequal length reaching a metric.
var ErrDimMismatch = errors.New("vecdb: dimension mismatch")

// Similarity computes the metric's score between equal-length vectors.
func Similarity(m Metric, a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(a), len(b))
	}
	switch m {
	case Cosine:
		return cosine(a, b), nil
	case Dot:
		return dotProduct(a, b), nil
	case L2:
		return -l2Squared(a, b), nil
	default:
		return 0, fmt.Errorf("vecdb: unknown metric %v", m)
	}
}

func dotProduct(a, b []float32) float64 {
	var acc float64
	for i := range a {
		acc += float64(a[i]) * float64(b[i])
	}
	return acc
}

func norm(a []float32) float64 {
	var acc float64
	for _, v := range a {
		acc += float64(v) * float64(v)
	}
	return math.Sqrt(acc)
}

func cosine(a, b []float32) float64 {
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dotProduct(a, b) / (na * nb)
}

func l2Squared(a, b []float32) float64 {
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

// NormalizeInPlace scales v to unit length; zero vectors are left
// unchanged. Pre-normalizing lets a Dot index answer Cosine queries at
// dot-product cost.
func NormalizeInPlace(v []float32) {
	n := norm(v)
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}
