package vecdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mustEncode(t *testing.T, m Mutation) []byte {
	t.Helper()
	b, err := EncodeMutation(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMutationCodecRoundtrip(t *testing.T) {
	cases := []Mutation{
		{Op: OpAdd, ID: 1, Text: "plain add"},
		{Op: OpAdd, ID: 1 << 40, Text: "", Meta: map[string]string{"": ""}},
		{Op: OpAdd, ID: 7, Text: "with meta", Meta: map[string]string{"source": "handbook", "lang": "en"}},
		{Op: OpDelete, ID: 42},
	}
	for _, want := range cases {
		buf, err := EncodeMutation(want)
		if err != nil {
			t.Fatalf("encode(%+v): %v", want, err)
		}
		got, err := DecodeMutation(buf)
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip = %+v, want %+v", got, want)
		}
	}
}

// TestEncodeMutationRejectsOverflow: fields too large for their length
// prefixes are rejected at encode time — a truncated prefix would
// produce a record that bricks recovery on every boot.
func TestEncodeMutationRejectsOverflow(t *testing.T) {
	bigKey := strings.Repeat("k", 1<<16)
	if _, err := EncodeMutation(Mutation{Op: OpAdd, ID: 1, Text: "t", Meta: map[string]string{bigKey: "v"}}); err == nil {
		t.Error("oversized meta key encoded without error")
	}
	bigMeta := make(map[string]string, 1<<16+1)
	for i := 0; i <= 1<<16; i++ {
		bigMeta[fmt.Sprintf("k%d", i)] = ""
	}
	if _, err := EncodeMutation(Mutation{Op: OpAdd, ID: 1, Text: "t", Meta: bigMeta}); err == nil {
		t.Error("oversized meta map encoded without error")
	}
}

func TestMutationDecodeRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":          nil,
		"short":          {byte(OpAdd), 1, 0, 0},
		"unknown op":     append([]byte{0xee}, make([]byte, 8)...),
		"truncated text": append([]byte{byte(OpAdd)}, make([]byte, 8+4)...),
		"trailing junk":  append(mustEncode(t, Mutation{Op: OpDelete, ID: 3}), 0xff),
	} {
		if _, err := DecodeMutation(b); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestApplyReplayEquivalence: replaying a journal of mutations into a
// fresh DB reproduces documents, search results and the ID counter.
func TestApplyReplayEquivalence(t *testing.T) {
	live := newTestDB(t)
	var journal []Mutation
	record := func(m Mutation) {
		if err := live.Apply(m); err != nil {
			t.Fatalf("apply %+v: %v", m, err)
		}
		journal = append(journal, m)
	}
	record(Mutation{Op: OpAdd, ID: 1, Text: "the store opens at nine", Meta: map[string]string{"k": "v"}})
	record(Mutation{Op: OpAdd, ID: 2, Text: "employees get fourteen days of leave"})
	record(Mutation{Op: OpAdd, ID: 3, Text: "three shopkeepers run a shop"})
	record(Mutation{Op: OpDelete, ID: 2})
	record(Mutation{Op: OpAdd, ID: 9, Text: "the store closes at five"})

	replayed := newTestDB(t)
	for _, m := range journal {
		if err := replayed.Apply(m); err != nil {
			t.Fatalf("replay %+v: %v", m, err)
		}
	}
	assertDBsEqual(t, live, replayed, "Apply")

	// ApplyAll must land in the same state as one-at-a-time Apply.
	batched := newTestDB(t)
	if err := batched.ApplyAll(journal); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	assertDBsEqual(t, live, batched, "ApplyAll")
}

func assertDBsEqual(t *testing.T, want, got *DB, label string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: len %d, want %d", label, got.Len(), want.Len())
	}
	if want.NextID() != got.NextID() {
		t.Errorf("%s: nextID %d, want %d", label, got.NextID(), want.NextID())
	}
	wh, err := want.Search("when does the store open", 5)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := got.Search("when does the store open", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wh, gh) {
		t.Errorf("%s: search diverged:\n got %+v\nwant %+v", label, gh, wh)
	}
}

func TestApplyAllRejectsBadMutations(t *testing.T) {
	db := newTestDB(t)
	if err := db.ApplyAll([]Mutation{{Op: OpAdd, ID: 0, Text: "zero id"}}); err == nil {
		t.Error("ApplyAll accepted ID 0")
	}
	if err := db.ApplyAll([]Mutation{{Op: 99, ID: 1}}); err == nil {
		t.Error("ApplyAll accepted unknown op")
	}
	if err := db.ApplyAll([]Mutation{{Op: OpDelete, ID: 5}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete of absent ID: err = %v, want ErrNotFound", err)
	}
}

// TestCheckpointFileRoundtrip: SaveFile/LoadFile go through the framed
// storage codec and land in an identical DB.
func TestCheckpointFileRoundtrip(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Add("the store operates nine to five", map[string]string{"src": "hb"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add("fourteen days of paid annual leave", nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "checkpoint.snap")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := NewHashedEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewFlatIndex(Cosine, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, e, x)
	if err != nil {
		t.Fatal(err)
	}
	assertDBsEqual(t, db, restored, "checkpoint")
}
