package vecdb

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// HNSWIndex is a hierarchical navigable small world graph: vectors are
// linked to their approximate nearest neighbours on a stack of layers
// whose occupancy decays geometrically, and queries greedily descend
// from the sparse top layer to an exhaustive beam search on layer 0.
// It answers queries in roughly logarithmic time without the training
// phase IVF needs, which makes it the right index for incrementally
// built stores (e.g. ragserver's /ingest endpoint).
//
// The implementation follows Malkov & Yashunin (2016): insertion-time
// level sampling with P(level ≥ l) = exp(-l/mL), M links per node per
// layer (2M on layer 0), and efSearch/efConstruction beam widths.
type HNSWIndex struct {
	metric Metric
	dim    int
	m      int // max links per layer (layer 0 allows 2m)
	efCons int
	efSrch int

	entry    int64 // entry point node id; -1 when empty
	maxLevel int
	levels   map[int64]int       // node → top layer
	links    map[int64][][]int64 // node → per-layer neighbour lists
	vectors  map[int64][]float32
	src      *rng.Source
}

// NewHNSWIndex creates an HNSW index. m is the per-layer link budget
// (a typical value is 16), efConstruction the insertion beam width
// (e.g. 100), efSearch the query beam width (e.g. 50).
func NewHNSWIndex(metric Metric, dim, m, efConstruction, efSearch int) (*HNSWIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	if m < 2 {
		return nil, fmt.Errorf("vecdb: HNSW m must be ≥ 2, got %d", m)
	}
	if efConstruction < m || efSearch < 1 {
		return nil, fmt.Errorf("vecdb: need efConstruction(%d) ≥ m(%d) and efSearch(%d) ≥ 1",
			efConstruction, m, efSearch)
	}
	return &HNSWIndex{
		metric: metric, dim: dim, m: m,
		efCons: efConstruction, efSrch: efSearch,
		entry: -1, levels: map[int64]int{},
		links:   map[int64][][]int64{},
		vectors: map[int64][]float32{},
		src:     rng.NewFromString("hnsw-levels"),
	}, nil
}

// Len implements Index.
func (h *HNSWIndex) Len() int { return len(h.vectors) }

// score is the metric similarity between a stored node and a query
// vector (higher is better). Dangling ids (left behind by deletions as
// one-directional in-links) score -Inf so they are never selected.
func (h *HNSWIndex) score(id int64, q []float32) float64 {
	v, ok := h.vectors[id]
	if !ok {
		return math.Inf(-1)
	}
	s, _ := Similarity(h.metric, v, q)
	return s
}

// randomLevel samples the insertion level with the standard geometric
// distribution (mL = 1/ln(2·m) keeps expected layer occupancy right).
func (h *HNSWIndex) randomLevel() int {
	ml := 1 / math.Log(float64(2*h.m))
	return int(-math.Log(h.src.Float64()+1e-12) * ml)
}

// capacity returns the link budget for a layer.
func (h *HNSWIndex) capacity(layer int) int {
	if layer == 0 {
		return 2 * h.m
	}
	return h.m
}

// Add implements Index. Adding an existing id replaces its vector by
// delete-and-reinsert.
func (h *HNSWIndex) Add(id int64, vec []float32) error {
	if len(vec) != h.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, h.dim, len(vec))
	}
	if _, exists := h.vectors[id]; exists {
		h.Remove(id)
	}
	cp := make([]float32, len(vec))
	copy(cp, vec)
	level := h.randomLevel()
	h.vectors[id] = cp
	h.levels[id] = level
	h.links[id] = make([][]int64, level+1)

	if h.entry == -1 {
		h.entry = id
		h.maxLevel = level
		return nil
	}
	// Greedy descent from the global entry to the insertion level.
	cur := h.entry
	for l := h.maxLevel; l > level; l-- {
		cur = h.greedyStep(cur, cp, l)
	}
	// Beam search + link on each layer from min(level, maxLevel) down.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		candidates := h.searchLayer(cur, cp, h.efCons, l)
		neighbours := h.selectNeighbours(candidates, cp, h.capacity(l))
		h.links[id][l] = append([]int64(nil), neighbours...)
		for _, n := range neighbours {
			h.links[n][l] = append(h.links[n][l], id)
			if cap := h.capacity(l); len(h.links[n][l]) > cap {
				h.links[n][l] = h.selectNeighbours(h.links[n][l], h.vectors[n], cap)
			}
		}
		if len(candidates) > 0 {
			cur = candidates[0]
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = id
	}
	return nil
}

// greedyStep moves to the best-scoring neighbour until no neighbour
// improves, returning the local optimum on the layer.
func (h *HNSWIndex) greedyStep(start int64, q []float32, layer int) int64 {
	cur := start
	curScore := h.score(cur, q)
	for {
		improved := false
		if layer < len(h.links[cur]) {
			for _, n := range h.links[cur][layer] {
				if _, ok := h.vectors[n]; !ok {
					continue // dangling in-link from a deletion
				}
				if s := h.score(n, q); s > curScore {
					cur, curScore = n, s
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs a best-first beam search of width ef on one layer,
// returning up to ef node ids ordered by descending score.
func (h *HNSWIndex) searchLayer(start int64, q []float32, ef, layer int) []int64 {
	visited := map[int64]bool{start: true}
	// candidates: max-heap by score (explore best first); results:
	// bounded min-heap of the best ef.
	cand := resultHeap{{ID: start, Score: -h.score(start, q)}} // negated: container/heap min == best
	results := resultHeap{{ID: start, Score: h.score(start, q)}}
	for len(cand) > 0 {
		// Pop the best unexplored candidate.
		best := cand[0]
		last := len(cand) - 1
		cand[0] = cand[last]
		cand = cand[:last]
		siftDown(cand)
		bestScore := -best.Score
		if len(results) == ef && bestScore < results[0].Score {
			break // no candidate can improve the result set
		}
		if int(best.ID) >= 0 {
			for _, n := range h.neighboursAt(best.ID, layer) {
				if visited[n] {
					continue
				}
				visited[n] = true
				if _, ok := h.vectors[n]; !ok {
					continue // dangling in-link from a deletion
				}
				s := h.score(n, q)
				if len(results) < ef || s > results[0].Score {
					results = pushHeap(results, Result{ID: n, Score: s})
					if len(results) > ef {
						results = popMin(results)
					}
					cand = pushHeap(cand, Result{ID: n, Score: -s})
				}
			}
		}
	}
	sorted := drainSorted(&results)
	out := make([]int64, len(sorted))
	for i, r := range sorted {
		out[i] = r.ID
	}
	return out
}

func (h *HNSWIndex) neighboursAt(id int64, layer int) []int64 {
	ls := h.links[id]
	if layer >= len(ls) {
		return nil
	}
	return ls[layer]
}

// selectNeighbours keeps the `cap` candidates most similar to vec.
func (h *HNSWIndex) selectNeighbours(candidates []int64, vec []float32, cap int) []int64 {
	if len(candidates) <= cap {
		return dedupe(candidates)
	}
	heap := make(resultHeap, 0, cap)
	for _, c := range dedupe(candidates) {
		pushTopK(&heap, cap, Result{ID: c, Score: h.score(c, vec)})
	}
	sorted := drainSorted(&heap)
	out := make([]int64, len(sorted))
	for i, r := range sorted {
		out[i] = r.ID
	}
	return out
}

func dedupe(ids []int64) []int64 {
	seen := map[int64]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Remove implements Index: the node is unlinked from every neighbour
// list. Graph connectivity can degrade under heavy deletion; callers
// with churn-heavy workloads should rebuild periodically (Len tracks
// size for that decision).
func (h *HNSWIndex) Remove(id int64) bool {
	if _, ok := h.vectors[id]; !ok {
		return false
	}
	for l, neigh := range h.links[id] {
		for _, n := range neigh {
			// A neighbour re-inserted at a lower level (or already
			// removed) may not reach this layer anymore.
			if l >= len(h.links[n]) {
				continue
			}
			list := h.links[n][l]
			for i, v := range list {
				if v == id {
					list[i] = list[len(list)-1]
					h.links[n][l] = list[:len(list)-1]
					break
				}
			}
		}
	}
	delete(h.vectors, id)
	delete(h.levels, id)
	delete(h.links, id)
	if h.entry == id {
		h.entry = -1
		h.maxLevel = 0
		// Any remaining node can serve as the new entry; pick the one
		// with the highest level for a proper descent.
		for n, l := range h.levels {
			if h.entry == -1 || l > h.maxLevel {
				h.entry, h.maxLevel = n, l
			}
		}
	}
	return true
}

// Search implements Index.
func (h *HNSWIndex) Search(query []float32, k int) ([]Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != h.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, h.dim, len(query))
	}
	if h.entry == -1 {
		return nil, nil
	}
	cur := h.entry
	for l := h.maxLevel; l > 0; l-- {
		cur = h.greedyStep(cur, query, l)
	}
	ef := h.efSrch
	if ef < k {
		ef = k
	}
	ids := h.searchLayer(cur, query, ef, 0)
	if len(ids) > k {
		ids = ids[:k]
	}
	out := make([]Result, len(ids))
	for i, id := range ids {
		out[i] = Result{ID: id, Score: h.score(id, query)}
	}
	return out, nil
}

// --- tiny heap helpers over resultHeap without container/heap's
// interface indirection, used on the HNSW hot path ---

func pushHeap(hp resultHeap, r Result) resultHeap {
	hp = append(hp, r)
	i := len(hp) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hp[parent].Score <= hp[i].Score {
			break
		}
		hp[parent], hp[i] = hp[i], hp[parent]
		i = parent
	}
	return hp
}

// popMin removes the smallest-score element (the root).
func popMin(hp resultHeap) resultHeap {
	last := len(hp) - 1
	hp[0] = hp[last]
	hp = hp[:last]
	siftDown(hp)
	return hp
}

func siftDown(hp resultHeap) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(hp) && hp[l].Score < hp[smallest].Score {
			smallest = l
		}
		if r < len(hp) && hp[r].Score < hp[smallest].Score {
			smallest = r
		}
		if smallest == i {
			return
		}
		hp[i], hp[smallest] = hp[smallest], hp[i]
		i = smallest
	}
}
