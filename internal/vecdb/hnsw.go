package vecdb

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/rng"
)

// HNSWIndex is a hierarchical navigable small world graph: vectors are
// linked to their approximate nearest neighbours on a stack of layers
// whose occupancy decays geometrically, and queries greedily descend
// from the sparse top layer to an exhaustive beam search on layer 0.
// It answers queries in roughly logarithmic time without the training
// phase IVF needs, which makes it the right index for incrementally
// built stores (e.g. ragserver's /ingest endpoint).
//
// The implementation follows Malkov & Yashunin (2016): insertion-time
// level sampling with P(level ≥ l) = exp(-l/mL), M links per node per
// layer (2M on layer 0), and efSearch/efConstruction beam widths.
//
// Vector storage is the shared rowSet: with QuantInt8 the graph
// traversal scores neighbours through the int8 kernel and the final
// candidate beam is re-ranked against the exact float32 rows.
type HNSWIndex struct {
	metric Metric
	dim    int
	m      int // max links per layer (layer 0 allows 2m)
	efCons int
	efSrch int

	entry    int64 // entry point node id; -1 when empty
	maxLevel int
	levels   map[int64]int       // node → top layer
	links    map[int64][][]int64 // node → per-layer neighbour lists
	rs       rowSet
	src      *rng.Source
	observe  func(stage string, seconds float64)
}

// NewHNSWIndex creates an HNSW index. m is the per-layer link budget
// (a typical value is 16), efConstruction the insertion beam width
// (e.g. 100), efSearch the query beam width (e.g. 50).
func NewHNSWIndex(metric Metric, dim, m, efConstruction, efSearch int) (*HNSWIndex, error) {
	return NewHNSWIndexQ(metric, dim, m, efConstruction, efSearch, QuantConfig{})
}

// NewHNSWIndexQ creates an HNSW index with the given quantization
// config (QuantConfig{} keeps exact float traversal).
func NewHNSWIndexQ(metric Metric, dim, m, efConstruction, efSearch int, q QuantConfig) (*HNSWIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	if m < 2 {
		return nil, fmt.Errorf("vecdb: HNSW m must be ≥ 2, got %d", m)
	}
	if efConstruction < m || efSearch < 1 {
		return nil, fmt.Errorf("vecdb: need efConstruction(%d) ≥ m(%d) and efSearch(%d) ≥ 1",
			efConstruction, m, efSearch)
	}
	return &HNSWIndex{
		metric: metric, dim: dim, m: m,
		efCons: efConstruction, efSrch: efSearch,
		entry: -1, levels: map[int64]int{},
		links: map[int64][][]int64{},
		rs:    newRowSet(dim, q),
		src:   rng.NewFromString("hnsw-levels"),
	}, nil
}

// SetStageObserver implements StageObservable.
func (h *HNSWIndex) SetStageObserver(fn func(stage string, seconds float64)) { h.observe = fn }

// Memory implements MemoryReporter.
func (h *HNSWIndex) Memory() IndexMemory {
	m := h.rs.memory()
	for _, layers := range h.links {
		m.GraphBytes += 24 // slice header per node
		for _, l := range layers {
			m.GraphBytes += 24 + int64(len(l))*8
		}
	}
	return m
}

// Len implements Index.
func (h *HNSWIndex) Len() int { return h.rs.len() }

// scoreID is the traversal score between a stored node and the
// prepared query (higher is better): quantized when the rowSet carries
// codes, exact otherwise. Dangling ids (left behind by deletions as
// one-directional in-links) score -Inf so they are never selected.
func (h *HNSWIndex) scoreID(id int64, pq *preparedQuery) float64 {
	row, ok := h.rs.pos[id]
	if !ok {
		return math.Inf(-1)
	}
	return h.rs.scoreRow(h.metric, row, pq)
}

// randomLevel samples the insertion level with the standard geometric
// distribution (mL = 1/ln(2·m) keeps expected layer occupancy right).
func (h *HNSWIndex) randomLevel() int {
	ml := 1 / math.Log(float64(2*h.m))
	return int(-math.Log(h.src.Float64()+1e-12) * ml)
}

// capacity returns the link budget for a layer.
func (h *HNSWIndex) capacity(layer int) int {
	if layer == 0 {
		return 2 * h.m
	}
	return h.m
}

// Add implements Index. Adding an existing id replaces its vector by
// delete-and-reinsert.
func (h *HNSWIndex) Add(id int64, vec []float32) error {
	if len(vec) != h.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, h.dim, len(vec))
	}
	if _, exists := h.rs.pos[id]; exists {
		h.Remove(id)
	}
	level := h.randomLevel()
	row := h.rs.add(id, vec)
	cp := h.rs.vecs[row]
	h.levels[id] = level
	h.links[id] = make([][]int64, level+1)

	if h.entry == -1 {
		h.entry = id
		h.maxLevel = level
		return nil
	}
	pq := h.rs.prepare(cp)
	// Greedy descent from the global entry to the insertion level.
	cur := h.entry
	for l := h.maxLevel; l > level; l-- {
		cur = h.greedyStep(cur, &pq, l)
	}
	// Beam search + link on each layer from min(level, maxLevel) down.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		candidates := h.searchLayer(cur, &pq, h.efCons, l)
		neighbours := h.selectNeighbours(candidates, &pq, h.capacity(l))
		h.links[id][l] = append([]int64(nil), neighbours...)
		for _, n := range neighbours {
			h.links[n][l] = append(h.links[n][l], id)
			if cap := h.capacity(l); len(h.links[n][l]) > cap {
				npq := h.rs.prepare(h.rs.vecs[h.rs.pos[n]])
				h.links[n][l] = h.selectNeighbours(h.links[n][l], &npq, cap)
			}
		}
		if len(candidates) > 0 {
			cur = candidates[0]
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = id
	}
	return nil
}

// greedyStep moves to the best-scoring neighbour until no neighbour
// improves, returning the local optimum on the layer.
func (h *HNSWIndex) greedyStep(start int64, pq *preparedQuery, layer int) int64 {
	cur := start
	curScore := h.scoreID(cur, pq)
	for {
		improved := false
		if layer < len(h.links[cur]) {
			for _, n := range h.links[cur][layer] {
				if _, ok := h.rs.pos[n]; !ok {
					continue // dangling in-link from a deletion
				}
				if s := h.scoreID(n, pq); s > curScore {
					cur, curScore = n, s
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs a best-first beam search of width ef on one layer,
// returning up to ef node ids ordered by descending score.
func (h *HNSWIndex) searchLayer(start int64, pq *preparedQuery, ef, layer int) []int64 {
	visited := map[int64]bool{start: true}
	// candidates: max-heap by score (explore best first); results:
	// bounded min-heap of the best ef.
	cand := resultHeap{{ID: start, Score: -h.scoreID(start, pq)}} // negated: container/heap min == best
	results := resultHeap{{ID: start, Score: h.scoreID(start, pq)}}
	for len(cand) > 0 {
		// Pop the best unexplored candidate.
		best := cand[0]
		last := len(cand) - 1
		cand[0] = cand[last]
		cand = cand[:last]
		siftDown(cand)
		bestScore := -best.Score
		if len(results) == ef && bestScore < results[0].Score {
			break // no candidate can improve the result set
		}
		if int(best.ID) >= 0 {
			for _, n := range h.neighboursAt(best.ID, layer) {
				if visited[n] {
					continue
				}
				visited[n] = true
				if _, ok := h.rs.pos[n]; !ok {
					continue // dangling in-link from a deletion
				}
				s := h.scoreID(n, pq)
				if len(results) < ef || s > results[0].Score {
					results = pushHeap(results, Result{ID: n, Score: s})
					if len(results) > ef {
						results = popMin(results)
					}
					cand = pushHeap(cand, Result{ID: n, Score: -s})
				}
			}
		}
	}
	sorted := drainSorted(&results)
	out := make([]int64, len(sorted))
	for i, r := range sorted {
		out[i] = r.ID
	}
	return out
}

func (h *HNSWIndex) neighboursAt(id int64, layer int) []int64 {
	ls := h.links[id]
	if layer >= len(ls) {
		return nil
	}
	return ls[layer]
}

// selectNeighbours picks up to cap links for the base point described
// by pq with the Malkov & Yashunin diversity heuristic (Algorithm 4):
// walking candidates best-first, a candidate is linked only when it is
// closer to the base than to every neighbour already selected. Plain
// top-cap selection spends the whole link budget inside the base's own
// cluster and leaves layer 0 disconnected on clustered corpora — raising
// efSearch then cannot recover queries whose cluster is unreachable. The
// heuristic keeps a few longer "bridge" links instead, at pure
// construction-time cost. Leftover slots are backfilled with the best
// pruned candidates (keepPrunedConnections in the paper). Selection
// scores are exact float even on a quantized index: graph topology
// should not inherit quantization error.
func (h *HNSWIndex) selectNeighbours(candidates []int64, pq *preparedQuery, cap int) []int64 {
	scored := make([]Result, 0, len(candidates))
	for _, c := range dedupe(candidates) {
		row, ok := h.rs.pos[c]
		if !ok {
			continue // dangling in-link from a deletion
		}
		scored = append(scored, Result{ID: c, Score: h.rs.exactScore(h.metric, row, pq)})
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].ID < scored[j].ID // deterministic tie order
	})
	out := make([]int64, 0, cap)
	var pruned []int64
	for _, c := range scored {
		if len(out) == cap {
			break
		}
		keep := true
		cvec := h.rs.vecs[h.rs.pos[c.ID]]
		for _, s := range out {
			toSel, _ := Similarity(h.metric, cvec, h.rs.vecs[h.rs.pos[s]])
			if toSel > c.Score {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.ID)
		} else {
			pruned = append(pruned, c.ID)
		}
	}
	for _, id := range pruned {
		if len(out) == cap {
			break
		}
		out = append(out, id)
	}
	return out
}

func dedupe(ids []int64) []int64 {
	seen := map[int64]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Remove implements Index: the node is unlinked from every neighbour
// list. Graph connectivity can degrade under heavy deletion; callers
// with churn-heavy workloads should rebuild periodically (Len tracks
// size for that decision).
func (h *HNSWIndex) Remove(id int64) bool {
	if _, ok := h.rs.pos[id]; !ok {
		return false
	}
	for l, neigh := range h.links[id] {
		for _, n := range neigh {
			// A neighbour re-inserted at a lower level (or already
			// removed) may not reach this layer anymore.
			if l >= len(h.links[n]) {
				continue
			}
			list := h.links[n][l]
			for i, v := range list {
				if v == id {
					list[i] = list[len(list)-1]
					h.links[n][l] = list[:len(list)-1]
					break
				}
			}
		}
	}
	h.rs.remove(id)
	delete(h.levels, id)
	delete(h.links, id)
	if h.entry == id {
		h.entry = -1
		h.maxLevel = 0
		// Any remaining node can serve as the new entry; pick the one
		// with the highest level for a proper descent.
		for n, l := range h.levels {
			if h.entry == -1 || l > h.maxLevel {
				h.entry, h.maxLevel = n, l
			}
		}
	}
	return true
}

// Search implements Index. On a quantized index the beam is widened to
// the re-rank depth and the returned top-k is exact-scored against the
// float32 rows.
func (h *HNSWIndex) Search(query []float32, k int) ([]Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != h.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, h.dim, len(query))
	}
	if err := validMetric(h.metric); err != nil {
		return nil, err
	}
	if h.entry == -1 {
		return nil, nil
	}
	pq := h.rs.prepare(query)
	cur := h.entry
	for l := h.maxLevel; l > 0; l-- {
		cur = h.greedyStep(cur, &pq, l)
	}
	ef := h.efSrch
	if ef < k {
		ef = k
	}
	if h.rs.quantized() {
		if d := h.rs.quant.rerankDepth(k); ef < d {
			ef = d
		}
	}
	ids := h.searchLayer(cur, &pq, ef, 0)
	if !h.rs.quantized() {
		if len(ids) > k {
			ids = ids[:k]
		}
		out := make([]Result, len(ids))
		for i, id := range ids {
			out[i] = Result{ID: id, Score: h.scoreID(id, &pq)}
		}
		return out, nil
	}
	cands := make([]Result, len(ids))
	for i, id := range ids {
		cands[i] = Result{ID: id}
	}
	var start time.Time
	if h.observe != nil {
		start = time.Now()
	}
	out := h.rs.rerank(h.metric, &pq, cands, k)
	observeStage(h.observe, "rerank", start)
	return out, nil
}

// --- tiny heap helpers over resultHeap without container/heap's
// interface indirection, used on the HNSW hot path ---

func pushHeap(hp resultHeap, r Result) resultHeap {
	hp = append(hp, r)
	i := len(hp) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hp[parent].Score <= hp[i].Score {
			break
		}
		hp[parent], hp[i] = hp[i], hp[parent]
		i = parent
	}
	return hp
}

// popMin removes the smallest-score element (the root).
func popMin(hp resultHeap) resultHeap {
	last := len(hp) - 1
	hp[0] = hp[last]
	hp = hp[:last]
	siftDown(hp)
	return hp
}

func siftDown(hp resultHeap) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(hp) && hp[l].Score < hp[smallest].Score {
			smallest = l
		}
		if r < len(hp) && hp[r].Score < hp[smallest].Score {
			smallest = r
		}
		if smallest == i {
			return
		}
		hp[i], hp[smallest] = hp[smallest], hp[i]
		i = smallest
	}
}
