package vecdb

import (
	"encoding/binary"
	"math"
	"testing"
	"unsafe"

	"repro/internal/rng"
)

// quantTolerance is the reconstruction error budget for one element of
// a quantized row: half a quantization step — the documented
// (max−min)/510 bound — plus float32 rounding slop proportional to the
// operand magnitudes, plus one denormal for gaps too small for the
// float32 scale to represent.
func quantTolerance(mn, mx float32) float64 {
	gap := float64(mx) - float64(mn)
	maxAbs := math.Max(math.Abs(float64(mn)), math.Abs(float64(mx)))
	// The constant term absorbs denormal-range scale rounding: a scale
	// near the float32 denormal floor can round by ~0.7e-45, amplified
	// by up to 128 code units.
	return gap/510 + gap*1e-6 + 4e-7*maxAbs + 2e-43
}

// checkRoundTrip quantizes vec, dequantizes it back, and fails if any
// element's error exceeds the documented bound.
func checkRoundTrip(t *testing.T, vec []float32) {
	t.Helper()
	codes := make([]int8, len(vec))
	p := quantizeRow(vec, codes)
	if math.IsInf(float64(p.scale), 0) || math.IsNaN(float64(p.scale)) ||
		math.IsInf(float64(p.offset), 0) || math.IsNaN(float64(p.offset)) {
		t.Fatalf("non-finite params %+v for %v", p, vec)
	}
	out := make([]float32, len(vec))
	dequantizeRow(codes, p, out)
	mn, mx := minMax(vec)
	tol := quantTolerance(mn, mx)
	if p.scale == 0 {
		// Constant rows are exact; a scale underflow (gap too small for
		// float32) reconstructs every element as the offset, so the error
		// is bounded by the gap itself.
		tol = (float64(mx)-float64(mn))*1.000001 + 2e-45
	}
	for i := range vec {
		if err := math.Abs(float64(out[i]) - float64(vec[i])); err > tol {
			t.Fatalf("element %d: %v -> code %d -> %v, error %g exceeds %g (scale=%g offset=%g)",
				i, vec[i], codes[i], out[i], err, tol, p.scale, p.offset)
		}
	}
}

// TestQuantizeRoundTripErrorBound: over random rows at many dims and
// magnitudes, reconstruction stays within half a quantization step.
func TestQuantizeRoundTripErrorBound(t *testing.T) {
	src := rng.NewFromString("quantize-roundtrip")
	for _, dim := range []int{1, 2, 3, 7, 8, 15, 64, 256, 300} {
		for _, mag := range []float64{1e-3, 1, 1e4, 1e30} {
			vec := make([]float32, dim)
			for i := range vec {
				vec[i] = float32(src.NormFloat64() * mag)
			}
			checkRoundTrip(t, vec)
		}
	}
}

// TestQuantizeConstantAndEmptyRows: degenerate rows are exact.
func TestQuantizeConstantAndEmptyRows(t *testing.T) {
	for _, vec := range [][]float32{
		{},
		{0, 0, 0, 0},
		{3.25, 3.25, 3.25},
		{-1e30},
	} {
		codes := make([]int8, len(vec))
		p := quantizeRow(vec, codes)
		if p.scale != 0 {
			t.Fatalf("constant row %v got scale %g, want 0", vec, p.scale)
		}
		out := make([]float32, len(vec))
		dequantizeRow(codes, p, out)
		for i := range vec {
			if out[i] != vec[i] {
				t.Fatalf("constant row %v reconstructed %v", vec, out)
			}
		}
	}
}

// TestKernelEquivalence: the unrolled int8 kernels agree exactly with
// their scalar references on every dim around the unroll widths —
// including dims that are not multiples of 8 (dot) or 4 (l2), where the
// tail loop takes over.
func TestKernelEquivalence(t *testing.T) {
	src := rng.NewFromString("kernel-equivalence")
	for dim := 0; dim <= 70; dim++ {
		a := make([]int8, dim)
		b := make([]int8, dim)
		for trial := 0; trial < 8; trial++ {
			for i := range a {
				a[i] = int8(src.Intn(256) - 128)
				b[i] = int8(src.Intn(256) - 128)
			}
			if trial == 0 && dim > 0 {
				// Extremes: the accumulators must absorb dim * 128 * 128.
				a[0], b[0] = -128, -128
				a[dim-1], b[dim-1] = 127, -128
			}
			if got, want := dotInt8(a, b), dotInt8Ref(a, b); got != want {
				t.Fatalf("dotInt8 dim %d: %d, reference %d", dim, got, want)
			}
			if got, want := l2Int8(a, b), l2Int8Ref(a, b); got != want {
				t.Fatalf("l2Int8 dim %d: %d, reference %d", dim, got, want)
			}
		}
	}
}

// TestQuantizedTopKOverlap: on a clustered corpus, the int8 scan +
// exact re-rank pipeline returns top-k sets that overlap the exact
// float32 scan's by at least 95%.
func TestQuantizedTopKOverlap(t *testing.T) {
	const n, dim, nq, k = 2000, 64, 50, 10
	src := rng.NewFromString("topk-overlap-corpus")
	centers := make([][]float64, 32)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = src.NormFloat64()
		}
	}
	exact, err := NewFlatIndex(Cosine, dim)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := NewFlatIndexQ(Cosine, dim, QuantConfig{Kind: QuantInt8, RerankK: 4 * k})
	if err != nil {
		t.Fatal(err)
	}
	corpus := make([][]float32, n)
	for i := range corpus {
		c := centers[src.Intn(len(centers))]
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(c[d] + 0.25*src.NormFloat64())
		}
		corpus[i] = v
		if err := exact.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
		if err := quant.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	var overlap, want int
	for q := 0; q < nq; q++ {
		base := corpus[(q*n/nq)%n]
		query := make([]float32, dim)
		for d := range query {
			query[d] = base[d] + float32(0.05*src.NormFloat64())
		}
		er, err := exact.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		qr, err := quant.Search(query, k)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, r := range qr {
			got[r.ID] = true
		}
		for _, r := range er {
			want++
			if got[r.ID] {
				overlap++
			}
		}
	}
	if frac := float64(overlap) / float64(want); frac < 0.95 {
		t.Fatalf("int8+rerank top-%d overlap %.4f below 0.95", k, frac)
	}
}

// TestBlockedCodesLifecycle: block-granular growth, 64-byte row
// alignment, swap-with-last moves, and block release on truncation.
func TestBlockedCodesLifecycle(t *testing.T) {
	const dim = 16
	b := newBlockedCodes(dim)
	vec := make([]float32, dim)
	total := codeBlockRows*2 + 50 // spans three blocks
	for i := 0; i < total; i++ {
		for d := range vec {
			vec[d] = float32(i + d)
		}
		b.append(vec)
	}
	if len(b.blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(b.blocks))
	}
	for _, blk := range b.blocks {
		if addr := uintptr(unsafe.Pointer(&blk[0])); addr%codeBlockAlign != 0 {
			t.Fatalf("block start %#x not %d-byte aligned", addr, codeBlockAlign)
		}
	}
	// Row addressing: row i starts i*dim into its block.
	r := b.row(codeBlockRows + 1)
	if len(r) != dim {
		t.Fatalf("row len = %d, want %d", len(r), dim)
	}
	// moveRow copies codes and params (swap-with-last deletion).
	b.moveRow(0, b.n-1)
	lastRow := b.row(b.n - 1)
	for i, c := range b.row(0) {
		if c != lastRow[i] {
			t.Fatalf("moveRow: code %d diverged", i)
		}
	}
	if b.scales[0] != b.scales[b.n-1] || b.offsets[0] != b.offsets[b.n-1] {
		t.Fatal("moveRow: params diverged")
	}
	// Shrinking below one block's occupancy releases trailing blocks but
	// keeps one empty block as hysteresis.
	for b.n > codeBlockRows/2 {
		b.truncate()
	}
	if len(b.blocks) != 2 {
		t.Fatalf("after shrink to %d rows: blocks = %d, want 2", b.n, len(b.blocks))
	}
}

// FuzzQuantizeRoundTrip interprets the input as a packed float32 row
// and checks the quantization contract on whatever the fuzzer finds:
// finite rows reconstruct within the error bound with finite
// parameters. Seeds live in testdata/fuzz/FuzzQuantizeRoundTrip.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 128, 63, 0, 0, 128, 63}) // [1.0, 1.0]
	f.Add([]byte{0, 0, 122, 68, 0, 0, 122, 196, 111, 18, 131, 58})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vec := make([]float32, len(raw)/4)
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
			if f64 := float64(vec[i]); math.IsNaN(f64) || math.IsInf(f64, 0) {
				return // out of contract: embedders produce finite vectors
			}
		}
		checkRoundTrip(t, vec)
	})
}
