package vecdb

import "math"

// rowSet is the dense vector storage shared by FlatIndex, IVFIndex and
// HNSWIndex: exact float32 rows (the re-rank and exact-scan substrate),
// per-row norms precomputed once at insertion so cosine never
// recomputes a stored norm per comparison, and — when quantization is
// configured — a blocked int8 code mirror the scan path reads instead
// of the floats. Rows are dense and swap-with-last deleted; ids/pos
// map caller document IDs onto row indexes.
type rowSet struct {
	dim   int
	quant QuantConfig

	ids  []int64
	pos  map[int64]int
	vecs [][]float32
	// norms / normSqs are float64 and computed with exactly the same
	// accumulation as norm()/l2Squared, so precomputation changes no
	// score bit anywhere.
	norms   []float64
	normSqs []float64
	codes   *blockedCodes // nil when quant.Kind == QuantNone
}

func newRowSet(dim int, q QuantConfig) rowSet {
	rs := rowSet{dim: dim, quant: q, pos: map[int64]int{}}
	if q.Kind == QuantInt8 {
		rs.codes = newBlockedCodes(dim)
	}
	return rs
}

func (s *rowSet) len() int { return len(s.ids) }

// quantized reports whether the scan path reads int8 codes.
func (s *rowSet) quantized() bool { return s.codes != nil }

// add copies vec in under id, replacing an existing row for the same
// id. It returns the row index.
func (s *rowSet) add(id int64, vec []float32) int {
	cp := make([]float32, len(vec))
	copy(cp, vec)
	var sq float64
	for _, v := range cp {
		sq += float64(v) * float64(v)
	}
	n := math.Sqrt(sq)
	if p, ok := s.pos[id]; ok {
		s.vecs[p] = cp
		s.norms[p] = n
		s.normSqs[p] = sq
		if s.codes != nil {
			s.codes.set(p, cp)
		}
		return p
	}
	p := len(s.ids)
	s.pos[id] = p
	s.ids = append(s.ids, id)
	s.vecs = append(s.vecs, cp)
	s.norms = append(s.norms, n)
	s.normSqs = append(s.normSqs, sq)
	if s.codes != nil {
		s.codes.append(cp)
	}
	return p
}

// remove deletes id by swapping the last row into its slot. Removing
// an absent id returns false.
func (s *rowSet) remove(id int64) bool {
	p, ok := s.pos[id]
	if !ok {
		return false
	}
	last := len(s.ids) - 1
	if p != last {
		s.ids[p] = s.ids[last]
		s.vecs[p] = s.vecs[last]
		s.norms[p] = s.norms[last]
		s.normSqs[p] = s.normSqs[last]
		if s.codes != nil {
			s.codes.moveRow(p, last)
		}
		s.pos[s.ids[p]] = p
	}
	s.ids = s.ids[:last]
	s.vecs = s.vecs[:last]
	s.norms = s.norms[:last]
	s.normSqs = s.normSqs[:last]
	if s.codes != nil {
		s.codes.truncate()
	}
	delete(s.pos, id)
	return true
}

// vec returns the exact float32 row for id.
func (s *rowSet) vec(id int64) ([]float32, bool) {
	p, ok := s.pos[id]
	if !ok {
		return nil, false
	}
	return s.vecs[p], true
}

// preparedQuery caches every per-query term the scan reuses across
// comparisons: the float sums and norms (computed once instead of per
// stored vector) and, on a quantized set, the symmetric int8
// quantization of the query feeding the integer dot kernel.
type preparedQuery struct {
	vec    []float32
	sum    float64 // Σ q[d], the offset term of the asymmetric dot
	norm   float64 // ‖q‖, identical to norm(q)
	normSq float64
	qc     []int8  // int8 codes of the query (quantized sets only)
	qscale float64 // query dequant scale: q[d] ≈ qscale·qc[d]
}

// prepare builds the query context. The one-off cost is O(dim),
// amortized over every stored vector the query is compared against.
func (s *rowSet) prepare(q []float32) preparedQuery {
	pq := preparedQuery{vec: q}
	var maxAbs float64
	for _, v := range q {
		f := float64(v)
		pq.sum += f
		pq.normSq += f * f
		if a := math.Abs(f); a > maxAbs {
			maxAbs = a
		}
	}
	pq.norm = math.Sqrt(pq.normSq)
	if s.codes == nil {
		return pq
	}
	pq.qc = make([]int8, len(q))
	if maxAbs == 0 {
		return pq
	}
	pq.qscale = maxAbs / 127
	inv := 1 / pq.qscale
	for i, v := range q {
		c := math.Round(float64(v) * inv)
		switch {
		case c > 127:
			c = 127
		case c < -127:
			c = -127
		}
		pq.qc[i] = int8(c)
	}
	return pq
}

// exactScore is the metric score against the exact float32 row, with
// stored norms read instead of recomputed — bit-identical to
// Similarity on the same operands.
func (s *rowSet) exactScore(m Metric, row int, pq *preparedQuery) float64 {
	switch m {
	case Cosine:
		n := s.norms[row]
		if n == 0 || pq.norm == 0 {
			return 0
		}
		return dotProduct(pq.vec, s.vecs[row]) / (pq.norm * n)
	case Dot:
		return dotProduct(pq.vec, s.vecs[row])
	default: // L2
		return -l2Squared(pq.vec, s.vecs[row])
	}
}

// approxScore is the asymmetric quantized score: one int8 dot kernel
// call plus the precomputed offset/norm terms.
func (s *rowSet) approxScore(m Metric, row int, pq *preparedQuery) float64 {
	c := s.codes
	d := pq.qscale*float64(c.scales[row])*float64(dotInt8(pq.qc, c.row(row))) +
		float64(c.offsets[row])*pq.sum
	switch m {
	case Cosine:
		n := s.norms[row]
		if n == 0 || pq.norm == 0 {
			return 0
		}
		return d / (pq.norm * n)
	case Dot:
		return d
	default: // L2
		return -(pq.normSq - 2*d + s.normSqs[row])
	}
}

// scoreRow dispatches to the quantized or exact scorer.
func (s *rowSet) scoreRow(m Metric, row int, pq *preparedQuery) float64 {
	if s.codes != nil {
		return s.approxScore(m, row, pq)
	}
	return s.exactScore(m, row, pq)
}

// scanInto pushes every row's scan score into the bounded top-depth
// heap — the full-scan inner loop of FlatIndex and of each probed IVF
// list (via scanIDs).
func (s *rowSet) scanInto(h *resultHeap, depth int, m Metric, pq *preparedQuery) {
	if s.codes != nil {
		for row := range s.ids {
			pushTopK(h, depth, Result{ID: s.ids[row], Score: s.approxScore(m, row, pq)})
		}
		return
	}
	for row := range s.ids {
		pushTopK(h, depth, Result{ID: s.ids[row], Score: s.exactScore(m, row, pq)})
	}
}

// rerank re-scores candidates against the exact float32 rows and
// returns the top-k, best first — the second stage of a quantized
// search. Candidates whose row vanished under a concurrent structural
// change are skipped.
func (s *rowSet) rerank(m Metric, pq *preparedQuery, cands []Result, k int) []Result {
	h := make(resultHeap, 0, k)
	for _, c := range cands {
		row, ok := s.pos[c.ID]
		if !ok {
			continue
		}
		pushTopK(&h, k, Result{ID: c.ID, Score: s.exactScore(m, row, pq)})
	}
	return drainSorted(&h)
}

// memory reports the set's storage footprint for benchmarks and
// /stats: exact float rows, quantized code blocks, per-row parameters,
// and the bytes the scan path actually touches per query.
func (s *rowSet) memory() IndexMemory {
	n := int64(len(s.ids))
	m := IndexMemory{
		Vectors:    len(s.ids),
		FloatBytes: n * int64(s.dim) * 4,
		// Per-row norm+normSq (float64 each); the scan reads only the
		// norm, and only under Cosine.
		ParamBytes: n * 16,
	}
	if s.codes != nil {
		m.CodeBytes = n * int64(s.dim)
		m.ParamBytes += n * 8 // scale + offset
		// Quantized scan: codes + scale/offset + norm.
		m.ScanBytes = m.CodeBytes + n*16
	} else {
		m.ScanBytes = m.FloatBytes + n*8
	}
	return m
}

// IndexMemory describes an index's storage footprint, in bytes.
type IndexMemory struct {
	// Vectors is the stored vector count.
	Vectors int `json:"vectors"`
	// FloatBytes is the exact float32 rows (kept for re-ranking even
	// when the scan is quantized).
	FloatBytes int64 `json:"float_bytes"`
	// CodeBytes is the int8 code blocks (0 without quantization).
	CodeBytes int64 `json:"code_bytes"`
	// ParamBytes is per-vector scalar state: norms, and scale/offset
	// under quantization.
	ParamBytes int64 `json:"param_bytes"`
	// ScanBytes is what a full scan touches per query — the
	// cache-resident working set: codes+scale/offset+norm when
	// quantized, floats+norm otherwise.
	ScanBytes int64 `json:"scan_bytes"`
	// GraphBytes is index-structure overhead (HNSW links, IVF lists).
	GraphBytes int64 `json:"graph_bytes"`
}

// TotalBytes sums every component.
func (m IndexMemory) TotalBytes() int64 {
	return m.FloatBytes + m.CodeBytes + m.ParamBytes + m.GraphBytes
}

// MemoryReporter is implemented by indexes that can account their
// storage footprint (all three built-ins do).
type MemoryReporter interface {
	Memory() IndexMemory
}

// StageObservable is implemented by indexes that can report internal
// stage timings (currently the quantized re-rank) to a telemetry
// sink. The observer is called as fn(stage, seconds) on the search
// path; a nil fn detaches.
type StageObservable interface {
	SetStageObserver(fn func(stage string, seconds float64))
}
