package vecdb

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Result is one ranked hit from an index search.
type Result struct {
	// ID is the caller-assigned document identifier.
	ID int64
	// Score is the metric score (higher is better for all metrics; L2
	// scores are negated squared distances).
	Score float64
}

// Index ranks stored vectors against a query vector.
type Index interface {
	// Add stores a vector under id. Adding an existing id replaces its
	// vector.
	Add(id int64, vec []float32) error
	// Remove deletes id; removing an absent id is a no-op returning
	// false.
	Remove(id int64) bool
	// Search returns up to k results ordered by descending score.
	Search(query []float32, k int) ([]Result, error)
	// Len reports the number of stored vectors.
	Len() int
}

// resultHeap is a min-heap on Score, used to keep the running top-k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pushTopK maintains a bounded min-heap of the best k results.
func pushTopK(h *resultHeap, k int, r Result) {
	if h.Len() < k {
		heap.Push(h, r)
		return
	}
	if r.Score > (*h)[0].Score {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
}

// drainSorted empties the heap into a descending-score slice with a
// deterministic ID tie-break.
func drainSorted(h *resultHeap) []Result {
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FlatIndex is the exact brute-force index: every query scans every
// vector. It is the correctness baseline the IVF index is tested
// against, and the right choice below ~100k vectors.
type FlatIndex struct {
	metric Metric
	dim    int
	ids    []int64
	vecs   [][]float32
	pos    map[int64]int
}

// NewFlatIndex creates an exact index for vectors of width dim.
func NewFlatIndex(metric Metric, dim int) (*FlatIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	return &FlatIndex{metric: metric, dim: dim, pos: map[int64]int{}}, nil
}

// Add implements Index.
func (x *FlatIndex) Add(id int64, vec []float32) error {
	if len(vec) != x.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, x.dim, len(vec))
	}
	cp := make([]float32, len(vec))
	copy(cp, vec)
	if p, ok := x.pos[id]; ok {
		x.vecs[p] = cp
		return nil
	}
	x.pos[id] = len(x.ids)
	x.ids = append(x.ids, id)
	x.vecs = append(x.vecs, cp)
	return nil
}

// Remove implements Index using swap-with-last deletion.
func (x *FlatIndex) Remove(id int64) bool {
	p, ok := x.pos[id]
	if !ok {
		return false
	}
	last := len(x.ids) - 1
	x.ids[p] = x.ids[last]
	x.vecs[p] = x.vecs[last]
	x.pos[x.ids[p]] = p
	x.ids = x.ids[:last]
	x.vecs = x.vecs[:last]
	delete(x.pos, id)
	return true
}

// Len implements Index.
func (x *FlatIndex) Len() int { return len(x.ids) }

// ErrBadK reports a non-positive k.
var ErrBadK = errors.New("vecdb: k must be positive")

// Search implements Index with a full scan.
func (x *FlatIndex) Search(query []float32, k int) ([]Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != x.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, x.dim, len(query))
	}
	h := make(resultHeap, 0, k)
	for i, v := range x.vecs {
		s, err := Similarity(x.metric, query, v)
		if err != nil {
			return nil, err
		}
		pushTopK(&h, k, Result{ID: x.ids[i], Score: s})
	}
	return drainSorted(&h), nil
}

// IVFIndex is an inverted-file index: vectors are partitioned into
// nlist clusters by k-means on insertion-time training data, and a
// query scans only the nprobe nearest clusters. Recall trades against
// speed via nprobe; the benchmark suite measures both.
type IVFIndex struct {
	metric     Metric
	dim        int
	nlist      int
	nprobe     int
	trained    bool
	centroids  [][]float32
	lists      [][]int64
	vectors    map[int64][]float32
	membership map[int64]int
}

// NewIVFIndex creates an IVF index with nlist clusters probing nprobe
// of them per query. Train must be called before Add/Search.
func NewIVFIndex(metric Metric, dim, nlist, nprobe int) (*IVFIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	if nlist <= 0 || nprobe <= 0 || nprobe > nlist {
		return nil, fmt.Errorf("vecdb: need 0 < nprobe(%d) <= nlist(%d)", nprobe, nlist)
	}
	return &IVFIndex{
		metric: metric, dim: dim, nlist: nlist, nprobe: nprobe,
		vectors: map[int64][]float32{}, membership: map[int64]int{},
	}, nil
}

// ErrNotTrained is returned by Add/Search before Train.
var ErrNotTrained = errors.New("vecdb: IVF index not trained")

// Train runs k-means (k = nlist) over the sample to position the
// cluster centroids. A sample smaller than nlist shrinks nlist to fit.
func (x *IVFIndex) Train(sample [][]float32, iterations int) error {
	if len(sample) == 0 {
		return errors.New("vecdb: empty training sample")
	}
	for _, v := range sample {
		if len(v) != x.dim {
			return fmt.Errorf("%w in training sample", ErrDimMismatch)
		}
	}
	if x.nlist > len(sample) {
		x.nlist = len(sample)
		if x.nprobe > x.nlist {
			x.nprobe = x.nlist
		}
	}
	if iterations <= 0 {
		iterations = 10
	}
	src := rng.NewFromString("ivf-kmeans")
	// k-means++ style: first centroid random, rest greedily far.
	perm := src.Perm(len(sample))
	x.centroids = make([][]float32, 0, x.nlist)
	for _, pi := range perm[:x.nlist] {
		c := make([]float32, x.dim)
		copy(c, sample[pi])
		x.centroids = append(x.centroids, c)
	}
	assign := make([]int, len(sample))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, v := range sample {
			best := x.nearestCentroid(v)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([][]float64, x.nlist)
		counts := make([]int, x.nlist)
		for c := range sums {
			sums[c] = make([]float64, x.dim)
		}
		for i, v := range sample {
			c := assign[i]
			counts[c]++
			for d, f := range v {
				sums[c][d] += float64(f)
			}
		}
		for c := range x.centroids {
			if counts[c] == 0 {
				continue // keep previous position for empty clusters
			}
			for d := range x.centroids[c] {
				x.centroids[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	x.lists = make([][]int64, x.nlist)
	x.trained = true
	return nil
}

// nearestCentroid returns the centroid index with the best metric
// score for v.
func (x *IVFIndex) nearestCentroid(v []float32) int {
	best, bestScore := 0, -1.0
	for c, cent := range x.centroids {
		s, _ := Similarity(x.metric, v, cent)
		if c == 0 || s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Trained reports whether Train has completed.
func (x *IVFIndex) Trained() bool { return x.trained }

// Add implements Index.
func (x *IVFIndex) Add(id int64, vec []float32) error {
	if !x.trained {
		return ErrNotTrained
	}
	if len(vec) != x.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, x.dim, len(vec))
	}
	if _, ok := x.vectors[id]; ok {
		x.Remove(id)
	}
	cp := make([]float32, len(vec))
	copy(cp, vec)
	c := x.nearestCentroid(cp)
	x.vectors[id] = cp
	x.membership[id] = c
	x.lists[c] = append(x.lists[c], id)
	return nil
}

// Remove implements Index.
func (x *IVFIndex) Remove(id int64) bool {
	c, ok := x.membership[id]
	if !ok {
		return false
	}
	list := x.lists[c]
	for i, v := range list {
		if v == id {
			list[i] = list[len(list)-1]
			x.lists[c] = list[:len(list)-1]
			break
		}
	}
	delete(x.vectors, id)
	delete(x.membership, id)
	return true
}

// Len implements Index.
func (x *IVFIndex) Len() int { return len(x.vectors) }

// Search implements Index by scanning the nprobe closest clusters.
func (x *IVFIndex) Search(query []float32, k int) ([]Result, error) {
	if !x.trained {
		return nil, ErrNotTrained
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != x.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, x.dim, len(query))
	}
	// Rank centroids by score.
	type cs struct {
		c int
		s float64
	}
	order := make([]cs, len(x.centroids))
	for c, cent := range x.centroids {
		s, err := Similarity(x.metric, query, cent)
		if err != nil {
			return nil, err
		}
		order[c] = cs{c: c, s: s}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].s > order[j].s })
	h := make(resultHeap, 0, k)
	for p := 0; p < x.nprobe && p < len(order); p++ {
		for _, id := range x.lists[order[p].c] {
			s, err := Similarity(x.metric, query, x.vectors[id])
			if err != nil {
				return nil, err
			}
			pushTopK(&h, k, Result{ID: id, Score: s})
		}
	}
	return drainSorted(&h), nil
}
