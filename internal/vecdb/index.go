package vecdb

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
)

// Result is one ranked hit from an index search.
type Result struct {
	// ID is the caller-assigned document identifier.
	ID int64
	// Score is the metric score (higher is better for all metrics; L2
	// scores are negated squared distances).
	Score float64
}

// Index ranks stored vectors against a query vector.
type Index interface {
	// Add stores a vector under id. Adding an existing id replaces its
	// vector.
	Add(id int64, vec []float32) error
	// Remove deletes id; removing an absent id is a no-op returning
	// false.
	Remove(id int64) bool
	// Search returns up to k results ordered by descending score.
	Search(query []float32, k int) ([]Result, error)
	// Len reports the number of stored vectors.
	Len() int
}

// resultHeap is a min-heap on Score, used to keep the running top-k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pushTopK maintains a bounded min-heap of the best k results.
func pushTopK(h *resultHeap, k int, r Result) {
	if h.Len() < k {
		heap.Push(h, r)
		return
	}
	if r.Score > (*h)[0].Score {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
}

// drainSorted empties the heap into a descending-score slice with a
// deterministic ID tie-break.
func drainSorted(h *resultHeap) []Result {
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// observeStage times a stage when an observer is attached; zero start
// means "not timing".
func observeStage(fn func(string, float64), stage string, start time.Time) {
	if fn != nil {
		fn(stage, time.Since(start).Seconds())
	}
}

// FlatIndex is the exact brute-force index: every query scans every
// vector. It is the correctness baseline the IVF index is tested
// against, and the right choice below ~100k vectors. With QuantInt8 it
// scans the blocked int8 code mirror instead (≈4× less memory
// traffic) and re-ranks the top candidates against the exact floats.
type FlatIndex struct {
	metric  Metric
	rs      rowSet
	observe func(stage string, seconds float64)
}

// NewFlatIndex creates an exact index for vectors of width dim.
func NewFlatIndex(metric Metric, dim int) (*FlatIndex, error) {
	return NewFlatIndexQ(metric, dim, QuantConfig{})
}

// NewFlatIndexQ creates a flat index with the given quantization
// config (QuantConfig{} scans exact floats, preserving NewFlatIndex
// semantics).
func NewFlatIndexQ(metric Metric, dim int, q QuantConfig) (*FlatIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	return &FlatIndex{metric: metric, rs: newRowSet(dim, q)}, nil
}

// SetStageObserver implements StageObservable.
func (x *FlatIndex) SetStageObserver(fn func(stage string, seconds float64)) { x.observe = fn }

// Memory implements MemoryReporter.
func (x *FlatIndex) Memory() IndexMemory { return x.rs.memory() }

// Add implements Index.
func (x *FlatIndex) Add(id int64, vec []float32) error {
	if len(vec) != x.rs.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, x.rs.dim, len(vec))
	}
	x.rs.add(id, vec)
	return nil
}

// Remove implements Index using swap-with-last deletion.
func (x *FlatIndex) Remove(id int64) bool { return x.rs.remove(id) }

// Len implements Index.
func (x *FlatIndex) Len() int { return x.rs.len() }

// ErrBadK reports a non-positive k.
var ErrBadK = errors.New("vecdb: k must be positive")

// Search implements Index with a full scan. On a quantized index the
// scan reads int8 codes and the top rerank-depth candidates are
// re-scored exactly before the top-k is returned.
func (x *FlatIndex) Search(query []float32, k int) ([]Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != x.rs.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, x.rs.dim, len(query))
	}
	if err := validMetric(x.metric); err != nil {
		return nil, err
	}
	pq := x.rs.prepare(query)
	if !x.rs.quantized() {
		h := make(resultHeap, 0, k)
		x.rs.scanInto(&h, k, x.metric, &pq)
		return drainSorted(&h), nil
	}
	depth := x.rs.quant.rerankDepth(k)
	h := make(resultHeap, 0, depth)
	x.rs.scanInto(&h, depth, x.metric, &pq)
	cands := drainSorted(&h)
	var start time.Time
	if x.observe != nil {
		start = time.Now()
	}
	out := x.rs.rerank(x.metric, &pq, cands, k)
	observeStage(x.observe, "rerank", start)
	return out, nil
}

// validMetric rejects metrics Similarity would also reject, once per
// query instead of once per comparison.
func validMetric(m Metric) error {
	switch m {
	case Cosine, Dot, L2:
		return nil
	default:
		return fmt.Errorf("vecdb: unknown metric %v", m)
	}
}

// IVFIndex is an inverted-file index: vectors are partitioned into
// nlist clusters by k-means on insertion-time training data, and a
// query scans only the nprobe nearest clusters. Recall trades against
// speed via nprobe; the benchmark suite measures both. Vector storage
// is the same dense rowSet the flat index scans — with QuantInt8 each
// probed list is scored through the int8 kernel and the merged
// candidates re-ranked exactly.
type IVFIndex struct {
	metric     Metric
	dim        int
	nlist      int
	nprobe     int
	trained    bool
	centroids  [][]float32
	lists      [][]int64
	rs         rowSet
	membership map[int64]int
	observe    func(stage string, seconds float64)
}

// NewIVFIndex creates an IVF index with nlist clusters probing nprobe
// of them per query. Train must be called before Add/Search.
func NewIVFIndex(metric Metric, dim, nlist, nprobe int) (*IVFIndex, error) {
	return NewIVFIndexQ(metric, dim, nlist, nprobe, QuantConfig{})
}

// NewIVFIndexQ creates an IVF index with the given quantization
// config.
func NewIVFIndexQ(metric Metric, dim, nlist, nprobe int, q QuantConfig) (*IVFIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: index dim must be positive, got %d", dim)
	}
	if nlist <= 0 || nprobe <= 0 || nprobe > nlist {
		return nil, fmt.Errorf("vecdb: need 0 < nprobe(%d) <= nlist(%d)", nprobe, nlist)
	}
	return &IVFIndex{
		metric: metric, dim: dim, nlist: nlist, nprobe: nprobe,
		rs: newRowSet(dim, q), membership: map[int64]int{},
	}, nil
}

// SetStageObserver implements StageObservable.
func (x *IVFIndex) SetStageObserver(fn func(stage string, seconds float64)) { x.observe = fn }

// Memory implements MemoryReporter.
func (x *IVFIndex) Memory() IndexMemory {
	m := x.rs.memory()
	m.GraphBytes = int64(len(x.centroids)) * int64(x.dim) * 4 // centroid rows
	for _, l := range x.lists {
		m.GraphBytes += int64(len(l)) * 8
	}
	return m
}

// ErrNotTrained is returned by Add/Search before Train.
var ErrNotTrained = errors.New("vecdb: IVF index not trained")

// Train runs k-means (k = nlist) over the sample to position the
// cluster centroids. A sample smaller than nlist shrinks nlist to fit.
func (x *IVFIndex) Train(sample [][]float32, iterations int) error {
	if len(sample) == 0 {
		return errors.New("vecdb: empty training sample")
	}
	for _, v := range sample {
		if len(v) != x.dim {
			return fmt.Errorf("%w in training sample", ErrDimMismatch)
		}
	}
	if x.nlist > len(sample) {
		x.nlist = len(sample)
		if x.nprobe > x.nlist {
			x.nprobe = x.nlist
		}
	}
	if iterations <= 0 {
		iterations = 10
	}
	src := rng.NewFromString("ivf-kmeans")
	// k-means++ style: first centroid random, rest greedily far.
	perm := src.Perm(len(sample))
	x.centroids = make([][]float32, 0, x.nlist)
	for _, pi := range perm[:x.nlist] {
		c := make([]float32, x.dim)
		copy(c, sample[pi])
		x.centroids = append(x.centroids, c)
	}
	assign := make([]int, len(sample))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, v := range sample {
			best := x.nearestCentroid(v)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([][]float64, x.nlist)
		counts := make([]int, x.nlist)
		for c := range sums {
			sums[c] = make([]float64, x.dim)
		}
		for i, v := range sample {
			c := assign[i]
			counts[c]++
			for d, f := range v {
				sums[c][d] += float64(f)
			}
		}
		for c := range x.centroids {
			if counts[c] == 0 {
				continue // keep previous position for empty clusters
			}
			for d := range x.centroids[c] {
				x.centroids[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	x.lists = make([][]int64, x.nlist)
	x.trained = true
	return nil
}

// nearestCentroid returns the centroid index with the best metric
// score for v.
func (x *IVFIndex) nearestCentroid(v []float32) int {
	best, bestScore := 0, -1.0
	for c, cent := range x.centroids {
		s, _ := Similarity(x.metric, v, cent)
		if c == 0 || s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Trained reports whether Train has completed.
func (x *IVFIndex) Trained() bool { return x.trained }

// Add implements Index.
func (x *IVFIndex) Add(id int64, vec []float32) error {
	if !x.trained {
		return ErrNotTrained
	}
	if len(vec) != x.dim {
		return fmt.Errorf("%w: index dim %d, vector dim %d", ErrDimMismatch, x.dim, len(vec))
	}
	if _, ok := x.membership[id]; ok {
		x.Remove(id)
	}
	c := x.nearestCentroid(vec)
	x.rs.add(id, vec)
	x.membership[id] = c
	x.lists[c] = append(x.lists[c], id)
	return nil
}

// Remove implements Index.
func (x *IVFIndex) Remove(id int64) bool {
	c, ok := x.membership[id]
	if !ok {
		return false
	}
	list := x.lists[c]
	for i, v := range list {
		if v == id {
			list[i] = list[len(list)-1]
			x.lists[c] = list[:len(list)-1]
			break
		}
	}
	x.rs.remove(id)
	delete(x.membership, id)
	return true
}

// Len implements Index.
func (x *IVFIndex) Len() int { return x.rs.len() }

// Search implements Index by scanning the nprobe closest clusters.
func (x *IVFIndex) Search(query []float32, k int) ([]Result, error) {
	if !x.trained {
		return nil, ErrNotTrained
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != x.dim {
		return nil, fmt.Errorf("%w: index dim %d, query dim %d", ErrDimMismatch, x.dim, len(query))
	}
	if err := validMetric(x.metric); err != nil {
		return nil, err
	}
	// Rank centroids by score.
	type cs struct {
		c int
		s float64
	}
	order := make([]cs, len(x.centroids))
	for c, cent := range x.centroids {
		s, err := Similarity(x.metric, query, cent)
		if err != nil {
			return nil, err
		}
		order[c] = cs{c: c, s: s}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].s > order[j].s })
	pq := x.rs.prepare(query)
	depth := k
	if x.rs.quantized() {
		depth = x.rs.quant.rerankDepth(k)
	}
	h := make(resultHeap, 0, depth)
	for p := 0; p < x.nprobe && p < len(order); p++ {
		for _, id := range x.lists[order[p].c] {
			row := x.rs.pos[id]
			pushTopK(&h, depth, Result{ID: id, Score: x.rs.scoreRow(x.metric, row, &pq)})
		}
	}
	if !x.rs.quantized() {
		return drainSorted(&h), nil
	}
	cands := drainSorted(&h)
	var start time.Time
	if x.observe != nil {
		start = time.Now()
	}
	out := x.rs.rerank(x.metric, &pq, cands, k)
	observeStage(x.observe, "rerank", start)
	return out, nil
}
