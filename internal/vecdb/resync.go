package vecdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// This file is the replication-facing surface of a DB: a monotonic
// per-shard mutation sequence number, an order-independent content
// checksum, and the three operations anti-entropy resync is built
// from — reading a consistent snapshot, applying a journaled delta
// with explicit sequence numbers, and applying a full snapshot.
// See docs/cluster.md ("Replica resync") for how the cluster layer
// composes them.

// ErrSeqTruncated reports that a journal no longer retains the
// mutations after the requested sequence number — the reader must
// fall back to a full snapshot transfer. It is returned by
// MutationsSince implementations whose WAL was truncated past the
// requested point (or that keep no journal at all).
var ErrSeqTruncated = errors.New("vecdb: journal truncated past requested seq")

// SeqMutation pairs a journaled mutation with the per-shard sequence
// number it was applied at. Sequence numbers order one shard's
// mutation stream; they carry no meaning across shards.
type SeqMutation struct {
	Seq uint64
	Mutation
}

// Seq reports the last applied mutation sequence number. It advances
// by one for every mutation applied through Apply/ApplyAll, and jumps
// to the source's numbering under ApplyResync/ApplySnapshot. A fresh
// DB is at seq 0.
func (db *DB) Seq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seq
}

// SetSeq pins the sequence counter — the recovery path uses it to
// restore the journal's numbering after replay (replay may skip
// already-checkpointed records, so counting applies would drift), and
// the write path uses it to roll the counter back with a failed
// batch.
func (db *DB) SetSeq(seq uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seq = seq
}

// Checksum reports the order-independent content checksum: the XOR of
// every stored document's hash. Two shards holding the same document
// set report the same checksum regardless of the order writes
// arrived in, so equal seq + equal checksum is the resync manager's
// convergence test, and equal seq + differing checksum exposes silent
// divergence that sequence numbers alone cannot see.
func (db *DB) Checksum() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.check
}

// docHash folds one document (ID, collection, text, and sorted
// metadata) into the 64-bit hash the content checksum accumulates. It
// must be deterministic across processes: FNV-1a over a canonical
// byte ordering, never map iteration order. Stored documents always
// carry a normalized (non-empty) collection, so two shards holding
// the same doc set hash identically regardless of how the collection
// was spelled at write time.
func docHash(d Document) uint64 {
	h := fnv.New64a()
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(d.ID))
	h.Write(idb[:])
	h.Write([]byte{0x1d})
	h.Write([]byte(NormalizeCollection(d.Collection)))
	h.Write([]byte{0x1f})
	h.Write([]byte(d.Text))
	if len(d.Meta) > 0 {
		keys := make([]string, 0, len(d.Meta))
		for k := range d.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.Write([]byte{0x1f})
			h.Write([]byte(k))
			h.Write([]byte{0x1e})
			h.Write([]byte(d.Meta[k]))
		}
	}
	return h.Sum64()
}

// MutationsSince on a bare DB always reports ErrSeqTruncated: the DB
// keeps no journal (that is the WAL's job, one layer up), so a peer
// that lags it can only be repaired by snapshot transfer. Durable
// stores (serve.ShardedDB) override this with a real WAL read.
func (db *DB) MutationsSince(since uint64, max int) ([]SeqMutation, error) {
	return nil, fmt.Errorf("%w: in-memory db keeps no journal", ErrSeqTruncated)
}

// ApplyResync applies a mutation delta shipped from a more advanced
// peer. It differs from ApplyAll in exactly the ways catch-up needs:
// adds are upserts (re-shipping a document the target already holds
// replaces it in place), deletes of absent IDs are no-ops (the target
// may never have seen the add the source journaled before it), and
// the sequence counter follows the explicit per-mutation numbers
// rather than counting locally — after a clean apply the target's seq
// equals the highest shipped seq. Replays are idempotent, so a resync
// interrupted mid-batch is simply retried.
func (db *DB) ApplyResync(ms []SeqMutation) error {
	vecs := make([][]float32, len(ms))
	var texts []string
	var slots []int
	for i, m := range ms {
		switch m.Op {
		case OpAdd:
			if m.ID <= 0 {
				return fmt.Errorf("vecdb: resync document ID must be positive, got %d", m.ID)
			}
			texts = append(texts, m.Text)
			slots = append(slots, i)
		case OpDelete:
		default:
			return fmt.Errorf("vecdb: unknown mutation op %d", m.Op)
		}
	}
	embedded, err := embedAll(db.embed, texts)
	if err != nil {
		return err
	}
	for j, i := range slots {
		vecs[i] = embedded[j]
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i, m := range ms {
		switch m.Op {
		case OpAdd:
			if err := db.addLocked(m.ID, m.Collection, m.Text, m.Meta, vecs[i]); err != nil {
				return err
			}
		case OpDelete:
			if err := db.deleteLocked(m.ID, m.Collection); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		}
		if m.Seq > db.seq {
			db.seq = m.Seq
		}
	}
	return nil
}

// SnapshotDocs returns a consistent view of the full document set
// (sorted by ID) together with the seq it is current as of — the
// source side of a full snapshot transfer, taken under one read lock
// so the doc set and the seq always agree.
func (db *DB) SnapshotDocs() (uint64, []Document, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	docs := make([]Document, 0, len(db.docs))
	for _, d := range db.docs {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	return db.seq, docs, nil
}

// ApplySnapshot replaces the DB's contents with a peer's full
// document set and adopts its seq — the fallback when the source's
// WAL no longer retains the delta the target needs. It is applied as
// a diff under one lock: documents absent from the snapshot are
// deleted, every snapshot document is upserted (replacing in place
// when present), so a crash mid-apply leaves a state that the next
// resync round repairs rather than a half-cleared store.
func (db *DB) ApplySnapshot(seq uint64, docs []Document) error {
	texts := make([]string, len(docs))
	for i, d := range docs {
		if d.ID <= 0 {
			return fmt.Errorf("vecdb: snapshot document ID must be positive, got %d", d.ID)
		}
		texts[i] = d.Text
	}
	vecs, err := embedAll(db.embed, texts)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	want := make(map[int64]bool, len(docs))
	for _, d := range docs {
		want[d.ID] = true
	}
	var drop []int64
	for id := range db.docs {
		if !want[id] {
			drop = append(drop, id)
		}
	}
	for _, id := range drop {
		if err := db.deleteLocked(id, ""); err != nil {
			return err
		}
	}
	for i, d := range docs {
		if err := db.addLocked(d.ID, d.Collection, d.Text, d.Meta, vecs[i]); err != nil {
			return err
		}
	}
	db.seq = seq
	return nil
}
