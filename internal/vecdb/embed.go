package vecdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/textproc"
)

// Embedder turns text into a fixed-width vector. Implementations must
// be deterministic and safe for concurrent use once constructed.
type Embedder interface {
	// Dim is the width of produced vectors.
	Dim() int
	// Embed returns the vector for text. Implementations must return a
	// fresh slice the caller may retain.
	Embed(text string) ([]float32, error)
}

// HashedEmbedder is a training-free feature-hashing embedder: every
// stemmed content word and bigram is hashed into `dim` signed buckets
// (the classic "hashing trick"). It gives usable lexical-similarity
// vectors with zero fitting, which is what a production RAG stack
// falls back to before a learned embedder is available.
type HashedEmbedder struct {
	dim int
}

// NewHashedEmbedder creates a feature-hashing embedder of the given
// dimension.
func NewHashedEmbedder(dim int) (*HashedEmbedder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: embedder dim must be positive, got %d", dim)
	}
	return &HashedEmbedder{dim: dim}, nil
}

// Dim implements Embedder.
func (e *HashedEmbedder) Dim() int { return e.dim }

// Embed implements Embedder. The output is L2-normalized.
func (e *HashedEmbedder) Embed(text string) ([]float32, error) {
	v := make([]float32, e.dim)
	words := textproc.ContentWords(text)
	feats := append(append([]string(nil), words...), textproc.Bigrams(words)...)
	for _, f := range feats {
		h := rng.HashString(f)
		idx := int(h % uint64(e.dim))
		sign := float32(1)
		if (h>>63)&1 == 1 {
			sign = -1
		}
		v[idx] += sign
	}
	NormalizeInPlace(v)
	return v, nil
}

// TFIDFEmbedder is a corpus-fitted embedder: each vocabulary term gets
// a random-projection direction weighted by its inverse document
// frequency, so rare, discriminative handbook terms ("probation",
// "reimbursement") dominate the geometry. Fit must be called before
// Embed.
type TFIDFEmbedder struct {
	dim int

	mu     sync.RWMutex
	fitted bool
	idf    map[string]float64
	proj   map[string][]float32 // term → projection row (lazily built)
	seed   uint64
	nDocs  int
}

// NewTFIDFEmbedder creates an unfitted TF-IDF embedder.
func NewTFIDFEmbedder(dim int) (*TFIDFEmbedder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vecdb: embedder dim must be positive, got %d", dim)
	}
	return &TFIDFEmbedder{
		dim:  dim,
		idf:  map[string]float64{},
		proj: map[string][]float32{},
		seed: rng.HashString("tfidf-projection"),
	}, nil
}

// Dim implements Embedder.
func (e *TFIDFEmbedder) Dim() int { return e.dim }

// ErrNotFitted is returned by Embed before Fit.
var ErrNotFitted = errors.New("vecdb: embedder not fitted")

// Fit computes document frequencies over the corpus. Calling Fit again
// refits from scratch.
func (e *TFIDFEmbedder) Fit(corpus []string) error {
	if len(corpus) == 0 {
		return errors.New("vecdb: empty corpus")
	}
	df := map[string]int{}
	for _, doc := range corpus {
		seen := map[string]struct{}{}
		for _, w := range textproc.ContentWords(doc) {
			seen[w] = struct{}{}
		}
		for w := range seen {
			df[w]++
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.idf = make(map[string]float64, len(df))
	e.nDocs = len(corpus)
	for w, n := range df {
		e.idf[w] = math.Log(float64(1+len(corpus)) / float64(1+n))
	}
	e.proj = map[string][]float32{}
	e.fitted = true
	return nil
}

// Fitted reports whether Fit has completed.
func (e *TFIDFEmbedder) Fitted() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.fitted
}

// projection returns the deterministic random direction for a term.
// Caller must hold at least the read lock; the method upgrades to the
// write lock when it must create the row.
func (e *TFIDFEmbedder) projection(term string) []float32 {
	e.mu.RLock()
	row, ok := e.proj[term]
	e.mu.RUnlock()
	if ok {
		return row
	}
	src := rng.New(e.seed ^ rng.HashString(term))
	row = make([]float32, e.dim)
	for i := range row {
		row[i] = float32(src.NormFloat64())
	}
	e.mu.Lock()
	if existing, ok := e.proj[term]; ok {
		row = existing
	} else {
		e.proj[term] = row
	}
	e.mu.Unlock()
	return row
}

// Embed implements Embedder: the IDF-weighted sum of per-term
// projections, L2-normalized. Unknown terms fall back to IDF of the
// rarest seen class (log(1+N)), keeping out-of-vocabulary queries
// usable.
func (e *TFIDFEmbedder) Embed(text string) ([]float32, error) {
	e.mu.RLock()
	fitted, nDocs := e.fitted, e.nDocs
	e.mu.RUnlock()
	if !fitted {
		return nil, ErrNotFitted
	}
	tf := map[string]int{}
	for _, w := range textproc.ContentWords(text) {
		tf[w]++
	}
	v := make([]float32, e.dim)
	// Deterministic iteration order so float accumulation is stable.
	terms := make([]string, 0, len(tf))
	for w := range tf {
		terms = append(terms, w)
	}
	sort.Strings(terms)
	oovIDF := math.Log(float64(1 + nDocs))
	for _, w := range terms {
		e.mu.RLock()
		idf, ok := e.idf[w]
		e.mu.RUnlock()
		if !ok {
			idf = oovIDF
		}
		weight := float32((1 + math.Log(float64(tf[w]))) * idf)
		row := e.projection(w)
		for i := range v {
			v[i] += weight * row[i]
		}
	}
	NormalizeInPlace(v)
	return v, nil
}
