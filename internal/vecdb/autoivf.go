package vecdb

import "fmt"

// autoIVFTrainFactor sets the training threshold for AutoIVFIndex:
// once nlist·factor vectors are buffered, k-means has roughly enough
// samples per cluster to position stable centroids.
const autoIVFTrainFactor = 16

// AutoIVFIndex makes IVFIndex usable for incrementally built stores
// (ragserver ingest, WAL replay): until nlist·16 vectors have arrived
// it serves exact flat scans from a buffer, then trains k-means on the
// buffered vectors and migrates them into a real IVF index in one
// step. The transition is deterministic for a given insertion
// sequence — rows are replayed in dense insertion order — so recovery
// replay rebuilds the identical index.
type AutoIVFIndex struct {
	metric  Metric
	dim     int
	nlist   int
	nprobe  int
	quant   QuantConfig
	flat    *FlatIndex // buffer phase; nil once migrated
	ivf     *IVFIndex  // nil until trained
	observe func(stage string, seconds float64)
}

// NewAutoIVFIndex creates an auto-training IVF index; parameters match
// NewIVFIndexQ.
func NewAutoIVFIndex(metric Metric, dim, nlist, nprobe int, q QuantConfig) (*AutoIVFIndex, error) {
	if nlist <= 0 || nprobe <= 0 || nprobe > nlist {
		return nil, fmt.Errorf("vecdb: need 0 < nprobe(%d) <= nlist(%d)", nprobe, nlist)
	}
	flat, err := NewFlatIndexQ(metric, dim, q)
	if err != nil {
		return nil, err
	}
	return &AutoIVFIndex{
		metric: metric, dim: dim, nlist: nlist, nprobe: nprobe,
		quant: q, flat: flat,
	}, nil
}

// SetStageObserver implements StageObservable.
func (x *AutoIVFIndex) SetStageObserver(fn func(stage string, seconds float64)) {
	x.observe = fn
	if x.flat != nil {
		x.flat.SetStageObserver(fn)
	}
	if x.ivf != nil {
		x.ivf.SetStageObserver(fn)
	}
}

// Trained reports whether the index has migrated to IVF scans.
func (x *AutoIVFIndex) Trained() bool { return x.ivf != nil }

// Memory implements MemoryReporter.
func (x *AutoIVFIndex) Memory() IndexMemory {
	if x.ivf != nil {
		return x.ivf.Memory()
	}
	return x.flat.Memory()
}

// Len implements Index.
func (x *AutoIVFIndex) Len() int {
	if x.ivf != nil {
		return x.ivf.Len()
	}
	return x.flat.Len()
}

// Add implements Index, training and migrating once the buffer reaches
// nlist·16 vectors.
func (x *AutoIVFIndex) Add(id int64, vec []float32) error {
	if x.ivf != nil {
		return x.ivf.Add(id, vec)
	}
	if err := x.flat.Add(id, vec); err != nil {
		return err
	}
	if x.flat.Len() >= x.nlist*autoIVFTrainFactor {
		return x.migrate()
	}
	return nil
}

// migrate trains IVF on the buffered vectors and moves them over in
// insertion order.
func (x *AutoIVFIndex) migrate() error {
	rs := &x.flat.rs
	sample := make([][]float32, len(rs.vecs))
	copy(sample, rs.vecs)
	ivf, err := NewIVFIndexQ(x.metric, x.dim, x.nlist, x.nprobe, x.quant)
	if err != nil {
		return err
	}
	if err := ivf.Train(sample, 0); err != nil {
		return err
	}
	for row, id := range rs.ids {
		if err := ivf.Add(id, rs.vecs[row]); err != nil {
			return err
		}
	}
	ivf.SetStageObserver(x.observe)
	x.ivf = ivf
	x.flat = nil
	return nil
}

// Remove implements Index.
func (x *AutoIVFIndex) Remove(id int64) bool {
	if x.ivf != nil {
		return x.ivf.Remove(id)
	}
	return x.flat.Remove(id)
}

// Search implements Index.
func (x *AutoIVFIndex) Search(query []float32, k int) ([]Result, error) {
	if x.ivf != nil {
		return x.ivf.Search(query, k)
	}
	return x.flat.Search(query, k)
}
