package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/vecdb"
)

// memStore collects AddBulk batches, optionally sleeping per call to
// simulate a slow index (cold shard, saturated disk, slow WAL fsync).
// It also implements the docs write surface, recording each chunk's
// collection and metadata, so streams carrying meta are accepted.
type memStore struct {
	delay time.Duration
	fail  error

	mu      sync.Mutex
	batches [][]string
	docs    []vecdb.Document
	chunks  atomic.Uint64
}

func (m *memStore) AddBulkDocs(docs []vecdb.Document) ([]int64, error) {
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	ids, err := m.AddBulk(texts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.docs = append(m.docs, docs...)
	m.mu.Unlock()
	return ids, nil
}

func (m *memStore) AddBulk(texts []string) ([]int64, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if m.fail != nil {
		return nil, m.fail
	}
	m.mu.Lock()
	m.batches = append(m.batches, append([]string(nil), texts...))
	m.mu.Unlock()
	ids := make([]int64, len(texts))
	m.chunks.Add(uint64(len(texts)))
	return ids, nil
}

func (m *memStore) texts() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, b := range m.batches {
		out = append(out, b...)
	}
	return out
}

// oneChunk passes each document through as a single chunk, making
// document and chunk counts line up exactly in invariants.
type oneChunk struct{}

func (oneChunk) Chunk(text string) ([]string, error) { return []string{text}, nil }

// splitChunk splits on "|" so one document can fan into several
// chunks.
type splitChunk struct{}

func (splitChunk) Chunk(text string) ([]string, error) {
	return strings.Split(text, "|"), nil
}

func ndjson(lines ...string) io.Reader { return strings.NewReader(strings.Join(lines, "\n") + "\n") }

func TestStreamHappyPath(t *testing.T) {
	store := &memStore{}
	st, err := Run(context.Background(), Config{Store: store, Chunker: splitChunk{}}, ndjson(
		`{"text":"alpha|beta"}`,
		``,
		`"gamma"`, // bare-string form
		`   `,     // whitespace-only lines are skipped
		`{"text":"delta","meta":{"src":"test"}}`,
	), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Accepted != 3 || st.Indexed != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 3 accepted, 3 indexed, 0 failed", st)
	}
	if st.Chunks != 4 {
		t.Fatalf("chunks = %d, want 4", st.Chunks)
	}
	got := store.texts()
	want := map[string]bool{"alpha": true, "beta": true, "gamma": true, "delta": true}
	if len(got) != 4 {
		t.Fatalf("store holds %d chunks: %v", len(got), got)
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("unexpected chunk %q", c)
		}
	}
	if st.Bytes == 0 {
		t.Fatal("bytes not counted")
	}
}

func TestMalformedLinesFailAlone(t *testing.T) {
	store := &memStore{}
	st, err := Run(context.Background(), Config{Store: store, Chunker: oneChunk{}}, ndjson(
		`{"text":"good one"}`,
		`{not json`,
		`{"text":""}`,  // no text
		`{"other":42}`, // no text field
		`{"text":"good two"}`,
	), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Accepted != 2 || st.Indexed != 2 {
		t.Fatalf("stats = %+v, want 2 accepted + indexed", st)
	}
	if st.Failed != 3 {
		t.Fatalf("failed = %d, want 3", st.Failed)
	}
}

// rejectChunk fails every document whose text contains "bad".
type rejectChunk struct{}

func (rejectChunk) Chunk(text string) ([]string, error) {
	if strings.Contains(text, "bad") {
		return nil, errors.New("rejected")
	}
	return []string{text}, nil
}

// TestChunkerFailuresCountAgainstMaxErrors: a document the chunker
// rejects is an unusable line like any other — excluded from
// Accepted, counted in Failed, and subject to the MaxErrors abort.
func TestChunkerFailuresCountAgainstMaxErrors(t *testing.T) {
	store := &memStore{}
	st, err := Run(context.Background(), Config{Store: store, Chunker: rejectChunk{}}, ndjson(
		`{"text":"good"}`, `{"text":"bad one"}`, `{"text":"bad two"}`,
	), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Accepted != 1 || st.Indexed != 1 || st.Failed != 2 {
		t.Fatalf("stats = %+v, want 1 accepted+indexed, 2 failed", st)
	}

	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, `{"text":"bad doc"}`)
	}
	if _, err := Run(context.Background(), Config{Store: store, Chunker: rejectChunk{}, MaxErrors: 3},
		ndjson(lines...), nil); !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("err = %v, want ErrTooManyErrors from chunker failures", err)
	}
}

func TestTooManyErrorsAborts(t *testing.T) {
	store := &memStore{}
	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, `{broken`)
	}
	_, err := Run(context.Background(), Config{Store: store, Chunker: oneChunk{}, MaxErrors: 3}, ndjson(lines...), nil)
	if !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("err = %v, want ErrTooManyErrors", err)
	}
}

func TestLineTooLongAborts(t *testing.T) {
	store := &memStore{}
	long := `{"text":"` + strings.Repeat("x", 4096) + `"}`
	_, err := Run(context.Background(), Config{Store: store, Chunker: oneChunk{}, MaxLineBytes: 1024}, ndjson(
		`{"text":"fine"}`, long,
	), nil)
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

func TestStoreErrorAbortsStream(t *testing.T) {
	boom := errors.New("disk on fire")
	store := &memStore{fail: boom}
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf(`{"text":"doc %d"}`, i))
	}
	st, err := Run(context.Background(), Config{Store: store, Chunker: oneChunk{}}, ndjson(lines...), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped store error", err)
	}
	if st.Indexed != 0 {
		t.Fatalf("indexed = %d after store failure", st.Indexed)
	}
}

// trackedReader emits NDJSON lines one per Read and records, at every
// produce, how far production ran ahead of what the store has durably
// indexed — the end-to-end backpressure invariant.
type trackedReader struct {
	store    *memStore
	line     []byte
	total    int
	produced int
	maxAhead int
}

func (r *trackedReader) Read(p []byte) (int, error) {
	if r.produced >= r.total {
		return 0, io.EOF
	}
	if ahead := r.produced - int(r.store.chunks.Load()); ahead > r.maxAhead {
		r.maxAhead = ahead
	}
	r.produced++
	n := copy(p, r.line)
	return n, nil
}

// TestSlowStoreThrottlesProducer is the backpressure acceptance test:
// a store whose every AddBulk stalls (a slow-fsync shard) must slow a
// fast producer down to its own pace, keeping the bytes buffered in
// the pipeline bounded by configuration — and the throttling must be
// visible in the stats.
func TestSlowStoreThrottlesProducer(t *testing.T) {
	const (
		docs       = 400
		maxPending = 8
		workers    = 2
		lineBytes  = 2048
	)
	store := &memStore{delay: 2 * time.Millisecond}
	line := []byte(`{"text":"` + strings.Repeat("y", lineBytes) + `"}` + "\n")
	r := &trackedReader{store: store, line: line, total: docs}

	st, err := Run(context.Background(), Config{
		Store:      store,
		Chunker:    oneChunk{},
		Workers:    workers,
		MaxPending: maxPending,
		// Small static batches keep AddBulk calls frequent so the store
		// delay actually throttles.
		Controller: adaptive.New(adaptive.Config{MaxBatch: 4, Static: true, MaxWait: time.Millisecond}),
	}, r, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Indexed != docs {
		t.Fatalf("indexed = %d, want %d", st.Indexed, docs)
	}
	if st.Throttled == 0 {
		t.Fatal("slow store engaged no throttling")
	}
	// How far the producer may legitimately run ahead: the scanner's
	// read-ahead buffer plus every bounded stage of the pipeline
	// (docs channel, workers' in-hand docs, the credit pool, and the
	// assembler handoff channel).
	scannerLines := 64*1024/len(line) + 1
	bound := scannerLines + 2*workers + workers + maxPending + 2*workers + 8
	if r.maxAhead > bound {
		t.Fatalf("producer ran %d docs ahead of the index (bound %d): backpressure failed", r.maxAhead, bound)
	}
	t.Logf("maxAhead=%d (bound %d), throttled=%d", r.maxAhead, bound, st.Throttled)
}

// blockingReader yields a few lines, then blocks until its context
// dies, mimicking http.Request.Body during a client stall +
// disconnect (the server unblocks Body reads with an error when the
// connection drops).
type blockingReader struct {
	ctx   context.Context
	lines io.Reader
	done  bool
}

func (r *blockingReader) Read(p []byte) (int, error) {
	if !r.done {
		n, err := r.lines.Read(p)
		if err == nil {
			return n, nil
		}
		r.done = true
	}
	<-r.ctx.Done()
	return 0, errors.New("connection reset by peer")
}

func TestClientDisconnectMidStream(t *testing.T) {
	store := &memStore{}
	ctx, cancel := context.WithCancel(context.Background())
	r := &blockingReader{ctx: ctx, lines: ndjson(`{"text":"one"}`, `{"text":"two"}`)}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st, err := Run(ctx, Config{Store: store, Chunker: oneChunk{}}, r, nil)
	if err == nil {
		t.Fatal("Run returned nil error after disconnect")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v to notice the disconnect", elapsed)
	}
	if st.Accepted != 2 {
		t.Fatalf("accepted = %d, want the 2 pre-disconnect docs", st.Accepted)
	}
}

func TestProgressHeartbeat(t *testing.T) {
	store := &memStore{delay: 2 * time.Millisecond}
	var beats atomic.Uint64
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, fmt.Sprintf(`{"text":"doc %d"}`, i))
	}
	st, err := Run(context.Background(), Config{
		Store:         store,
		Chunker:       oneChunk{},
		ProgressEvery: 5 * time.Millisecond,
		Controller:    adaptive.New(adaptive.Config{MaxBatch: 8, Static: true}),
	}, ndjson(lines...), func(p Stats) {
		beats.Add(1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 100 docs in batches of 8 at 2ms per flush ≈ 26ms of runtime
	// against a 5ms heartbeat period.
	if beats.Load() < 2 {
		t.Fatalf("progress called %d times, want periodic heartbeats", beats.Load())
	}
	if st.Indexed != 100 {
		t.Fatalf("indexed = %d", st.Indexed)
	}
}

func TestNilStoreOrChunker(t *testing.T) {
	if _, err := Run(context.Background(), Config{Chunker: oneChunk{}}, ndjson(), nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := Run(context.Background(), Config{Store: &memStore{}}, ndjson(), nil); err == nil {
		t.Fatal("nil chunker accepted")
	}
}

// TestOversizedDocumentFlowsThroughGate: a document with more chunks
// than the whole credit pool must still ingest (in pool-sized pieces)
// instead of deadlocking on credits it can never hold at once.
func TestOversizedDocumentFlowsThroughGate(t *testing.T) {
	store := &memStore{}
	// 10 chunks through a 4-credit pool.
	doc := strings.Join([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}, "|")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := Run(ctx, Config{Store: store, Chunker: splitChunk{}, MaxPending: 4},
		ndjson(`{"text":"`+doc+`"}`, `{"text":"small"}`), nil)
	if err != nil {
		t.Fatalf("Run: %v (deadlock would surface as context.DeadlineExceeded)", err)
	}
	if st.Indexed != 2 || st.Chunks != 11 {
		t.Fatalf("stats = %+v, want 2 docs / 11 chunks", st)
	}
	if n := len(store.texts()); n != 11 {
		t.Fatalf("store holds %d chunks, want 11", n)
	}
}

// TestConcurrentMultiChunkDocsNoWedge: many workers acquiring several
// credits each from a small pool must not interleave partial
// acquisitions into a mutual wedge (the pre-fix failure mode: 8
// workers × partial draws exhaust the pool with nobody complete).
func TestConcurrentMultiChunkDocsNoWedge(t *testing.T) {
	store := &memStore{}
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf(`{"text":"p%d|q%d|r%d|s%d"}`, i, i, i, i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := Run(ctx, Config{
		Store: store, Chunker: splitChunk{}, Workers: 8, MaxPending: 8,
	}, ndjson(lines...), nil)
	if err != nil {
		t.Fatalf("Run: %v (a credit wedge would surface as context.DeadlineExceeded)", err)
	}
	if st.Indexed != 200 || st.Chunks != 800 {
		t.Fatalf("stats = %+v, want 200 docs / 800 chunks", st)
	}
}

func TestConcurrentStreamsShareController(t *testing.T) {
	// Two streams into one store through one shared controller, as the
	// serving layer runs them — race-clean under -race and the
	// controller's learned state survives both.
	store := &memStore{}
	ctrl := adaptive.New(adaptive.Config{MaxBatch: 32})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lines []string
			for i := 0; i < 200; i++ {
				lines = append(lines, fmt.Sprintf(`{"text":"g%d doc %d"}`, g, i))
			}
			if _, err := Run(context.Background(), Config{
				Store: store, Chunker: oneChunk{}, Controller: ctrl,
			}, ndjson(lines...), nil); err != nil {
				t.Errorf("stream %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if n := len(store.texts()); n != 600 {
		t.Fatalf("store holds %d chunks, want 600", n)
	}
}

// TestMetaStrictAndStored pins the metadata contract from both sides:
// non-string meta values are malformed lines (counted against
// MaxErrors, not coerced), and accepted metadata reaches the store on
// every chunk of the document, scoped to the stream's collection.
func TestMetaStrictAndStored(t *testing.T) {
	store := &memStore{}
	st, err := Run(context.Background(), Config{Store: store, Chunker: splitChunk{}, Collection: "tenant-a"}, ndjson(
		`{"text":"alpha|beta","meta":{"tag":"red"}}`,
		`{"text":"bad1","meta":{"n":1}}`,
		`{"text":"bad2","meta":{"x":null}}`,
		`{"text":"bad3","meta":{"o":{"nested":"y"}}}`,
		`{"text":"bad4","meta":5}`,
		`{"text":"gamma"}`,
	), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Accepted != 2 || st.Indexed != 2 || st.Failed != 4 {
		t.Fatalf("stats = %+v, want 2 accepted, 2 indexed, 4 failed", st)
	}
	store.mu.Lock()
	docs := append([]vecdb.Document(nil), store.docs...)
	store.mu.Unlock()
	if len(docs) != 3 {
		t.Fatalf("store holds %d chunks: %+v", len(docs), docs)
	}
	for _, d := range docs {
		if d.Collection != "tenant-a" {
			t.Fatalf("chunk %q stored in collection %q, want tenant-a", d.Text, d.Collection)
		}
		switch d.Text {
		case "alpha", "beta":
			if d.Meta["tag"] != "red" {
				t.Fatalf("chunk %q lost its metadata: %+v", d.Text, d.Meta)
			}
		case "gamma":
			if len(d.Meta) != 0 {
				t.Fatalf("chunk gamma gained metadata: %+v", d.Meta)
			}
		default:
			t.Fatalf("unexpected chunk %q", d.Text)
		}
	}
}

// TestCollectionNeedsDocsStore pins the up-front rejection: a
// collection-scoped stream into a store without the docs write surface
// fails before any byte is read.
func TestCollectionNeedsDocsStore(t *testing.T) {
	type textsOnly struct{ Store }
	st := textsOnly{Store: &memStore{}}
	if _, err := Run(context.Background(), Config{Store: st, Chunker: oneChunk{}, Collection: "t"}, ndjson(`"x"`), nil); err == nil {
		t.Fatal("collection-scoped stream accepted by texts-only store")
	}
}
