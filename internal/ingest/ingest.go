// Package ingest is the streaming ingest pipeline: it parses an
// NDJSON document stream incrementally, chunks and indexes the
// documents through a bounded parse → chunk → index pipeline, and
// pushes backpressure all the way to the producer's socket when the
// index (or its WAL fsync) cannot keep up.
//
// Wire format (see docs/ingest.md): one document per line, either a
// JSON object {"text": "...", "meta": {...}} or a bare JSON string.
// Meta values must be JSON strings — a number, null, array, or nested
// object anywhere under "meta" makes the line malformed, because a
// silently coerced or dropped value would be invisible until a
// filtered search misses it. Blank lines are skipped; a malformed
// line fails alone (counted in Stats.Failed) until MaxErrors is
// exceeded.
//
// Backpressure is credit-based: a fixed pool of MaxPending chunk
// credits bounds every chunk buffered or in flight anywhere in the
// pipeline — queued between stages, accumulating in the batch
// assembler, or inside a store AddBulk call (embedding + index write +
// WAL append). When the store slows down (a cold shard, a saturated
// disk, a slow fsync policy), credits stop returning, the chunk
// workers block, the bounded doc channel fills, and the reader stops
// pulling bytes off the socket — TCP flow control slows the producer.
// Memory therefore stays bounded by configuration, never by how fast
// the client can upload. Stats.Throttled counts how often the
// pipeline had to block on credits, making engaged backpressure
// visible in /stats.
//
// Batch sizing is adaptive: the assembler asks an AIMD controller
// (internal/adaptive — the same controller type the verification
// micro-batcher uses) for its live batch limit and linger wait before
// each flush, and feeds occupancy and backlog back after.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// Doc is one parsed NDJSON line. Meta rides every chunk of the
// document into the store (stores that implement the docs write
// surface; see Store). Meta values must be JSON strings — any other
// type fails the line rather than being silently dropped or coerced.
type Doc struct {
	Text string            `json:"text"`
	Meta map[string]string `json:"meta,omitempty"`
}

// Store is the indexing surface the pipeline writes to — implemented
// by serve.ShardedDB (in-process shards) and serve.RemoteStore
// (cluster routing), so streamed batches reach cluster mode through
// the same interface as every other write.
type Store interface {
	AddBulk(texts []string) ([]int64, error)
}

// ctxStore is the optional context-aware write surface. When the
// store implements it, batches are written under the stream's context
// so the request ID (and any deadline) rides cluster-mode writes onto
// the shard nodes.
type ctxStore interface {
	AddBulkContext(ctx context.Context, texts []string) ([]int64, error)
}

// docsStore / ctxDocsStore are the optional document write surfaces:
// batches carry each chunk's collection and metadata instead of bare
// texts. Both serve stores implement them; a texts-only Store is
// still accepted but can only be used for meta-less default-collection
// streams (Run rejects the combination up front rather than dropping
// fields on the floor).
type docsStore interface {
	AddBulkDocs(docs []vecdb.Document) ([]int64, error)
}

type ctxDocsStore interface {
	AddBulkDocsContext(ctx context.Context, docs []vecdb.Document) ([]int64, error)
}

// Chunker splits one document into indexable passages (rag.Chunker
// satisfies this).
type Chunker interface {
	Chunk(text string) ([]string, error)
}

// ErrTooManyErrors aborts a stream whose malformed-line count exceeded
// MaxErrors.
var ErrTooManyErrors = errors.New("ingest: too many malformed lines")

// ErrLineTooLong aborts a stream containing a line over MaxLineBytes —
// the scanner cannot resynchronize past it.
var ErrLineTooLong = errors.New("ingest: line exceeds maximum length")

// Config assembles a pipeline run. Zero values take the documented
// defaults.
type Config struct {
	// Store receives the chunk batches.
	Store Store
	// Collection scopes every document in the stream to one collection
	// (tenant); empty means the default collection. Requires a store
	// implementing the docs write surface when non-empty.
	Collection string
	// Chunker splits documents; required.
	Chunker Chunker
	// Workers is the chunking concurrency (default GOMAXPROCS, capped
	// at 8).
	Workers int
	// MaxPending is the chunk credit pool: the hard bound on chunks
	// buffered or in flight anywhere in the pipeline (default 1024).
	MaxPending int
	// MaxLineBytes bounds one NDJSON line (default 1 MiB).
	MaxLineBytes int
	// MaxErrors is how many malformed lines a stream tolerates before
	// aborting (default 100; negative means unlimited).
	MaxErrors int
	// Controller sizes the index batches; nil builds a per-run adaptive
	// controller with MaxBatch 256 / MaxWait 20ms bounds. Sharing one
	// controller across runs (as serve.Server does) carries the learned
	// operating point between streams.
	Controller *adaptive.Controller
	// ProgressEvery is the heartbeat period for the progress callback
	// (default 500ms).
	ProgressEvery time.Duration
	// Telemetry, when non-nil, times the parse+chunk stage
	// (stage="ingest_chunk").
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.MaxErrors == 0 {
		c.MaxErrors = 100
	}
	if c.Controller == nil {
		// The default batch cap stays acquirable from the credit pool —
		// a limit past MaxPending could never fill and every flush
		// would stall on the linger timer.
		maxBatch := 256
		if maxBatch > c.MaxPending {
			maxBatch = c.MaxPending
		}
		c.Controller = adaptive.New(adaptive.Config{
			MaxBatch: maxBatch,
			MinWait:  time.Millisecond,
			MaxWait:  20 * time.Millisecond,
		})
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 500 * time.Millisecond
	}
	return c
}

// Stats is a point-in-time snapshot of one stream: the payload of the
// progress heartbeat frames and the final result.
type Stats struct {
	// Accepted counts documents parsed and chunked successfully — on a
	// clean completion Accepted == Indexed.
	Accepted uint64 `json:"accepted"`
	// Indexed counts documents whose chunks are all applied to the
	// store (and journaled, on a durable store).
	Indexed uint64 `json:"indexed"`
	// Failed counts unusable lines skipped (malformed JSON, empty
	// text, or a document the chunker rejected).
	Failed uint64 `json:"failed"`
	// Bytes counts stream bytes consumed.
	Bytes int64 `json:"bytes"`
	// Chunks counts passages written to the store.
	Chunks uint64 `json:"chunks"`
	// Throttled counts pipeline blocks on the credit gate — non-zero
	// means backpressure engaged and the producer was slowed.
	Throttled uint64 `json:"throttled"`
}

// counters is the live, atomically-updated form of Stats.
type counters struct {
	accepted  atomic.Uint64
	indexed   atomic.Uint64
	failed    atomic.Uint64
	bytes     atomic.Int64
	chunks    atomic.Uint64
	throttled atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Accepted:  c.accepted.Load(),
		Indexed:   c.indexed.Load(),
		Failed:    c.failed.Load(),
		Bytes:     c.bytes.Load(),
		Chunks:    c.chunks.Load(),
		Throttled: c.throttled.Load(),
	}
}

// parseLine decodes one NDJSON line: an object with a "text" field or
// a bare JSON string. Meta is validated strictly — every value must
// be a JSON string. Decoding straight into map[string]string would
// let null values coerce to "" silently; raw messages make the check
// explicit for every type.
func parseLine(line []byte) (Doc, error) {
	var d Doc
	if len(line) > 0 && line[0] == '"' {
		if err := json.Unmarshal(line, &d.Text); err != nil {
			return Doc{}, err
		}
	} else {
		var raw struct {
			Text string                     `json:"text"`
			Meta map[string]json.RawMessage `json:"meta"`
		}
		if err := json.Unmarshal(line, &raw); err != nil {
			return Doc{}, err
		}
		d.Text = raw.Text
		if len(raw.Meta) > 0 {
			d.Meta = make(map[string]string, len(raw.Meta))
			for k, v := range raw.Meta {
				t := bytes.TrimSpace(v)
				if len(t) == 0 || t[0] != '"' {
					return Doc{}, fmt.Errorf("ingest: meta value for %q is not a string", k)
				}
				var s string
				if err := json.Unmarshal(t, &s); err != nil {
					return Doc{}, fmt.Errorf("ingest: meta value for %q: %w", k, err)
				}
				d.Meta[k] = s
			}
		}
	}
	if d.Text == "" {
		return Doc{}, errors.New("ingest: document has no text")
	}
	return d, nil
}

// credits is the backpressure gate: a counting semaphore over chunks.
// Multi-credit draws are serialized by mu, so two workers can never
// interleave partial acquisitions and wedge the pool with nobody
// holding a complete set — the one in-progress acquirer always
// completes, because releases come from the assembler, which never
// acquires. Callers must never request more than the pool capacity
// in one call (workers split oversized documents first).
type credits struct {
	mu        sync.Mutex
	sem       chan struct{}
	throttled *atomic.Uint64
}

// acquire claims n credits, blocking while the pipeline is full. A
// block is counted once per acquire call, not per credit.
func (g *credits) acquire(ctx context.Context, n int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	counted := false
	for i := 0; i < n; i++ {
		select {
		case g.sem <- struct{}{}:
		default:
			if !counted {
				g.throttled.Add(1)
				counted = true
			}
			select {
			case g.sem <- struct{}{}:
			case <-ctx.Done():
				g.release(i)
				return ctx.Err()
			}
		}
	}
	return nil
}

func (g *credits) release(n int) {
	for i := 0; i < n; i++ {
		<-g.sem
	}
}

// chunkedDoc is one document (or one pool-sized piece of an oversized
// document) after the chunk stage. meta is the source document's
// metadata, inherited by every chunk; docDone marks the piece whose
// indexing completes the document, for the Indexed counter.
type chunkedDoc struct {
	chunks  []string
	meta    map[string]string
	docDone bool
}

// Run streams r through the pipeline: parse → chunk (Workers-wide) →
// adaptive batch → Store.AddBulk. It blocks until the stream is fully
// indexed, the context dies (client disconnect), or the stream is
// aborted by a store or format error, and always returns the stats
// accumulated so far. progress, when non-nil, is called with a
// snapshot every ProgressEvery while the stream runs (from a single
// goroutine; it must not block for long or heartbeats skew).
func Run(ctx context.Context, cfg Config, r io.Reader, progress func(Stats)) (Stats, error) {
	if cfg.Store == nil || cfg.Chunker == nil {
		return Stats{}, errors.New("ingest: nil store or chunker")
	}
	if cfg.Collection != "" {
		if _, ok := cfg.Store.(ctxDocsStore); !ok {
			if _, ok := cfg.Store.(docsStore); !ok {
				return Stats{}, errors.New("ingest: store cannot scope documents to a collection")
			}
		}
	}
	cfg = cfg.withDefaults()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cnt  counters
		gate = credits{sem: make(chan struct{}, cfg.MaxPending), throttled: &cnt.throttled}

		lines     = make(chan []byte, 2*cfg.Workers)
		assembled = make(chan chunkedDoc, 2*cfg.Workers)

		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Progress heartbeat.
	var heartbeat sync.WaitGroup
	stopBeat := make(chan struct{})
	if progress != nil {
		heartbeat.Add(1)
		go func() {
			defer heartbeat.Done()
			t := time.NewTicker(cfg.ProgressEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					progress(cnt.snapshot())
				case <-stopBeat:
					return
				}
			}
		}()
	}

	// chunkH times one document's parse+chunk; nil (no-op) without a
	// registry.
	chunkH := cfg.Telemetry.Histogram("stage_duration_seconds",
		"Hot-path stage latency in seconds.", nil, telemetry.L("stage", "ingest_chunk"))

	// canDocs reports whether the store can persist per-chunk metadata;
	// without it, a line carrying meta is malformed rather than having
	// its metadata silently dropped.
	_, canCtxDocs := cfg.Store.(ctxDocsStore)
	_, canPlainDocs := cfg.Store.(docsStore)
	canDocs := canCtxDocs || canPlainDocs

	// Stage 2: parse+chunk workers. JSON decoding runs here rather
	// than on the reader goroutine so it parallelizes across cores —
	// the reader stays a thin byte pump. Each worker acquires chunk
	// credits *before* handing its document to the assembler, so the
	// credit pool bounds everything downstream of parsing.
	var chunkers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		chunkers.Add(1)
		go func() {
			defer chunkers.Done()
			// lineFailed records one unusable line (unparsable or
			// unchunkable — both leave it out of Accepted, so a clean
			// completion keeps accepted == indexed) and aborts the
			// stream past the MaxErrors tolerance.
			lineFailed := func(err error) bool {
				n := cnt.failed.Add(1)
				if cfg.MaxErrors >= 0 && n > uint64(cfg.MaxErrors) {
					fail(fmt.Errorf("%w: %d (last: %v)", ErrTooManyErrors, n, err))
					return false
				}
				return true
			}
			for line := range lines {
				chunkStart := time.Now()
				d, err := parseLine(line)
				if err == nil && len(d.Meta) > 0 && !canDocs {
					err = errors.New("ingest: store cannot persist metadata")
				}
				if err != nil {
					if !lineFailed(err) {
						return
					}
					continue
				}
				chunks, err := cfg.Chunker.Chunk(d.Text)
				chunkH.ObserveSince(chunkStart)
				if err == nil && len(chunks) == 0 {
					err = errors.New("ingest: document produced no chunks")
				}
				if err != nil {
					// A chunker rejection is a per-document failure, like a
					// malformed line: the stream continues.
					if !lineFailed(err) {
						return
					}
					continue
				}
				cnt.accepted.Add(1)
				// A document with more chunks than the whole credit pool
				// could never acquire them all at once; split it into
				// pool-sized pieces so it flows through the gate like any
				// other backlog (only the final piece completes the doc).
				for start := 0; start < len(chunks); start += cfg.MaxPending {
					end := start + cfg.MaxPending
					if end > len(chunks) {
						end = len(chunks)
					}
					piece := chunkedDoc{chunks: chunks[start:end], meta: d.Meta, docDone: end == len(chunks)}
					if err := gate.acquire(ctx, len(piece.chunks)); err != nil {
						return // canceled while throttled
					}
					select {
					case assembled <- piece:
					case <-ctx.Done():
						gate.release(len(piece.chunks))
						return
					}
				}
			}
		}()
	}

	// Stage 3: the assembler — single goroutine batching chunked docs
	// up to the controller's live limit (cut at document boundaries, so
	// one document's chunks always land in one AddBulk and Indexed
	// counts whole documents) and flushing through the store.
	var assembler sync.WaitGroup
	assembler.Add(1)
	go func() {
		defer assembler.Done()
		var (
			batch     []vecdb.Document
			batchDocs uint64
		)
		// drain marks the end-of-stream flush: a partial final batch
		// says nothing about arrival rate and must not be fed to the
		// controller (it would read every stream's tail as sparse
		// traffic and halve the learned limit).
		flush := func(full, drain bool) {
			if len(batch) == 0 {
				return
			}
			n, nd := len(batch), batchDocs
			var err error
			switch st := cfg.Store.(type) {
			case ctxDocsStore:
				_, err = st.AddBulkDocsContext(ctx, batch)
			case docsStore:
				_, err = st.AddBulkDocs(batch)
			default:
				// Texts-only store: reachable only for meta-less
				// default-collection streams (validated up front and per
				// line above).
				texts := make([]string, len(batch))
				for i, d := range batch {
					texts[i] = d.Text
				}
				if cs, ok := cfg.Store.(ctxStore); ok {
					_, err = cs.AddBulkContext(ctx, texts)
				} else {
					_, err = cfg.Store.AddBulk(texts)
				}
			}
			gate.release(n)
			batch, batchDocs = nil, 0
			if err != nil {
				fail(fmt.Errorf("ingest: index batch: %w", err))
				return
			}
			cnt.chunks.Add(uint64(n))
			cnt.indexed.Add(nd)
			if !drain {
				cfg.Controller.Observe(n, full, len(assembled))
			}
		}
		var timer *time.Timer
		var timeout <-chan time.Time
		stopTimer := func() {
			if timer != nil {
				timer.Stop()
				timer, timeout = nil, nil
			}
		}
		defer stopTimer()
		for {
			limit, wait := cfg.Controller.Limits()
			select {
			case cd, ok := <-assembled:
				if !ok {
					stopTimer()
					flush(false, true)
					return
				}
				if len(batch) == 0 {
					stopTimer()
					timer = time.NewTimer(wait)
					timeout = timer.C
				}
				for _, c := range cd.chunks {
					batch = append(batch, vecdb.Document{Collection: cfg.Collection, Text: c, Meta: cd.meta})
				}
				if cd.docDone {
					batchDocs++
				}
				if len(batch) >= limit {
					stopTimer()
					flush(true, false)
				}
			case <-timeout:
				timer, timeout = nil, nil
				flush(false, false)
			case <-ctx.Done():
				// Canceled mid-stream: drop the partial batch; its credits
				// must still return so blocked workers can observe ctx.
				gate.release(len(batch))
				batch, batchDocs = nil, 0
				// Drain whatever workers already handed over.
				for cd := range assembled {
					gate.release(len(cd.chunks))
				}
				return
			}
		}
	}()

	// Stage 1: the reader, on the caller's goroutine — when it blocks
	// (bounded lines channel, which backs up when workers block on
	// credits), the HTTP server stops reading the request body and TCP
	// flow control slows the client.
	sc := bufio.NewScanner(r)
	// The scanner's cap is the larger of the initial buffer and the
	// max, so the initial buffer must not exceed MaxLineBytes.
	initial := 64 * 1024
	if initial > cfg.MaxLineBytes {
		initial = cfg.MaxLineBytes
	}
	sc.Buffer(make([]byte, initial), cfg.MaxLineBytes)
	readErr := func() error {
		for sc.Scan() {
			line := sc.Bytes()
			cnt.bytes.Add(int64(len(line)) + 1) // +1 for the newline
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) == 0 {
				continue
			}
			// The scanner reuses its buffer across Scan calls, so the
			// line must be copied before crossing the channel.
			select {
			case lines <- append([]byte(nil), trimmed...):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return fmt.Errorf("%w (max %d bytes)", ErrLineTooLong, cfg.MaxLineBytes)
			}
			// A read error mid-body is the client vanishing; prefer the
			// context's verdict when it fired first.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("ingest: read stream: %w", err)
		}
		return ctx.Err()
	}()
	if readErr != nil {
		fail(readErr)
	}

	close(lines)
	chunkers.Wait()
	close(assembled)
	assembler.Wait()
	close(stopBeat)
	heartbeat.Wait()

	// No trailing progress call: the returned Stats are the final
	// word, and the HTTP handler writes its own done frame from them —
	// a duplicate counters-only frame would precede it otherwise.
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return cnt.snapshot(), err
}
