package ingest

import (
	"testing"
	"unicode/utf8"
)

// FuzzNDJSONLine drives the NDJSON line parser — the first thing the
// streaming ingest reader does with every untrusted byte a client
// uploads — over arbitrary input. The invariants: no panic, no
// accepted document without text, and accepted documents carry only
// string metadata (the wire contract docs/ingest.md promises).
func FuzzNDJSONLine(f *testing.F) {
	f.Add([]byte(`{"text":"hello world"}`))
	f.Add([]byte(`{"text":"x","meta":{"source":"fuzz","lang":"en"}}`))
	f.Add([]byte(`"a bare string document"`))
	f.Add([]byte(`{"text":""}`))
	f.Add([]byte(`{"meta":{"k":"v"}}`))
	f.Add([]byte(`{"text": 42}`))
	f.Add([]byte(`{"text":"dup","text":"second"}`))
	f.Add([]byte(`["not","an","object"]`))
	f.Add([]byte("\"unterminated"))
	f.Add([]byte{0xff, 0xfe, '{', '}'})
	// Mixed-type meta values: every non-string — number, null, nested
	// object, or a non-object meta altogether — must reject the line,
	// never coerce or silently drop the value.
	f.Add([]byte(`{"text":"x","meta":{"a":1}}`))
	f.Add([]byte(`{"text":"x","meta":{"a":"ok","b":2}}`))
	f.Add([]byte(`{"text":"x","meta":{"a":null}}`))
	f.Add([]byte(`{"text":"x","meta":{"a":{"nested":"y"}}}`))
	f.Add([]byte(`{"text":"x","meta":{"a":["list"]}}`))
	f.Add([]byte(`{"text":"x","meta":5}`))

	f.Fuzz(func(t *testing.T, line []byte) {
		d, err := parseLine(line)
		if err != nil {
			return // rejected lines are fine; they must just not panic
		}
		if d.Text == "" {
			t.Fatalf("accepted document with no text from %q", line)
		}
		// encoding/json only produces valid UTF-8 strings (invalid
		// sequences are replaced, never passed through raw).
		if !utf8.ValidString(d.Text) {
			t.Fatalf("accepted invalid UTF-8 text from %q", line)
		}
		for k, v := range d.Meta {
			if !utf8.ValidString(k) || !utf8.ValidString(v) {
				t.Fatalf("accepted invalid UTF-8 meta %q=%q from %q", k, v, line)
			}
		}
	})
}
