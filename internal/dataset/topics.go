package dataset

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// sentencePair couples a true statement with its hallucinated twin.
// Responses are assembled from pairs: the correct response uses every
// .correct sentence, the wrong response every .wrong sentence, and the
// partial response flips exactly one position — reproducing the
// paper's structure where a partial answer mixes accurate and
// inaccurate sentences.
type sentencePair struct {
	correct string
	wrong   string
}

// rendered is one topic instantiation before assembly into an Item.
type rendered struct {
	topic      string
	category   string
	context    []string // fact sentences, in order
	distractor string   // extra context information not asked about
	question   string
	pairs      []sentencePair
}

// hourString formats a 24-hour value the way handbooks write it.
func hourString(h int) string {
	switch {
	case h == 0:
		return "midnight"
	case h < 12:
		return fmt.Sprintf("%d AM", h)
	case h == 12:
		return "noon"
	default:
		return fmt.Sprintf("%d PM", h-12)
	}
}

// pick returns a uniformly chosen element.
func pick(src *rng.Source, options ...string) string {
	return options[src.Intn(len(options))]
}

// pickInt returns a uniformly chosen int.
func pickInt(src *rng.Source, options ...int) int {
	return options[src.Intn(len(options))]
}

// otherInt returns a choice different from current.
func otherInt(src *rng.Source, current int, options ...int) int {
	for {
		v := options[src.Intn(len(options))]
		if v != current {
			return v
		}
	}
}

// numberWord spells small counts out ("three shopkeepers"), matching
// handbook prose; larger values stay numeric.
func numberWord(n int) string {
	words := []string{"zero", "one", "two", "three", "four", "five",
		"six", "seven", "eight", "nine", "ten"}
	if n >= 0 && n < len(words) {
		return words[n]
	}
	return fmt.Sprintf("%d", n)
}

var distractors = []string{
	"All staff must display their identity badge while on duty.",
	"The staff canteen is located on the third floor.",
	"Lockers are assigned by the facilities team on request.",
	"Fire drills are conducted twice a year in every store.",
	"The company intranet hosts the latest version of this handbook.",
	"Questions about this policy should be directed to Human Resources.",
	"Managers review this policy with new joiners during orientation.",
	"A copy of the signed acknowledgement is kept in the personnel file.",
}

// topicGenerators enumerate the handbook topics of §V-A across the
// paper's three categories (Employment, Policy, Other). Each generator
// draws its own fact values from src, so repeated instantiations of
// one topic yield different items.
var topicGenerators = []func(src *rng.Source) rendered{
	genWorkingHours,
	genProbation,
	genAnnualLeave,
	genSickLeave,
	genSalaryPayment,
	genOvertime,
	genMedicalBenefits,
	genUniform,
	genEmailPolicy,
	genMediaRequests,
	genPersonalDevices,
	genLunchBreak,
	genResignationNotice,
	genExpenseClaims,
	genTraining,
	genPublicHolidays,
}

// TopicCount returns the number of distinct handbook topics.
func TopicCount() int { return len(topicGenerators) }

// genWorkingHours reproduces the paper's running example: store hours,
// opening days and minimum staffing.
func genWorkingHours(src *rng.Source) rendered {
	open := pickInt(src, 8, 9, 10, 11)
	close := pickInt(src, 17, 18, 19, 20)
	staff := pickInt(src, 2, 3, 4, 5)
	fullWeek := src.Intn(2) == 0
	var days, wrongDays string
	if fullWeek {
		days, wrongDays = "Sunday to Saturday", "Monday to Friday"
	} else {
		days, wrongDays = "Monday to Saturday", "Tuesday to Friday"
	}
	wrongClose := otherInt(src, close, 19, 20, 21)
	return rendered{
		topic:    "working-hours",
		category: "Employment",
		context: []string{
			fmt.Sprintf("The store operates from %s to %s, from %s.", hourString(open), hourString(close), days),
			fmt.Sprintf("There should be at least %s shopkeepers to run a shop.", numberWord(staff)),
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "What are the working hours and staffing requirements?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("The working hours are %s to %s.", hourString(open), hourString(close)),
				wrong:   fmt.Sprintf("The working hours are %s to %s.", hourString(open), hourString(wrongClose)),
			},
			{
				correct: fmt.Sprintf("The store is open from %s.", days),
				wrong:   fmt.Sprintf("The store is open from %s.", wrongDays),
			},
			{
				correct: fmt.Sprintf("At least %s shopkeepers are needed to run a shop.", numberWord(staff)),
				wrong:   fmt.Sprintf("At least %s shopkeepers are needed to run a shop.", numberWord(staff+2)),
			},
		},
	}
}

func genProbation(src *rng.Source) rendered {
	months := pickInt(src, 3, 6)
	notice := pickInt(src, 7, 14)
	wrongMonths := otherInt(src, months, 1, 2, 9, 12)
	wrongNotice := otherInt(src, notice, 3, 30)
	// Subtle items hallucinate values adjacent to the truth — the
	// hard tail that caps every approach's precision (Fig. 4).
	if src.Float64() < 0.25 {
		wrongMonths = months + 1
		wrongNotice = notice + 1
	}
	return rendered{
		topic:    "probation",
		category: "Employment",
		context: []string{
			fmt.Sprintf("New employees serve a probation period of %s months.", numberWord(months)),
			fmt.Sprintf("During probation, either party may terminate employment with %s days of written notice.", numberWord(notice)),
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How long is the probation period and what notice applies during it?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("The probation period lasts %s months.", numberWord(months)),
				wrong:   fmt.Sprintf("The probation period lasts %s months.", numberWord(wrongMonths)),
			},
			{
				correct: fmt.Sprintf("During probation, employment can be terminated with %s days of written notice.", numberWord(notice)),
				wrong:   fmt.Sprintf("During probation, employment can be terminated with %s days of written notice.", numberWord(wrongNotice)),
			},
		},
	}
}

func genAnnualLeave(src *rng.Source) rendered {
	days := pickInt(src, 12, 14, 15, 18, 20)
	carry := pickInt(src, 3, 5, 7)
	notice := pickInt(src, 5, 7, 10)
	wrongDays := otherInt(src, days, 10, 21, 25, 30)
	return rendered{
		topic:    "annual-leave",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Full-time employees are entitled to %d days of paid annual leave per year.", days),
			fmt.Sprintf("A maximum of %s unused leave days may be carried over to the next year.", numberWord(carry)),
			fmt.Sprintf("Leave requests must be submitted at least %s days in advance.", numberWord(notice)),
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How many days of annual leave do employees receive, and how many can be carried over?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Employees receive %d days of paid annual leave each year.", days),
				wrong:   fmt.Sprintf("Employees receive %d days of paid annual leave each year.", wrongDays),
			},
			{
				correct: fmt.Sprintf("Up to %s unused days can be carried over to the following year.", numberWord(carry)),
				wrong:   "Unused days cannot be carried over to the following year.",
			},
			{
				correct: fmt.Sprintf("Requests must be submitted at least %s days in advance.", numberWord(notice)),
				wrong:   fmt.Sprintf("Requests must be submitted at least %s days in advance.", numberWord(notice+14)),
			},
		},
	}
}

func genSickLeave(src *rng.Source) rendered {
	paid := pickInt(src, 10, 12, 14)
	certDays := pickInt(src, 2, 3)
	wrongPaid := otherInt(src, paid, 5, 20, 25)
	return rendered{
		topic:    "sick-leave",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Employees are entitled to %d days of paid sick leave per year.", paid),
			fmt.Sprintf("A medical certificate is required for sick leave longer than %s days.", numberWord(certDays)),
			"Employees must notify their manager before 10 AM on the first day of sickness.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "What is the sick leave entitlement and when is a medical certificate required?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Paid sick leave is %d days per year.", paid),
				wrong:   fmt.Sprintf("Paid sick leave is %d days per year.", wrongPaid),
			},
			{
				correct: fmt.Sprintf("A medical certificate is needed when sick leave exceeds %s days.", numberWord(certDays)),
				wrong:   "A medical certificate is never needed for sick leave.",
			},
			{
				correct: "The manager must be notified before 10 AM on the first day of sickness.",
				wrong:   "The manager must be notified before 4 PM on the first day of sickness.",
			},
		},
	}
}

func genSalaryPayment(src *rng.Source) rendered {
	day := pickInt(src, 25, 26, 28)
	wrongDay := otherInt(src, day, 1, 5, 15)
	subtle := src.Float64() < 0.25
	if subtle {
		wrongDay = day + 1 // near-miss hallucination (see genProbation)
	}
	return rendered{
		topic:    "salary-payment",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Salaries are paid on day %d of each month by bank transfer.", day),
			"Payslips are available through the employee self-service portal.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "When and how are salaries paid?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Salaries are paid on day %d of the month.", day),
				wrong:   fmt.Sprintf("Salaries are paid on day %d of the month.", wrongDay),
			},
			{
				correct: "Payment is made by bank transfer, and payslips are on the self-service portal.",
				wrong:   salaryMethodWrong(subtle),
			},
		},
	}
}

// salaryMethodWrong returns the hallucinated payment-method sentence;
// the subtle variant differs only in an unverifiable detail.
func salaryMethodWrong(subtle bool) string {
	if subtle {
		return "Payment is made by bank transfer, and payslips are on the finance portal."
	}
	return "Payment is made in cash, and payslips are mailed to your home address."
}

func genOvertime(src *rng.Source) rendered {
	rate := pick(src, "1.5", "2")
	wrongRate := "3"
	if rate == "2" {
		wrongRate = "1.5"
	}
	return rendered{
		topic:    "overtime",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Approved overtime is compensated at %s times the hourly rate.", rate),
			"Overtime must be approved by the department manager in advance.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How is overtime compensated and who must approve it?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Overtime is paid at %s times the normal hourly rate.", rate),
				wrong:   fmt.Sprintf("Overtime is paid at %s times the normal hourly rate.", wrongRate),
			},
			{
				correct: "Overtime requires advance approval from the department manager.",
				wrong:   "Overtime does not require any approval from the department manager.",
			},
		},
	}
}

func genMedicalBenefits(src *rng.Source) rendered {
	pct := pickInt(src, 80, 90, 100)
	cap := pickInt(src, 20, 30, 50)
	wrongPct := otherInt(src, pct, 50, 60, 70)
	return rendered{
		topic:    "medical-benefits",
		category: "Employment",
		context: []string{
			fmt.Sprintf("The medical plan reimburses %d%% of outpatient consultation fees.", pct),
			fmt.Sprintf("Annual reimbursement is capped at %d thousand dollars per employee.", cap),
			"Dental care is included in the medical plan.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "What portion of outpatient fees is reimbursed and what is the annual cap?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("The plan reimburses %d%% of outpatient fees.", pct),
				wrong:   fmt.Sprintf("The plan reimburses %d%% of outpatient fees.", wrongPct),
			},
			{
				correct: fmt.Sprintf("Reimbursement is capped at %d thousand dollars per year.", cap),
				wrong:   "Reimbursement has no annual cap at all.",
			},
			{
				correct: "Dental care is included in the plan.",
				wrong:   "Dental care is excluded from the plan.",
			},
		},
	}
}

func genUniform(src *rng.Source) rendered {
	sets := pickInt(src, 2, 3)
	wrongSets := otherInt(src, sets, 1, 5)
	return rendered{
		topic:    "uniform",
		category: "Policy",
		context: []string{
			fmt.Sprintf("Store staff receive %s sets of uniform upon joining.", numberWord(sets)),
			"Uniforms must be worn at all times on the shop floor, and casual dress is prohibited during shifts.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How many uniform sets are provided and when must they be worn?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Staff are given %s sets of uniform when they join.", numberWord(sets)),
				wrong:   fmt.Sprintf("Staff are given %s sets of uniform when they join.", numberWord(wrongSets)),
			},
			{
				correct: "The uniform must be worn at all times on the shop floor.",
				wrong:   "Casual dress is allowed on the shop floor during shifts.",
			},
		},
	}
}

func genEmailPolicy(src *rng.Source) rendered {
	years := pickInt(src, 3, 5, 7)
	wrongYears := otherInt(src, years, 1, 10)
	return rendered{
		topic:    "email-policy",
		category: "Policy",
		context: []string{
			"Company email accounts are for business use, and personal use of company email is prohibited.",
			fmt.Sprintf("Business emails are retained for %s years for audit purposes.", numberWord(years)),
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "Can company email be used personally, and how long are emails retained?",
		pairs: []sentencePair{
			{
				correct: "Personal use of company email is prohibited.",
				wrong:   "Personal use of company email is allowed.",
			},
			{
				correct: fmt.Sprintf("Business emails are kept for %s years for audit purposes.", numberWord(years)),
				wrong:   fmt.Sprintf("Business emails are kept for %s years for audit purposes.", numberWord(wrongYears)),
			},
		},
	}
}

func genMediaRequests(src *rng.Source) rendered {
	dept := pick(src, "Corporate Communications", "the Public Relations office")
	return rendered{
		topic:    "media-requests",
		category: "Other",
		context: []string{
			fmt.Sprintf("All media enquiries must be referred to %s.", dept),
			"Employees must not speak to journalists on behalf of the company without written authorization.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How should employees handle requests from the media?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Media enquiries must be referred to %s.", dept),
				wrong:   "Media enquiries must be referred to the Facilities team.",
			},
			{
				correct: "Employees may not speak to journalists for the company without written authorization.",
				wrong:   "Employees may speak to journalists for the company without any authorization.",
			},
		},
	}
}

func genPersonalDevices(src *rng.Source) rendered {
	return rendered{
		topic:    "personal-devices",
		category: "Other",
		context: []string{
			"Personal devices may be brought to work, and they must be registered with the IT department before connecting to the office network.",
			"Unregistered devices are blocked from the corporate network.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "Can employees bring personal devices to work?",
		pairs: []sentencePair{
			{
				correct: "Personal devices are allowed at work after registration with the IT department.",
				wrong:   "Personal devices are forbidden at work in all circumstances.",
			},
			{
				correct: "Devices that are not registered are blocked from the corporate network.",
				wrong:   "Devices that are not registered can still connect to the corporate network.",
			},
		},
	}
}

func genLunchBreak(src *rng.Source) rendered {
	mins := pickInt(src, 45, 60)
	from := pickInt(src, 11, 12)
	to := from + pickInt(src, 2, 3)
	wrongMins := otherInt(src, mins, 30, 90)
	wrongShift := 4
	if src.Float64() < 0.25 {
		wrongMins = mins + 1 // near-miss hallucination (see genProbation)
		wrongShift = 1
	}
	return rendered{
		topic:    "lunch-break",
		category: "Policy",
		context: []string{
			fmt.Sprintf("Employees take a %d minute lunch break, scheduled between %s and %s.", mins, hourString(from), hourString(to)),
			"Break times are coordinated within each team so the floor stays covered.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How long is the lunch break and when can it be taken?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("The lunch break is %d minutes long.", mins),
				wrong:   fmt.Sprintf("The lunch break is %d minutes long.", wrongMins),
			},
			{
				correct: fmt.Sprintf("Lunch is taken between %s and %s.", hourString(from), hourString(to)),
				wrong:   fmt.Sprintf("Lunch is taken between %s and %s.", hourString(from+wrongShift), hourString(to+wrongShift)),
			},
		},
	}
}

func genResignationNotice(src *rng.Source) rendered {
	months := pickInt(src, 1, 2, 3)
	wrongMonths := otherInt(src, months, 6)
	return rendered{
		topic:    "resignation-notice",
		category: "Employment",
		context: []string{
			fmt.Sprintf("After probation, resignation requires %s months of written notice.", numberWord(months)),
			"Payment in lieu of notice may be accepted at the company's discretion.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How much notice must an employee give when resigning?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Resignation requires %s months of written notice after probation.", numberWord(months)),
				wrong:   fmt.Sprintf("Resignation requires %s months of written notice after probation.", numberWord(wrongMonths)),
			},
			{
				correct: "The company may accept payment in lieu of notice at its discretion.",
				wrong:   "The company never accepts payment in lieu of notice.",
			},
		},
	}
}

func genExpenseClaims(src *rng.Source) rendered {
	days := pickInt(src, 30, 60, 90)
	wrongDays := otherInt(src, days, 7, 14)
	return rendered{
		topic:    "expense-claims",
		category: "Policy",
		context: []string{
			fmt.Sprintf("Expense claims must be submitted within %d days of the expense date.", days),
			"Original receipts are required, and claims without receipts are rejected.",
			"Claims above 1000 dollars require approval from a director.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "What is the deadline for expense claims and what documentation is needed?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Expense claims are due within %d days of the expense date.", days),
				wrong:   fmt.Sprintf("Expense claims are due within %d days of the expense date.", wrongDays),
			},
			{
				correct: "Original receipts are required for every claim.",
				wrong:   "Receipts are not required for any claim.",
			},
			{
				correct: "Claims above 1000 dollars need director approval.",
				wrong:   "Claims above 5000 dollars need director approval.",
			},
		},
	}
}

func genTraining(src *rng.Source) rendered {
	hours := pickInt(src, 16, 24, 40)
	wrongHours := otherInt(src, hours, 8, 80)
	return rendered{
		topic:    "training",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Each employee completes at least %d hours of training per year.", hours),
			"Product knowledge courses are mandatory for all retail staff.",
			"The annual training budget is 5 thousand dollars per employee.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How many training hours are required each year?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("Employees must complete at least %d hours of training yearly.", hours),
				wrong:   fmt.Sprintf("Employees must complete at least %d hours of training yearly.", wrongHours),
			},
			{
				correct: "Product knowledge courses are mandatory for retail staff.",
				wrong:   "Product knowledge courses are optional for retail staff.",
			},
			{
				correct: "The training budget is 5 thousand dollars per employee each year.",
				wrong:   "The training budget is 2 thousand dollars per employee each year.",
			},
		},
	}
}

func genPublicHolidays(src *rng.Source) rendered {
	days := pickInt(src, 12, 13, 17)
	wrongDays := otherInt(src, days, 8, 10, 20)
	substituteWrong := "Working on a public holiday earns no substitute day off."
	if src.Float64() < 0.25 {
		wrongDays = days + 1 // near-miss hallucination (see genProbation)
		substituteWrong = "Working on a public holiday earns a substitute day off within the same quarter."
	}
	return rendered{
		topic:    "public-holidays",
		category: "Employment",
		context: []string{
			fmt.Sprintf("Employees are entitled to %d public holidays per year.", days),
			"Staff required to work on a public holiday receive a substitute day off within the same month.",
		},
		distractor: distractors[src.Intn(len(distractors))],
		question:   "How many public holidays do employees get, and what happens when they work on one?",
		pairs: []sentencePair{
			{
				correct: fmt.Sprintf("There are %d public holidays per year.", days),
				wrong:   fmt.Sprintf("There are %d public holidays per year.", wrongDays),
			},
			{
				correct: "Working on a public holiday earns a substitute day off in the same month.",
				wrong:   substituteWrong,
			},
		},
	}
}

// Generate builds a deterministic dataset of n items by cycling the
// handbook topics with freshly drawn fact values. The paper evaluates
// "over 100 sets"; DefaultSize mirrors that scale.
func Generate(seed uint64, n int) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: n must be positive, got %d", n)
	}
	root := rng.New(seed)
	set := &Set{Name: fmt.Sprintf("synthetic-hr-handbook-n%d", n), Seed: seed}
	for i := 0; i < n; i++ {
		gen := topicGenerators[i%len(topicGenerators)]
		r := gen(root.Split())
		item, err := assemble(i+1, r, root.Split())
		if err != nil {
			return nil, err
		}
		set.Items = append(set.Items, item)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated set invalid: %w", err)
	}
	return set, nil
}

// DefaultSize matches the paper's "over 100 sets of questions, answers,
// and contexts".
const DefaultSize = 120

// Default generates the canonical evaluation set used by the
// experiment harness and benchmarks.
func Default() (*Set, error) { return Generate(20250612, DefaultSize) }

// assemble renders one Item from a topic instantiation: context =
// facts + distractor, and the three responses assembled from the
// sentence pairs.
func assemble(id int, r rendered, src *rng.Source) (Item, error) {
	if len(r.pairs) < 2 {
		return Item{}, fmt.Errorf("dataset: topic %s yields %d sentence pairs, need ≥2", r.topic, len(r.pairs))
	}
	ctx := strings.Join(append(append([]string{}, r.context...), r.distractor), " ")

	correct := make([]string, len(r.pairs))
	wrong := make([]string, len(r.pairs))
	for i, p := range r.pairs {
		correct[i] = p.correct
		wrong[i] = p.wrong
	}
	// Partial: exactly one sentence flipped, position drawn at random.
	flip := src.Intn(len(r.pairs))
	partial := append([]string{}, correct...)
	partial[flip] = r.pairs[flip].wrong

	return Item{
		ID:       id,
		Topic:    r.topic,
		Category: r.category,
		Context:  ctx,
		Question: r.question,
		Responses: []Response{
			{Text: strings.Join(correct, " "), Label: LabelCorrect},
			{Text: strings.Join(partial, " "), Label: LabelPartial},
			{Text: strings.Join(wrong, " "), Label: LabelWrong},
		},
	}, nil
}
