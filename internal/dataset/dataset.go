// Package dataset generates and serializes the evaluation corpus of
// the paper's §V-A: question/context sets derived from an HR employee
// handbook, each with three labeled responses — correct, partially
// correct (one hallucinated detail), and wrong (fully contradicting
// the context). The real dataset came from the Lane Crawford handbook
// and is proprietary; this generator reproduces its documented
// structure with synthetic policy facts (see DESIGN.md §1).
package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Label classifies a response against its context.
type Label string

// The three response classes of §V-A.
const (
	LabelCorrect Label = "correct"
	LabelPartial Label = "partial"
	LabelWrong   Label = "wrong"
)

// Labels lists the classes in the paper's presentation order.
func Labels() []Label { return []Label{LabelWrong, LabelPartial, LabelCorrect} }

// Valid reports whether l is one of the three known labels.
func (l Label) Valid() bool {
	switch l {
	case LabelCorrect, LabelPartial, LabelWrong:
		return true
	}
	return false
}

// Response is one candidate answer with its ground-truth label. Labels
// are response-level, not sentence-level, matching the paper ("the
// labels are not applied at the sentence level").
type Response struct {
	Text  string `json:"text"`
	Label Label  `json:"label"`
}

// Item is one evaluation set: a context passage, a question answerable
// from it, and the three labeled responses.
type Item struct {
	ID        int        `json:"id"`
	Topic     string     `json:"topic"`
	Category  string     `json:"category"`
	Context   string     `json:"context"`
	Question  string     `json:"question"`
	Responses []Response `json:"responses"`
}

// Response returns the item's response carrying the given label, or an
// error when absent.
func (it Item) Response(l Label) (Response, error) {
	for _, r := range it.Responses {
		if r.Label == l {
			return r, nil
		}
	}
	return Response{}, fmt.Errorf("dataset: item %d has no %q response", it.ID, l)
}

// Set is a full evaluation dataset.
type Set struct {
	// Name describes the generation recipe.
	Name string `json:"name"`
	// Seed reproduces the exact same set via Generate.
	Seed  uint64 `json:"seed"`
	Items []Item `json:"items"`
}

// Validate checks the structural invariants the experiments rely on:
// every item has non-empty context/question and exactly one response
// per label.
func (s *Set) Validate() error {
	if len(s.Items) == 0 {
		return errors.New("dataset: empty set")
	}
	for _, it := range s.Items {
		if it.Context == "" || it.Question == "" {
			return fmt.Errorf("dataset: item %d missing context or question", it.ID)
		}
		seen := map[Label]int{}
		for _, r := range it.Responses {
			if !r.Label.Valid() {
				return fmt.Errorf("dataset: item %d has invalid label %q", it.ID, r.Label)
			}
			if r.Text == "" {
				return fmt.Errorf("dataset: item %d has empty %s response", it.ID, r.Label)
			}
			seen[r.Label]++
		}
		for _, l := range Labels() {
			if seen[l] != 1 {
				return fmt.Errorf("dataset: item %d has %d %q responses, want 1", it.ID, seen[l], l)
			}
		}
	}
	return nil
}

// Contexts returns every item's context passage, in order — the corpus
// the RAG vector database is built from.
func (s *Set) Contexts() []string {
	out := make([]string, len(s.Items))
	for i, it := range s.Items {
		out[i] = it.Context
	}
	return out
}

// Save writes the set as indented JSON.
func (s *Set) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	return nil
}

// SaveFile writes the set to path.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a set written by Save and validates it.
func Load(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a set from path.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ContradictionExample is one row of the paper's Table I.
type ContradictionExample struct {
	Type     string
	Prompt   string
	Response string
}

// ContradictionExamples returns the paper's Table I verbatim: the
// three hallucination types with their illustrative prompt/response
// pairs.
func ContradictionExamples() []ContradictionExample {
	return []ContradictionExample{
		{
			Type:   "Logical",
			Prompt: "Can you introduce Madison?",
			Response: "The city of Madison has over 500K residents. " +
				"It is known for its small-town charm and quiet atmosphere.",
		},
		{
			Type:   "Prompt",
			Prompt: "Describe a healthy breakfast that includes fruits and whole grains.",
			Response: "A bowl of sugary cereal with milk and a side of bacon " +
				"is a great choice for breakfast.",
		},
		{
			Type:   "Factual",
			Prompt: "What are the main ingredients in a traditional Margherita pizza?",
			Response: "A traditional Margherita pizza is made with tomatoes, " +
				"mozzarella cheese, fresh basil, and a secret ingredient: chocolate.",
		},
	}
}
