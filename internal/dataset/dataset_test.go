package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/splitter"
	"repro/internal/textproc"
)

func defaultSet(t *testing.T) *Set {
	t.Helper()
	set, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestGenerateSizeAndValidity(t *testing.T) {
	set := defaultSet(t)
	if len(set.Items) != DefaultSize {
		t.Fatalf("items = %d, want %d", len(set.Items), DefaultSize)
	}
	if DefaultSize <= 100 {
		t.Error("paper requires over 100 sets")
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Items {
		if a.Items[i].Context != b.Items[i].Context {
			t.Fatalf("item %d context differs across same-seed runs", i)
		}
		for j := range a.Items[i].Responses {
			if a.Items[i].Responses[j] != b.Items[i].Responses[j] {
				t.Fatalf("item %d response %d differs", i, j)
			}
		}
	}
	c, err := Generate(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Items {
		if a.Items[i].Context == c.Items[i].Context {
			same++
		}
	}
	if same == len(a.Items) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateInvalidN(t *testing.T) {
	if _, err := Generate(1, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTopicCoverage(t *testing.T) {
	set := defaultSet(t)
	topics := map[string]int{}
	categories := map[string]int{}
	for _, it := range set.Items {
		topics[it.Topic]++
		categories[it.Category]++
	}
	if len(topics) != TopicCount() {
		t.Errorf("topics covered = %d, want %d", len(topics), TopicCount())
	}
	// The paper's three categories all appear.
	for _, cat := range []string{"Employment", "Policy", "Other"} {
		if categories[cat] == 0 {
			t.Errorf("category %s missing", cat)
		}
	}
}

func TestResponsesPerLabel(t *testing.T) {
	set := defaultSet(t)
	for _, it := range set.Items {
		for _, l := range Labels() {
			r, err := it.Response(l)
			if err != nil {
				t.Fatal(err)
			}
			if r.Label != l {
				t.Fatalf("item %d: Response(%s) returned %s", it.ID, l, r.Label)
			}
		}
		if _, err := it.Response(Label("bogus")); err == nil {
			t.Error("bogus label accepted")
		}
	}
}

// TestPartialMixesCorrectAndWrong verifies the defining property of
// partial responses: at least one sentence from the correct response
// and at least one from the wrong response.
func TestPartialMixesCorrectAndWrong(t *testing.T) {
	set := defaultSet(t)
	for _, it := range set.Items {
		correct, _ := it.Response(LabelCorrect)
		partial, _ := it.Response(LabelPartial)
		wrong, _ := it.Response(LabelWrong)

		correctSents := map[string]bool{}
		for _, s := range splitter.Split(correct.Text) {
			correctSents[s] = true
		}
		wrongSents := map[string]bool{}
		for _, s := range splitter.Split(wrong.Text) {
			wrongSents[s] = true
		}
		var fromCorrect, fromWrong, orphans int
		for _, s := range splitter.Split(partial.Text) {
			switch {
			case correctSents[s]:
				fromCorrect++
			case wrongSents[s]:
				fromWrong++
			default:
				orphans++
			}
		}
		if fromCorrect == 0 || fromWrong == 0 {
			t.Errorf("item %d (%s): partial has %d correct / %d wrong sentences",
				it.ID, it.Topic, fromCorrect, fromWrong)
		}
		if orphans != 0 {
			t.Errorf("item %d: %d partial sentences match neither source", it.ID, orphans)
		}
	}
}

// TestWrongDiffersFromCorrect: every wrong response must differ from
// the correct one in every sentence.
func TestWrongDiffersFromCorrect(t *testing.T) {
	set := defaultSet(t)
	for _, it := range set.Items {
		correct, _ := it.Response(LabelCorrect)
		wrong, _ := it.Response(LabelWrong)
		cs := splitter.Split(correct.Text)
		ws := splitter.Split(wrong.Text)
		if len(cs) != len(ws) {
			t.Errorf("item %d: sentence counts differ (%d vs %d)", it.ID, len(cs), len(ws))
			continue
		}
		for j := range cs {
			if cs[j] == ws[j] {
				t.Errorf("item %d sentence %d identical in correct and wrong: %q", it.ID, j, cs[j])
			}
		}
	}
}

// TestCorrectGroundedInContext: the correct response must be lexically
// supported by its context — otherwise the labels are wrong at the
// source.
func TestCorrectGroundedInContext(t *testing.T) {
	set := defaultSet(t)
	for _, it := range set.Items {
		correct, _ := it.Response(LabelCorrect)
		support := textproc.OverlapRatio(
			textproc.ContentWords(correct.Text),
			textproc.ContentWords(it.Context),
		)
		if support < 0.5 {
			t.Errorf("item %d (%s): correct response support %.2f < 0.5", it.ID, it.Topic, support)
		}
		// And it must never contradict the context numerically.
		conf, _ := textproc.QuantityConflicts(
			textproc.ExtractQuantities(correct.Text),
			textproc.ExtractQuantities(it.Context),
		)
		if conf > 0 {
			t.Errorf("item %d (%s): correct response has %d quantity conflicts", it.ID, it.Topic, conf)
		}
	}
}

func TestResponsesAreMultiSentence(t *testing.T) {
	set := defaultSet(t)
	for _, it := range set.Items {
		for _, r := range it.Responses {
			if n := splitter.Count(r.Text); n < 2 {
				t.Errorf("item %d %s response has %d sentences, want ≥2", it.ID, r.Label, n)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	set, err := Generate(99, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != set.Seed || loaded.Name != set.Name {
		t.Error("header fields lost")
	}
	if len(loaded.Items) != len(set.Items) {
		t.Fatalf("items %d != %d", len(loaded.Items), len(set.Items))
	}
	for i := range set.Items {
		if set.Items[i].Context != loaded.Items[i].Context {
			t.Fatalf("item %d context changed in round trip", i)
		}
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"items":[]}`)); err == nil {
		t.Error("empty set accepted")
	}
	bad := `{"items":[{"id":1,"context":"c","question":"q","responses":[
		{"text":"t","label":"correct"},{"text":"t","label":"correct"},{"text":"t","label":"wrong"}]}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("duplicate-label set accepted")
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	s := &Set{Items: []Item{{
		ID: 1, Context: "c", Question: "q",
		Responses: []Response{
			{Text: "a", Label: "correct"},
			{Text: "b", Label: "partial"},
			{Text: "c", Label: "nonsense"},
		},
	}}}
	if err := s.Validate(); err == nil {
		t.Error("invalid label accepted")
	}
}

func TestContexts(t *testing.T) {
	set, _ := Generate(5, 8)
	cs := set.Contexts()
	if len(cs) != 8 {
		t.Fatalf("Contexts len = %d", len(cs))
	}
	for i, c := range cs {
		if c != set.Items[i].Context {
			t.Fatal("Contexts order broken")
		}
	}
}

func TestContradictionExamplesTable1(t *testing.T) {
	ex := ContradictionExamples()
	if len(ex) != 3 {
		t.Fatalf("Table I rows = %d, want 3", len(ex))
	}
	wantTypes := []string{"Logical", "Prompt", "Factual"}
	for i, e := range ex {
		if e.Type != wantTypes[i] {
			t.Errorf("row %d type = %s, want %s", i, e.Type, wantTypes[i])
		}
		if e.Prompt == "" || e.Response == "" {
			t.Errorf("row %d incomplete", i)
		}
	}
	// The Madison example carries the paper's 500K figure.
	if !strings.Contains(ex[0].Response, "500K") {
		t.Error("logical example lost the 500K residents detail")
	}
}

func TestLabelValid(t *testing.T) {
	for _, l := range Labels() {
		if !l.Valid() {
			t.Errorf("label %s invalid", l)
		}
	}
	if Label("x").Valid() {
		t.Error("bogus label valid")
	}
}
