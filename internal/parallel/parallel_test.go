package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce: each index is visited exactly once,
// for sizes around the worker-count boundaries.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		counts := make([]atomic.Int32, n)
		For(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

// TestForWorkersExceedingN: a worker cap beyond n must not panic or
// double-visit.
func TestForWorkersExceedingN(t *testing.T) {
	var sum atomic.Int64
	ForWorkers(3, 100, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 3 {
		t.Fatalf("sum = %d, want 3", sum.Load())
	}
}

// TestForWorkersActuallyConcurrent: with an explicit worker count of
// n, all n calls are in flight simultaneously — the property the
// cluster fan-out needs so network waits overlap even on a
// single-core machine. The barrier deadlocks (and the test times
// out) if the calls were serialized.
func TestForWorkersActuallyConcurrent(t *testing.T) {
	const n = 8
	var wg sync.WaitGroup
	wg.Add(n)
	ForWorkers(n, n, func(i int) {
		wg.Done()
		wg.Wait() // release only once all n are inside
	})
}

// TestForWorkersSingle: a cap of 1 (or less) degrades to a plain
// loop.
func TestForWorkersSingle(t *testing.T) {
	order := make([]int, 0, 4)
	ForWorkers(4, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
	ForWorkers(4, 0, func(i int) {}) // must not hang
}
