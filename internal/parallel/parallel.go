// Package parallel holds the tiny bounded fan-out helper shared by the
// layers that spread index work across cores (vecdb embedding, serve
// bulk chunking), so the worker-pool mechanics live in exactly one
// place.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) on up to GOMAXPROCS goroutines
// and returns when all calls have finished. Indices are handed out
// dynamically, so uneven work items still balance across workers. fn
// must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// ForWorkers is For with an explicit worker cap. CPU-bound callers
// want the GOMAXPROCS default; I/O-bound fan-outs (e.g. a query
// hitting every remote shard of a cluster) pass workers == n so a
// small machine still issues all requests concurrently instead of
// serializing network waits behind its core count.
func ForWorkers(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
