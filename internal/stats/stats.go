// Package stats provides the running-moment machinery behind the
// checker's per-model normalization (paper Eq. 4): each SLM's raw
// yes-probabilities are standardized by that model's historical mean and
// standard deviation, "computed based on previous responses".
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Running accumulates a stream of observations with Welford's online
// algorithm, giving numerically stable mean and variance in O(1) space.
// The zero value is ready to use. Running is safe for concurrent use.
type Running struct {
	mu   sync.Mutex
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds one observation into the accumulator.
func (r *Running) Observe(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations folded in so far.
func (r *Running) N() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Mean returns the running mean, or 0 before any observation.
func (r *Running) Mean() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mean
}

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (r *Running) Min() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.min
}

// Max returns the largest observation, or 0 before any observation.
func (r *Running) Max() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Standardize returns (x-mean)/stddev. When fewer than two observations
// have been seen, or the stream is constant, the raw deviation from the
// mean is returned instead (σ treated as 1) so early calls degrade
// gracefully rather than dividing by zero — mirroring the paper's note
// that the moments "can be computed based on previous responses".
func (r *Running) Standardize(x float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 2 {
		return x - r.mean
	}
	sd := math.Sqrt(r.m2 / float64(r.n))
	if sd == 0 {
		return x - r.mean
	}
	return (x - r.mean) / sd
}

// Snapshot is an immutable copy of a Running accumulator's state.
type Snapshot struct {
	N      int64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Snapshot returns the current moments atomically.
func (r *Running) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	sd := 0.0
	if r.n >= 2 {
		sd = math.Sqrt(r.m2 / float64(r.n))
	}
	return Snapshot{N: r.n, Mean: r.mean, StdDev: sd, Min: r.min, Max: r.max}
}

// Merge folds another accumulator's state into r using the parallel
// variance combination rule. It allows sharded score collection (one
// accumulator per worker goroutine) to be reduced afterwards.
func (r *Running) Merge(o *Running) {
	os := o.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	if os.N == 0 {
		return
	}
	om2 := os.StdDev * os.StdDev * float64(os.N)
	if r.n == 0 {
		r.n, r.mean, r.m2, r.min, r.max = os.N, os.Mean, om2, os.Min, os.Max
		return
	}
	n1, n2 := float64(r.n), float64(os.N)
	delta := os.Mean - r.mean
	total := n1 + n2
	r.mean += delta * n2 / total
	r.m2 += om2 + delta*delta*n1*n2/total
	r.n += os.N
	if os.Min < r.min {
		r.min = os.Min
	}
	if os.Max > r.max {
		r.max = os.Max
	}
}

// ErrEmpty is returned by batch helpers given no data.
var ErrEmpty = errors.New("stats: empty input")

// MeanStd computes the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	var r Running
	for _, x := range xs {
		r.Observe(x)
	}
	return r.Mean(), r.StdDev(), nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}
