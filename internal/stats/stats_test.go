package stats

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningMoments(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Observe(x)
	}
	if r.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", r.Variance())
	}
	if !almostEqual(r.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("zero-value accumulator not zeroed")
	}
	r.Observe(3)
	if r.Variance() != 0 {
		t.Errorf("single-observation variance = %v, want 0", r.Variance())
	}
	// Standardize degrades to centering when σ is undefined.
	if got := r.Standardize(5); got != 2 {
		t.Errorf("Standardize = %v, want 2 (centering fallback)", got)
	}
}

func TestStandardize(t *testing.T) {
	var r Running
	for _, x := range []float64{0, 10} {
		r.Observe(x)
	}
	// mean 5, population σ 5.
	if got := r.Standardize(10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Standardize(10) = %v, want 1", got)
	}
	if got := r.Standardize(0); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Standardize(0) = %v, want -1", got)
	}
}

func TestStandardizeConstantStream(t *testing.T) {
	var r Running
	for i := 0; i < 5; i++ {
		r.Observe(7)
	}
	if got := r.Standardize(9); got != 2 {
		t.Errorf("constant stream Standardize = %v, want centering (2)", got)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		// Constrain to finite, moderate values.
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		var r Running
		var sum float64
		for _, x := range clean {
			r.Observe(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(len(clean))
		scale := math.Max(1, math.Abs(mean))
		return almostEqual(r.Mean(), mean, 1e-6*scale) &&
			almostEqual(r.Variance(), wantVar, 1e-5*math.Max(1, wantVar))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEquivalentToCombinedStream(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var ra, rb, all Running
		for _, x := range a {
			ra.Observe(x)
			all.Observe(x)
		}
		for _, x := range b {
			rb.Observe(x)
			all.Observe(x)
		}
		ra.Merge(&rb)
		sa, sall := ra.Snapshot(), all.Snapshot()
		if sa.N != sall.N {
			return false
		}
		if sa.N == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(sall.Mean))
		return almostEqual(sa.Mean, sall.Mean, 1e-6*scale) &&
			almostEqual(sa.StdDev, sall.StdDev, 1e-5*math.Max(1, sall.StdDev)) &&
			sa.Min == sall.Min && sa.Max == sall.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningConcurrent(t *testing.T) {
	var r Running
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.N() != workers*perWorker {
		t.Errorf("concurrent N = %d, want %d", r.N(), workers*perWorker)
	}
	if r.Mean() != 1 || r.Variance() != 0 {
		t.Errorf("concurrent moments mean=%v var=%v, want 1/0", r.Mean(), r.Variance())
	}
}

func TestMeanStd(t *testing.T) {
	mean, std, err := MeanStd([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 2.5, 1e-12) || !almostEqual(std, math.Sqrt(1.25), 1e-12) {
		t.Errorf("MeanStd = %v, %v", mean, std)
	}
	if _, _, err := MeanStd(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MeanStd(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}
