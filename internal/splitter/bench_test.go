package splitter

import "testing"

func BenchmarkSplit(b *testing.B) {
	text := "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday. " +
		"Dr. Smith approved the rota at 9 a.m. on Monday. Overtime pays 1.5 times the rate... " +
		"Is that all? Yes! At least three shopkeepers are needed."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Split(text)
	}
}
