// Package splitter segments LLM responses into sentences, the role
// SpaCy plays in the paper (§IV-A). Each sentence r_{i,j} is then
// verified independently; without this step a response mixing correct
// and incorrect statements would confuse the checker.
//
// The splitter is rule-based: it breaks on '.', '!', '?' and newlines,
// while protecting abbreviations ("Dr.", "e.g."), initials ("J. Smith"),
// decimal numbers ("2.5"), times ("9 a.m."), ellipses and closing
// quotes/brackets that belong to the finished sentence.
package splitter

import (
	"strings"
	"unicode"
)

// abbreviations that may end with a period mid-sentence.
var abbreviations = map[string]struct{}{
	"mr": {}, "mrs": {}, "ms": {}, "dr": {}, "prof": {}, "sr": {},
	"jr": {}, "st": {}, "vs": {}, "etc": {}, "e.g": {}, "i.e": {},
	"eg": {}, "ie": {}, "inc": {}, "ltd": {}, "co": {}, "dept": {},
	"approx": {}, "no": {}, "fig": {}, "hr": {}, "a.m": {}, "p.m": {},
	"am": {}, "pm": {}, "u.s": {}, "u.k": {},
}

// Split segments text into sentences. Whitespace around each sentence
// is trimmed; empty sentences are dropped. The concatenation of the
// returned sentences, ignoring whitespace, equals the input ignoring
// whitespace (a property the tests enforce).
func Split(text string) []string {
	var sentences []string
	runes := []rune(text)
	n := len(runes)
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(string(runes[start:end]))
		if s != "" {
			sentences = append(sentences, s)
		}
		start = end
	}
	for i := 0; i < n; i++ {
		r := runes[i]
		switch r {
		case '\n':
			// A newline ends a sentence only when followed by a blank
			// line or a list-ish start; a single wrap inside a
			// paragraph is just whitespace. We treat every newline as
			// a boundary if the accumulated text already looks like a
			// complete clause (ends with punctuation) — otherwise keep
			// going.
			j := i
			for j < n && (runes[j] == '\n' || runes[j] == ' ' || runes[j] == '\t') {
				j++
			}
			trimmed := strings.TrimSpace(string(runes[start:i]))
			if trimmed == "" {
				start = j
				i = j - 1
				continue
			}
			last := trimmed[len(trimmed)-1]
			doubleBreak := strings.Count(string(runes[i:j]), "\n") >= 2
			if doubleBreak || last == '.' || last == '!' || last == '?' ||
				last == ':' || last == ';' || isListStart(runes, j) {
				flush(i)
				start = j
				i = j - 1
			}
		case '!', '?':
			end := consumeClosers(runes, i+1)
			flush(end)
			i = end - 1
		case '.':
			if isSentenceEnd(runes, i) {
				end := consumeClosers(runes, i+1)
				flush(end)
				i = end - 1
			}
		}
	}
	flush(n)
	return sentences
}

// consumeClosers extends the sentence end past closing quotes, brackets
// and repeated terminal punctuation ("...", "?!").
func consumeClosers(runes []rune, i int) int {
	for i < len(runes) {
		switch runes[i] {
		case '"', '\'', '”', '’', ')', ']', '}', '.', '!', '?':
			i++
		default:
			return i
		}
	}
	return i
}

// isListStart reports whether position j begins a bullet or numbered
// list item.
func isListStart(runes []rune, j int) bool {
	if j >= len(runes) {
		return false
	}
	switch runes[j] {
	case '-', '*', '•':
		return true
	}
	// "1." / "2)" style
	k := j
	for k < len(runes) && unicode.IsDigit(runes[k]) {
		k++
	}
	if k > j && k < len(runes) && (runes[k] == '.' || runes[k] == ')') {
		return true
	}
	return false
}

// isSentenceEnd decides whether the period at index i terminates a
// sentence.
func isSentenceEnd(runes []rune, i int) bool {
	n := len(runes)
	// Ellipsis "..." — only the final dot may end the sentence.
	if i+1 < n && runes[i+1] == '.' {
		return false
	}
	// Decimal number "2.5" or section "3.1".
	if i > 0 && i+1 < n && unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]) {
		return false
	}
	// Word before the period.
	j := i - 1
	for j >= 0 && (unicode.IsLetter(runes[j]) || runes[j] == '.') {
		j--
	}
	word := strings.ToLower(strings.TrimSuffix(string(runes[j+1:i]), "."))
	// "No." is an abbreviation only before a number ("No. 5"); the
	// English word "no" at a sentence end is far more common.
	if word == "no" {
		k := nextNonSpace(runes, i+1)
		if k == -1 || !unicode.IsDigit(runes[k]) {
			word = ""
		}
	}
	if _, ok := abbreviations[word]; ok {
		// An abbreviation period still ends the sentence when the next
		// word starts a new clause with an uppercase letter AND the
		// abbreviation is a time marker at clause end ("5 p.m. The
		// store..."). Distinguish via lookahead: uppercase after
		// space ⇒ end only for time markers.
		if word == "a.m" || word == "p.m" || word == "am" || word == "pm" {
			return nextWordCapitalized(runes, i+1)
		}
		return false
	}
	// Single initial "J. Smith".
	if len(word) == 1 {
		return false
	}
	// Period followed by lowercase continuation is mid-sentence
	// ("filed vs. accepted").
	if !nextWordCapitalized(runes, i+1) && nextNonSpace(runes, i+1) != -1 {
		// allow digits/quotes to start sentences too
		k := nextNonSpace(runes, i+1)
		r := runes[k]
		if !unicode.IsDigit(r) && r != '"' && r != '\'' && r != '“' {
			return false
		}
	}
	return true
}

func nextNonSpace(runes []rune, i int) int {
	for ; i < len(runes); i++ {
		if !unicode.IsSpace(runes[i]) {
			return i
		}
	}
	return -1
}

func nextWordCapitalized(runes []rune, i int) bool {
	k := nextNonSpace(runes, i)
	if k == -1 {
		return true // end of text closes the sentence
	}
	// Skip quote/bracket characters (and any whitespace they hide) to
	// find the first letter of the next word: a period inside closing
	// quotes still ends its sentence when a capitalized word follows.
	r := runes[k]
	for r == '"' || r == '\'' || r == '“' || r == '”' || r == '’' || r == '(' || r == ')' {
		k = nextNonSpace(runes, k+1)
		if k == -1 {
			return true
		}
		r = runes[k]
	}
	return unicode.IsUpper(r)
}

// Count returns the number of sentences Split would produce, without
// materializing them. Exposed because the checker needs |S(r_i)| for
// Eq. 6.
func Count(text string) int { return len(Split(text)) }
