package splitter

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	cases := []struct {
		name, in string
		want     []string
	}{
		{
			"two sentences",
			"The working hours are 9 AM to 5 PM. The store is open daily.",
			[]string{"The working hours are 9 AM to 5 PM.", "The store is open daily."},
		},
		{
			"paper partial response",
			"The working hours are 9 AM to 5 PM, and the store is open from Monday to Friday.",
			[]string{"The working hours are 9 AM to 5 PM, and the store is open from Monday to Friday."},
		},
		{
			"question and exclamation",
			"Is it open? Yes! Come in.",
			[]string{"Is it open?", "Yes!", "Come in."},
		},
		{
			"abbreviation",
			"Dr. Smith approved the leave. It starts Monday.",
			[]string{"Dr. Smith approved the leave.", "It starts Monday."},
		},
		{
			"decimal",
			"Overtime pays 1.5 times the rate. Approval is needed.",
			[]string{"Overtime pays 1.5 times the rate.", "Approval is needed."},
		},
		{
			"initials",
			"J. K. Rowling visited. We were thrilled.",
			[]string{"J. K. Rowling visited.", "We were thrilled."},
		},
		{
			"am pm mid sentence",
			"We open at 9 a.m. and close at 5 p.m. sharp.",
			[]string{"We open at 9 a.m. and close at 5 p.m. sharp."},
		},
		{
			"am pm at boundary",
			"We close at 5 p.m. The alarm is armed afterwards.",
			[]string{"We close at 5 p.m.", "The alarm is armed afterwards."},
		},
		{
			"ellipsis",
			"Well... maybe. Ask HR.",
			[]string{"Well... maybe.", "Ask HR."},
		},
		{
			"closing quote",
			`He said "no." Then he left.`,
			[]string{`He said "no."`, "Then he left."},
		},
		{"empty", "", nil},
		{"whitespace only", "  \n\t ", nil},
		{"no terminator", "trailing clause without a period", []string{"trailing clause without a period"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Split(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("Split(%q) = %#v (%d), want %#v (%d)", tc.in, got, len(got), tc.want, len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("sentence %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestSplitNewlines(t *testing.T) {
	in := "First fact.\nSecond fact follows\nstill the same sentence.\n\nNew paragraph."
	got := Split(in)
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %#v", len(got), got)
	}
	if got[1] != "Second fact follows still the same sentence." &&
		got[1] != "Second fact follows\nstill the same sentence." {
		// The soft-wrap join keeps the words; exact whitespace shape is
		// not part of the contract.
		if !strings.Contains(strings.ReplaceAll(got[1], "\n", " "), "still the same sentence") {
			t.Errorf("soft wrap broken: %q", got[1])
		}
	}
}

func TestSplitBullets(t *testing.T) {
	in := "Policy highlights:\n- 14 days of leave.\n- 3 sets of uniform."
	got := Split(in)
	if len(got) != 3 {
		t.Fatalf("bullet split = %#v, want 3 parts", got)
	}
}

// TestSplitPreservesContent is the splitter's core contract: no words
// are created or destroyed.
func TestSplitPreservesContent(t *testing.T) {
	canon := func(s string) string {
		return strings.Join(strings.Fields(s), " ")
	}
	inputs := []string{
		"The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be at least three shopkeepers to run a shop.",
		"A. B. said: \"Hello there!\" Then... silence? Yes. 2.5 times!",
		"One\n\nTwo\nthree four. Five.",
	}
	for _, in := range inputs {
		got := Split(in)
		if canon(strings.Join(got, " ")) != canon(in) {
			t.Errorf("content changed:\n in: %q\nout: %q", canon(in), canon(strings.Join(got, " ")))
		}
	}
}

func TestSplitPreservesContentQuick(t *testing.T) {
	canon := func(s string) string {
		return strings.Join(strings.Fields(s), " ")
	}
	f := func(s string) bool {
		return canon(strings.Join(Split(s), " ")) == canon(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitNoEmptySentences(t *testing.T) {
	f := func(s string) bool {
		for _, sent := range Split(s) {
			if strings.TrimSpace(sent) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCount(t *testing.T) {
	in := "One. Two. Three."
	if got := Count(in); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := Count(""); got != 0 {
		t.Errorf("Count(\"\") = %d, want 0", got)
	}
}
