package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vecdb"
)

// handbook is the shared test corpus: distinct, retrievable facts.
var handbook = []string{
	"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	"There should be at least three shopkeepers to run a shop.",
	"Employees are entitled to 14 days of paid annual leave per year.",
	"Overtime work is compensated at 1.5 times the hourly rate.",
	"New employees complete a probation period of three months.",
	"Expense reports must be submitted within 30 days of purchase.",
	"Remote work requires written approval from a direct manager.",
	"The cafeteria serves lunch between noon and 2 PM on weekdays.",
	"Security badges must be visible at all times inside the building.",
	"Quarterly performance reviews happen in March, June, September and December.",
}

func calibratedDetector(t testing.TB) *core.Detector {
	t.Helper()
	d, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	doc := strings.Join(handbook, " ")
	var triples []core.Triple
	for _, s := range handbook {
		triples = append(triples, core.Triple{
			Question: "What does the handbook say?", Context: doc, Response: s,
		})
	}
	if err := d.Calibrate(context.Background(), triples); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestShardedMergeMatchesSingle: the sharded router must return
// exactly the hits (IDs, texts, scores, order) a single flat index
// returns over the same corpus — sharding is a pure performance
// transform.
func TestShardedMergeMatchesSingle(t *testing.T) {
	const dim = 64
	single, err := vecdb.NewDefault(dim)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedDefault(4, dim, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range handbook {
		if _, err := single.Add(text, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Add(text, nil); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"What are the working hours?",
		"How many days of annual leave?",
		"When are performance reviews?",
		"overtime pay rate",
	}
	for _, q := range queries {
		for _, k := range []int{1, 3, 5, 20} {
			want, err := single.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("q=%q k=%d: got %d hits, want %d", q, k, len(got), len(want))
			}
			// Score sequences must be identical. IDs must match wherever
			// the score is unambiguous across the whole corpus; which
			// documents fill tied slots is an implementation detail of
			// top-k selection (a single index keeps ties in scan order,
			// the merge keeps lowest IDs).
			full, err := single.Search(q, len(handbook))
			if err != nil {
				t.Fatal(err)
			}
			scoreCount := map[float64]int{}
			for _, h := range full {
				scoreCount[h.Score]++
			}
			for i := range want {
				if got[i].Score != want[i].Score {
					t.Errorf("q=%q k=%d hit %d: score %v, want %v", q, k, i, got[i].Score, want[i].Score)
				}
				if scoreCount[want[i].Score] == 1 && got[i].ID != want[i].ID {
					t.Errorf("q=%q k=%d hit %d: id %d, want %d", q, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// TestShardSpreadAndRouting: documents spread across shards, and every
// ID routes back to its owning shard for Get and Delete.
func TestShardSpreadAndRouting(t *testing.T) {
	s, err := NewShardedDefault(4, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 100; i++ {
		id, err := s.Add(fmt.Sprintf("document number %d about topic %d", i, i%7), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	sizes := s.ShardSizes()
	nonEmpty, sum := 0, 0
	for _, n := range sizes {
		sum += n
		if n > 0 {
			nonEmpty++
		}
	}
	if sum != 100 {
		t.Errorf("shard sizes sum to %d, want 100 (%v)", sum, sizes)
	}
	if nonEmpty < 2 {
		t.Errorf("hash routed everything to %d shard(s): %v", nonEmpty, sizes)
	}
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			t.Errorf("Get(%d): %v", id, err)
		}
	}
	if err := s.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 99 {
		t.Errorf("Len after delete = %d, want 99", s.Len())
	}
	if _, err := s.Get(ids[0]); !errors.Is(err, vecdb.ErrNotFound) {
		t.Errorf("Get deleted id: err = %v, want ErrNotFound", err)
	}
}

// TestCachedEmbedder: hits are counted, and cached vectors are equal
// to fresh ones.
func TestCachedEmbedder(t *testing.T) {
	inner, err := vecdb.NewHashedEmbedder(48)
	if err != nil {
		t.Fatal(err)
	}
	e := NewCachedEmbedder(inner, 8)
	want, err := inner.Embed("hello caching world")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := e.Embed("hello caching world")
		if err != nil {
			t.Fatal(err)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("pass %d: vector mismatch at dim %d", i, d)
			}
		}
	}
	hits, misses := e.Counters()
	if misses != 1 || hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	// Eviction: tiny cache keeps working.
	for i := 0; i < 20; i++ {
		if _, err := e.Embed(fmt.Sprintf("query %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Size() > 8 {
		t.Errorf("cache size %d exceeds capacity 8", e.Size())
	}
}

// TestAdmissionSheds: with one slot and one queue position, the third
// concurrent request is shed, and a queued request acquires the slot
// once it frees.
func TestAdmissionSheds(t *testing.T) {
	a, err := NewAdmission(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	release, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		rel, err := a.Acquire(ctx)
		if err == nil {
			rel()
		}
		queued <- err
	}()
	// Wait until the goroutine occupies the queue position.
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: err = %v, want ErrOverloaded", err)
	}
	if a.Shed() != 1 {
		t.Errorf("shed = %d, want 1", a.Shed())
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
}

// TestAdmissionQueueHonorsContext: a queued request unblocks with the
// context error when its deadline expires.
func TestAdmissionQueueHonorsContext(t *testing.T) {
	a, err := NewAdmission(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: err = %v, want DeadlineExceeded", err)
	}
}

// TestBatcherMatchesDirectScore: with a frozen detector, verdicts from
// the concurrent micro-batched path must equal direct Score calls
// exactly — batching is a pure scheduling transform.
func TestBatcherMatchesDirectScore(t *testing.T) {
	d := calibratedDetector(t)
	ctx := context.Background()
	doc := strings.Join(handbook, " ")
	b := NewBatcher(d, BatcherConfig{MaxBatch: 8, MaxWait: 5 * time.Millisecond, Workers: 4})
	defer b.Close()

	type result struct {
		i   int
		v   core.Verdict
		err error
	}
	n := len(handbook)
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Verify(ctx, core.Triple{
				Question: "What does the handbook say?", Context: doc, Response: handbook[i],
			})
			results <- result{i, v, err}
		}(i)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("batched verify %d: %v", r.i, r.err)
		}
		want, err := d.Score(ctx, "What does the handbook say?", doc, handbook[r.i])
		if err != nil {
			t.Fatal(err)
		}
		if r.v.Score != want.Score {
			t.Errorf("triple %d: batched score %v != direct score %v", r.i, r.v.Score, want.Score)
		}
	}
	batches, items, _ := b.Stats()
	if items != uint64(n) {
		t.Errorf("batch items = %d, want %d", items, n)
	}
	if batches == 0 || batches > uint64(n) {
		t.Errorf("batches = %d, want in [1, %d]", batches, n)
	}
}

// TestBatcherEmptyResponseIsolated: one bad request fails alone; its
// batchmates succeed.
func TestBatcherEmptyResponseIsolated(t *testing.T) {
	d := calibratedDetector(t)
	b := NewBatcher(d, BatcherConfig{MaxBatch: 4, MaxWait: 10 * time.Millisecond, Workers: 2})
	defer b.Close()
	doc := strings.Join(handbook, " ")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, resp := range []string{handbook[0], "", handbook[1]} {
		wg.Add(1)
		go func(i int, resp string) {
			defer wg.Done()
			_, errs[i] = b.Verify(context.Background(), core.Triple{
				Question: "q", Context: doc, Response: resp,
			})
		}(i, resp)
	}
	wg.Wait()
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("good triples failed: %v, %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], core.ErrEmptyResponse) {
		t.Errorf("empty response err = %v, want ErrEmptyResponse", errs[1])
	}
}

// TestBatcherClosed: Verify after Close fails fast.
func TestBatcherClosed(t *testing.T) {
	d := calibratedDetector(t)
	b := NewBatcher(d, BatcherConfig{})
	b.Close()
	if _, err := b.Verify(context.Background(), core.Triple{Question: "q", Context: "c", Response: "r."}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Detector == nil {
		cfg.Detector = calibratedDetector(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ctx := context.Background()
	if _, err := s.Ingest(ctx, strings.Join(handbook, " ")); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerConcurrentAsks is the headline race test: many goroutines
// hammer a shared server with a small rotating question set; every
// answer must be complete, the shards must hold the corpus, and the
// verdict cache must absorb the repeats.
func TestServerConcurrentAsks(t *testing.T) {
	s := newTestServer(t, Config{
		Shards:   4,
		Dim:      64,
		TopK:     3,
		MaxBatch: 8,
		MaxWait:  2 * time.Millisecond,
	})
	questions := []string{
		"What are the working hours?",
		"How many days of annual leave do employees get?",
		"What is the overtime rate?",
		"How long is the probation period?",
	}
	const goroutines = 16
	const perG = 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := questions[(g+i)%len(questions)]
				ans, err := s.Ask(context.Background(), q)
				if err != nil {
					errCh <- fmt.Errorf("ask %q: %w", q, err)
					return
				}
				if ans.Response == "" || len(ans.Verdict.Sentences) == 0 {
					errCh <- fmt.Errorf("incomplete answer for %q", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Docs == 0 {
		t.Error("no documents stored")
	}
	sum := 0
	for _, n := range st.ShardSizes {
		sum += n
	}
	if sum != st.Docs {
		t.Errorf("shard sizes %v sum to %d, want %d", st.ShardSizes, sum, st.Docs)
	}
	if st.Requests.Asks != goroutines*perG {
		t.Errorf("asks = %d, want %d", st.Requests.Asks, goroutines*perG)
	}
	// 96 asks over 4 distinct questions: the verdict path must
	// deduplicate nearly everything.
	if st.VerdictCache.Hits == 0 {
		t.Error("verdict cache never hit despite repeated questions")
	}
	if st.EmbedCache.Hits == 0 {
		t.Error("embed cache never hit despite repeated questions")
	}
}

// TestServerVerifyCaching: identical Verify calls are scored once.
func TestServerVerifyCaching(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Dim: 64})
	ctx := context.Background()
	doc := strings.Join(handbook, " ")
	v1, err := s.Verify(ctx, "What are the working hours?", doc, "The store operates from 9 AM to 5 PM.")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Verify(ctx, "What are the working hours?", doc, "The store operates from 9 AM to 5 PM.")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Score != v2.Score {
		t.Errorf("cached verdict %v != first verdict %v", v2.Score, v1.Score)
	}
	st := s.Stats()
	if st.VerdictCache.Hits != 1 {
		t.Errorf("verdict cache hits = %d, want 1", st.VerdictCache.Hits)
	}
	if st.Batch.Items != 1 {
		t.Errorf("batch items = %d, want 1 (second call must not reach the batcher)", st.Batch.Items)
	}
}

// TestServerUncalibratedBypassesCache: with an unfrozen normalizer,
// verdicts are order-dependent online functions, so the serving layer
// must not cache them — every request reaches the batcher.
func TestServerUncalibratedBypassesCache(t *testing.T) {
	d, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Shards: 2, Dim: 64, Detector: d})
	ctx := context.Background()
	doc := strings.Join(handbook, " ")
	for i := 0; i < 3; i++ {
		if _, err := s.Verify(ctx, "q", doc, handbook[0]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.VerdictCache.Hits != 0 || st.VerdictCache.Size != 0 {
		t.Errorf("uncalibrated detector used the verdict cache: %+v", st.VerdictCache)
	}
	if st.Batch.Items != 3 {
		t.Errorf("batch items = %d, want 3 (every call must reach the batcher)", st.Batch.Items)
	}
}

// blockingGenerator parks inside Generate until released, letting the
// shed test hold a request slot deterministically.
type blockingGenerator struct {
	entered chan struct{}
	release chan struct{}
}

func (g *blockingGenerator) Generate(question, context string) (string, error) {
	g.entered <- struct{}{}
	<-g.release
	return "The store operates from 9 AM to 5 PM.", nil
}

// TestServerLoadShedding: with one slot and no queue, a second
// concurrent request is shed with ErrOverloaded while the first is
// mid-flight.
func TestServerLoadShedding(t *testing.T) {
	gen := &blockingGenerator{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := newTestServer(t, Config{
		Shards:      2,
		Dim:         64,
		MaxInFlight: 1,
		MaxQueue:    -1, // no queue: shed immediately
		Generator:   gen,
	})
	first := make(chan error, 1)
	go func() {
		_, err := s.Ask(context.Background(), "What are the working hours?")
		first <- err
	}()
	<-gen.entered // first request now holds the only slot
	_, err := s.Ask(context.Background(), "What are the working hours?")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second ask: err = %v, want ErrOverloaded", err)
	}
	close(gen.release)
	if err := <-first; err != nil {
		t.Fatalf("first ask: %v", err)
	}
	if s.Stats().Admission.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Stats().Admission.Shed)
	}
}

// TestServerEmptyQuestion: input validation happens before admission.
func TestServerEmptyQuestion(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Dim: 64})
	if _, err := s.Ask(context.Background(), ""); err == nil {
		t.Error("empty question must fail")
	}
}

// TestServerIngestBulk: the bulk path chunks every document, lands all
// chunks in the store, and costs exactly one admitted ingest batch.
func TestServerIngestBulk(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, TopK: 2})
	before := s.Store().Len()
	chunks, err := s.IngestBulk(context.Background(), handbook)
	if err != nil {
		t.Fatal(err)
	}
	if chunks < len(handbook) {
		t.Errorf("bulk ingest produced %d chunks for %d docs", chunks, len(handbook))
	}
	if got := s.Store().Len() - before; got != chunks {
		t.Errorf("store grew by %d, response said %d", got, chunks)
	}
	// Every fact is retrievable after bulk ingest.
	hits, err := s.Store().Search("how is overtime compensated", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("bulk-ingested corpus not retrievable")
	}
	if _, err := s.IngestBulk(context.Background(), nil); err == nil {
		t.Error("empty bulk ingest succeeded")
	}
	// A durable server persists the bulk batch through the same WAL.
	st := s.Stats()
	if st.Persist.Enabled {
		t.Error("memory-only server reports persistence enabled")
	}
	if st.Requests.Ingests != 1+uint64(len(handbook)) {
		t.Errorf("ingest counter = %d, want %d", st.Requests.Ingests, 1+len(handbook))
	}
}

// TestServerDurableLifecycle: a Server over a data dir recovers its
// corpus across Close/New cycles and reports persistence in Stats.
func TestServerDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	det := calibratedDetector(t)
	cfg := Config{Shards: 2, TopK: 2, Detector: det, DataDir: dir,
		Persist: PersistConfig{CheckpointEvery: -1}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestBulk(context.Background(), handbook); err != nil {
		t.Fatal(err)
	}
	docs := s.Store().Len()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Persist; !st.Enabled || st.Checkpoints == 0 || st.WALRecords != 0 {
		t.Errorf("after checkpoint: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if r.Store().Len() != docs {
		t.Fatalf("recovered %d docs, want %d", r.Store().Len(), docs)
	}
	ans, err := r.Ask(context.Background(), "What are the store working hours?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Response == "" {
		t.Error("recovered server produced empty answer")
	}
}
