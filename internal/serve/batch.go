package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// ErrClosed is returned by Batcher.Verify after Close.
var ErrClosed = errors.New("serve: batcher closed")

// BatcherConfig tunes the micro-batching scheduler. Zero values take
// the documented defaults.
//
// Since the adaptive-batching change, MaxBatch and MaxWait are the
// *upper bounds* of an AIMD controller rather than fixed operating
// points: the batcher moves its live batch limit and linger wait
// inside [MinBatch, MaxBatch] × [MinWait, MaxWait] from observed batch
// occupancy and queue depth (see internal/adaptive). Static pins the
// old fixed behaviour.
type BatcherConfig struct {
	// MaxBatch caps how many requests one dispatch carries (default 16).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway (default 2ms).
	MaxWait time.Duration
	// MinBatch / MinWait are the adaptive controller's lower clamps
	// (defaults 1 and 200µs). Ignored under Static.
	MinBatch int
	MinWait  time.Duration
	// Static disables adaptation: every batch uses exactly
	// (MaxBatch, MaxWait), the pre-adaptive behaviour.
	Static bool
	// Workers is the fan-out inside core.Detector.ScoreBatch — how many
	// (sentence, model) calls run concurrently per dispatch (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth, when non-nil, reports the backlog visible behind the
	// batcher (the Server wires the admission queue depth — the same
	// field /stats exposes). The controller treats a non-empty queue at
	// flush time as pressure.
	QueueDepth func() int
	// Telemetry, when non-nil, separates verify queue wait
	// (stage="verify_wait": enqueue → dispatch) from scoring time
	// (stage="verify_exec": one ScoreBatch call).
	Telemetry *telemetry.Registry
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Batcher collects verification requests from concurrent callers into
// micro-batches (bounded by the adaptive controller's live limit and
// linger wait) and dispatches each batch through
// core.Detector.ScoreBatch, so the detector's M verifiers score many
// requests' sentences in one concurrent fan-out instead of
// sequentially per request.
//
// Batches are formed weighted-fair across tenants: queued jobs are
// parked in per-tenant FIFO queues and each batch takes one job per
// tenant per round-robin pass, so a tenant flooding the batcher fills
// at most its share of every batch and everyone else's verify latency
// stays flat. Unscoped jobs (no tenant on the context) form their own
// queue and share the same rotation.
type Batcher struct {
	det      *core.Detector
	cfg      BatcherConfig
	ctrl     *adaptive.Controller
	jobs     chan batchJob
	done     chan struct{}
	loopDone sync.WaitGroup
	flushes  sync.WaitGroup

	// sendMu fences Verify's channel send against Close's final drain:
	// Close flips closed under the write lock after the loop exits, so
	// once the drain starts no new job can be parked in the buffer.
	sendMu    sync.RWMutex
	closed    bool
	closeOnce sync.Once

	batches    atomic.Uint64 // dispatches
	items      atomic.Uint64 // requests across all dispatches
	maxBatchOb atomic.Int64  // largest batch observed
	inflight   atomic.Int64  // flushes currently executing

	// Stage timers; nil (no-op) without a registry.
	waitH *telemetry.Histogram
	execH *telemetry.Histogram
}

type batchJob struct {
	triple   core.Triple
	ctx      context.Context
	out      chan core.BatchResult
	enqueued time.Time // zero when the batcher is uninstrumented
}

// NewBatcher starts the collection loop over det.
func NewBatcher(det *core.Detector, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		det: det,
		cfg: cfg,
		ctrl: adaptive.New(adaptive.Config{
			MinBatch: cfg.MinBatch,
			MaxBatch: cfg.MaxBatch,
			MinWait:  cfg.MinWait,
			MaxWait:  cfg.MaxWait,
			Static:   cfg.Static,
		}),
		jobs: make(chan batchJob, batchBuffer(cfg.MaxBatch)),
		done: make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		const help = "Hot-path stage latency in seconds."
		b.waitH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "verify_wait"))
		b.execH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "verify_exec"))
	}
	b.loopDone.Add(1)
	go b.loop()
	return b
}

// batchBuffer sizes the job channel: deep enough that a burst parks in
// the buffer (where the fair scheduler can see and rotate across
// tenants) instead of serializing senders FIFO at an unbuffered send.
func batchBuffer(maxBatch int) int {
	n := 4 * maxBatch
	if n < 64 {
		n = 64
	}
	return n
}

// Verify schedules one triple, blocking until its batch is scored or
// ctx expires. The tenant (if any) rides ctx — see WithTenant. A
// caller whose context dies while queued or mid-batch unblocks
// immediately with ctx.Err(); the batch itself completes for the
// other callers.
func (b *Batcher) Verify(ctx context.Context, t core.Triple) (core.Verdict, error) {
	job := batchJob{triple: t, ctx: ctx, out: make(chan core.BatchResult, 1)}
	if b.waitH != nil {
		job.enqueued = time.Now()
	}
	if err := b.submit(job); err != nil {
		return core.Verdict{}, err
	}
	select {
	case r := <-job.out:
		return r.Verdict, r.Err
	case <-ctx.Done():
		return core.Verdict{}, ctx.Err()
	}
}

func (b *Batcher) submit(job batchJob) error {
	b.sendMu.RLock()
	defer b.sendMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	select {
	case b.jobs <- job:
		return nil
	case <-job.ctx.Done():
		return job.ctx.Err()
	case <-b.done:
		return ErrClosed
	}
}

// Close stops the collection loop and waits for in-flight batches to
// finish; later Verify calls return ErrClosed. Jobs still parked in
// the buffer when the loop exits are answered ErrClosed rather than
// left to hang.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.done) })
	b.loopDone.Wait()
	b.sendMu.Lock()
	b.closed = true
	b.sendMu.Unlock()
	for {
		select {
		case j := <-b.jobs:
			j.out <- core.BatchResult{Err: ErrClosed}
			continue
		default:
		}
		break
	}
	b.flushes.Wait()
}

// Stats returns dispatch counters: total batches, total requests, and
// the largest single batch.
func (b *Batcher) Stats() (batches, items uint64, maxBatch int) {
	return b.batches.Load(), b.items.Load(), int(b.maxBatchOb.Load())
}

// Controller exposes the AIMD tuning state for /stats.
func (b *Batcher) Controller() *adaptive.Controller { return b.ctrl }

// pendingJobs parks undispatched jobs in per-tenant FIFO queues and
// serves them one-per-tenant round-robin — the weighted-fair scheduler
// behind batch formation. Tenants are keyed by the collection on the
// job's context ("" for unscoped traffic, which becomes one more
// queue in the rotation).
type pendingJobs struct {
	order  []string
	queues map[string][]batchJob
	next   int
	size   int
}

func newPendingJobs() *pendingJobs {
	return &pendingJobs{queues: map[string][]batchJob{}}
}

func (p *pendingJobs) push(j batchJob) {
	t := TenantFrom(j.ctx)
	if _, ok := p.queues[t]; !ok {
		p.order = append(p.order, t)
	}
	p.queues[t] = append(p.queues[t], j)
	p.size++
}

// take removes up to limit jobs, one per tenant per rotation pass, so
// a batch under contention carries every waiting tenant before any
// tenant's second job.
func (p *pendingJobs) take(limit int) []batchJob {
	if limit < 1 {
		limit = 1
	}
	n := limit
	if p.size < n {
		n = p.size
	}
	batch := make([]batchJob, 0, n)
	for len(batch) < limit && p.size > 0 {
		for i := 0; i < len(p.order) && len(batch) < limit; i++ {
			t := p.order[p.next%len(p.order)]
			p.next++
			q := p.queues[t]
			if len(q) == 0 {
				continue
			}
			batch = append(batch, q[0])
			p.queues[t] = q[1:]
			p.size--
		}
	}
	return batch
}

func (b *Batcher) loop() {
	defer b.loopDone.Done()
	pend := newPendingJobs()
	for {
		if pend.size == 0 {
			select {
			case j := <-b.jobs:
				pend.push(j)
			case <-b.done:
				b.drainPending(pend)
				return
			}
		}
		// Absorb everything already buffered before forming the batch,
		// so a burst that arrived while the last batch was collecting is
		// visible to the fair rotation.
		b.absorb(pend)
		limit, wait := b.ctrl.Limits()
		full := pend.size >= limit
		if !full {
			// Linger for company, still absorbing as jobs arrive.
			timer := time.NewTimer(wait)
			for pend.size < limit {
				stop := false
				select {
				case j := <-b.jobs:
					pend.push(j)
				case <-timer.C:
					stop = true
				case <-b.done:
					timer.Stop()
					b.drainPending(pend)
					return
				}
				if stop {
					break
				}
			}
			timer.Stop()
			full = pend.size >= limit
		}
		batch := pend.take(limit)
		// Backlog behind the batcher: dispatches still scoring when
		// this batch finished collecting (continuous demand that
		// batching wider would absorb), jobs left pending by the fair
		// cut, plus the admission queue.
		queued := int(b.inflight.Load()) + pend.size
		if b.cfg.QueueDepth != nil {
			queued += b.cfg.QueueDepth()
		}
		b.ctrl.Observe(len(batch), full, queued)
		// Dispatch asynchronously so the next batch can collect (and
		// score) while this one is in flight; admission control
		// upstream bounds the number of concurrent batches.
		b.flushes.Add(1)
		b.inflight.Add(1)
		go func() {
			defer b.flushes.Done()
			defer b.inflight.Add(-1)
			b.flush(batch)
		}()
	}
}

// absorb moves every job already sitting in the channel buffer into
// the pending queues without blocking.
func (b *Batcher) absorb(pend *pendingJobs) {
	for {
		select {
		case j := <-b.jobs:
			pend.push(j)
		default:
			return
		}
	}
}

// drainPending flushes everything still pending at shutdown in
// MaxBatch-sized fair batches, so no accepted job is left unanswered.
func (b *Batcher) drainPending(pend *pendingJobs) {
	b.absorb(pend)
	for pend.size > 0 {
		batch := pend.take(b.cfg.MaxBatch)
		b.flushes.Add(1)
		b.inflight.Add(1)
		go func(batch []batchJob) {
			defer b.flushes.Done()
			defer b.inflight.Add(-1)
			b.flush(batch)
		}(batch)
	}
}

// flush scores one batch. Jobs whose context already expired are
// answered without scoring; the rest run through ScoreBatch on a
// detached context (a batch serves several requests, so one caller's
// deadline must not cancel the others — expired callers have already
// unblocked from Verify).
func (b *Batcher) flush(batch []batchJob) {
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.out <- core.BatchResult{Err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	b.batches.Add(1)
	b.items.Add(uint64(len(live)))
	for n := int64(len(live)); ; {
		cur := b.maxBatchOb.Load()
		if n <= cur || b.maxBatchOb.CompareAndSwap(cur, n) {
			break
		}
	}
	triples := make([]core.Triple, len(live))
	execStart := time.Now()
	for i, j := range live {
		triples[i] = j.triple
		if b.waitH != nil && !j.enqueued.IsZero() {
			b.waitH.Observe(execStart.Sub(j.enqueued).Seconds())
		}
	}
	results := b.det.ScoreBatch(context.Background(), triples, b.cfg.Workers)
	b.execH.ObserveSince(execStart)
	for i, j := range live {
		j.out <- results[i]
	}
}
