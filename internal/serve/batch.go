package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// ErrClosed is returned by Batcher.Verify after Close.
var ErrClosed = errors.New("serve: batcher closed")

// BatcherConfig tunes the micro-batching scheduler. Zero values take
// the documented defaults.
//
// Since the adaptive-batching change, MaxBatch and MaxWait are the
// *upper bounds* of an AIMD controller rather than fixed operating
// points: the batcher moves its live batch limit and linger wait
// inside [MinBatch, MaxBatch] × [MinWait, MaxWait] from observed batch
// occupancy and queue depth (see internal/adaptive). Static pins the
// old fixed behaviour.
type BatcherConfig struct {
	// MaxBatch caps how many requests one dispatch carries (default 16).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway (default 2ms).
	MaxWait time.Duration
	// MinBatch / MinWait are the adaptive controller's lower clamps
	// (defaults 1 and 200µs). Ignored under Static.
	MinBatch int
	MinWait  time.Duration
	// Static disables adaptation: every batch uses exactly
	// (MaxBatch, MaxWait), the pre-adaptive behaviour.
	Static bool
	// Workers is the fan-out inside core.Detector.ScoreBatch — how many
	// (sentence, model) calls run concurrently per dispatch (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth, when non-nil, reports the backlog visible behind the
	// batcher (the Server wires the admission queue depth — the same
	// field /stats exposes). The controller treats a non-empty queue at
	// flush time as pressure.
	QueueDepth func() int
	// Telemetry, when non-nil, separates verify queue wait
	// (stage="verify_wait": enqueue → dispatch) from scoring time
	// (stage="verify_exec": one ScoreBatch call).
	Telemetry *telemetry.Registry
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Batcher collects verification requests from concurrent callers into
// micro-batches (bounded by the adaptive controller's live limit and
// linger wait) and dispatches each batch through
// core.Detector.ScoreBatch, so the detector's M verifiers score many
// requests' sentences in one concurrent fan-out instead of
// sequentially per request.
type Batcher struct {
	det       *core.Detector
	cfg       BatcherConfig
	ctrl      *adaptive.Controller
	jobs      chan batchJob
	done      chan struct{}
	loopDone  sync.WaitGroup
	flushes   sync.WaitGroup
	closeOnce sync.Once

	batches    atomic.Uint64 // dispatches
	items      atomic.Uint64 // requests across all dispatches
	maxBatchOb atomic.Int64  // largest batch observed
	inflight   atomic.Int64  // flushes currently executing

	// Stage timers; nil (no-op) without a registry.
	waitH *telemetry.Histogram
	execH *telemetry.Histogram
}

type batchJob struct {
	triple   core.Triple
	ctx      context.Context
	out      chan core.BatchResult
	enqueued time.Time // zero when the batcher is uninstrumented
}

// NewBatcher starts the collection loop over det.
func NewBatcher(det *core.Detector, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		det: det,
		cfg: cfg,
		ctrl: adaptive.New(adaptive.Config{
			MinBatch: cfg.MinBatch,
			MaxBatch: cfg.MaxBatch,
			MinWait:  cfg.MinWait,
			MaxWait:  cfg.MaxWait,
			Static:   cfg.Static,
		}),
		jobs: make(chan batchJob),
		done: make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		const help = "Hot-path stage latency in seconds."
		b.waitH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "verify_wait"))
		b.execH = cfg.Telemetry.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "verify_exec"))
	}
	b.loopDone.Add(1)
	go b.loop()
	return b
}

// Verify schedules one triple, blocking until its batch is scored or
// ctx expires. A caller whose context dies while queued or mid-batch
// unblocks immediately with ctx.Err(); the batch itself completes for
// the other callers.
func (b *Batcher) Verify(ctx context.Context, t core.Triple) (core.Verdict, error) {
	job := batchJob{triple: t, ctx: ctx, out: make(chan core.BatchResult, 1)}
	if b.waitH != nil {
		job.enqueued = time.Now()
	}
	select {
	case b.jobs <- job:
	case <-ctx.Done():
		return core.Verdict{}, ctx.Err()
	case <-b.done:
		return core.Verdict{}, ErrClosed
	}
	select {
	case r := <-job.out:
		return r.Verdict, r.Err
	case <-ctx.Done():
		return core.Verdict{}, ctx.Err()
	}
}

// Close stops the collection loop and waits for in-flight batches to
// finish; later Verify calls return ErrClosed.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.done) })
	b.loopDone.Wait()
	b.flushes.Wait()
}

// Stats returns dispatch counters: total batches, total requests, and
// the largest single batch.
func (b *Batcher) Stats() (batches, items uint64, maxBatch int) {
	return b.batches.Load(), b.items.Load(), int(b.maxBatchOb.Load())
}

// Controller exposes the AIMD tuning state for /stats.
func (b *Batcher) Controller() *adaptive.Controller { return b.ctrl }

func (b *Batcher) loop() {
	defer b.loopDone.Done()
	for {
		select {
		case first := <-b.jobs:
			batch, full := b.collect(first)
			// Backlog behind the batcher: dispatches still scoring when
			// this batch finished collecting (continuous demand that
			// batching wider would absorb) plus the admission queue.
			queued := int(b.inflight.Load())
			if b.cfg.QueueDepth != nil {
				queued += b.cfg.QueueDepth()
			}
			b.ctrl.Observe(len(batch), full, queued)
			// Dispatch asynchronously so the next batch can collect (and
			// score) while this one is in flight; admission control
			// upstream bounds the number of concurrent batches.
			b.flushes.Add(1)
			b.inflight.Add(1)
			go func() {
				defer b.flushes.Done()
				defer b.inflight.Add(-1)
				b.flush(batch)
			}()
		case <-b.done:
			return
		}
	}
}

// collect gathers followers for the first job until the controller's
// live batch limit is reached (full=true) or its linger wait elapses.
func (b *Batcher) collect(first batchJob) (batch []batchJob, full bool) {
	limit, wait := b.ctrl.Limits()
	batch = []batchJob{first}
	if limit <= 1 {
		return batch, true
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for len(batch) < limit {
		select {
		case j := <-b.jobs:
			batch = append(batch, j)
		case <-timer.C:
			return batch, false
		case <-b.done:
			return batch, false
		}
	}
	return batch, true
}

// flush scores one batch. Jobs whose context already expired are
// answered without scoring; the rest run through ScoreBatch on a
// detached context (a batch serves several requests, so one caller's
// deadline must not cancel the others — expired callers have already
// unblocked from Verify).
func (b *Batcher) flush(batch []batchJob) {
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.out <- core.BatchResult{Err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	b.batches.Add(1)
	b.items.Add(uint64(len(live)))
	for n := int64(len(live)); ; {
		cur := b.maxBatchOb.Load()
		if n <= cur || b.maxBatchOb.CompareAndSwap(cur, n) {
			break
		}
	}
	triples := make([]core.Triple, len(live))
	execStart := time.Now()
	for i, j := range live {
		triples[i] = j.triple
		if b.waitH != nil && !j.enqueued.IsZero() {
			b.waitH.Observe(execStart.Sub(j.enqueued).Seconds())
		}
	}
	results := b.det.ScoreBatch(context.Background(), triples, b.cfg.Workers)
	b.execH.ObserveSince(execStart)
	for i, j := range live {
		j.out <- results[i]
	}
}
