package serve

import (
	"repro/internal/rag"
	"repro/internal/vecdb"
)

// Store is the document-store surface the Server drives. Two
// implementations exist: ShardedDB (in-process shards, optionally
// durable via per-shard WAL + checkpoints) and RemoteStore (a
// cluster.Router fanning the same operations out to shard nodes over
// HTTP). The Server is agnostic: the full Ask path — admission,
// caches, micro-batched verification — is identical in both modes;
// only where the vectors live changes.
type Store interface {
	rag.Store
	// AddBulk stores a batch of texts, returning their IDs in input
	// order, with writes grouped per shard.
	AddBulk(texts []string) ([]int64, error)
	// SearchVector answers an already-embedded query with the merged
	// top-k across shards.
	SearchVector(vec []float32, k int) ([]vecdb.Hit, error)
	// Get returns a stored document, or ErrNotFound.
	Get(id int64) (vecdb.Document, error)
	// Delete removes a document, or reports ErrNotFound.
	Delete(id int64) error
	// Embedder exposes the query-path embedder.
	Embedder() vecdb.Embedder
	// Shards reports the shard count; ShardSizes the per-shard
	// document counts.
	Shards() int
	ShardSizes() []int
	// Save checkpoints durable state now (ErrNoDataDir when the store
	// owns none — a RemoteStore's durability lives on its nodes).
	Save() error
	// Close releases the store (final checkpoint + WAL close for a
	// durable ShardedDB, health-checker shutdown for a RemoteStore).
	Close() error
	// PersistStats reports durability counters (zero-valued when the
	// store owns no durable state).
	PersistStats() PersistStats
}

var _ Store = (*ShardedDB)(nil)

// availabilityReporter is implemented by stores that can become
// partially or fully unreachable (RemoteStore). The admission gate
// consults it before spending any work on a request, so traffic
// against a dead cluster sheds in microseconds instead of waiting out
// transport timeouts.
type availabilityReporter interface {
	Available() error
}
