package serve

import (
	"repro/internal/rag"
	"repro/internal/vecdb"
)

// Store is the document-store surface the Server drives. Two
// implementations exist: ShardedDB (in-process shards, optionally
// durable via per-shard WAL + checkpoints) and RemoteStore (a
// cluster.Router fanning the same operations out to shard nodes over
// HTTP). The Server is agnostic: the full Ask path — admission,
// caches, micro-batched verification — is identical in both modes;
// only where the vectors live changes.
type Store interface {
	rag.Store
	// AddBulk stores a batch of texts, returning their IDs in input
	// order, with writes grouped per shard.
	AddBulk(texts []string) ([]int64, error)
	// AddBulkDocs is AddBulk for documents carrying collection and
	// metadata (IDs on the inputs are ignored; the store allocates).
	AddBulkDocs(docs []vecdb.Document) ([]int64, error)
	// SearchVector answers an already-embedded query with the merged
	// top-k across shards.
	SearchVector(vec []float32, k int) ([]vecdb.Hit, error)
	// SearchVectorFiltered pushes a collection/metadata filter down to
	// every shard before the per-shard top-k is taken, so the merged
	// result equals an unfiltered search over the matching subset.
	SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error)
	// Get returns a stored document, or ErrNotFound.
	Get(id int64) (vecdb.Document, error)
	// Delete removes a document, or reports ErrNotFound.
	Delete(id int64) error
	// DeleteIn is Delete scoped to a collection: a document in a
	// different collection reports ErrNotFound and is left in place.
	DeleteIn(collection string, id int64) error
	// CollectionCounts reports per-collection document counts.
	CollectionCounts() map[string]int
	// Embedder exposes the query-path embedder.
	Embedder() vecdb.Embedder
	// Shards reports the shard count; ShardSizes the per-shard
	// document counts.
	Shards() int
	ShardSizes() []int
	// Save checkpoints durable state now (ErrNoDataDir when the store
	// owns none — a RemoteStore's durability lives on its nodes).
	Save() error
	// Close releases the store (final checkpoint + WAL close for a
	// durable ShardedDB, health-checker shutdown for a RemoteStore).
	Close() error
	// PersistStats reports durability counters (zero-valued when the
	// store owns no durable state).
	PersistStats() PersistStats
}

var _ Store = (*ShardedDB)(nil)

// availabilityReporter is implemented by stores that can become
// partially or fully unreachable (RemoteStore). The admission gate
// consults it before spending any work on a request, so traffic
// against a dead cluster sheds in microseconds instead of waiting out
// transport timeouts.
type availabilityReporter interface {
	Available() error
}
