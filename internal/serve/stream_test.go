package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/ingest"
)

// TestIngestStreamEndToEnd: an NDJSON stream lands in the sharded
// store, the per-stream stats are accurate, and the lifetime totals
// surface in the /stats snapshot.
func TestIngestStreamEndToEnd(t *testing.T) {
	sv, err := New(Config{Shards: 4, Dim: 64, Detector: calibratedDetector(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	var sb strings.Builder
	for i, text := range handbook {
		fmt.Fprintf(&sb, "{\"text\":%q}\n", text)
		if i == 4 {
			sb.WriteString("not json at all\n") // one malformed line mid-stream
		}
	}
	st, err := sv.IngestStream(context.Background(), strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatalf("IngestStream: %v", err)
	}
	if st.Accepted != uint64(len(handbook)) || st.Indexed != uint64(len(handbook)) {
		t.Fatalf("stats = %+v, want %d accepted + indexed", st, len(handbook))
	}
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want the malformed line", st.Failed)
	}
	if sv.Store().Len() == 0 {
		t.Fatal("nothing stored")
	}
	// Streamed documents must be retrievable like any other ingest.
	hits, err := sv.Search(context.Background(), "How many days of annual leave?", 3)
	if err != nil || len(hits) == 0 {
		t.Fatalf("search after stream: %v (%d hits)", err, len(hits))
	}

	snap := sv.Stats()
	is := snap.IngestStream
	if is.Streams != 1 || is.AcceptedDocs != st.Accepted || is.FailedLines != 1 {
		t.Fatalf("snapshot stream stats = %+v", is)
	}
	if is.Chunks == 0 || is.Bytes == 0 {
		t.Fatalf("snapshot stream stats missing chunks/bytes: %+v", is)
	}
	if !is.Batch.Adaptive {
		t.Fatal("ingest controller should be adaptive by default")
	}
	if snap.Requests.Ingests != st.Accepted {
		t.Fatalf("Requests.Ingests = %d, want %d", snap.Requests.Ingests, st.Accepted)
	}
}

// TestIngestStreamMatchesBulk: the streamed path and the bulk path
// must index the same corpus to the same store size — streaming is a
// transport change, not a semantic one.
func TestIngestStreamMatchesBulk(t *testing.T) {
	mk := func() *Server {
		sv, err := New(Config{Shards: 4, Dim: 64, Detector: calibratedDetector(t)})
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	bulkSv, streamSv := mk(), mk()
	defer bulkSv.Close()
	defer streamSv.Close()

	if _, err := bulkSv.IngestBulk(context.Background(), handbook); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, text := range handbook {
		fmt.Fprintf(&sb, "{\"text\":%q}\n", text)
	}
	st, err := streamSv.IngestStream(context.Background(), strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := streamSv.Store().Len(), bulkSv.Store().Len(); got != want {
		t.Fatalf("stream stored %d chunks, bulk stored %d", got, want)
	}
	if int(st.Chunks) != bulkSv.Store().Len() {
		t.Fatalf("stream reported %d chunks, store holds %d", st.Chunks, bulkSv.Store().Len())
	}
}

// TestIngestStreamConcurrentWithQueries: streams and queries share
// the admission gate without deadlock or data races.
func TestIngestStreamConcurrentWithQueries(t *testing.T) {
	sv, err := New(Config{Shards: 4, Dim: 64, Detector: calibratedDetector(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.IngestBulk(context.Background(), handbook); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 100; i++ {
				fmt.Fprintf(&sb, "{\"text\":\"stream %d filler document number %d about topic %d\"}\n", g, i, i%7)
			}
			if _, err := sv.IngestStream(context.Background(), strings.NewReader(sb.String()), nil); err != nil {
				t.Errorf("stream %d: %v", g, err)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := sv.Search(context.Background(), "annual leave days", 3); err != nil {
					t.Errorf("search during stream: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := sv.Stats().IngestStream; st.Streams != 2 || st.AcceptedDocs != 200 {
		t.Fatalf("stream totals = %+v", st)
	}
}

// TestIngestStreamShedsWhenOverloaded: a stream respects the same
// admission gate as every other request and is shed before reading a
// byte.
func TestIngestStreamShedsWhenOverloaded(t *testing.T) {
	sv, err := New(Config{Shards: 1, Dim: 64, MaxInFlight: 1, MaxQueue: -1, Detector: calibratedDetector(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	// Occupy the only slot.
	release, err := sv.admission.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	var readerTouched bool
	r := readerFunc(func(p []byte) (int, error) {
		readerTouched = true
		return 0, nil
	})
	if _, err := sv.IngestStream(context.Background(), r, nil); err != ErrOverloaded {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if readerTouched {
		t.Fatal("shed stream read from the body")
	}
	if sv.admission.Shed() == 0 {
		t.Fatal("shed not counted in admission stats")
	}
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

var _ ingest.Store = (*ShardedDB)(nil)
var _ ingest.Store = (*RemoteStore)(nil)
