package serve

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/vecdb"
)

// This file is ShardedDB's side of anti-entropy replica resync (see
// docs/cluster.md): serving mutation deltas out of the shard's WAL
// segments, and applying deltas or full snapshots shipped by a
// cluster.Router's resync manager. The delta surface is meaningful
// for single-shard stores — the shape cmd/shardnode runs, where the
// routing layer above owns the hash ring and each node is one shard
// of it.

// errNotSingleShard rejects resync application on a multi-shard
// store: sequence numbers order one shard's mutation stream, and a
// store that hash-routes internally has no single stream to adopt.
var errNotSingleShard = errors.New("serve: resync apply requires a single-shard store")

// Seq reports the store's last applied mutation sequence number — the
// per-shard stream position for a single-shard node, the sum of shard
// positions otherwise (a coarse mutation count, still monotonic).
func (s *ShardedDB) Seq() uint64 {
	var seq uint64
	for _, sh := range s.shards {
		seq += sh.Seq()
	}
	return seq
}

// Checksum reports the order-independent content checksum across all
// shards (XOR composes across the partition exactly as it does across
// documents).
func (s *ShardedDB) Checksum() uint64 {
	var check uint64
	for _, sh := range s.shards {
		check ^= sh.Checksum()
	}
	return check
}

// errStopScan aborts a WAL replay early once MutationsSince has
// collected its batch; it never escapes this file.
var errStopScan = errors.New("serve: stop wal scan")

// MutationsSince serves the journaled mutations with seq > since,
// oldest first, up to max records (max <= 0 means no cap), straight
// from the shard's WAL segments. It reports vecdb.ErrSeqTruncated
// when the WAL no longer retains the requested range — after a
// checkpoint truncated it, on a memory-only store (no journal), or on
// a multi-shard store (no single stream) — telling the caller to fall
// back to full snapshot transfer. since equal to the current head
// returns an empty delta.
func (s *ShardedDB) MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error) {
	if len(s.shards) != 1 {
		return nil, fmt.Errorf("%w: multi-shard store serves no delta stream", vecdb.ErrSeqTruncated)
	}
	p := s.persist
	if p == nil {
		return s.shards[0].MutationsSince(since, max)
	}
	ds := p.shards[0]
	if base := ds.base.Load(); since < base {
		return nil, fmt.Errorf("%w: wal begins after seq %d, need > %d", vecdb.ErrSeqTruncated, base, since)
	}
	var out []vecdb.SeqMutation
	prev := ds.base.Load() // for numbering legacy unframed records
	_, err := ds.wal.Replay(func(payload []byte) error {
		seq, raw, framed, err := storage.DecodeSeqPayload(payload)
		if err != nil {
			return err
		}
		if !framed {
			seq = prev + 1
		}
		prev = seq
		if seq <= since {
			return nil
		}
		m, err := vecdb.DecodeMutation(raw)
		if err != nil {
			return err
		}
		out = append(out, vecdb.SeqMutation{Seq: seq, Mutation: m})
		if max > 0 && len(out) >= max {
			return errStopScan
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	// A background checkpoint may have truncated the WAL mid-scan; if
	// the retention floor moved past since, the delta just read can be
	// missing records and must not be trusted as complete.
	if base := ds.base.Load(); since < base {
		return nil, fmt.Errorf("%w: wal truncated during read (floor now %d)", vecdb.ErrSeqTruncated, base)
	}
	return out, nil
}

// ApplyResync applies a mutation delta shipped from a more advanced
// peer, journaling each record under its explicit sequence number so
// the catch-up survives a crash like any other write. Application is
// idempotent (upserting adds, absent-delete-tolerant); a batch that
// applies but fails to journal is reported as an error and simply
// re-shipped by the resync manager's next round.
func (s *ShardedDB) ApplyResync(ms []vecdb.SeqMutation) error {
	if len(ms) == 0 {
		return nil
	}
	if len(s.shards) != 1 {
		return errNotSingleShard
	}
	db := s.shards[0]
	p := s.persist
	if p == nil {
		return db.ApplyResync(ms)
	}
	payloads := make([][]byte, len(ms))
	for j, m := range ms {
		b, err := vecdb.EncodeMutation(m.Mutation)
		if err != nil {
			return err
		}
		payloads[j] = storage.EncodeSeqPayload(m.Seq, b)
	}
	ds := p.shards[0]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := db.ApplyResync(ms); err != nil {
		return err
	}
	return p.journal(0, payloads)
}

// SnapshotDocs returns the full document set (sorted by ID) and the
// seq it is current as of — the source side of a snapshot transfer.
func (s *ShardedDB) SnapshotDocs() (uint64, []vecdb.Document, error) {
	if len(s.shards) == 1 {
		return s.shards[0].SnapshotDocs()
	}
	var (
		seq  uint64
		docs []vecdb.Document
	)
	for _, sh := range s.shards {
		sseq, sdocs, err := sh.SnapshotDocs()
		if err != nil {
			return 0, nil, err
		}
		seq += sseq
		docs = append(docs, sdocs...)
	}
	sortDocsByID(docs)
	return seq, docs, nil
}

func sortDocsByID(docs []vecdb.Document) {
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
}

// ApplySnapshot replaces the store's contents with a peer's full
// document set and adopts its seq — the truncated-WAL fallback. On a
// durable store the adopted state is checkpointed immediately in the
// same critical section, pinning the new seq on disk and truncating a
// WAL whose records are now meaningless under the adopted numbering;
// a crash before the checkpoint lands recovers the pre-snapshot state
// and the next anti-entropy round repairs it again.
func (s *ShardedDB) ApplySnapshot(seq uint64, docs []vecdb.Document) error {
	if len(s.shards) != 1 {
		return errNotSingleShard
	}
	db := s.shards[0]
	p := s.persist
	if p == nil {
		return db.ApplySnapshot(seq, docs)
	}
	ds := p.shards[0]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := db.ApplySnapshot(seq, docs); err != nil {
		return err
	}
	if err := p.checkpointShardLocked(s, 0); err != nil {
		p.ckErrors.Add(1)
		return fmt.Errorf("serve: snapshot checkpoint: %w", err)
	}
	return nil
}
