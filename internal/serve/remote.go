package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// RemoteStore is the cluster-mode Store: documents are hash-routed
// over a cluster.Router to shard nodes speaking the shard protocol,
// while ID allocation, query embedding (LRU-cached) and top-k merge
// stay on the routing server. Because the hash ring, the embedder and
// the merge order are shared with ShardedDB, a corpus ingested
// through a RemoteStore over n nodes returns bit-identical results to
// the same corpus in a single n-shard process.
//
// Durability lives on each node (its own WAL + checkpoints, per
// docs/persistence.md); the router holds no document state, so Save
// reports ErrNoDataDir and PersistStats is zero.
type RemoteStore struct {
	router *cluster.Router
	embed  vecdb.Embedder
	nextID atomic.Int64
	// opTimeout bounds one store operation issued without a caller
	// context (the rag.Store surface carries none). statTimeout is the
	// much shorter budget for observational fan-outs (Len/ShardSizes):
	// they back a liveness endpoint and fall back to the health
	// checker's cached counts, so a slow node must not stall a scrape.
	opTimeout   time.Duration
	statTimeout time.Duration
	// embedH times query embedding; nil until SetTelemetry.
	embedH atomic.Pointer[telemetry.Histogram]
}

// NewRemoteStore builds a cluster-mode store over router. dim and
// embedCache mirror NewShardedDefault's embedder setup. The global ID
// allocator is restored from the cluster's high-water mark, so every
// node must be reachable at boot — allocating IDs below a dead
// shard's maximum would collide when it returns.
func NewRemoteStore(router *cluster.Router, dim, embedCache int) (*RemoteStore, error) {
	inner, err := vecdb.NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	s := &RemoteStore{
		router:      router,
		embed:       NewCachedEmbedder(inner, embedCache),
		opTimeout:   10 * time.Second,
		statTimeout: 2 * time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opTimeout)
	defer cancel()
	next, err := router.MaxNextID(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: restore cluster ID allocator: %w", err)
	}
	s.nextID.Store(next - 1)
	return s, nil
}

// Router exposes the underlying cluster router (for /stats health
// reporting and tests).
func (s *RemoteStore) Router() *cluster.Router { return s.router }

// opCtx bounds one store operation. parent keeps the caller's
// cancellation, deadline and request ID flowing into the cluster RPCs
// (context.WithTimeout keeps whichever deadline is earlier). Callers
// on the context-free rag.Store surface pass context.Background()
// explicitly — never nil, so middleware that derives from the parent
// (tracing spans, deadline propagation) cannot panic on a nil ctx.
func (s *RemoteStore) opCtx(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, s.opTimeout)
}

// SetTelemetry binds the router-side embed stage histogram. The
// fan-out/merge/backend series are bound by the router itself at
// construction (cluster.HealthConfig.Telemetry).
func (s *RemoteStore) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.embedH.Store(nil)
		return
	}
	s.embedH.Store(reg.Histogram("stage_duration_seconds",
		"Hot-path stage latency in seconds.", nil, telemetry.L("stage", "embed")))
}

// Add embeds-on-arrival is the node's job: the mutation carries text,
// and the owning node embeds with the same deterministic embedder the
// router uses for queries.
func (s *RemoteStore) Add(text string, meta map[string]string) (int64, error) {
	id := s.nextID.Add(1)
	ctx, cancel := s.opCtx(context.Background())
	defer cancel()
	m := vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text, Meta: meta}
	if err := s.router.Apply(ctx, s.router.ShardFor(id), []vecdb.Mutation{m}); err != nil {
		return 0, err
	}
	return id, nil
}

// AddBulk assigns IDs in input order — the same allocation a
// ShardedDB performs — groups the adds by owning shard, and applies
// each group in one shard RPC, all shards in flight at once.
func (s *RemoteStore) AddBulk(texts []string) ([]int64, error) {
	return s.AddBulkContext(context.Background(), texts)
}

// AddBulkContext is AddBulk under the caller's context, so streamed
// ingest batches carry their request ID (and any deadline) onto the
// shard-node writes.
func (s *RemoteStore) AddBulkContext(parent context.Context, texts []string) ([]int64, error) {
	if len(texts) == 0 {
		return nil, nil
	}
	n := s.router.Shards()
	ids := make([]int64, len(texts))
	groups := make([][]vecdb.Mutation, n)
	for i, text := range texts {
		id := s.nextID.Add(1)
		ids[i] = id
		si := cluster.ShardIndex(id, n)
		groups[si] = append(groups[si], vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text})
	}
	ctx, cancel := s.opCtx(parent)
	defer cancel()
	errs := make([]error, n)
	parallel.ForWorkers(n, n, func(si int) {
		if len(groups[si]) == 0 {
			return
		}
		errs[si] = s.router.Apply(ctx, si, groups[si])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// AddBulkDocs stores a batch of documents with collection and
// metadata, same ID allocation and shard grouping as AddBulk.
func (s *RemoteStore) AddBulkDocs(docs []vecdb.Document) ([]int64, error) {
	return s.AddBulkDocsContext(context.Background(), docs)
}

// AddBulkDocsContext is AddBulkDocs under the caller's context.
func (s *RemoteStore) AddBulkDocsContext(parent context.Context, docs []vecdb.Document) ([]int64, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	n := s.router.Shards()
	ids := make([]int64, len(docs))
	groups := make([][]vecdb.Mutation, n)
	for i, d := range docs {
		id := s.nextID.Add(1)
		ids[i] = id
		si := cluster.ShardIndex(id, n)
		groups[si] = append(groups[si], vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Collection: d.Collection, Text: d.Text, Meta: d.Meta})
	}
	ctx, cancel := s.opCtx(parent)
	defer cancel()
	errs := make([]error, n)
	parallel.ForWorkers(n, n, func(si int) {
		if len(groups[si]) == 0 {
			return
		}
		errs[si] = s.router.Apply(ctx, si, groups[si])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// Search embeds the query once (through the router-side cache) and
// fans the vector out.
func (s *RemoteStore) Search(query string, k int) ([]vecdb.Hit, error) {
	return s.SearchContext(context.Background(), query, k)
}

// SearchContext is Search under the caller's context: the request ID
// and trace ride the shard RPCs (X-Request-ID / traceparent) and the
// caller's deadline, if sooner than opTimeout, bounds them
// (X-Deadline-Ms).
func (s *RemoteStore) SearchContext(parent context.Context, query string, k int) ([]vecdb.Hit, error) {
	return s.SearchFilteredContext(parent, query, k, vecdb.Filter{})
}

// SearchFilteredContext embeds the query (namespaced to the filter's
// collection in the router-side cache) and fans it out with the filter
// pushed down to every shard node.
func (s *RemoteStore) SearchFilteredContext(parent context.Context, query string, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	_, sp := telemetry.StartSpan(parent, "embed")
	h := s.embedH.Load()
	start := time.Now()
	vec, err := s.embedIn(f.Collection, query)
	sp.End(err)
	if err != nil {
		return nil, fmt.Errorf("serve: embed query: %w", err)
	}
	h.ObserveSinceCtx(parent, start)
	ctx, cancel := s.opCtx(parent)
	defer cancel()
	return s.router.SearchVector(ctx, vec, k, f)
}

// embedIn mirrors ShardedDB.embedIn: collection-namespaced cache key,
// same raw-text embedding.
func (s *RemoteStore) embedIn(collection, query string) ([]float32, error) {
	if ce, ok := s.embed.(interface {
		EmbedIn(collection, text string) ([]float32, error)
	}); ok {
		return ce.EmbedIn(collection, query)
	}
	return s.embed.Embed(query)
}

// SearchVector fans the query out to every shard node and merges,
// degrading around dead shards (see cluster.Router.SearchVector).
func (s *RemoteStore) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) {
	return s.SearchVectorFiltered(vec, k, vecdb.Filter{})
}

// SearchVectorFiltered is SearchVector with the filter pushed down to
// the shard nodes before each per-shard top-k is taken.
func (s *RemoteStore) SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	ctx, cancel := s.opCtx(context.Background())
	defer cancel()
	return s.router.SearchVector(ctx, vec, k, f)
}

// Get fetches one document from its owning shard, failing over across
// that shard's backends.
func (s *RemoteStore) Get(id int64) (vecdb.Document, error) {
	return s.GetContext(context.Background(), id)
}

// GetContext is Get under the caller's context.
func (s *RemoteStore) GetContext(parent context.Context, id int64) (vecdb.Document, error) {
	ctx, cancel := s.opCtx(parent)
	defer cancel()
	return s.router.Get(ctx, id)
}

// Delete removes one document from its owning shard.
func (s *RemoteStore) Delete(id int64) error {
	return s.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete under the caller's context.
func (s *RemoteStore) DeleteContext(parent context.Context, id int64) error {
	ctx, cancel := s.opCtx(parent)
	defer cancel()
	return s.router.Delete(ctx, id)
}

// DeleteIn is Delete scoped to a collection: the checked-delete
// mutation makes a shard node report ErrNotFound for a document that
// exists in a different collection.
func (s *RemoteStore) DeleteIn(collection string, id int64) error {
	ctx, cancel := s.opCtx(context.Background())
	defer cancel()
	m := vecdb.Mutation{Op: vecdb.OpDelete, ID: id, Collection: collection}
	return s.router.Apply(ctx, s.router.ShardFor(id), []vecdb.Mutation{m})
}

// CollectionCounts merges per-collection counts across the reachable
// shard nodes (stat-budget bounded, like Len).
func (s *RemoteStore) CollectionCounts() map[string]int {
	ctx, cancel := context.WithTimeout(context.Background(), s.statTimeout)
	defer cancel()
	return s.router.CollectionCounts(ctx)
}

// Len sums live per-shard counts (last-observed for shards that don't
// answer within the stat budget).
func (s *RemoteStore) Len() int {
	ctx, cancel := context.WithTimeout(context.Background(), s.statTimeout)
	defer cancel()
	return s.router.Len(ctx)
}

// Shards reports the hash-ring width.
func (s *RemoteStore) Shards() int { return s.router.Shards() }

// ShardSizes reports per-shard document counts.
func (s *RemoteStore) ShardSizes() []int {
	ctx, cancel := context.WithTimeout(context.Background(), s.statTimeout)
	defer cancel()
	return s.router.Lens(ctx)
}

// Embedder exposes the router-side cached query embedder.
func (s *RemoteStore) Embedder() vecdb.Embedder { return s.embed }

// Save reports ErrNoDataDir: checkpointing is each node's own
// business (their background checkpointers keep running regardless of
// what the router does).
func (s *RemoteStore) Save() error { return ErrNoDataDir }

// Close stops the router's health checker. Node processes are not
// touched.
func (s *RemoteStore) Close() error {
	s.router.Close()
	return nil
}

// PersistStats is zero: the router owns no durable state.
func (s *RemoteStore) PersistStats() PersistStats { return PersistStats{} }

// Available feeds the admission gate: ErrUnavailable when no shard
// has a healthy backend.
func (s *RemoteStore) Available() error { return s.router.Available() }

var (
	_ Store                = (*RemoteStore)(nil)
	_ availabilityReporter = (*RemoteStore)(nil)
)
