package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// TestTenantGateTokenBucket drives the per-tenant token bucket on a
// fake clock: the burst is admitted, the flood beyond it is throttled
// with ErrTenantThrottled (a 429 via the ErrOverloaded family), a
// second tenant's bucket is untouched, and refill restores exactly
// Rate tokens per second. Outcome counters land both in Stats() and in
// the labelled telemetry counters /metrics exports.
func TestTenantGateTokenBucket(t *testing.T) {
	g := NewTenantGate(TenantLimits{Rate: 1, Burst: 3})
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	reg := telemetry.NewRegistry()
	g.SetTelemetry(reg)

	ctxA := WithTenant(context.Background(), "tenant-a")
	ctxB := WithTenant(context.Background(), "tenant-b")

	// The full burst is admitted back-to-back.
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(ctxA)
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		rel()
	}
	// The bucket is dry: everything beyond the burst is shed.
	for i := 0; i < 5; i++ {
		if _, err := g.Acquire(ctxA); !errors.Is(err, ErrTenantThrottled) {
			t.Fatalf("flood %d: err = %v, want ErrTenantThrottled", i, err)
		}
	}
	// The throttle error is in the overload family, so the HTTP layer's
	// existing statusFor mapping turns it into a 429 without new cases.
	if !errors.Is(ErrTenantThrottled, ErrOverloaded) {
		t.Fatal("ErrTenantThrottled must wrap ErrOverloaded for the 429 mapping")
	}
	// Tenant B has its own bucket — A's flood cost it nothing.
	relB, err := g.Acquire(ctxB)
	if err != nil {
		t.Fatalf("tenant-b admit: %v", err)
	}
	relB()
	// Unscoped requests bypass the gate entirely.
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("unscoped acquire: %v", err)
	}

	// Two seconds of refill buys exactly two more admissions.
	now = now.Add(2 * time.Second)
	for i := 0; i < 2; i++ {
		rel, err := g.Acquire(ctxA)
		if err != nil {
			t.Fatalf("refill admit %d: %v", i, err)
		}
		defer rel()
	}
	if _, err := g.Acquire(ctxA); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("post-refill err = %v, want ErrTenantThrottled", err)
	}

	st := g.Stats()
	a, b := st["tenant-a"], st["tenant-b"]
	if a.Admitted != 5 || a.Throttled != 6 || a.InFlight != 2 {
		t.Errorf("tenant-a stats = %+v, want {Admitted:5 Throttled:6 InFlight:2}", a)
	}
	if b.Admitted != 1 || b.Throttled != 0 || b.InFlight != 0 {
		t.Errorf("tenant-b stats = %+v, want {Admitted:1 Throttled:0 InFlight:0}", b)
	}
	if got := reg.CounterValue("tenant_throttled_total", telemetry.L("collection", "tenant-a")); got != 6 {
		t.Errorf("tenant_throttled_total{tenant-a} = %d, want 6", got)
	}
	if got := reg.CounterValue("tenant_throttled_total", telemetry.L("collection", "tenant-b")); got != 0 {
		t.Errorf("tenant_throttled_total{tenant-b} = %d, want 0", got)
	}
	if got := reg.CounterValue("tenant_requests_total",
		telemetry.L("collection", "tenant-a"), telemetry.L("outcome", "admitted")); got != 5 {
		t.Errorf("tenant_requests_total{tenant-a,admitted} = %d, want 5", got)
	}
	if got := reg.CounterValue("tenant_requests_total",
		telemetry.L("collection", "tenant-a"), telemetry.L("outcome", "throttled")); got != 6 {
		t.Errorf("tenant_requests_total{tenant-a,throttled} = %d, want 6", got)
	}
}

// TestTenantGateInFlightQuota pins the concurrency quota: a tenant at
// MaxInFlight is refused until a slot frees, and release is
// idempotent so a double-released slot cannot drive the count
// negative.
func TestTenantGateInFlightQuota(t *testing.T) {
	g := NewTenantGate(TenantLimits{MaxInFlight: 2})
	ctx := WithTenant(context.Background(), "tenant-a")

	rel1, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("over-quota err = %v, want ErrTenantThrottled", err)
	}
	rel1()
	rel1() // idempotent: must not free a second slot
	rel3, err := g.Acquire(ctx)
	if err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("quota must still hold after double release, got err = %v", err)
	}
	rel2()
	rel3()
	if st := g.Stats()["tenant-a"]; st.InFlight != 0 {
		t.Errorf("in-flight after all releases = %d, want 0", st.InFlight)
	}
}

// TestPendingJobsRoundRobin pins the weighted-fair batch formation as
// pure data-structure behaviour (no goroutines, no timing): a batch
// cut from queues holding 6 tenant-a jobs, 2 tenant-b jobs and 1
// unscoped job must carry every waiting tenant before any tenant's
// second job.
func TestPendingJobsRoundRobin(t *testing.T) {
	job := func(tenant string, n int) batchJob {
		return batchJob{
			triple: core.Triple{Question: fmt.Sprintf("%s/%d", tenant, n)},
			ctx:    WithTenant(context.Background(), tenant),
		}
	}
	p := newPendingJobs()
	for i := 0; i < 6; i++ {
		p.push(job("a", i))
	}
	p.push(job("b", 0))
	p.push(job("b", 1))
	p.push(job("", 0)) // unscoped traffic is one more queue in the rotation

	got := func(batch []batchJob) []string {
		qs := make([]string, len(batch))
		for i, j := range batch {
			qs[i] = j.triple.Question
		}
		return qs
	}

	batch := p.take(6)
	want := []string{"a/0", "b/0", "/0", "a/1", "b/1", "a/2"}
	if strings.Join(got(batch), " ") != strings.Join(want, " ") {
		t.Fatalf("fair batch = %v, want %v", got(batch), want)
	}
	if p.size != 3 {
		t.Fatalf("pending after cut = %d, want 3", p.size)
	}
	// The remainder drains in FIFO order for the only non-empty queue.
	rest := p.take(10)
	want = []string{"a/3", "a/4", "a/5"}
	if strings.Join(got(rest), " ") != strings.Join(want, " ") {
		t.Fatalf("drained remainder = %v, want %v", got(rest), want)
	}
	if p.size != 0 {
		t.Fatalf("pending after drain = %d, want 0", p.size)
	}
}

// TestServerTenantFairness is the end-to-end throttle check of the
// issue: one tenant hammering the server is shed at its own boundary
// (ErrTenantThrottled, counted in tenant_throttled_total) while a
// second tenant's requests all succeed, untouched by the flood.
func TestServerTenantFairness(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{
		Shards:      2,
		Dim:         64,
		TopK:        3,
		TenantRate:  0.001, // negligible refill: the burst is the budget
		TenantBurst: 3,
		Telemetry:   reg,
	})
	ctx := context.Background()
	ctxA := WithTenant(ctx, "tenant-a")
	ctxB := WithTenant(ctx, "tenant-b")

	var admitted, throttled int
	for i := 0; i < 20; i++ {
		_, err := s.Search(ctxA, "What are the working hours?", 2)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrTenantThrottled):
			throttled++
		default:
			t.Fatalf("search %d: unexpected err %v", i, err)
		}
	}
	if admitted != 3 || throttled != 17 {
		t.Errorf("tenant-a flood: admitted %d throttled %d, want 3/17", admitted, throttled)
	}
	// The other tenant's full burst succeeds during/after the flood.
	for i := 0; i < 3; i++ {
		if _, err := s.Search(ctxB, "How many days of annual leave do employees get?", 2); err != nil {
			t.Fatalf("tenant-b search %d: %v", i, err)
		}
	}

	st := s.Stats()
	a, b := st.Tenants["tenant-a"], st.Tenants["tenant-b"]
	if a.Admitted != uint64(admitted) || a.Throttled != uint64(throttled) {
		t.Errorf("tenant-a /stats = %+v, want {Admitted:%d Throttled:%d}", a, admitted, throttled)
	}
	if b.Admitted != 3 || b.Throttled != 0 {
		t.Errorf("tenant-b /stats = %+v, want {Admitted:3 Throttled:0}", b)
	}
	if got := reg.CounterValue("tenant_throttled_total", telemetry.L("collection", "tenant-a")); got != uint64(throttled) {
		t.Errorf("tenant_throttled_total{tenant-a} = %d, want %d", got, throttled)
	}
	if got := reg.CounterValue("tenant_throttled_total", telemetry.L("collection", "tenant-b")); got != 0 {
		t.Errorf("tenant_throttled_total{tenant-b} = %d, want 0", got)
	}
}

// countingEmbedder counts raw embeds so cache tests can distinguish
// hits from recomputation.
type countingEmbedder struct {
	inner vecdb.Embedder
	n     atomic.Int64
}

func (e *countingEmbedder) Dim() int { return e.inner.Dim() }
func (e *countingEmbedder) Embed(text string) ([]float32, error) {
	e.n.Add(1)
	return e.inner.Embed(text)
}

// TestEmbedCacheNamespacedByCollection is the cross-tenant cache
// regression: the same query text under two collections must occupy
// two independent cache entries (no tenant observes another's
// residency), while the vectors themselves stay bit-identical —
// namespacing keys the cache, never the embedding.
func TestEmbedCacheNamespacedByCollection(t *testing.T) {
	inner, err := vecdb.NewHashedEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	ce := &countingEmbedder{inner: inner}
	e := NewCachedEmbedder(ce, 8)

	va, err := e.EmbedIn("tenant-a", "quarterly report")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := e.EmbedIn("tenant-b", "quarterly report")
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 2 {
		t.Fatalf("raw embeds after two collections = %d, want 2 (no cross-tenant hit)", got)
	}
	if _, err := e.EmbedIn("tenant-a", "quarterly report"); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 2 {
		t.Fatalf("raw embeds after same-collection repeat = %d, want 2 (cache hit)", got)
	}
	// Unscoped traffic is its own namespace, not an alias of any tenant.
	if _, err := e.Embed("quarterly report"); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 3 {
		t.Fatalf("raw embeds after unscoped = %d, want 3", got)
	}
	// The vector is a function of the text alone: query vectors stay
	// bit-identical to ingest vectors regardless of tenant.
	if len(va) != len(vb) {
		t.Fatalf("vector widths differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("vector[%d] differs across collections: %v vs %v", i, va[i], vb[i])
		}
	}
}

// TestVerdictCacheNamespacedByTenant: the identical
// (question, context, response) triple verified under two tenants must
// be scored twice — a cached verdict must never leak across the tenant
// boundary — while a same-tenant repeat is served from cache.
func TestVerdictCacheNamespacedByTenant(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Dim: 64, TopK: 3})
	ctx := context.Background()
	q := "What are the working hours?"
	doc := strings.Join(handbook, " ")
	resp := handbook[0]

	ctxA := WithTenant(ctx, "tenant-a")
	ctxB := WithTenant(ctx, "tenant-b")
	va, err := s.Verify(ctxA, q, doc, resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(ctxA, q, doc, resp); err != nil {
		t.Fatal(err)
	}
	vb, err := s.Verify(ctxB, q, doc, resp)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.VerdictCache.Hits != 1 || st.VerdictCache.Misses != 2 {
		t.Errorf("verdict cache hits/misses = %d/%d, want 1/2 (per-tenant entries)",
			st.VerdictCache.Hits, st.VerdictCache.Misses)
	}
	// Same triple, same frozen detector: the verdicts agree even though
	// they were computed independently.
	if va.Score != vb.Score {
		t.Errorf("scores diverged across tenants for identical triple: %v vs %v", va.Score, vb.Score)
	}
}
