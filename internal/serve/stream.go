package serve

import (
	"context"
	"io"
	"sync/atomic"

	"repro/internal/adaptive"
	"repro/internal/ingest"
)

// IngestStream feeds an NDJSON document stream (see docs/ingest.md)
// through the bounded ingest pipeline into the store. The whole
// stream costs one admission slot — like IngestBulk, a stream
// competes with queries as one request — and is shed with
// ErrOverloaded (HTTP 429) before any byte is read when the gate is
// full, or with the cluster's availability error when no shard is
// reachable. Once admitted, overload no longer sheds: the pipeline's
// credit gate slows the producer instead (slow-read backpressure), so
// a stream that was accepted always runs to completion or to an
// abort.
//
// Unlike the other endpoints a stream gets no RequestTimeout: its
// natural deadline is the client connection (ctx). progress, when
// non-nil, receives periodic Stats snapshots for heartbeat frames.
//
// Streamed batches are written through the Store interface, so in
// cluster mode they hash-route over the shard nodes with the same
// replica fan-out and per-node failure accounting as every other
// write (see docs/cluster.md).
func (s *Server) IngestStream(ctx context.Context, r io.Reader, progress func(ingest.Stats)) (ingest.Stats, error) {
	return s.IngestStreamIn(ctx, "", r, progress)
}

// IngestStreamIn is IngestStream scoped to one collection: every
// document on the stream lands under that collection (with its meta),
// so two tenants can stream concurrently and filtered search keeps
// them fully separate. Empty collection means the default collection.
func (s *Server) IngestStreamIn(ctx context.Context, collection string, r io.Reader, progress func(ingest.Stats)) (ingest.Stats, error) {
	if av, ok := s.store.(availabilityReporter); ok {
		if err := av.Available(); err != nil {
			s.unavailableShed.Inc()
			return ingest.Stats{}, err
		}
	}
	release, err := s.admission.Acquire(ctx)
	if err != nil {
		return ingest.Stats{}, err
	}
	defer release()
	s.stream.streams.Add(1)
	st, runErr := ingest.Run(ctx, ingest.Config{
		Store:      s.store,
		Collection: collection,
		Chunker:    s.cfg.Chunker,
		Workers:    s.cfg.StreamWorkers,
		MaxPending: s.cfg.StreamMaxPending,
		MaxErrors:  s.cfg.StreamMaxErrors,
		Controller: s.ingestCtrl,
		Telemetry:  s.cfg.Telemetry,
	}, r, progress)
	s.stream.accumulate(st)
	s.ingests.Add(st.Accepted)
	return st, runErr
}

// streamCounters accumulates per-stream results into server-lifetime
// totals for /stats.
type streamCounters struct {
	streams     atomic.Uint64
	accepted    atomic.Uint64
	indexed     atomic.Uint64
	failedLines atomic.Uint64
	chunks      atomic.Uint64
	throttled   atomic.Uint64
	bytes       atomic.Int64
}

func (c *streamCounters) accumulate(st ingest.Stats) {
	c.accepted.Add(st.Accepted)
	c.indexed.Add(st.Indexed)
	c.failedLines.Add(st.Failed)
	c.chunks.Add(st.Chunks)
	c.throttled.Add(st.Throttled)
	c.bytes.Add(st.Bytes)
}

func (c *streamCounters) stats(ctrl *adaptive.Controller) StreamStats {
	return StreamStats{
		Streams:        c.streams.Load(),
		AcceptedDocs:   c.accepted.Load(),
		IndexedDocs:    c.indexed.Load(),
		FailedLines:    c.failedLines.Load(),
		Chunks:         c.chunks.Load(),
		Bytes:          c.bytes.Load(),
		ThrottleEvents: c.throttled.Load(),
		Batch:          ctrl.Stats(),
	}
}
