package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/storage"
	"repro/internal/vecdb"
)

// openResyncStore builds a single-shard durable store with background
// checkpointing disabled, so tests control exactly when the WAL is
// truncated.
func openResyncStore(t *testing.T, dir string) *ShardedDB {
	t.Helper()
	s, err := OpenShardedDefault(dir, 1, 32, 64, PersistConfig{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseNoCheckpoint)
	return s
}

// applyDocs applies adds with explicit IDs start..start+n-1.
func applyDocs(t *testing.T, s *ShardedDB, start int64, n int) {
	t.Helper()
	ms := make([]vecdb.Mutation, n)
	for i := range ms {
		id := start + int64(i)
		ms[i] = vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: fmt.Sprintf("Document %d about policy %d.", id, id)}
	}
	if err := s.ApplyAll(ms); err != nil {
		t.Fatal(err)
	}
}

// TestMutationsSinceEdges covers the WAL-serving contract around the
// journal's boundaries: the full stream from zero, an empty delta at
// the head, a capped batch mid-stream, ErrSeqTruncated once a
// checkpoint drops the range, and the stream resuming past the
// truncation point.
func TestMutationsSinceEdges(t *testing.T) {
	s := openResyncStore(t, t.TempDir())
	applyDocs(t, s, 1, 5)
	if seq := s.Seq(); seq != 5 {
		t.Fatalf("seq after 5 mutations = %d", seq)
	}

	ms, err := s.MutationsSince(0, 0)
	if err != nil {
		t.Fatalf("full stream: %v", err)
	}
	if len(ms) != 5 {
		t.Fatalf("full stream returned %d records", len(ms))
	}
	for i, m := range ms {
		if m.Seq != uint64(i+1) || m.Op != vecdb.OpAdd {
			t.Fatalf("record %d = seq %d op %d", i, m.Seq, m.Op)
		}
	}

	// seq equal to head: an empty delta, not an error — the caller
	// reads it as parity.
	if ms, err = s.MutationsSince(5, 0); err != nil || len(ms) != 0 {
		t.Fatalf("delta at head = %d records, %v", len(ms), err)
	}

	// Batch cap applies from the oldest unseen record.
	if ms, err = s.MutationsSince(2, 2); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Seq != 3 || ms[1].Seq != 4 {
		t.Fatalf("capped delta = %+v", ms)
	}

	// Checkpointing folds the journal away: anything before the floor
	// is now unservable.
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MutationsSince(2, 0); !errors.Is(err, vecdb.ErrSeqTruncated) {
		t.Fatalf("post-checkpoint delta = %v, want ErrSeqTruncated", err)
	}
	// The head itself is still servable (empty delta)...
	if ms, err = s.MutationsSince(5, 0); err != nil || len(ms) != 0 {
		t.Fatalf("head after checkpoint = %d records, %v", len(ms), err)
	}
	// ...and new writes extend the stream with their original numbers.
	applyDocs(t, s, 6, 1)
	if ms, err = s.MutationsSince(5, 0); err != nil || len(ms) != 1 || ms[0].Seq != 6 {
		t.Fatalf("delta past checkpoint = %+v, %v", ms, err)
	}
}

// TestMutationsSinceTornTail: a WAL whose final segment ends in a
// torn record (the classic crash-mid-append) recovers to the intact
// prefix, and MutationsSince serves exactly that prefix — then the
// stream continues where the surviving records left off.
func TestMutationsSinceTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openResyncStore(t, dir)
	applyDocs(t, s, 1, 5)
	s.CloseNoCheckpoint()

	// Tear the tail: append a whole framed record header plus only
	// part of its payload, as if the process died mid-write.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0000", "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	sort.Strings(segs)
	payload, err := vecdb.EncodeMutation(vecdb.Mutation{Op: vecdb.OpAdd, ID: 6, Text: "torn mid-write"})
	if err != nil {
		t.Fatal(err)
	}
	framed := storage.EncodeSeqPayload(6, payload)
	var rec []byte
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(framed)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(framed))
	rec = append(rec, framed[:len(framed)/2]...)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery truncates the torn tail; the five whole records — and
	// only those — are served, and the doc the torn record described
	// never surfaces.
	s2 := openResyncStore(t, dir)
	if seq := s2.Seq(); seq != 5 {
		t.Fatalf("seq after torn-tail recovery = %d, want 5", seq)
	}
	ms, err := s2.MutationsSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 || ms[len(ms)-1].Seq != 5 {
		t.Fatalf("torn-tail stream = %d records, last seq %d", len(ms), ms[len(ms)-1].Seq)
	}
	if _, err := s2.Get(6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record resurrected: %v", err)
	}
	// The journal continues cleanly on the truncated segment.
	applyDocs(t, s2, 6, 1)
	if ms, err = s2.MutationsSince(5, 0); err != nil || len(ms) != 1 || ms[0].Seq != 6 {
		t.Fatalf("post-recovery delta = %+v, %v", ms, err)
	}
}

// TestSeqAndChecksumSurviveRecovery: seq and checksum rebuild
// identically from checkpoint + WAL replay — the property resync's
// parity checks lean on after any node restart.
func TestSeqAndChecksumSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openResyncStore(t, dir)
	applyDocs(t, s, 1, 4)
	if err := s.Save(); err != nil { // checkpoint carries seq 4
		t.Fatal(err)
	}
	applyDocs(t, s, 5, 3) // journaled on top
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	seq, check := s.Seq(), s.Checksum()
	if seq != 8 {
		t.Fatalf("seq before crash = %d, want 8 (7 adds + 1 delete)", seq)
	}
	s.crash()

	s2 := openResyncStore(t, dir)
	if got := s2.Seq(); got != seq {
		t.Fatalf("seq after recovery = %d, want %d", got, seq)
	}
	if got := s2.Checksum(); got != check {
		t.Fatalf("checksum after recovery = %x, want %x", got, check)
	}
	// The delta floor is the checkpoint seq: older ranges are
	// truncated, newer ones serve.
	if _, err := s2.MutationsSince(3, 0); !errors.Is(err, vecdb.ErrSeqTruncated) {
		t.Fatalf("pre-checkpoint delta after recovery = %v, want ErrSeqTruncated", err)
	}
	ms, err := s2.MutationsSince(4, 0)
	if err != nil || len(ms) != 4 {
		t.Fatalf("post-checkpoint delta after recovery = %d records, %v", len(ms), err)
	}
}
