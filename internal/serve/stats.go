package serve

import (
	"repro/internal/adaptive"
	"repro/internal/cluster"
)

// Snapshot is the point-in-time view of the serving layer exposed by
// GET /stats. All fields are JSON-stable: dashboards and tests key on
// them.
type Snapshot struct {
	// Docs is the total stored document count across shards.
	Docs int `json:"docs"`
	// ShardSizes is the per-shard document count, in shard order — for
	// a cluster store, each shard node's last-observed count, so
	// imbalance stays visible across the transport.
	ShardSizes []int `json:"shard_sizes"`
	// Collections is the per-collection document count merged across
	// shards (cluster mode: across shard nodes). Omitted when the store
	// is empty.
	Collections map[string]int `json:"collections,omitempty"`
	// Tenants is the per-tenant admission ledger — admitted, throttled,
	// and in-flight per collection. Omitted until the per-tenant gate is
	// configured and has seen scoped traffic.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`

	// Requests counts admitted calls by kind.
	Requests RequestStats `json:"requests"`
	// EmbedCache reports the query/passage embedding cache.
	EmbedCache CacheStats `json:"embed_cache"`
	// VerdictCache reports the verification result cache.
	VerdictCache CacheStats `json:"verdict_cache"`
	// Batch reports the micro-batching scheduler.
	Batch BatchStats `json:"batch"`
	// Admission reports the load-shedding gate.
	Admission AdmissionStats `json:"admission"`
	// IngestStream reports the streaming ingest pipeline (POST
	// /ingest/stream): lifetime totals plus the adaptive controller's
	// operating point.
	IngestStream StreamStats `json:"ingest_stream"`
	// Index echoes the per-shard vector index configuration (kind,
	// quantization, re-rank depth) and its aggregate storage footprint;
	// zero-valued on stores that do not report one (cluster mode, where
	// each node's /stats carries its own).
	Index IndexStats `json:"index"`
	// Persist reports the durable layer (WAL + checkpoints); Enabled is
	// false on a memory-only server.
	Persist PersistStats `json:"persist"`
	// Cluster reports multi-node routing state; Enabled is false when
	// shards are in-process.
	Cluster ClusterStats `json:"cluster"`
	// Stages summarizes the telemetry registry's per-stage latency
	// histograms (stage_duration_seconds) as count + p50/p95/p99 per
	// hot-path stage: embed, shard_fanout, merge, verify_wait,
	// verify_exec, rerank, wal_append, wal_fsync, checkpoint,
	// ingest_chunk.
	// Stages that have observed nothing are omitted; /metrics exposes
	// the full bucket detail.
	Stages map[string]StageStats `json:"stages,omitempty"`
}

// StageStats is one row of Snapshot.Stages: how many times the stage
// ran and its latency quantiles in seconds (estimated from fixed
// histogram buckets by linear interpolation).
type StageStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// ClusterStats is the multi-node section of the snapshot: per-shard,
// per-backend health (ejections are visible here) plus the router's
// failover/degradation counters.
type ClusterStats struct {
	Enabled bool `json:"enabled"`
	// Shards carries each shard's health state and last-observed
	// document count.
	Shards []cluster.ShardHealth `json:"shards,omitempty"`
	// Router counts failovers and degraded (shard-losing) queries.
	Router cluster.RouterStats `json:"router"`
	// Resync counts anti-entropy repairs: completed resyncs, mutations
	// shipped to lagging replicas, and snapshot fallbacks taken when a
	// WAL delta was unavailable.
	Resync cluster.ResyncStats `json:"resync"`
	// ShedUnavailable counts requests shed at admission because no
	// shard had a healthy backend.
	ShedUnavailable uint64 `json:"shed_unavailable"`
	// Migrations lists the active shard migration (first, when one is
	// running) plus recently finished ones: phase, shipped mutations,
	// parity lag, outcome. Empty until the first POST /admin/rebalance.
	Migrations []cluster.MigrationStatus `json:"migrations,omitempty"`
}

// RequestStats counts admitted requests by endpoint kind.
type RequestStats struct {
	Asks     uint64 `json:"asks"`
	Verifies uint64 `json:"verifies"`
	Ingests  uint64 `json:"ingests"`
	Searches uint64 `json:"searches"`
	Deletes  uint64 `json:"deletes"`
}

// CacheStats describes one LRU cache.
type CacheStats struct {
	Size    int     `json:"size"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func cacheStats(size int, hits, misses uint64) CacheStats {
	s := CacheStats{Size: size, Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		s.HitRate = float64(hits) / float64(total)
	}
	return s
}

// BatchStats describes the micro-batcher's dispatch history.
type BatchStats struct {
	// Batches is the number of dispatches to the detector.
	Batches uint64 `json:"batches"`
	// Items is the number of requests carried by those dispatches.
	Items uint64 `json:"items"`
	// MeanOccupancy is Items/Batches — how full batches run on average.
	MeanOccupancy float64 `json:"mean_occupancy"`
	// MaxBatch is the largest single dispatch observed.
	MaxBatch int `json:"max_batch"`
	// Tuner is the AIMD controller's live operating point: current
	// batch limit, linger wait, and grow/shrink counts.
	Tuner adaptive.Stats `json:"tuner"`
}

// StreamStats is the streaming-ingest section of the snapshot,
// accumulated across every POST /ingest/stream since boot.
type StreamStats struct {
	// Streams counts streams admitted.
	Streams uint64 `json:"streams"`
	// AcceptedDocs / IndexedDocs / FailedLines count documents parsed,
	// documents fully indexed, and malformed lines across all streams.
	AcceptedDocs uint64 `json:"accepted_docs"`
	IndexedDocs  uint64 `json:"indexed_docs"`
	FailedLines  uint64 `json:"failed_lines"`
	// Chunks counts passages written; Bytes counts stream bytes read.
	Chunks uint64 `json:"chunks"`
	Bytes  int64  `json:"bytes"`
	// ThrottleEvents counts pipeline blocks on the chunk credit gate —
	// non-zero means backpressure engaged and producers were slowed.
	ThrottleEvents uint64 `json:"throttle_events"`
	// Batch is the shared ingest batch controller's operating point.
	Batch adaptive.Stats `json:"batch"`
}

// AdmissionStats describes the load-shedding gate.
type AdmissionStats struct {
	InFlight   int    `json:"in_flight"`
	QueueDepth int    `json:"queue_depth"`
	Shed       uint64 `json:"shed"`
}
