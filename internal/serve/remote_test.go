package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
)

// newClusterFixture boots n shard nodes (each a one-shard ShardedDB
// behind the shard protocol) plus a routing Server over them, and a
// twin single-process Server with n in-process shards for
// equivalence checks.
type clusterFixture struct {
	nodes   []*httptest.Server
	remote  *Server
	local   *Server
	router  *cluster.Router
	hcfg    cluster.HealthConfig
	backing []*ShardedDB
}

func newClusterFixture(t *testing.T, n, dim int, hcfg cluster.HealthConfig) *clusterFixture {
	t.Helper()
	f := &clusterFixture{hcfg: hcfg}
	shards := make([]cluster.ShardBackends, n)
	for i := 0; i < n; i++ {
		st, err := NewShardedDefault(1, dim, 64)
		if err != nil {
			t.Fatal(err)
		}
		f.backing = append(f.backing, st)
		ts := httptest.NewServer(cluster.NewNodeHandler(st, nil))
		t.Cleanup(ts.Close)
		f.nodes = append(f.nodes, ts)
		b, err := cluster.NewHTTPBackend(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = cluster.ShardBackends{Primary: b}
	}
	router, err := cluster.NewRouter(shards, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = router
	store, err := NewRemoteStore(router, dim, 64)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(Config{Store: store, Dim: dim, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.remote = remote
	t.Cleanup(func() { remote.Close() })

	local, err := New(Config{Shards: n, Dim: dim, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.local = local
	t.Cleanup(func() { local.Close() })
	return f
}

var clusterCorpus = []string{
	"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	"Employees are entitled to 14 days of paid annual leave per year.",
	"At least three shopkeepers are required to run a shop.",
	"Overtime is paid at one and a half times the hourly rate.",
	"The probation period lasts three months for all new hires.",
	"Annual performance reviews take place every December.",
}

// TestClusterMatchesSingleProcess is the PR's acceptance criterion at
// test scale: the same corpus ingested through a 3-node cluster and
// through 3 in-process shards serves identical merged top-k for the
// same queries.
func TestClusterMatchesSingleProcess(t *testing.T) {
	f := newClusterFixture(t, 3, 64, cluster.HealthConfig{Interval: time.Hour})
	ctx := context.Background()

	if _, err := f.remote.IngestBulk(ctx, clusterCorpus); err != nil {
		t.Fatalf("cluster ingest: %v", err)
	}
	if _, err := f.local.IngestBulk(ctx, clusterCorpus); err != nil {
		t.Fatalf("local ingest: %v", err)
	}
	if rl, ll := f.remote.Store().Len(), f.local.Store().Len(); rl != ll {
		t.Fatalf("doc counts diverge: cluster %d vs local %d", rl, ll)
	}
	// Per-shard counts match too: same IDs, same hash ring.
	rs, ls := f.remote.Store().ShardSizes(), f.local.Store().ShardSizes()
	for i := range rs {
		if rs[i] != ls[i] {
			t.Errorf("shard %d: cluster %d docs vs local %d", i, rs[i], ls[i])
		}
	}

	for _, q := range []string{
		"how many shopkeepers run a shop",
		"what are the working hours",
		"how long is probation",
	} {
		want, err := f.local.Search(ctx, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.remote.Search(ctx, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits vs %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score || got[i].Text != want[i].Text {
				t.Errorf("%q hit %d: cluster (%d, %v) vs local (%d, %v)",
					q, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}

	// Point reads and deletes cross the transport with the typed-miss
	// contract intact.
	doc, err := f.remote.GetDocument(ctx, 1)
	if err != nil || doc.Text != clusterCorpus[0] {
		t.Fatalf("get over cluster: %+v, %v", doc, err)
	}
	if err := f.remote.DeleteDocument(ctx, 1); err != nil {
		t.Fatalf("delete over cluster: %v", err)
	}
	if _, err := f.remote.GetDocument(ctx, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("get deleted = %v, want ErrNotFound", err)
	}

	// Stats carry the cluster section with per-shard health.
	snap := f.remote.Stats()
	if !snap.Cluster.Enabled || len(snap.Cluster.Shards) != 3 {
		t.Errorf("cluster stats missing: %+v", snap.Cluster)
	}
	for _, sh := range snap.Cluster.Shards {
		if !sh.Alive {
			t.Errorf("shard %d reported dead in a healthy cluster", sh.Shard)
		}
	}
	if f.local.Stats().Cluster.Enabled {
		t.Error("single-process server reports cluster mode")
	}
}

// TestClusterDegradedAfterNodeDeath: killing one node leaves searches
// answering from the surviving shards, surfaces the ejection in
// stats, and keeps the ID allocator safe for writes to live shards.
func TestClusterDegradedAfterNodeDeath(t *testing.T) {
	hcfg := cluster.HealthConfig{Interval: 5 * time.Millisecond, FailThreshold: 2, RecoverThreshold: 1}
	f := newClusterFixture(t, 3, 64, hcfg)
	ctx := context.Background()

	if _, err := f.remote.IngestBulk(ctx, clusterCorpus); err != nil {
		t.Fatal(err)
	}
	full, err := f.remote.Search(ctx, "working hours", 6)
	if err != nil {
		t.Fatal(err)
	}

	f.nodes[1].Close() // kill shard 1's node

	// The prober ejects it within a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := f.remote.Stats()
		if len(snap.Cluster.Shards) == 3 && !snap.Cluster.Shards[1].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node death never reflected in stats: %+v", snap.Cluster)
		}
		time.Sleep(5 * time.Millisecond)
	}

	hits, err := f.remote.Search(ctx, "working hours", 6)
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	if len(hits) >= len(full) || len(hits) == 0 {
		t.Errorf("degraded search returned %d hits (full corpus %d)", len(hits), len(full))
	}
	for _, h := range hits {
		if f.router.ShardFor(h.ID) == 1 {
			t.Errorf("hit %d belongs to the dead shard", h.ID)
		}
	}
	snap := f.remote.Stats()
	if snap.Cluster.Router.DegradedQueries == 0 {
		t.Errorf("degraded query not counted: %+v", snap.Cluster.Router)
	}
}

// TestClusterShedsWhenAllNodesDown: with every node dead, requests
// shed at admission with ErrUnavailable — no transport timeouts, no
// slot consumption.
func TestClusterShedsWhenAllNodesDown(t *testing.T) {
	hcfg := cluster.HealthConfig{Interval: 5 * time.Millisecond, FailThreshold: 1, RecoverThreshold: 1}
	f := newClusterFixture(t, 2, 32, hcfg)
	ctx := context.Background()
	if _, err := f.remote.IngestBulk(ctx, clusterCorpus[:2]); err != nil {
		t.Fatal(err)
	}
	for _, ts := range f.nodes {
		ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.router.Available() == nil {
		if time.Now().After(deadline) {
			t.Fatal("cluster never noticed total node death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	_, err := f.remote.Search(ctx, "anything", 3)
	if !errors.Is(err, cluster.ErrUnavailable) {
		t.Fatalf("search on dead cluster = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shedding took %v — it waited on the transport instead of the health state", elapsed)
	}
	if f.remote.Stats().Cluster.ShedUnavailable == 0 {
		t.Error("admission shed not counted")
	}
}
