package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/rag"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// ShardedDB partitions documents across N independent vecdb.DB shards,
// routed by a hash of the document ID. Each shard has its own mutex,
// so writes to different shards never contend, and a query fans out to
// all shards in parallel and merges their top-k — replacing the seed's
// single-mutex bottleneck. ShardedDB implements rag.Store, so it drops
// into the existing pipeline unchanged.
type ShardedDB struct {
	embed  vecdb.Embedder
	shards []*vecdb.DB
	nextID atomic.Int64
	// persist is the durable layer (WAL + checkpoints) attached by
	// OpenSharded; nil for a memory-only store.
	persist *persistence
	// tele holds the query-path stage timers; nil until SetTelemetry.
	// An atomic pointer because telemetry attaches after the store is
	// built, possibly while recovery traffic is already flowing.
	tele atomic.Pointer[searchStageTimers]
	// indexCfg echoes the index configuration the store was built with
	// (zero for custom NewSharded factories); see IndexStats.
	indexCfg IndexConfig
}

// searchStageTimers are the query-path stage histograms, bound once so
// the hot path never takes a registry lock.
type searchStageTimers struct {
	embed  *telemetry.Histogram
	search *telemetry.Histogram // single-shard probe (shardnode mode)
	fanout *telemetry.Histogram
	merge  *telemetry.Histogram
}

// SetTelemetry binds the query-path stage histograms (embed,
// shard_search, shard_fanout, merge, rerank) to reg. Safe to call
// while the store is serving; nil reg detaches.
func (s *ShardedDB) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tele.Store(nil)
		for _, sh := range s.shards {
			sh.SetStageObserver(nil)
		}
		return
	}
	const help = "Hot-path stage latency in seconds."
	s.tele.Store(&searchStageTimers{
		embed:  reg.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "embed")),
		search: reg.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "shard_search")),
		fanout: reg.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "shard_fanout")),
		merge:  reg.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "merge")),
	})
	// Index-internal stages (the quantized re-rank) report through the
	// per-shard stage observer into the same series.
	rerank := reg.Histogram("stage_duration_seconds", help, nil, telemetry.L("stage", "rerank"))
	obs := func(stage string, seconds float64) {
		if stage == "rerank" {
			rerank.Observe(seconds)
		}
	}
	for _, sh := range s.shards {
		sh.SetStageObserver(obs)
	}
}

// ErrNotFound is the typed error for operations on absent document
// IDs, re-exported so HTTP handlers can map it to 404 without
// importing vecdb. Every ShardedDB method that can miss wraps it.
var ErrNotFound = vecdb.ErrNotFound

// NewSharded builds n shards over a shared embedder, one index per
// shard produced by mkIndex. The same embedder serves the ingest path
// (through each shard's AddWithID) and the query path (Search embeds
// once, then fans the vector out).
func NewSharded(n int, embed vecdb.Embedder, mkIndex func() (vecdb.Index, error)) (*ShardedDB, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: shard count must be positive, got %d", n)
	}
	if embed == nil || mkIndex == nil {
		return nil, errors.New("serve: nil embedder or index factory")
	}
	shards := make([]*vecdb.DB, n)
	for i := range shards {
		idx, err := mkIndex()
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d index: %w", i, err)
		}
		db, err := vecdb.New(embed, idx)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		shards[i] = db
	}
	return &ShardedDB{embed: embed, shards: shards}, nil
}

// NewShardedDefault builds n shards over a hashed embedder and flat
// cosine indexes — the zero-configuration serving store. Queries go
// through an LRU-cached embedder; the ingest path embeds raw, so bulk
// ingest (each passage embedded once, never looked up again) cannot
// evict hot query vectors.
func NewShardedDefault(n, dim, embedCache int) (*ShardedDB, error) {
	return NewShardedWithIndex(n, dim, embedCache, IndexConfig{})
}

// shardIndex maps a document ID onto its owning shard through the
// shared hash ring in internal/cluster — the same function a
// multi-node router uses, so a corpus keeps its routing when its
// shards move onto separate nodes.
func (s *ShardedDB) shardIndex(id int64) int {
	return cluster.ShardIndex(id, len(s.shards))
}

func (s *ShardedDB) shardFor(id int64) *vecdb.DB {
	return s.shards[s.shardIndex(id)]
}

// apply executes a batch of mutations that all route to shard i,
// journaling them through the shard's WAL when the store is durable.
// The shard's persistence mutex spans apply+journal, so WAL order is
// exactly apply order and a concurrent checkpoint can never truncate a
// record for state its snapshot missed. A batch that fails — in
// application or in journaling — is rolled back from the in-memory
// shard, so callers never observe a "failed" write that later becomes
// durable (or a durable state the caller was told failed).
func (s *ShardedDB) apply(i int, ms []vecdb.Mutation) error {
	db := s.shards[i]
	p := s.persist
	if p == nil {
		return applyMutations(db, ms)
	}
	// Encode before touching anything: an unjournalable mutation (e.g.
	// an oversized meta key) must be rejected while no state has moved.
	raw := make([][]byte, len(ms))
	for j, m := range ms {
		b, err := vecdb.EncodeMutation(m)
		if err != nil {
			return err
		}
		raw[j] = b
	}
	ds := p.shards[i]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	// The persistence mutex serializes appliers, so the batch owns the
	// seq range (base, base+len] — frame each record with the seq its
	// mutation will be applied at, which is what MutationsSince serves
	// back to lagging replicas.
	base := db.Seq()
	payloads := make([][]byte, len(ms))
	for j, b := range raw {
		payloads[j] = storage.EncodeSeqPayload(base+1+uint64(j), b)
	}
	// Capture the documents deletes will remove, so they can be
	// restored if the batch has to roll back.
	var restore []vecdb.Document
	for _, m := range ms {
		if m.Op == vecdb.OpDelete {
			if d, err := db.Get(m.ID); err == nil {
				restore = append(restore, d)
			}
		}
	}
	rollback := func() {
		for _, m := range ms {
			if m.Op == vecdb.OpAdd {
				db.Delete(m.ID) // ErrNotFound fine: the add may not have applied
			}
		}
		for _, d := range restore {
			if _, err := db.Get(d.ID); err != nil {
				db.AddDocument(d)
			}
		}
		// The primitive undo calls above do not touch the seq counter;
		// restore it over whatever prefix ApplyAll advanced.
		db.SetSeq(base)
	}
	if err := applyMutations(db, ms); err != nil {
		rollback()
		return err
	}
	if err := p.journal(i, payloads); err != nil {
		rollback()
		return err
	}
	return nil
}

func applyMutations(db *vecdb.DB, ms []vecdb.Mutation) error {
	if len(ms) == 1 {
		return db.Apply(ms[0])
	}
	return db.ApplyAll(ms)
}

// Add embeds and stores text on the shard owned by the new document's
// ID, implementing rag.Store.
func (s *ShardedDB) Add(text string, meta map[string]string) (int64, error) {
	id := s.nextID.Add(1)
	m := vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text, Meta: meta}
	if err := s.apply(s.shardIndex(id), []vecdb.Mutation{m}); err != nil {
		return 0, err
	}
	return id, nil
}

// AddBulk stores a batch of texts, returning their IDs in input order.
// Writes are grouped by owning shard and applied with one lock
// acquisition, one concurrent embedding pass, and (on a durable store)
// one journal append batch per shard — shards proceed in parallel. On
// error, shards already applied stay applied; callers treat the batch
// as all-or-retry.
func (s *ShardedDB) AddBulk(texts []string) ([]int64, error) {
	if len(texts) == 0 {
		return nil, nil
	}
	ids := make([]int64, len(texts))
	groups := make([][]vecdb.Mutation, len(s.shards))
	for i, text := range texts {
		id := s.nextID.Add(1)
		ids[i] = id
		si := s.shardIndex(id)
		groups[si] = append(groups[si], vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Text: text})
	}
	if err := s.applyGroups(groups); err != nil {
		return nil, err
	}
	return ids, nil
}

// AddBulkContext is AddBulk checking ctx before starting — the
// ingest pipeline's write path, so an aborted stream stops spending
// embedding work at the next batch boundary.
func (s *ShardedDB) AddBulkContext(ctx context.Context, texts []string) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.AddBulk(texts)
}

// AddBulkDocs stores a batch of documents carrying collection and
// metadata, returning their IDs in input order. IDs are allocated by
// the store (any ID on the input documents is ignored); grouping and
// journaling behave exactly like AddBulk.
func (s *ShardedDB) AddBulkDocs(docs []vecdb.Document) ([]int64, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	ids := make([]int64, len(docs))
	groups := make([][]vecdb.Mutation, len(s.shards))
	for i, d := range docs {
		id := s.nextID.Add(1)
		ids[i] = id
		si := s.shardIndex(id)
		groups[si] = append(groups[si], vecdb.Mutation{Op: vecdb.OpAdd, ID: id, Collection: d.Collection, Text: d.Text, Meta: d.Meta})
	}
	if err := s.applyGroups(groups); err != nil {
		return nil, err
	}
	return ids, nil
}

// AddBulkDocsContext is AddBulkDocs checking ctx first — the ingest
// pipeline's docs-with-metadata write path.
func (s *ShardedDB) AddBulkDocsContext(ctx context.Context, docs []vecdb.Document) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.AddBulkDocs(docs)
}

// applyGroups applies per-shard mutation groups in parallel, returning
// the first error (shards already applied stay applied).
func (s *ShardedDB) applyGroups(groups [][]vecdb.Mutation) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for si, ms := range groups {
		if len(ms) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, ms []vecdb.Mutation) {
			defer wg.Done()
			if err := s.apply(si, ms); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(si, ms)
	}
	wg.Wait()
	return firstErr
}

// ApplyAll executes a batch of externally-journaled mutations with
// caller-assigned IDs — the write path of the shard protocol, where a
// cluster router allocates IDs globally and a shard node applies (and
// WAL-journals, on a durable store) the mutations that hash to it.
// Mutations are grouped by owning shard, preserving relative order
// within each shard, and shards proceed in parallel. The internal ID
// allocator is advanced past every ID in the batch before anything
// applies, so Adds issued *after* an ApplyAll returns (or after the
// reservation below) allocate above it. Running ApplyAll and
// Add/AddBulk concurrently is not part of the contract: a shard node
// takes router-assigned IDs or allocates locally, never both at once.
func (s *ShardedDB) ApplyAll(ms []vecdb.Mutation) error {
	if len(ms) == 0 {
		return nil
	}
	groups := make([][]vecdb.Mutation, len(s.shards))
	var maxID int64
	for _, m := range ms {
		si := s.shardIndex(m.ID)
		groups[si] = append(groups[si], m)
		if m.Op == vecdb.OpAdd && m.ID > maxID {
			maxID = m.ID
		}
	}
	// Reserve the ID range before applying: a concurrent Add must not
	// be handed an ID this batch is about to install.
	for {
		cur := s.nextID.Load()
		if maxID <= cur || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for si, group := range groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, group []vecdb.Mutation) {
			defer wg.Done()
			if err := s.apply(si, group); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(si, group)
	}
	wg.Wait()
	return firstErr
}

// NextID reports the next ID the store would allocate — the high-water
// mark a cluster router reads (via the shard protocol's stat endpoint)
// to restore its global allocator past every stored document.
func (s *ShardedDB) NextID() int64 {
	next := s.nextID.Load() + 1
	for _, sh := range s.shards {
		if id := sh.NextID(); id > next {
			next = id
		}
	}
	return next
}

// Get returns the stored document for id from its owning shard.
func (s *ShardedDB) Get(id int64) (vecdb.Document, error) {
	return s.shardFor(id).Get(id)
}

// Delete removes a document from its owning shard, journaling the
// removal on a durable store. A missing ID reports ErrNotFound.
func (s *ShardedDB) Delete(id int64) error {
	m := vecdb.Mutation{Op: vecdb.OpDelete, ID: id}
	return s.apply(s.shardIndex(id), []vecdb.Mutation{m})
}

// DeleteIn is Delete scoped to a collection: a document that exists
// but belongs to a different collection reports ErrNotFound and is
// left untouched, so one tenant can never delete another's data by
// guessing IDs. An empty collection is the unscoped Delete.
func (s *ShardedDB) DeleteIn(collection string, id int64) error {
	m := vecdb.Mutation{Op: vecdb.OpDelete, ID: id, Collection: collection}
	return s.apply(s.shardIndex(id), []vecdb.Mutation{m})
}

// CollectionCounts merges per-collection document counts across
// shards — the store-level view /stats and the shard-protocol stat
// endpoint report.
func (s *ShardedDB) CollectionCounts() map[string]int {
	out := map[string]int{}
	for _, sh := range s.shards {
		for c, n := range sh.CollectionCounts() {
			out[c] += n
		}
	}
	return out
}

// Len sums the shard sizes, implementing rag.Store.
func (s *ShardedDB) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards reports the shard count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// ShardSizes returns each shard's document count, for /stats and for
// tests asserting the hash spreads load.
func (s *ShardedDB) ShardSizes() []int {
	sizes := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sizes[i] = sh.Len()
	}
	return sizes
}

// Embedder exposes the query-path embedder (the cached one under
// NewShardedDefault).
func (s *ShardedDB) Embedder() vecdb.Embedder { return s.embed }

// Search embeds the query once and fans it out, implementing
// rag.Store.
func (s *ShardedDB) Search(query string, k int) ([]vecdb.Hit, error) {
	t := s.tele.Load()
	if t == nil {
		vec, err := s.embed.Embed(query)
		if err != nil {
			return nil, fmt.Errorf("serve: embed query: %w", err)
		}
		return s.SearchVector(vec, k)
	}
	start := time.Now()
	vec, err := s.embed.Embed(query)
	if err != nil {
		return nil, fmt.Errorf("serve: embed query: %w", err)
	}
	t.embed.ObserveSince(start)
	return s.SearchVector(vec, k)
}

// SearchContext is Search honoring ctx cancellation between stages —
// the handler-facing entry point that keeps request deadlines live on
// the in-process store. (Shard probes themselves are CPU-bound and
// non-blocking, so cancellation is checked at stage boundaries.) A
// traced request additionally gets embed and shard_fanout spans, so
// the in-process store renders the same trace shape as a cluster.
func (s *ShardedDB) SearchContext(ctx context.Context, query string, k int) ([]vecdb.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if telemetry.TraceFrom(ctx) == nil {
		return s.Search(query, k)
	}
	t := s.tele.Load()
	_, esp := telemetry.StartSpan(ctx, "embed")
	start := time.Now()
	vec, err := s.embed.Embed(query)
	esp.End(err)
	if err != nil {
		return nil, fmt.Errorf("serve: embed query: %w", err)
	}
	if t != nil {
		t.embed.ObserveSinceCtx(ctx, start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, fsp := telemetry.StartSpan(ctx, "shard_fanout")
	hits, err := s.SearchVector(vec, k)
	fsp.End(err)
	return hits, err
}

// SearchVector queries every shard in parallel with the same vector
// and merges the per-shard top-k into a global top-k, best first, with
// the same deterministic (score desc, ID asc) order a single index
// returns.
func (s *ShardedDB) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) {
	return s.SearchVectorFiltered(vec, k, vecdb.Filter{})
}

// SearchVectorFiltered is SearchVector with the filter pushed down to
// every shard before its top-k is taken, so the merged result equals
// an unfiltered search over the matching subset.
func (s *ShardedDB) SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	t := s.tele.Load()
	if len(s.shards) == 1 {
		if t == nil {
			return s.shards[0].SearchVectorFiltered(vec, k, f)
		}
		start := time.Now()
		hits, err := s.shards[0].SearchVectorFiltered(vec, k, f)
		t.search.ObserveSince(start)
		return hits, err
	}
	var fanoutStart time.Time
	if t != nil {
		fanoutStart = time.Now()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	lists := make([][]vecdb.Hit, len(s.shards))
	wg.Add(len(s.shards))
	for i, sh := range s.shards {
		go func(i int, db *vecdb.DB) {
			defer wg.Done()
			hits, err := db.SearchVectorFiltered(vec, k, f)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			lists[i] = hits
		}(i, sh)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if t == nil {
		return cluster.MergeTopK(lists, k), nil
	}
	mergeStart := time.Now()
	t.fanout.Observe(mergeStart.Sub(fanoutStart).Seconds())
	hits := cluster.MergeTopK(lists, k)
	t.merge.ObserveSince(mergeStart)
	return hits, nil
}

// SearchFilteredContext embeds the query once and fans it out with the
// filter pushed down to every shard — the handler-facing filtered
// search entry point.
func (s *ShardedDB) SearchFilteredContext(ctx context.Context, query string, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := s.tele.Load()
	var start time.Time
	if t != nil {
		start = time.Now()
	}
	vec, err := s.embedIn(f.Collection, query)
	if err != nil {
		return nil, fmt.Errorf("serve: embed query: %w", err)
	}
	if t != nil {
		t.embed.ObserveSince(start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.SearchVectorFiltered(vec, k, f)
}

// embedIn embeds through the collection-namespaced cache entry point
// when the store's embedder has one, so two tenants with the same
// query text keep independent cache entries (the vector itself is a
// pure function of the text either way).
func (s *ShardedDB) embedIn(collection, query string) ([]float32, error) {
	if ce, ok := s.embed.(interface {
		EmbedIn(collection, text string) ([]float32, error)
	}); ok {
		return ce.EmbedIn(collection, query)
	}
	return s.embed.Embed(query)
}

var _ rag.Store = (*ShardedDB)(nil)

// A ShardedDB is also a complete shard-protocol store: cmd/shardnode
// mounts cluster.NewNodeHandler over a one-shard durable ShardedDB.
var _ cluster.NodeStore = (*ShardedDB)(nil)
