package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/vecdb"
)

// lruCache is a mutex-guarded LRU map with hit/miss counters. It is
// the shared substrate of the embedding and verdict caches.
type lruCache[K comparable, V any] struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent
	items  map[K]*list.Element
	hits   atomic.Uint64
	misses atomic.Uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and whether it was present, promoting
// the entry on hit.
func (c *lruCache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(lruEntry[K, V]).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = lruEntry[K, V]{key: key, val: val}
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		if back != nil {
			c.order.Remove(back)
			delete(c.items, back.Value.(lruEntry[K, V]).key)
		}
	}
	c.items[key] = c.order.PushFront(lruEntry[K, V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lruCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *lruCache[K, V]) Counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// flightGroup deduplicates concurrent identical work: all callers that
// Do the same key while one computation is in flight share its result
// instead of repeating it (the classic singleflight pattern, stdlib
// only).
type flightGroup[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do runs fn once per concurrent key; duplicate callers block and
// receive the leader's result. A follower whose own context expires
// unblocks immediately with its ctx error instead of waiting out the
// leader. shared reports whether the caller got a deduplicated result
// rather than running fn itself.
func (g *flightGroup[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// CachedEmbedder wraps an Embedder with an LRU cache and singleflight
// deduplication, so one hot query string costs one embedding no matter
// how many concurrent requests carry it. Safe for concurrent use.
type CachedEmbedder struct {
	inner  vecdb.Embedder
	cache  *lruCache[string, []float32]
	flight flightGroup[string, []float32]
}

// NewCachedEmbedder wraps inner with a cache of the given capacity.
func NewCachedEmbedder(inner vecdb.Embedder, capacity int) *CachedEmbedder {
	return &CachedEmbedder{inner: inner, cache: newLRU[string, []float32](capacity)}
}

// Dim implements vecdb.Embedder.
func (e *CachedEmbedder) Dim() int { return e.inner.Dim() }

// Embed implements vecdb.Embedder. The returned slice is always a
// fresh copy, preserving the Embedder contract even on cache hits.
func (e *CachedEmbedder) Embed(text string) ([]float32, error) {
	return e.EmbedIn("", text)
}

// EmbedIn embeds text with the cache and singleflight keyed by
// (collection, text): identical query text arriving for two tenants
// gets two independent cache entries, so an entry poisoned or evicted
// by one tenant's traffic can never surface under another's key. The
// embedding itself stays a pure function of the text — the collection
// namespaces only the cache — so query vectors remain bit-identical
// to ingest vectors regardless of scope.
func (e *CachedEmbedder) EmbedIn(collection, text string) ([]float32, error) {
	key := collection + "\x1f" + text
	if vec, ok := e.cache.Get(key); ok {
		return cloneVec(vec), nil
	}
	// The Embedder interface carries no context; embedding is fast and
	// local, so followers wait out the leader unconditionally.
	vec, err, _ := e.flight.Do(context.Background(), key, func() ([]float32, error) {
		v, err := e.inner.Embed(text)
		if err != nil {
			return nil, err
		}
		e.cache.Put(key, v)
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	return cloneVec(vec), nil
}

// Counters exposes the cache's hit/miss counts for /stats.
func (e *CachedEmbedder) Counters() (hits, misses uint64) { return e.cache.Counters() }

// Size returns the current number of cached embeddings.
func (e *CachedEmbedder) Size() int { return e.cache.Len() }

func cloneVec(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return out
}

var _ vecdb.Embedder = (*CachedEmbedder)(nil)
