package serve

import (
	"fmt"

	"repro/internal/vecdb"
)

// IndexConfig selects and tunes the per-shard vector index — the
// serving-layer mirror of the -index/-quantize/-rerank-k/-nprobe/
// -ef-search flags on cmd/ragserver and cmd/shardnode. The zero value
// is the historical default: exact flat cosine scans.
type IndexConfig struct {
	// Kind is the index type: "flat" (exact scan, the default), "ivf"
	// (inverted file; buffers as flat until enough vectors arrive to
	// train k-means, see vecdb.AutoIVFIndex), or "hnsw" (graph).
	Kind string `json:"kind"`
	// Quantize is the stored-vector representation the scan reads:
	// "none" (float32, the default) or "int8" (scalar-quantized codes
	// with exact float32 re-rank).
	Quantize string `json:"quantize"`
	// RerankK is how many quantized-scan candidates are re-scored
	// exactly per query; 0 means 4·k. Ignored under Quantize "none".
	RerankK int `json:"rerank_k"`
	// NList / NProbe are the IVF cluster count and probe width
	// (defaults 64 / 8). Ignored unless Kind is "ivf".
	NList  int `json:"nlist,omitempty"`
	NProbe int `json:"nprobe,omitempty"`
	// M / EfConstruction / EfSearch are the HNSW link budget and beam
	// widths (defaults 16 / 100 / 64). Ignored unless Kind is "hnsw".
	M              int `json:"m,omitempty"`
	EfConstruction int `json:"ef_construction,omitempty"`
	EfSearch       int `json:"ef_search,omitempty"`
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.Kind == "" {
		c.Kind = "flat"
	}
	if c.Quantize == "" {
		c.Quantize = "none"
	}
	if c.NList <= 0 {
		c.NList = 64
	}
	if c.NProbe <= 0 {
		c.NProbe = 8
	}
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// Validate rejects unknown kinds and out-of-range parameters with
// flag-oriented messages — both binaries call it at startup so a typo
// fails boot instead of silently serving the default index.
func (c IndexConfig) Validate() error {
	c = c.withDefaults()
	switch c.Kind {
	case "flat", "ivf", "hnsw":
	default:
		return fmt.Errorf("serve: unknown index kind %q (want flat, ivf or hnsw)", c.Kind)
	}
	if _, err := vecdb.ParseQuantKind(c.Quantize); err != nil {
		return err
	}
	if c.RerankK < 0 {
		return fmt.Errorf("serve: rerank-k must be >= 0, got %d", c.RerankK)
	}
	if c.Kind == "ivf" && c.NProbe > c.NList {
		return fmt.Errorf("serve: need nprobe(%d) <= nlist(%d)", c.NProbe, c.NList)
	}
	if c.Kind == "hnsw" {
		if c.M < 2 {
			return fmt.Errorf("serve: HNSW m must be >= 2, got %d", c.M)
		}
		if c.EfConstruction < c.M {
			return fmt.Errorf("serve: need ef-construction(%d) >= m(%d)", c.EfConstruction, c.M)
		}
	}
	return nil
}

// quant resolves the vecdb quantization config. Callers have
// validated.
func (c IndexConfig) quant() vecdb.QuantConfig {
	kind, _ := vecdb.ParseQuantKind(c.Quantize)
	return vecdb.QuantConfig{Kind: kind, RerankK: c.RerankK}
}

// factory returns the per-shard index constructor for embedding width
// dim. IVF is served through vecdb.AutoIVFIndex so incrementally built
// stores (ingest, WAL replay) work without an explicit training call.
func (c IndexConfig) factory(dim int) func() (vecdb.Index, error) {
	c = c.withDefaults()
	q := c.quant()
	switch c.Kind {
	case "ivf":
		return func() (vecdb.Index, error) {
			return vecdb.NewAutoIVFIndex(vecdb.Cosine, dim, c.NList, c.NProbe, q)
		}
	case "hnsw":
		return func() (vecdb.Index, error) {
			return vecdb.NewHNSWIndexQ(vecdb.Cosine, dim, c.M, c.EfConstruction, c.EfSearch, q)
		}
	default:
		return func() (vecdb.Index, error) {
			return vecdb.NewFlatIndexQ(vecdb.Cosine, dim, q)
		}
	}
}

// NewShardedWithIndex is NewShardedDefault with an explicit index
// configuration: n shards over a hashed embedder (LRU-cached on the
// query path), each shard's index built from ic.
func NewShardedWithIndex(n, dim, embedCache int, ic IndexConfig) (*ShardedDB, error) {
	ic = ic.withDefaults()
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	inner, err := vecdb.NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	s, err := NewSharded(n, inner, ic.factory(dim))
	if err != nil {
		return nil, err
	}
	s.embed = NewCachedEmbedder(inner, embedCache)
	s.indexCfg = ic
	return s, nil
}

// OpenShardedWithIndex is OpenShardedDefault with an explicit index
// configuration. Recovery replays through the same index factory, so a
// quantized index is rebuilt deterministically from the journaled
// documents (codes are derived state, never persisted).
func OpenShardedWithIndex(dir string, n, dim, embedCache int, ic IndexConfig, pcfg PersistConfig) (*ShardedDB, error) {
	ic = ic.withDefaults()
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	inner, err := vecdb.NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	s, err := OpenSharded(dir, n, inner, ic.factory(dim), pcfg)
	if err != nil {
		return nil, err
	}
	s.embed = NewCachedEmbedder(inner, embedCache)
	s.indexCfg = ic
	return s, nil
}

// IndexStats is the index section of the /stats snapshot: the
// configuration in force plus the aggregate storage footprint across
// shards.
type IndexStats struct {
	// Config echoes the index configuration the store was built with.
	Config IndexConfig `json:"config"`
	// Memory aggregates every shard index's storage footprint; all-zero
	// when the indexes do not account memory (custom factories).
	Memory vecdb.IndexMemory `json:"memory"`
}

// IndexStats reports the store's index configuration and aggregate
// footprint. Stores built through NewSharded with a custom factory
// report the default config (the factory is opaque) with whatever
// memory accounting the indexes provide.
func (s *ShardedDB) IndexStats() IndexStats {
	st := IndexStats{Config: s.indexCfg.withDefaults()}
	for _, sh := range s.shards {
		if m, ok := sh.IndexMemory(); ok {
			st.Memory.Vectors += m.Vectors
			st.Memory.FloatBytes += m.FloatBytes
			st.Memory.CodeBytes += m.CodeBytes
			st.Memory.ParamBytes += m.ParamBytes
			st.Memory.ScanBytes += m.ScanBytes
			st.Memory.GraphBytes += m.GraphBytes
		}
	}
	return st
}
