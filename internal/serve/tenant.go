package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// ErrTenantThrottled reports that one tenant exhausted its own rate
// or in-flight budget. It wraps ErrOverloaded, so the HTTP layer's
// existing 429 mapping applies without the global gate being anywhere
// near its limits — that is the point: one hot tenant is throttled at
// its own boundary, not at everyone's.
var ErrTenantThrottled = fmt.Errorf("%w: tenant rate limit", ErrOverloaded)

// tenantKey is the context key carrying the request's collection
// (tenant identity). Unexported; use WithTenant/TenantFrom.
type tenantKey struct{}

// WithTenant tags ctx with the request's collection. Handlers set it
// once at the boundary; the tenant gate, the verification batcher's
// fair scheduler, and the verdict cache all read it from there, so no
// internal signature had to grow a tenant parameter.
func WithTenant(ctx context.Context, collection string) context.Context {
	if collection == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, collection)
}

// TenantFrom reports the collection the request is scoped to, "" when
// unscoped (pre-collection clients, internal traffic).
func TenantFrom(ctx context.Context) string {
	if v, ok := ctx.Value(tenantKey{}).(string); ok {
		return v
	}
	return ""
}

// TenantLimits configures the per-tenant admission gate. Zero values
// disable the corresponding check.
type TenantLimits struct {
	// Rate is the sustained request rate per tenant in requests per
	// second (token-bucket refill rate); Burst is the bucket depth.
	Rate  float64
	Burst int
	// MaxInFlight caps one tenant's concurrently executing requests.
	MaxInFlight int
}

func (l TenantLimits) enabled() bool {
	return l.Rate > 0 || l.MaxInFlight > 0
}

// tenantState is one tenant's live admission state: a token bucket
// refilled at Rate tokens/sec (capped at Burst) plus an in-flight
// count, and the lifetime outcome counters /stats reports.
type tenantState struct {
	tokens   float64
	last     time.Time
	inFlight int

	admitted  uint64
	throttled uint64
}

// TenantGate enforces per-tenant rate limits and in-flight quotas in
// front of the global admission gate. It exists so the blast radius of
// one saturating tenant is that tenant: everyone else's requests never
// even feel the contention. States are created on first sight of a
// collection and live for the server's lifetime (tenant cardinality is
// collections, not users — bounded by design).
type TenantGate struct {
	limits TenantLimits
	now    func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState

	// tele registers per-collection outcome counters lazily, the first
	// time each (collection, outcome) pair occurs; nil means
	// uninstrumented.
	tele *telemetry.Registry
}

// NewTenantGate builds a gate with the given limits. A nil result
// (disabled limits) is valid and admits everything — callers check
// with Enabled.
func NewTenantGate(limits TenantLimits) *TenantGate {
	return &TenantGate{
		limits:  limits,
		now:     time.Now,
		tenants: map[string]*tenantState{},
	}
}

// Enabled reports whether any per-tenant limit is configured.
func (g *TenantGate) Enabled() bool { return g != nil && g.limits.enabled() }

// SetTelemetry binds the registry the tenant outcome counters —
// tenant_requests_total{collection,outcome} and
// tenant_throttled_total{collection} — are registered in.
func (g *TenantGate) SetTelemetry(reg *telemetry.Registry) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.tele = reg
	g.mu.Unlock()
}

// countOutcome bumps the tenant outcome counters; the caller holds
// g.mu (registry counters are internally synchronized, but tele is
// read under the same lock that writes it).
func (g *TenantGate) countOutcome(tenant, outcome string) {
	if g.tele == nil {
		return
	}
	g.tele.Counter("tenant_requests_total",
		"Requests by collection and admission outcome.",
		telemetry.L("collection", tenant), telemetry.L("outcome", outcome)).Inc()
	if outcome == "throttled" {
		g.tele.Counter("tenant_throttled_total",
			"Requests shed at the per-tenant gate, by collection.",
			telemetry.L("collection", tenant)).Inc()
	}
}

// Acquire admits one request for the tenant on ctx (unscoped requests
// pass through untouched). On success the returned release must be
// called when the request finishes; on throttle it returns
// ErrTenantThrottled, which statusFor maps to 429.
func (g *TenantGate) Acquire(ctx context.Context) (release func(), err error) {
	if !g.Enabled() {
		return func() {}, nil
	}
	tenant := TenantFrom(ctx)
	if tenant == "" {
		return func() {}, nil
	}
	tenant = vecdb.NormalizeCollection(tenant)
	g.mu.Lock()
	ts := g.tenants[tenant]
	if ts == nil {
		ts = &tenantState{tokens: float64(g.limits.Burst), last: g.now()}
		g.tenants[tenant] = ts
	}
	if g.limits.Rate > 0 {
		now := g.now()
		ts.tokens += now.Sub(ts.last).Seconds() * g.limits.Rate
		if max := float64(g.limits.Burst); ts.tokens > max {
			ts.tokens = max
		}
		ts.last = now
		if ts.tokens < 1 {
			g.deny(ts, tenant)
			g.mu.Unlock()
			return nil, ErrTenantThrottled
		}
	}
	if g.limits.MaxInFlight > 0 && ts.inFlight >= g.limits.MaxInFlight {
		g.deny(ts, tenant)
		g.mu.Unlock()
		return nil, ErrTenantThrottled
	}
	if g.limits.Rate > 0 {
		ts.tokens--
	}
	ts.inFlight++
	ts.admitted++
	g.countOutcome(tenant, "admitted")
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			ts.inFlight--
			g.mu.Unlock()
		})
	}, nil
}

// deny records a throttled request; the caller holds g.mu.
func (g *TenantGate) deny(ts *tenantState, tenant string) {
	ts.throttled++
	g.countOutcome(tenant, "throttled")
}

// TenantStats is one tenant's /stats entry.
type TenantStats struct {
	// Admitted and Throttled count lifetime admission outcomes.
	Admitted  uint64 `json:"admitted"`
	Throttled uint64 `json:"throttled"`
	// InFlight is the tenant's currently executing request count.
	InFlight int `json:"in_flight"`
}

// Stats snapshots every tenant's counters, keyed by collection.
func (g *TenantGate) Stats() map[string]TenantStats {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(g.tenants))
	names := make([]string, 0, len(g.tenants))
	for name := range g.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := g.tenants[name]
		out[name] = TenantStats{Admitted: ts.admitted, Throttled: ts.throttled, InFlight: ts.inFlight}
	}
	return out
}
