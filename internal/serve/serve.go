// Package serve is the traffic-ready serving layer over the paper's
// RAG + verification pipeline (Fig. 2): a shard router that spreads
// documents over N independent vector-database shards and fans queries
// out in parallel, a micro-batching scheduler that verifies many
// concurrent requests in one detector fan-out, LRU caches with
// singleflight deduplication for embeddings and verdicts, and an
// admission gate that sheds load instead of queueing unboundedly.
//
// Request lifecycle for Ask:
//
//	admission → embed (cache) → shard fan-out → merge top-k →
//	generate → verdict cache → micro-batch verify → respond
//
// See docs/serving.md for the architecture rationale.
package serve

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rag"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// Config assembles a Server. Zero values take the documented defaults.
type Config struct {
	// Shards is the number of vector-database shards (default
	// GOMAXPROCS, capped at 8).
	Shards int
	// Dim is the embedding width (default 256, matching the seed
	// server).
	Dim int
	// TopK is the retrieval depth per question (default 3).
	TopK int
	// Threshold is the verification acceptance threshold on s_i.
	Threshold float64
	// Generator produces answers from retrieved context; nil means the
	// seed's extractive generator.
	Generator rag.Generator
	// Detector verifies responses; nil means core.NewProposed().
	Detector *core.Detector
	// Chunker splits ingested documents; zero value means
	// rag.DefaultChunker().
	Chunker rag.Chunker

	// MaxBatch / MaxWait bound the micro-batcher's adaptive controller
	// from above, MinBatch / MinWait from below; StaticBatch pins
	// (MaxBatch, MaxWait) instead of adapting (see BatcherConfig).
	MaxBatch     int
	MaxWait      time.Duration
	MinBatch     int
	MinWait      time.Duration
	StaticBatch  bool
	BatchWorkers int

	// StreamWorkers / StreamMaxPending / StreamMaxErrors tune the
	// streaming ingest pipeline (see ingest.Config): chunking
	// concurrency, the chunk credit pool bounding in-flight memory, and
	// the malformed-line tolerance per stream.
	StreamWorkers    int
	StreamMaxPending int
	StreamMaxErrors  int

	// TenantRate / TenantBurst / TenantMaxInFlight bound each tenant
	// (collection) independently, in front of the global gate: a
	// token-bucket rate limit in requests per second with the given
	// burst depth, plus a per-tenant in-flight cap. All zero disables
	// per-tenant admission (the prior behaviour). See TenantLimits.
	TenantRate        float64
	TenantBurst       int
	TenantMaxInFlight int

	// MaxInFlight bounds concurrently executing requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// are shed with ErrOverloaded (default 256; negative disables
	// queueing so every request beyond MaxInFlight is shed).
	MaxQueue int
	// RequestTimeout is the per-request deadline applied on admission
	// (default 10s).
	RequestTimeout time.Duration

	// EmbedCacheSize / VerdictCacheSize are LRU capacities (default
	// 4096 each).
	EmbedCacheSize   int
	VerdictCacheSize int

	// Index selects and tunes the per-shard vector index (kind,
	// quantization, re-rank depth, IVF/HNSW parameters). The zero value
	// keeps exact flat cosine scans. Ignored when Store is set.
	Index IndexConfig

	// DataDir, when non-empty, makes the store durable: every mutation
	// is journaled to a per-shard write-ahead log, shards checkpoint in
	// the background, and New recovers the previous state instead of
	// starting empty. Empty means memory-only (the prior behaviour).
	DataDir string
	// Persist tunes the durable layer; ignored when DataDir is empty.
	Persist PersistConfig

	// Store, when non-nil, supplies the document store directly and
	// overrides Shards/DataDir/Persist — the cluster mode, where a
	// RemoteStore routes to shard nodes instead of in-process shards.
	// The Server takes ownership and closes it with Close.
	Store Store

	// Telemetry is the metrics registry every stage reports into —
	// request counters, per-stage latency histograms, cache and
	// admission bridges — and the source /metrics is rendered from.
	// Nil means the Server creates a private registry, so /stats is
	// always backed by real (race-clean) series either way.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Dim <= 0 {
		c.Dim = 256
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.Chunker.MaxSentences <= 0 {
		c.Chunker = rag.DefaultChunker()
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.EmbedCacheSize <= 0 {
		c.EmbedCacheSize = 4096
	}
	if c.VerdictCacheSize <= 0 {
		c.VerdictCacheSize = 4096
	}
	return c
}

// Server is the serving facade: it owns the sharded store, the
// micro-batcher, the caches and the admission gate, and exposes the
// same Ask/Verify/Ingest surface as the seed pipeline.
type Server struct {
	cfg       Config
	store     Store
	pipeline  *rag.Pipeline
	batcher   *Batcher
	admission *Admission
	tenants   *TenantGate
	verdicts  *lruCache[string, core.Verdict]
	vflight   flightGroup[string, core.Verdict]
	// ingestCtrl is the adaptive batch controller shared by every
	// ingest stream, so the learned operating point carries between
	// streams; stream accumulates their lifetime totals.
	ingestCtrl *adaptive.Controller
	stream     streamCounters

	// Request counters live in the telemetry registry so /stats and
	// /metrics read the same race-clean series (the pre-telemetry
	// atomics were a second, divergent set of books).
	asks     *telemetry.Counter
	verifies *telemetry.Counter
	ingests  *telemetry.Counter
	searches *telemetry.Counter
	deletes  *telemetry.Counter
	// unavailableShed counts requests shed at admission because the
	// cluster store reported no healthy backends.
	unavailableShed *telemetry.Counter
}

// New builds and starts a Server (the batcher's collection loop runs
// until Close).
func New(cfg Config) (*Server, error) {
	// Shards=0 means "auto" for a fresh store but "adopt the stored
	// count" when reopening a data directory — resolve before
	// withDefaults turns 0 into the machine default, which would reject
	// a directory created on a machine with a different core count.
	shards := cfg.Shards
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" || (shards <= 0 && !storeMetaExists(cfg.DataDir)) {
		shards = cfg.Shards
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	cfg.Persist.Telemetry = cfg.Telemetry
	det := cfg.Detector
	if det == nil {
		d, err := core.NewProposed()
		if err != nil {
			return nil, err
		}
		det = d
	}
	gen := cfg.Generator
	if gen == nil {
		gen = rag.ExtractiveGenerator{MaxSentences: 2}
	}
	if err := cfg.Index.Validate(); err != nil {
		return nil, err
	}
	var store Store
	var err error
	switch {
	case cfg.Store != nil:
		store = cfg.Store
	case cfg.DataDir != "":
		store, err = OpenShardedWithIndex(cfg.DataDir, shards, cfg.Dim, cfg.EmbedCacheSize, cfg.Index, cfg.Persist)
	default:
		store, err = NewShardedWithIndex(shards, cfg.Dim, cfg.EmbedCacheSize, cfg.Index)
	}
	if err != nil {
		return nil, err
	}
	if ts, ok := store.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
		ts.SetTelemetry(cfg.Telemetry)
	}
	pipeline, err := rag.NewPipeline(rag.PipelineConfig{
		DB:        store,
		TopK:      cfg.TopK,
		Generator: gen,
		Detector:  det,
		Threshold: cfg.Threshold,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	admission, err := NewAdmission(cfg.MaxInFlight, cfg.MaxQueue)
	if err != nil {
		store.Close()
		return nil, err
	}
	batcher := NewBatcher(det, BatcherConfig{
		MaxBatch: cfg.MaxBatch,
		MaxWait:  cfg.MaxWait,
		MinBatch: cfg.MinBatch,
		MinWait:  cfg.MinWait,
		Static:   cfg.StaticBatch,
		Workers:  cfg.BatchWorkers,
		// Queue depth behind the batcher is the admission queue —
		// the same field /stats exposes feeds the AIMD controller.
		QueueDepth: admission.QueueDepth,
		Telemetry:  cfg.Telemetry,
	})
	verdicts := newLRU[string, core.Verdict](cfg.VerdictCacheSize)
	tenants := NewTenantGate(TenantLimits{
		Rate:        cfg.TenantRate,
		Burst:       cfg.TenantBurst,
		MaxInFlight: cfg.TenantMaxInFlight,
	})
	tenants.SetTelemetry(cfg.Telemetry)
	reg := cfg.Telemetry
	s := &Server{
		cfg:       cfg,
		store:     store,
		pipeline:  pipeline,
		batcher:   batcher,
		admission: admission,
		tenants:   tenants,
		verdicts:  verdicts,
		ingestCtrl: adaptive.New(adaptive.Config{
			// The batch limit must stay acquirable from the credit pool:
			// past it, batches could never fill and every flush would
			// stall on the linger timer.
			MaxBatch: minInt(ingestMaxBatch, streamPool(cfg.StreamMaxPending)),
			MinWait:  time.Millisecond,
			MaxWait:  ingestMaxWait,
			Static:   cfg.StaticBatch,
		}),
		asks:     reg.Counter("ask_requests_total", "Admitted Ask requests."),
		verifies: reg.Counter("verify_requests_total", "Admitted Verify requests."),
		ingests:  reg.Counter("ingest_docs_total", "Documents admitted for ingest (bulk counts each document)."),
		searches: reg.Counter("search_requests_total", "Admitted Search requests."),
		deletes:  reg.Counter("delete_requests_total", "Admitted Delete requests."),
		unavailableShed: reg.Counter("cluster_shed_unavailable_total",
			"Requests shed at admission because no shard had a healthy backend."),
	}
	// Bridge the pre-existing component counters into /metrics without
	// moving them: closures read the same state /stats reports.
	reg.GaugeFunc("admission_in_flight", "Requests holding an admission slot.",
		func() float64 { return float64(admission.InFlight()) })
	reg.GaugeFunc("admission_queue_depth", "Requests queued for an admission slot.",
		func() float64 { return float64(admission.QueueDepth()) })
	reg.CounterFunc("admission_shed_total", "Requests shed by the admission gate.", admission.Shed)
	reg.CounterFunc("verify_batches_total", "Micro-batch dispatches to the detector.",
		func() uint64 { b, _, _ := batcher.Stats(); return b })
	reg.CounterFunc("verify_batch_items_total", "Requests carried by micro-batch dispatches.",
		func() uint64 { _, i, _ := batcher.Stats(); return i })
	reg.CounterFunc("cache_hits_total", "Verdict-cache hits.",
		func() uint64 { h, _ := verdicts.Counters(); return h }, telemetry.L("cache", "verdict"))
	reg.CounterFunc("cache_misses_total", "Verdict-cache misses.",
		func() uint64 { _, m := verdicts.Counters(); return m }, telemetry.L("cache", "verdict"))
	if embed, ok := store.Embedder().(*CachedEmbedder); ok {
		reg.CounterFunc("cache_hits_total", "Embedding-cache hits.",
			func() uint64 { h, _ := embed.Counters(); return h }, telemetry.L("cache", "embed"))
		reg.CounterFunc("cache_misses_total", "Embedding-cache misses.",
			func() uint64 { _, m := embed.Counters(); return m }, telemetry.L("cache", "embed"))
	}
	// Streaming-ingest lifetime totals, until now /stats-only.
	reg.CounterFunc("ingest_stream_streams_total", "NDJSON ingest streams admitted.", s.stream.streams.Load)
	reg.CounterFunc("ingest_stream_accepted_docs_total", "Documents parsed off ingest streams.", s.stream.accepted.Load)
	reg.CounterFunc("ingest_stream_indexed_docs_total", "Documents fully indexed from ingest streams.", s.stream.indexed.Load)
	reg.CounterFunc("ingest_stream_failed_lines_total", "Malformed lines rejected across ingest streams.", s.stream.failedLines.Load)
	reg.CounterFunc("ingest_stream_chunks_total", "Passages written from ingest streams.", s.stream.chunks.Load)
	reg.CounterFunc("ingest_stream_throttle_events_total", "Pipeline blocks on the ingest chunk credit gate.", s.stream.throttled.Load)
	reg.CounterFunc("ingest_stream_bytes_total", "Stream bytes read off ingest sockets.",
		func() uint64 { return uint64(s.stream.bytes.Load()) })
	// The AIMD controllers' live operating points, so dashboards can
	// overlay batch-limit/linger moves on the latency they cause.
	for _, c := range []struct {
		name string
		ctrl *adaptive.Controller
	}{{"verify", batcher.Controller()}, {"ingest", s.ingestCtrl}} {
		ctrl := c.ctrl
		reg.GaugeFunc("adaptive_batch_limit", "Adaptive controller's current batch size limit.",
			func() float64 { return float64(ctrl.Stats().Limit) }, telemetry.L("controller", c.name))
		reg.GaugeFunc("adaptive_linger_wait_seconds", "Adaptive controller's current linger wait.",
			func() float64 { return float64(ctrl.Stats().WaitMicros) / 1e6 }, telemetry.L("controller", c.name))
	}
	return s, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// streamPool mirrors ingest.Config's MaxPending default.
func streamPool(configured int) int {
	if configured <= 0 {
		return 1024
	}
	return configured
}

// Ingest batches are chunk writes, far cheaper per item than a
// verification, so the ingest controller runs in a much wider band
// than the verify batcher: a full-width batch amortizes the per-shard
// fan-out (lock + embed pass + WAL append) the way one bulk ingest
// call does.
const (
	ingestMaxBatch = 512
	ingestMaxWait  = 20 * time.Millisecond
)

// Close stops the batcher and — on a durable store — takes a final
// checkpoint and closes the per-shard WALs, so a clean shutdown
// restarts from a snapshot with nothing to replay. In-flight requests
// finish.
func (s *Server) Close() error {
	s.batcher.Close()
	return s.store.Close()
}

// Checkpoint snapshots every dirty shard and truncates its WAL — the
// operation behind POST /admin/checkpoint. It errors on a memory-only
// server.
func (s *Server) Checkpoint() error { return s.store.Save() }

// Store exposes the document store (for seeding and tests) — a
// *ShardedDB in single-process mode, a *RemoteStore in cluster mode.
func (s *Server) Store() Store { return s.store }

// Threshold returns the configured acceptance threshold.
func (s *Server) Threshold() float64 { return s.pipeline.Threshold }

// Calibrate accumulates the detector's normalization moments on the
// given triples and freezes them — the preparation step that makes
// verdicts pure functions, which both the parallel batcher and the
// verdict cache rely on.
func (s *Server) Calibrate(ctx context.Context, triples []core.Triple) error {
	return s.pipeline.Detector().Calibrate(ctx, triples)
}

// admit applies admission control and the per-request deadline. The
// returned done func releases the slot and cancels the deadline. A
// cluster store with no healthy backends sheds here, before any slot
// or transport work is spent — the per-shard health state feeding
// admission control. The per-tenant gate runs before the global one,
// so a tenant over its own budget is throttled (429) without
// consuming a shared slot or pressuring anyone else's queue.
func (s *Server) admit(ctx context.Context) (context.Context, func(), error) {
	if av, ok := s.store.(availabilityReporter); ok {
		if err := av.Available(); err != nil {
			s.unavailableShed.Inc()
			return nil, nil, err
		}
	}
	tenantRelease, err := s.tenants.Acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	release, err := s.admission.Acquire(ctx)
	if err != nil {
		tenantRelease()
		return nil, nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	return rctx, func() { cancel(); release(); tenantRelease() }, nil
}

// Ask answers one question through the full serving path. Under
// overload it fails fast with ErrOverloaded.
func (s *Server) Ask(ctx context.Context, question string) (rag.Answer, error) {
	return s.AskIn(ctx, "", question)
}

// AskIn is Ask scoped to one collection: retrieval draws context only
// from that collection's documents (empty means unscoped, the default
// collection plus everything else — the pre-collection behaviour).
// The verdict cache and batcher read the tenant off ctx (WithTenant),
// which HTTP handlers set alongside the collection.
func (s *Server) AskIn(ctx context.Context, collection, question string) (rag.Answer, error) {
	if question == "" {
		return rag.Answer{}, errors.New("serve: empty question")
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return rag.Answer{}, err
	}
	defer done()
	s.asks.Inc()
	// Retrieval runs under the request context so the request ID and
	// deadline reach the store (and, in cluster mode, the shard RPC
	// headers); generation is fast local compute, and the deadline is
	// re-checked at the stage boundary and throughout verification.
	draft, err := s.pipeline.DraftFiltered(rctx, question, vecdb.Filter{Collection: collection})
	if err != nil {
		return rag.Answer{}, err
	}
	if err := rctx.Err(); err != nil {
		return rag.Answer{}, err
	}
	verdict, err := s.verdict(rctx, core.Triple{
		Question: question, Context: draft.Context, Response: draft.Response,
	})
	if err != nil {
		return rag.Answer{}, err
	}
	return s.pipeline.Finalize(draft, verdict), nil
}

// Verify scores one (question, context, response) triple through the
// cache + batcher path.
func (s *Server) Verify(ctx context.Context, question, contextText, response string) (core.Verdict, error) {
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return core.Verdict{}, err
	}
	defer done()
	s.verifies.Inc()
	return s.verdict(rctx, core.Triple{Question: question, Context: contextText, Response: response})
}

// Ingest chunks and indexes one document across the shards. Chunk
// embedding is not cancellable mid-document; the deadline is checked
// on admission.
func (s *Server) Ingest(ctx context.Context, text string) (int, error) {
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return 0, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return 0, err
	}
	s.ingests.Inc()
	return s.pipeline.Ingest(text, s.cfg.Chunker)
}

// IngestBulk chunks and indexes a batch of documents: chunking runs
// concurrently across documents, then all chunks are written through
// ShardedDB.AddBulk, which embeds on all cores and groups index writes
// (and WAL appends, on a durable store) per shard. It returns the
// total chunk count. The batch costs one admission slot — bulk ingest
// competes with queries as one request, not len(texts) of them.
func (s *Server) IngestBulk(ctx context.Context, texts []string) (int, error) {
	if len(texts) == 0 {
		return 0, errors.New("serve: empty bulk ingest")
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return 0, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return 0, err
	}
	s.ingests.Add(uint64(len(texts)))

	chunked := make([][]string, len(texts))
	errs := make([]error, len(texts))
	parallel.For(len(texts), func(i int) {
		chunked[i], errs[i] = s.cfg.Chunker.Chunk(texts[i])
	})
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	var chunks []string
	for _, cs := range chunked {
		chunks = append(chunks, cs...)
	}
	if _, err := storeAddBulk(rctx, s.store, chunks); err != nil {
		return 0, err
	}
	return len(chunks), nil
}

// IngestDocs is IngestBulk for documents carrying a collection and
// metadata: every chunk of a document is written under the document's
// collection with the document's metadata, so filtered search over
// either dimension sees exactly the passages that came from matching
// documents. Like IngestBulk, the batch costs one admission slot.
func (s *Server) IngestDocs(ctx context.Context, docs []vecdb.Document) (int, error) {
	if len(docs) == 0 {
		return 0, errors.New("serve: empty bulk ingest")
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return 0, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return 0, err
	}
	s.ingests.Add(uint64(len(docs)))

	chunked := make([][]string, len(docs))
	errs := make([]error, len(docs))
	parallel.For(len(docs), func(i int) {
		chunked[i], errs[i] = s.cfg.Chunker.Chunk(docs[i].Text)
	})
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	var chunks []vecdb.Document
	for i, cs := range chunked {
		for _, c := range cs {
			chunks = append(chunks, vecdb.Document{
				Collection: docs[i].Collection,
				Text:       c,
				Meta:       docs[i].Meta,
			})
		}
	}
	if _, err := storeAddBulkDocs(rctx, s.store, chunks); err != nil {
		return 0, err
	}
	return len(chunks), nil
}

// Optional context-aware store surfaces. The Store interface keeps its
// context-free contract (plain *vecdb.DB satisfies it); stores that
// can carry a request's ID and deadline further down — ShardedDB into
// stage timers, RemoteStore into shard RPC hop headers — implement
// these and are picked up per call.
type ctxBulkAdder interface {
	AddBulkContext(ctx context.Context, texts []string) ([]int64, error)
}

type ctxGetter interface {
	GetContext(ctx context.Context, id int64) (vecdb.Document, error)
}

type ctxDeleter interface {
	DeleteContext(ctx context.Context, id int64) error
}

type ctxDocsBulkAdder interface {
	AddBulkDocsContext(ctx context.Context, docs []vecdb.Document) ([]int64, error)
}

type ctxFilteredSearcher interface {
	SearchFilteredContext(ctx context.Context, query string, k int, f vecdb.Filter) ([]vecdb.Hit, error)
}

func storeAddBulk(ctx context.Context, st Store, texts []string) ([]int64, error) {
	if ca, ok := st.(ctxBulkAdder); ok {
		return ca.AddBulkContext(ctx, texts)
	}
	return st.AddBulk(texts)
}

func storeAddBulkDocs(ctx context.Context, st Store, docs []vecdb.Document) ([]int64, error) {
	if ca, ok := st.(ctxDocsBulkAdder); ok {
		return ca.AddBulkDocsContext(ctx, docs)
	}
	return st.AddBulkDocs(docs)
}

// Search retrieves the top-k passages for query through admission
// control — retrieval-only traffic pays an embedding plus a fan-out
// over every shard, so it must not bypass the load-shedding gate the
// other endpoints respect.
func (s *Server) Search(ctx context.Context, query string, k int) ([]vecdb.Hit, error) {
	if query == "" {
		return nil, errors.New("serve: empty query")
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return nil, err
	}
	s.searches.Inc()
	if cs, ok := s.store.(rag.ContextSearcher); ok {
		return cs.SearchContext(rctx, query, k)
	}
	return s.store.Search(query, k)
}

// SearchFiltered is Search with a collection/metadata predicate pushed
// down to every shard before the per-shard top-k is taken, so the
// merged result is exactly what an unfiltered search over a store
// holding only the matching documents would return.
func (s *Server) SearchFiltered(ctx context.Context, query string, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	if query == "" {
		return nil, errors.New("serve: empty query")
	}
	if f.IsZero() {
		return s.Search(ctx, query, k)
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return nil, err
	}
	s.searches.Inc()
	if fs, ok := s.store.(ctxFilteredSearcher); ok {
		return fs.SearchFilteredContext(rctx, query, k, f)
	}
	vec, err := s.store.Embedder().Embed(query)
	if err != nil {
		return nil, err
	}
	return s.store.SearchVectorFiltered(vec, k, f)
}

// GetDocument fetches one stored document through admission control.
// Absent IDs report ErrNotFound.
func (s *Server) GetDocument(ctx context.Context, id int64) (vecdb.Document, error) {
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return vecdb.Document{}, err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return vecdb.Document{}, err
	}
	if cg, ok := s.store.(ctxGetter); ok {
		return cg.GetContext(rctx, id)
	}
	return s.store.Get(id)
}

// DeleteDocument removes one document through admission control,
// journaling the removal on a durable store. Absent IDs report
// ErrNotFound.
func (s *Server) DeleteDocument(ctx context.Context, id int64) error {
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return err
	}
	s.deletes.Inc()
	if cd, ok := s.store.(ctxDeleter); ok {
		return cd.DeleteContext(rctx, id)
	}
	return s.store.Delete(id)
}

// DeleteDocumentIn is DeleteDocument scoped to a collection: a
// document that exists under a different collection reports
// ErrNotFound and is left untouched, so one tenant can never delete
// another's data by guessing IDs.
func (s *Server) DeleteDocumentIn(ctx context.Context, collection string, id int64) error {
	if vecdb.NormalizeCollection(collection) == vecdb.DefaultCollection && collection == "" {
		return s.DeleteDocument(ctx, id)
	}
	rctx, done, err := s.admit(ctx)
	if err != nil {
		return err
	}
	defer done()
	if err := rctx.Err(); err != nil {
		return err
	}
	s.deletes.Inc()
	return s.store.DeleteIn(collection, id)
}

// verdictKey separates fields with unit separators so distinct triples
// never collide. The tenant leads the key: identical triples arriving
// for two collections get independent cache entries and independent
// singleflight leaders, so one tenant's traffic can never warm — or
// evict — another's verdicts.
func verdictKey(tenant string, t core.Triple) string {
	return tenant + "\x1f" + t.Question + "\x1f" + t.Context + "\x1f" + t.Response
}

// verdict resolves one triple via LRU cache → singleflight → batcher.
// Identical concurrent claims are verified once; errors are never
// cached. Caching and deduplication require a calibrated (frozen)
// detector — before calibration, verdicts are order-dependent online
// functions, so every request goes to the batcher and the seed's
// online-normalization semantics are preserved.
func (s *Server) verdict(ctx context.Context, t core.Triple) (core.Verdict, error) {
	if !s.pipeline.Detector().Calibrated() {
		return s.batcher.Verify(ctx, t)
	}
	key := verdictKey(TenantFrom(ctx), t)
	for {
		if v, ok := s.verdicts.Get(key); ok {
			return v, nil
		}
		v, err, shared := s.vflight.Do(ctx, key, func() (core.Verdict, error) {
			v, err := s.batcher.Verify(ctx, t)
			if err != nil {
				return core.Verdict{}, err
			}
			s.verdicts.Put(key, v)
			return v, nil
		})
		if err == nil {
			return v, nil
		}
		// A follower that inherited the leader's context error retries
		// while its own context is still live (the next round either
		// finds the cache warm or elects a new leader).
		if shared && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return core.Verdict{}, err
	}
}

// Stats assembles the current Snapshot.
func (s *Server) Stats() Snapshot {
	embed, _ := s.store.Embedder().(*CachedEmbedder)
	var ec CacheStats
	if embed != nil {
		h, m := embed.Counters()
		ec = cacheStats(embed.Size(), h, m)
	}
	vh, vm := s.verdicts.Counters()
	batches, items, maxBatch := s.batcher.Stats()
	bs := BatchStats{Batches: batches, Items: items, MaxBatch: maxBatch, Tuner: s.batcher.Controller().Stats()}
	if batches > 0 {
		bs.MeanOccupancy = float64(items) / float64(batches)
	}
	// One ShardSizes pass feeds both fields: on a cluster store each
	// call is a shard fan-out, so Docs is derived rather than fetched
	// again.
	sizes := s.store.ShardSizes()
	docs := 0
	for _, n := range sizes {
		docs += n
	}
	colls := s.store.CollectionCounts()
	if len(colls) == 0 {
		colls = nil
	}
	snap := Snapshot{
		Docs:        docs,
		ShardSizes:  sizes,
		Collections: colls,
		Tenants:     s.tenants.Stats(),
		Requests: RequestStats{
			Asks:     s.asks.Value(),
			Verifies: s.verifies.Value(),
			Ingests:  s.ingests.Value(),
			Searches: s.searches.Value(),
			Deletes:  s.deletes.Value(),
		},
		EmbedCache:   ec,
		VerdictCache: cacheStats(s.verdicts.Len(), vh, vm),
		Batch:        bs,
		Admission: AdmissionStats{
			InFlight:   s.admission.InFlight(),
			QueueDepth: s.admission.QueueDepth(),
			Shed:       s.admission.Shed(),
		},
		IngestStream: s.stream.stats(s.ingestCtrl),
		Persist:      s.store.PersistStats(),
		Stages:       stageStats(s.cfg.Telemetry),
	}
	if is, ok := s.store.(interface{ IndexStats() IndexStats }); ok {
		snap.Index = is.IndexStats()
	}
	if rs, ok := s.store.(*RemoteStore); ok {
		r := rs.Router()
		snap.Cluster = ClusterStats{
			Enabled:         true,
			Shards:          r.Health(),
			Router:          r.Stats(),
			Resync:          r.ResyncStats(),
			ShedUnavailable: s.unavailableShed.Value(),
			Migrations:      r.Migrations(),
		}
	}
	return snap
}

// stageStats summarizes the stage_duration_seconds histograms into the
// Stages section of the snapshot: one count + p50/p95/p99 row per
// instrumented hot-path stage that has observed at least one event.
func stageStats(reg *telemetry.Registry) map[string]StageStats {
	snaps := reg.HistogramSnapshots("stage_duration_seconds")
	if len(snaps) == 0 {
		return nil
	}
	out := make(map[string]StageStats, len(snaps))
	for key, hs := range snaps {
		if hs.Count == 0 {
			continue
		}
		// Keys are canonical label strings ("stage=embed").
		name := strings.TrimPrefix(key, "stage=")
		out[name] = StageStats{
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Telemetry exposes the server's metrics registry — the one /metrics
// renders and the middleware chain records into.
func (s *Server) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// ErrNoCluster reports a cluster-only operation on a single-process
// server, so HTTP handlers can map it to a client error rather than a
// server fault.
var ErrNoCluster = errors.New("serve: server is not in cluster mode")

// Resync runs one synchronous anti-entropy sweep across the cluster —
// the operation behind POST /admin/resync, for operators who want a
// just-recovered replica repaired now rather than on the next
// background sweep.
func (s *Server) Resync(ctx context.Context) error {
	rs, ok := s.store.(*RemoteStore)
	if !ok {
		return ErrNoCluster
	}
	return rs.Router().ResyncNow(ctx)
}

// Rebalance moves shard si onto the node at targetURL — the operation
// behind POST /admin/rebalance. With wait=true it blocks until the
// migration finishes (the returned status then carries the outcome);
// otherwise it returns as soon as the migration is underway and
// /stats tracks its progress. The error is non-nil only when the
// migration could not start.
func (s *Server) Rebalance(ctx context.Context, si int, targetURL string, wait bool) (cluster.MigrationStatus, error) {
	rs, ok := s.store.(*RemoteStore)
	if !ok {
		return cluster.MigrationStatus{}, ErrNoCluster
	}
	target, err := cluster.NewHTTPBackend(targetURL, nil)
	if err != nil {
		return cluster.MigrationStatus{}, err
	}
	if wait {
		return rs.Router().Rebalance(ctx, si, target)
	}
	return rs.Router().StartRebalance(si, target)
}

// PlanRebalance runs the dry-run rebalance planner: per-shard doc
// counts and routed-operation counters plus the move it would make,
// with nothing mutated.
func (s *Server) PlanRebalance(ctx context.Context) (cluster.RebalancePlan, error) {
	rs, ok := s.store.(*RemoteStore)
	if !ok {
		return cluster.RebalancePlan{}, ErrNoCluster
	}
	return rs.Router().Plan(ctx), nil
}
